"""Shared benchmark configuration.

Scale factor comes from ``REPRO_BENCH_SF`` (default 0.01, i.e. one tenth of
the paper's database -- the paper's Table 1 corresponds to 0.1). Raising it
towards 0.1 reproduces the paper-scale database at the cost of much longer
nested-iteration runs.
"""

import os

import pytest

from repro import Database
from repro.tpcd import load_tpcd

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SF", "0.01"))


@pytest.fixture(scope="module")
def tpcd_db() -> Database:
    """A fresh TPC-D database per benchmark module."""
    return Database(load_tpcd(scale_factor=BENCH_SCALE))


def run_once(benchmark, fn):
    """Benchmark ``fn`` with a single measured round (strategies like NI on
    Figures 6/7 are deliberately slow; repeated rounds add no information
    for a deterministic in-memory engine)."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
