"""Shared benchmark configuration.

Scale factor comes from ``REPRO_BENCH_SF`` (default 0.01, i.e. one tenth of
the paper's database -- the paper's Table 1 corresponds to 0.1). Raising it
towards 0.1 reproduces the paper-scale database at the cost of much longer
nested-iteration runs.

Every ``--benchmark``-enabled session also appends one perf-history record
per measured benchmark to ``BENCH_history.jsonl`` (see
:mod:`repro.bench.history`); set ``REPRO_BENCH_HISTORY`` to an alternate
path, or to an empty string to disable the append.
"""

import os

import pytest

from repro import Database
from repro.tpcd import load_tpcd

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SF", "0.01"))


@pytest.fixture(scope="module")
def tpcd_db() -> Database:
    """A fresh TPC-D database per benchmark module."""
    return Database(load_tpcd(scale_factor=BENCH_SCALE))


def run_once(benchmark, fn):
    """Benchmark ``fn`` with a single measured round (strategies like NI on
    Figures 6/7 are deliberately slow; repeated rounds add no information
    for a deterministic in-memory engine)."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)


def pytest_sessionfinish(session, exitstatus):
    """Append one perf-history record per measured benchmark.

    Reads pytest-benchmark's session store defensively (its internals are
    not a public API and the plugin may be absent or disabled); history
    failures never fail the benchmark run itself.
    """
    try:
        from repro.bench import history as bench_history

        bench_session = getattr(
            session.config, "_benchmarksession", None
        )
        benchmarks = getattr(bench_session, "benchmarks", None) or []
        for bench in benchmarks:
            stats = getattr(bench, "stats", None)
            if stats is None:
                continue
            record = bench_history.make_record(
                getattr(bench, "name", "?"),
                group=getattr(bench, "group", None),
                scale=BENCH_SCALE,
                min_s=round(float(stats.min), 6),
                mean_s=round(float(stats.mean), 6),
                max_s=round(float(stats.max), 6),
                rounds=int(getattr(stats, "rounds", 0) or 0),
            )
            bench_history.append_record(record)
    except Exception as exc:  # noqa: BLE001 - history must never break CI
        print(f"bench history: not recorded ({exc})")
