"""Ablation: recompute vs materialise the supplementary common subexpression.

Section 5.1/5.3 of the paper: "the version of Starburst on which the
experiments were run always recomputes common sub-expressions"; for
Figure 5 the authors note magic "would be comparable to Dayal's method if
the system materialized the common sub-expression instead". This ablation
measures exactly that knob (``cse_mode``).
"""

import pytest

from repro import Strategy
from repro.bench.harness import warm
from repro.tpcd import QUERY_1, QUERY_1_VARIANT

from conftest import run_once


@pytest.mark.benchmark(group="ablation-cse")
@pytest.mark.parametrize("cse_mode", ["recompute", "materialize"])
@pytest.mark.parametrize("query", [QUERY_1, QUERY_1_VARIANT], ids=["q1", "q1b"])
def test_bench_cse_mode(benchmark, tpcd_db, query, cse_mode):
    warm(tpcd_db)
    result = run_once(
        benchmark,
        lambda: tpcd_db.execute(query, strategy=Strategy.MAGIC, cse_mode=cse_mode),
    )
    assert len(result.rows) >= 1


def test_materialize_eliminates_recomputation(tpcd_db):
    recompute = tpcd_db.execute(
        QUERY_1, strategy=Strategy.MAGIC, cse_mode="recompute"
    )
    materialize = tpcd_db.execute(
        QUERY_1, strategy=Strategy.MAGIC, cse_mode="materialize"
    )
    assert sorted(recompute.rows) == sorted(materialize.rows)
    assert (
        materialize.metrics.boxes_recomputed
        < recompute.metrics.boxes_recomputed
    )
    assert materialize.metrics.total_work() < recompute.metrics.total_work()


def test_materialized_magic_comparable_to_dayal(tpcd_db):
    # The paper's Figure 5 hypothesis, verified on the work metric.
    magic = tpcd_db.execute(
        QUERY_1, strategy=Strategy.MAGIC, cse_mode="materialize"
    )
    dayal = tpcd_db.execute(QUERY_1, strategy=Strategy.DAYAL)
    assert magic.metrics.total_work() <= dayal.metrics.total_work() * 2.0
