"""Query-service throughput/latency baseline (``BENCH_service.json``).

A fault-free soak at the default benchmark scale: how many mixed queries
per second does the concurrent service sustain, and what are the p50/p95
latencies? The committed ``BENCH_service.json`` at the repo root records
the first baseline; regenerate it with::

    python -m repro soak --workers 8 --seconds 10 --seed 42 \
        --cancel-rate 0 --tight-deadline-rate 0 --bench-out BENCH_service.json
"""

import pytest

from repro.serve.soak import run_soak


@pytest.mark.benchmark(group="service")
@pytest.mark.parametrize("workers", [1, 4, 8])
def test_bench_service_throughput(benchmark, workers):
    def soak():
        return run_soak(
            workers=workers, seconds=2.0, seed=42, faults=None,
            scale=0.002, cancel_rate=0.0, tight_deadline_rate=0.0,
        )

    report = benchmark.pedantic(soak, rounds=1, iterations=1, warmup_rounds=0)
    assert report.ok, [str(v) for v in report.violations]
    assert report.stats.completed > 0
