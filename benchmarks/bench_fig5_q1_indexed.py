"""Figure 5: Query 1 with all indexes present.

Paper claims (section 5.3): few invocations and no duplicate bindings; Kim
does poorly (unnecessary subquery computation); Dayal beats magic because
magic recomputes the supplementary table; magic slightly better than NI.
"""

import pytest

from repro import Strategy
from repro.bench.figures import figure5
from repro.bench.harness import warm
from repro.tpcd import QUERY_1

from conftest import BENCH_SCALE, run_once

STRATEGIES = [
    Strategy.NESTED_ITERATION,
    Strategy.KIM,
    Strategy.DAYAL,
    Strategy.MAGIC,
    Strategy.MAGIC_OPT,
]


@pytest.mark.benchmark(group="figure5")
@pytest.mark.parametrize("strategy", STRATEGIES, ids=lambda s: s.label)
def test_bench_query1(benchmark, tpcd_db, strategy):
    warm(tpcd_db)
    result = run_once(
        benchmark, lambda: tpcd_db.execute(QUERY_1, strategy=strategy)
    )
    assert result.columns[0] == "s_name"


def test_figure5_report():
    report = figure5(scale_factor=BENCH_SCALE, repeat=3)
    report.print()
    # All strategies agree on the answer.
    row_counts = {r.n_rows for r in report.results if r.applicable}
    assert len(row_counts) == 1
    assert report.shape_holds(), report.shape
