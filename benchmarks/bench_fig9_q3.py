"""Figure 9: Query 3 -- non-linear (UNION ALL), duplicate bindings.

Paper claims: neither Kim's nor Dayal's method applies; most of the ~209
invocations are redundant (only 5 distinct European nations); magic yields
a tremendous improvement.
"""

import pytest

from repro import Strategy
from repro.bench.figures import figure9
from repro.bench.harness import warm
from repro.errors import NotApplicableError
from repro.tpcd import QUERY_3

from conftest import BENCH_SCALE, run_once

APPLICABLE = [
    Strategy.NESTED_ITERATION,
    Strategy.MAGIC,
    Strategy.MAGIC_OPT,
]


@pytest.mark.benchmark(group="figure9")
@pytest.mark.parametrize("strategy", APPLICABLE, ids=lambda s: s.label)
def test_bench_query3(benchmark, tpcd_db, strategy):
    warm(tpcd_db)
    result = run_once(
        benchmark, lambda: tpcd_db.execute(QUERY_3, strategy=strategy)
    )
    assert len(result.rows) > 0


@pytest.mark.parametrize(
    "strategy", [Strategy.KIM, Strategy.DAYAL], ids=lambda s: s.label
)
def test_inapplicable_strategies(tpcd_db, strategy):
    with pytest.raises(NotApplicableError):
        tpcd_db.execute(QUERY_3, strategy=strategy)


def test_figure9_report():
    report = figure9(scale_factor=BENCH_SCALE, repeat=3)
    report.print()
    assert report.shape_holds(), report.shape
