"""Figure 8: Query 2 -- ~209 keyed invocations of a cheap indexed subquery.

Paper claims: decorrelation expected to have little impact here; OptMag
(supplementary CSE eliminated -- the correlation attribute is a key)
performs comparably with NI, Mag slightly worse; Kim's and Dayal's methods
are orders of magnitude worse.
"""

import pytest

from repro import Strategy
from repro.bench.figures import figure8
from repro.bench.harness import warm
from repro.tpcd import QUERY_2

from conftest import BENCH_SCALE, run_once

STRATEGIES = [
    Strategy.NESTED_ITERATION,
    Strategy.KIM,
    Strategy.DAYAL,
    Strategy.MAGIC,
    Strategy.MAGIC_OPT,
]


@pytest.mark.benchmark(group="figure8")
@pytest.mark.parametrize("strategy", STRATEGIES, ids=lambda s: s.label)
def test_bench_query2(benchmark, tpcd_db, strategy):
    warm(tpcd_db)
    result = run_once(
        benchmark, lambda: tpcd_db.execute(QUERY_2, strategy=strategy)
    )
    assert len(result.rows) == 1  # a single aggregate row


def test_figure8_report():
    report = figure8(scale_factor=BENCH_SCALE, repeat=3)
    report.print()
    assert report.shape_holds(), report.shape


def test_all_strategies_same_answer(tpcd_db):
    values = []
    for strategy in STRATEGIES:
        value = tpcd_db.execute(QUERY_2, strategy=strategy).scalar()
        values.append(value)
    assert all(v == pytest.approx(values[0]) for v in values)
