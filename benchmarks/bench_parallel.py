"""Section 6: decorrelation in shared-nothing parallel databases.

The paper presents an execution-strategy analysis rather than measurements:
nested iteration broadcasts each correlation binding to every node (O(n^2)
computation fragments, per-tuple messages), while the magic-decorrelated
plan runs as n independent partition-parallel pipelines with batched
repartitioning. This benchmark quantifies those claims on the simulator.
"""

import pytest

from repro.parallel import simulate_decorrelated, simulate_nested_iteration
from repro.tpcd import load_empdept

from conftest import run_once

N_DEPTS = 400
N_EMPS = 8000


@pytest.fixture(scope="module")
def empdept_rows():
    catalog = load_empdept(n_depts=N_DEPTS, n_emps=N_EMPS, n_buildings=40)
    return list(catalog.table("dept").rows), list(catalog.table("emp").rows)


@pytest.mark.benchmark(group="parallel")
@pytest.mark.parametrize("n_nodes", [2, 4, 8, 16])
def test_bench_ni_parallel(benchmark, empdept_rows, n_nodes):
    dept, emp = empdept_rows
    metrics = run_once(
        benchmark, lambda: simulate_nested_iteration(dept, emp, n_nodes)
    )
    assert metrics.fragments == n_nodes * n_nodes


@pytest.mark.benchmark(group="parallel")
@pytest.mark.parametrize("n_nodes", [2, 4, 8, 16])
def test_bench_magic_parallel(benchmark, empdept_rows, n_nodes):
    dept, emp = empdept_rows
    metrics = run_once(
        benchmark, lambda: simulate_decorrelated(dept, emp, n_nodes)
    )
    assert metrics.fragments == n_nodes


def test_parallel_report(empdept_rows):
    dept, emp = empdept_rows
    print("\nSection 6: NI vs magic-decorrelated, shared-nothing simulator")
    header = (
        f"{'nodes':>5} | {'NI frags':>9} {'NI msgs':>9} {'NI makespan':>12} | "
        f"{'Mag frags':>9} {'Mag msgs':>9} {'Mag makespan':>13} | {'ratio':>6}"
    )
    print(header)
    for n in (1, 2, 4, 8, 16):
        ni = simulate_nested_iteration(dept, emp, n)
        mag = simulate_decorrelated(dept, emp, n)
        assert ni.answer == mag.answer
        ratio = ni.makespan / mag.makespan
        print(
            f"{n:>5} | {ni.fragments:>9} {ni.messages:>9} {ni.makespan:>12.0f} | "
            f"{mag.fragments:>9} {mag.messages:>9} {mag.makespan:>13.0f} | "
            f"{ratio:>5.1f}x"
        )
        if n > 1:
            assert mag.makespan < ni.makespan
