"""The zero-overhead-when-disabled contract of ``repro.trace`` and
``repro.obs``.

Tracing follows the ``limits=None`` pattern of :mod:`repro.guard`: when no
tracer is attached the executor and rewrite engine must take the plain
code path -- no span bookkeeping, no clock reads, no snapshots. The same
contract covers the PR-5 observability surfaces: a database without an
event log or slow-query log must never construct, consult or emit into
either. Two kinds of guard enforce it:

* *structural* checks: with every :class:`~repro.trace.Tracer` (resp.
  :class:`~repro.obs.events.EventLog` / slow-log) entry point
  booby-trapped, a plain run must still succeed -- the disabled path
  provably never touches the machinery;
* *timing* checks: the disabled median must not exceed the enabled
  median by more than 5% -- the disabled path regressing towards (or
  past) the cost of the enabled one is exactly the bug this catches.
"""

import statistics
import time

import pytest

from repro import Database, Strategy
from repro.obs import EventLog, RingSink, SlowQueryLog
from repro.tpcd import QUERY_2, load_tpcd
from repro.trace import Tracer

from conftest import BENCH_SCALE, run_once

#: Timing-check budget: untraced must stay within 5% of traced.
OVERHEAD_TOLERANCE = 1.05
ROUNDS = 9


@pytest.fixture(scope="module")
def db() -> Database:
    db = Database(load_tpcd(scale_factor=min(BENCH_SCALE, 0.01)))
    for table in db.catalog.tables():
        db.catalog.stats(table.name)
    return db


def _median_seconds(fn, rounds: int = ROUNDS) -> float:
    samples = []
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    return statistics.median(samples)


def test_untraced_path_never_touches_the_tracer(db, monkeypatch):
    """Structural zero overhead: booby-trap every tracer entry point and
    run an untraced query -- the disabled path must not trip a single one."""
    def boom(*args, **kwargs):  # pragma: no cover - failure path
        raise AssertionError("tracer machinery reached on the untraced path")

    for name in ("begin", "end", "cache_hit", "record", "attach"):
        monkeypatch.setattr(Tracer, name, boom)
    result = db.execute(QUERY_2, strategy=Strategy.MAGIC)
    assert result.rows


def test_disabled_overhead_within_tolerance(db):
    """Timing zero overhead: untraced execution must not regress to more
    than ``OVERHEAD_TOLERANCE`` of the traced cost (tracing does strictly
    more work, so a disabled path slower than that is a regression)."""
    def untraced():
        db.execute(QUERY_2, strategy=Strategy.MAGIC)

    def traced():
        db.execute(QUERY_2, strategy=Strategy.MAGIC, tracer=Tracer())

    untraced()  # warm caches outside the measurement
    untraced_median = _median_seconds(untraced)
    traced_median = _median_seconds(traced)
    assert untraced_median <= traced_median * OVERHEAD_TOLERANCE, (
        f"untraced median {untraced_median * 1000:.3f}ms exceeds "
        f"{OVERHEAD_TOLERANCE}x traced median {traced_median * 1000:.3f}ms"
    )


def test_unobserved_path_never_touches_the_event_log(db, monkeypatch):
    """Structural zero overhead for the event log and slow-query log: with
    every emission/observation entry point booby-trapped, a database built
    without ``events``/``slow_query_ms`` must never reach either."""
    def boom(*args, **kwargs):  # pragma: no cover - failure path
        raise AssertionError(
            "observability machinery reached on the disabled path"
        )

    for name in ("emit", "scope", "current_query_id"):
        monkeypatch.setattr(EventLog, name, boom)
    monkeypatch.setattr(SlowQueryLog, "observe", boom)
    result = db.execute(QUERY_2, strategy=Strategy.MAGIC)
    assert result.rows


def test_disabled_events_overhead_within_tolerance(db):
    """Timing zero overhead for the observed path: a plain database must
    not regress to more than ``OVERHEAD_TOLERANCE`` of one running with an
    event log *and* a (never-triggering) slow-query log."""
    observed_db = Database(
        catalog=db.catalog, events=EventLog(RingSink(capacity=65536)),
        slow_query_ms=60_000.0,
    )

    def plain():
        db.execute(QUERY_2, strategy=Strategy.MAGIC)

    def observed():
        observed_db.execute(QUERY_2, strategy=Strategy.MAGIC)

    plain()  # warm caches outside the measurement
    observed()
    plain_median = _median_seconds(plain)
    observed_median = _median_seconds(observed)
    assert plain_median <= observed_median * OVERHEAD_TOLERANCE, (
        f"plain median {plain_median * 1000:.3f}ms exceeds "
        f"{OVERHEAD_TOLERANCE}x observed median "
        f"{observed_median * 1000:.3f}ms"
    )


def test_unvalidated_path_never_touches_the_plan_verifier(db, monkeypatch):
    """Structural zero overhead for the static plan verifier: with
    ``REPRO_VALIDATE`` off the pre-execution gate must never import or
    call :mod:`repro.analyze.plans` -- booby-trap its entry points and
    run a plain query."""
    from repro.analyze import plans

    def boom(*args, **kwargs):  # pragma: no cover - failure path
        raise AssertionError(
            "plan verifier reached with validation disabled"
        )

    monkeypatch.setattr(plans, "verify_pre_execution", boom)
    monkeypatch.setattr(plans, "verify_query_plan", boom)
    monkeypatch.setattr(plans, "check_interfaces", boom)
    unvalidated_db = Database(catalog=db.catalog, validate=False)
    result = unvalidated_db.execute(QUERY_2, strategy=Strategy.MAGIC)
    assert result.rows


def test_disabled_validation_overhead_within_tolerance(db):
    """Timing zero overhead for the verifier: a validation-off database
    must not regress to more than ``OVERHEAD_TOLERANCE`` of one running
    the full per-step lint plus pre-execution plan verification."""
    plain_db = Database(catalog=db.catalog, validate=False)
    validated_db = Database(catalog=db.catalog, validate=True)

    def plain():
        plain_db.execute(QUERY_2, strategy=Strategy.MAGIC)

    def validated():
        validated_db.execute(QUERY_2, strategy=Strategy.MAGIC)

    plain()  # warm caches outside the measurement
    validated()
    plain_median = _median_seconds(plain)
    validated_median = _median_seconds(validated)
    assert plain_median <= validated_median * OVERHEAD_TOLERANCE, (
        f"plain median {plain_median * 1000:.3f}ms exceeds "
        f"{OVERHEAD_TOLERANCE}x validated median "
        f"{validated_median * 1000:.3f}ms"
    )


def test_phases_off_path_never_touches_the_timeline(db, monkeypatch):
    """Structural zero overhead for phase accounting: with every
    :class:`~repro.obs.phases.PhaseTimeline` entry point booby-trapped, a
    service built without ``phases=`` (and without ``trace``) must admit,
    execute and finish queries without constructing a single timeline."""
    from repro.obs.phases import PhaseTimeline
    from repro.serve import QueryService

    def boom(*args, **kwargs):  # pragma: no cover - failure path
        raise AssertionError(
            "phase-accounting machinery reached with phases disabled"
        )

    for name in ("__init__", "mark", "total", "as_dict", "as_ms_dict"):
        monkeypatch.setattr(PhaseTimeline, name, boom)
    with QueryService(db, workers=2) as service:
        ticket = service.submit(QUERY_2, strategy=Strategy.MAGIC)
        assert ticket.result().rows
        assert ticket.phases is None


def test_disabled_phases_overhead_within_tolerance(db):
    """Timing zero overhead for phase accounting: a phases-off service
    must not regress to more than ``OVERHEAD_TOLERANCE`` of one stamping
    the full admit/queue/rewrite/execute/drain timeline per ticket."""
    from repro.serve import QueryService

    batch = 8

    def run(service):
        tickets = [
            service.submit(QUERY_2, strategy=Strategy.MAGIC)
            for _ in range(batch)
        ]
        for ticket in tickets:
            ticket.result()

    with QueryService(db, workers=2, max_queue=64) as plain_service:
        with QueryService(
            db, workers=2, max_queue=64, phases=True
        ) as phased_service:
            run(plain_service)  # warm caches outside the measurement
            run(phased_service)
            plain_median = _median_seconds(lambda: run(plain_service))
            phased_median = _median_seconds(lambda: run(phased_service))
    assert plain_median <= phased_median * OVERHEAD_TOLERANCE, (
        f"phases-off median {plain_median * 1000:.3f}ms exceeds "
        f"{OVERHEAD_TOLERANCE}x phases-on median "
        f"{phased_median * 1000:.3f}ms"
    )


@pytest.mark.benchmark(group="trace-overhead")
def test_bench_untraced(db, benchmark):
    run_once(benchmark, lambda: db.execute(QUERY_2, strategy=Strategy.MAGIC))


@pytest.mark.benchmark(group="trace-overhead")
def test_bench_traced(db, benchmark):
    run_once(
        benchmark,
        lambda: db.execute(
            QUERY_2, strategy=Strategy.MAGIC, tracer=Tracer()
        ),
    )
