"""Plan-cache contracts: zero cost when off, goodput when on.

``Database(plan_cache=None)`` (and therefore every seed caller) must
preserve the PR-1..8 query path exactly -- structurally (the cache is
provably never touched) and in wall-clock terms (the execute path pays
one ``is not None`` check for the feature it did not enable). With the
cache on, the A/B soak must convert repeated templates into strictly
more within-deadline completions at identical offered load, with the
``plan.cache_*`` events reconciling exactly against the counters; the
gated run also lives in CI via ``python -m repro soak --plan-cache``.
"""

import statistics
import time

import pytest

from repro import Database, QueryService
from repro.plan import cache as cache_module
from repro.plan.cache import PlanCache
from repro.tpcd import EMP_DEPT_QUERY, load_empdept

#: The disabled path may not regress past half again the enabled
#: *all-miss* path (generous: every miss pays prepare + fill on top of
#: the full pipeline; hits would be faster than disabled, not slower).
OVERHEAD_TOLERANCE = 1.5
ROUNDS = 7
BATCH = 32


@pytest.fixture(scope="module")
def empdept_db() -> Database:
    return Database(load_empdept())


def test_disabled_path_never_touches_the_plan_cache(empdept_db, monkeypatch):
    """Structural zero overhead: booby-trap every cache entry point and
    run plain ``Database``/``QueryService`` paths -- ``plan_cache=None``
    must not trip one."""

    def boom(*args, **kwargs):  # pragma: no cover - failure path
        raise AssertionError("plan cache reached with plan_cache=None")

    for attr in ("prepare", "fill", "snapshot", "clear", "_store", "_emit"):
        monkeypatch.setattr(cache_module.PlanCache, attr, boom)
    monkeypatch.setattr(cache_module, "extract_parameters", boom)
    monkeypatch.setattr(cache_module, "render_parameterized", boom)
    assert empdept_db.execute(EMP_DEPT_QUERY, strategy="magic").rows
    with QueryService(empdept_db, workers=2) as service:
        for _ in range(4):
            assert service.submit(
                EMP_DEPT_QUERY, strategy="magic", deadline=30.0,
            ).result(timeout=30).rows


def _median_batch_seconds(make_db, statements) -> float:
    samples = []
    for _ in range(ROUNDS):
        db = make_db()
        start = time.perf_counter()
        for sql in statements:
            db.execute(sql, strategy="magic")
        samples.append(time.perf_counter() - start)
    return statistics.median(samples)


def test_disabled_execute_path_costs_nothing():
    """Timing guard: a batch of *distinct* templates (every cached
    lookup misses -- the cache's worst case: full pipeline plus prepare
    and fill) must not beat the plain path by more than the tolerance.
    Hits are excluded on purpose; they are faster than the plain path,
    which would let real overhead hide inside the win."""
    catalog = load_empdept()
    # Distinct templates: each ``and 1=1`` conjunct changes the shape.
    statements = [
        "select name from emp where salary > 10.0"
        + " and 1=1" * (i % BATCH)
        for i in range(BATCH)
    ]
    disabled = _median_batch_seconds(
        lambda: Database(catalog), statements
    )
    enabled = _median_batch_seconds(
        lambda: Database(catalog, plan_cache=PlanCache()), statements
    )
    assert disabled <= enabled * OVERHEAD_TOLERANCE, (
        f"plan_cache=None execute path regressed: disabled "
        f"{disabled:.6f}s vs enabled-all-miss {enabled:.6f}s per "
        f"{BATCH}-statement batch"
    )


@pytest.mark.slow
def test_bench_plan_cache_goodput():
    """The acceptance gate, compressed: the cache-on soak completes
    strictly more within-deadline queries than cache-off at identical
    offered load, and hit/miss/invalidation counters reconcile exactly
    against the emitted ``plan.cache_*`` events (checked inside
    ``run_plan_cache_soak``; any mismatch is a violation)."""
    from repro.serve.soak import OverloadPhase, run_plan_cache_soak

    report = run_plan_cache_soak(
        seed=42, workers=2, max_queue=16, scale=0.002,
        phases=(
            OverloadPhase("warmup", 0.8, 40.0),
            OverloadPhase("steady", 2.0, 400.0),
        ),
        require_win=True,
    )
    assert report.cached.violations == []
    assert report.baseline.violations == []
    assert report.violations == [], [str(v) for v in report.violations]
    assert report.cached.goodput > report.baseline.goodput
    assert report.hit_rate > 0.9
    print(
        f"\nplan-cache goodput: cached {report.cached.goodput} vs "
        f"uncached {report.baseline.goodput} of {report.cached.offered} "
        f"offered; hit_rate={report.hit_rate} cache={report.cache}"
    )
