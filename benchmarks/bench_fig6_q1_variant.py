"""Figure 6: Query 1 variant (drop p_size, widen to two regions).

Paper claims: ~3 954 invocations of which ~2 138 distinct; magic continues
to perform well; Kim improves relative to Figure 5; Dayal now performs
poorly (large join before aggregation, redundant aggregation per duplicate
binding).
"""

import pytest

from repro import Strategy
from repro.bench.figures import figure6
from repro.bench.harness import warm
from repro.tpcd import QUERY_1_VARIANT

from conftest import BENCH_SCALE, run_once

STRATEGIES = [
    Strategy.NESTED_ITERATION,
    Strategy.KIM,
    Strategy.DAYAL,
    Strategy.MAGIC,
    Strategy.MAGIC_OPT,
]


@pytest.mark.benchmark(group="figure6")
@pytest.mark.parametrize("strategy", STRATEGIES, ids=lambda s: s.label)
def test_bench_query1_variant(benchmark, tpcd_db, strategy):
    warm(tpcd_db)
    result = run_once(
        benchmark, lambda: tpcd_db.execute(QUERY_1_VARIANT, strategy=strategy)
    )
    assert len(result.rows) > 0


def test_figure6_report():
    report = figure6(scale_factor=BENCH_SCALE, repeat=1)
    report.print()
    row_counts = {r.n_rows for r in report.results if r.applicable}
    assert len(row_counts) == 1
    assert report.shape_holds(), report.shape
