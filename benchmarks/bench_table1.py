"""Table 1: the TPC-D database (customers / parts / suppliers / partsupp /
lineitem cardinalities) -- regenerates the database and checks that row
counts scale to the paper's numbers."""

import pytest

from repro.storage import Catalog
from repro.tpcd import TPCDGenerator, create_tpcd_schema
from repro.tpcd.schema import paper_row_counts

from conftest import BENCH_SCALE, run_once

#: Paper Table 1 (at the paper's scale factor 0.1).
PAPER_TABLE_1 = {
    "customers": 15_000,
    "parts": 20_000,
    "suppliers": 1_000,
    "partsupp": 80_000,
    "lineitem": 600_000,
}


def test_table1_counts_scale_to_paper():
    counts = paper_row_counts(0.1)
    assert counts == PAPER_TABLE_1


def test_table1_generated_counts_match():
    catalog = Catalog()
    create_tpcd_schema(catalog)
    produced = TPCDGenerator(scale_factor=BENCH_SCALE).generate_all(catalog)
    ratio = BENCH_SCALE / 0.1
    for name, paper_count in PAPER_TABLE_1.items():
        expected = round(paper_count * ratio)
        assert produced[name] == expected, name
    print("\nTable 1 (scaled by %.3f):" % ratio)
    for name, paper_count in PAPER_TABLE_1.items():
        print(f"  {name:<10} paper={paper_count:>7}  generated={produced[name]:>7}")


@pytest.mark.benchmark(group="table1")
def test_bench_generate_database(benchmark):
    def generate():
        catalog = Catalog()
        create_tpcd_schema(catalog)
        return TPCDGenerator(scale_factor=BENCH_SCALE).generate_all(catalog)

    produced = run_once(benchmark, generate)
    assert produced["partsupp"] == produced["parts"] * 4
