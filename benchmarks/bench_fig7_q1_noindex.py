"""Figure 7: Query 1 variant with PartSupp's ps_suppkey index dropped,
"thereby increasing the work performed in each correlated invocation".

Paper claims: magic performs even better compared to NI; Kim comparable
with magic; Dayal worse again.
"""

import pytest

from repro import Database, Strategy
from repro.bench.figures import figure7
from repro.bench.harness import warm
from repro.tpcd import QUERY_1_VARIANT, load_tpcd

from conftest import BENCH_SCALE, run_once

STRATEGIES = [
    Strategy.NESTED_ITERATION,
    Strategy.KIM,
    Strategy.DAYAL,
    Strategy.MAGIC,
    Strategy.MAGIC_OPT,
]


@pytest.fixture(scope="module")
def noindex_db() -> Database:
    db = Database(load_tpcd(scale_factor=BENCH_SCALE))
    db.catalog.table("partsupp").drop_index("ps_suppkey_idx")
    return db


@pytest.mark.benchmark(group="figure7")
@pytest.mark.parametrize("strategy", STRATEGIES, ids=lambda s: s.label)
def test_bench_query1_noindex(benchmark, noindex_db, strategy):
    warm(noindex_db)
    result = run_once(
        benchmark, lambda: noindex_db.execute(QUERY_1_VARIANT, strategy=strategy)
    )
    assert len(result.rows) > 0


def test_figure7_report():
    report = figure7(scale_factor=BENCH_SCALE)
    report.print()
    row_counts = {r.n_rows for r in report.results if r.applicable}
    assert len(row_counts) == 1
    assert report.shape_holds(), report.shape
