"""Overload-control contracts: zero cost when off, goodput when on.

``QueryService(overload=None)`` must preserve the seed FIFO service
exactly -- structurally (the overload machinery is provably never
touched) and in wall-clock terms (the submit path pays nothing for the
feature it did not enable). With the layer on, the phased overload soak
must turn contention into within-deadline goodput; the full gated
comparison runs in CI via ``python -m repro soak --overload``, so the
benchmark here is a compressed, informational run.
"""

import statistics
import time

import pytest

from repro import Database, QueryService
from repro.serve import overload as overload_module
from repro.serve import service as service_module
from repro.serve.overload import OverloadConfig
from repro.serve.soak import OverloadPhase, run_overload_soak
from repro.tpcd import EMP_DEPT_QUERY, load_empdept

#: The disabled path may not regress past half again the enabled one
#: (generous: the enabled path does strictly more work per submit).
OVERHEAD_TOLERANCE = 1.5
ROUNDS = 7
BATCH = 32


@pytest.fixture(scope="module")
def empdept_db() -> Database:
    return Database(load_empdept())


def test_disabled_path_never_touches_the_overload_machinery(
    empdept_db, monkeypatch
):
    """Structural zero overhead: booby-trap every overload entry point
    and run a plain service -- ``overload=None`` must not trip one."""

    def boom(*args, **kwargs):  # pragma: no cover - failure path
        raise AssertionError(
            "overload machinery reached with overload=None"
        )

    monkeypatch.setattr(service_module, "fingerprint", boom)
    for name in ("ServiceTimeEstimator", "RetryGovernor",
                 "BrownoutController", "TokenBucket"):
        for attr in ("observe", "estimate", "admit", "take"):
            cls = getattr(overload_module, name)
            if hasattr(cls, attr):
                monkeypatch.setattr(cls, attr, boom)
    with QueryService(empdept_db, workers=2) as service:
        for _ in range(4):
            assert service.submit(
                EMP_DEPT_QUERY, strategy="magic", deadline=30.0,
                priority="low",
            ).result(timeout=30).rows


def _median_batch_seconds(make_service) -> float:
    samples = []
    for _ in range(ROUNDS):
        with make_service() as service:
            start = time.perf_counter()
            tickets = [
                service.submit(EMP_DEPT_QUERY, strategy="magic",
                               deadline=30.0)
                for _ in range(BATCH)
            ]
            for ticket in tickets:
                ticket.result(timeout=30)
            samples.append(time.perf_counter() - start)
    return statistics.median(samples)


def test_disabled_submit_path_costs_nothing(empdept_db):
    """Timing guard: a batch through the plain service must not exceed
    the overload-enabled service by more than the tolerance."""
    disabled = _median_batch_seconds(
        lambda: QueryService(empdept_db, workers=2)
    )
    # Policies neutralised so every submit is admitted: the comparison
    # measures per-submit bookkeeping, not shedding.
    config = OverloadConfig(
        retry_tokens=0, brownout_max_level=0, class_quotas={}
    )
    enabled = _median_batch_seconds(
        lambda: QueryService(empdept_db, workers=2, overload=config)
    )
    assert disabled <= enabled * OVERHEAD_TOLERANCE, (
        f"overload=None submit path regressed: disabled {disabled:.6f}s "
        f"vs enabled {enabled:.6f}s per {BATCH}-query batch"
    )


@pytest.mark.slow
def test_bench_overload_goodput():
    """A compressed phased soak (informational -- the gated comparison
    is the CI ``repro soak --overload`` run): both sides reconcile and
    the adaptive side produces goodput under overload."""
    report = run_overload_soak(
        seed=42, workers=2, max_queue=16, scale=0.002,
        phases=(
            OverloadPhase("warmup", 0.8, 40.0),
            OverloadPhase("overload", 1.5, 250.0),
            OverloadPhase("recovery", 0.5, 20.0),
        ),
        require_win=False,
    )
    assert report.adaptive.violations == []
    assert report.fifo.violations == []
    assert report.adaptive.goodput > 0
    print(
        f"\noverload goodput: adaptive {report.adaptive.goodput} "
        f"({report.adaptive.futile_executions} futile) vs FIFO "
        f"{report.fifo.goodput} ({report.fifo.futile_executions} futile) "
        f"of {report.adaptive.offered} offered"
    )
