"""Reproduction of Complex Query Decorrelation (Seshadri, Pirahesh, Leung - ICDE 1996).

Public entry points: Database, Strategy, Result, plus the execution
guardrails (Limits, ExecutionGuard) and the deterministic fault-injection
registry (FaultRegistry).
"""

from .api import Database, Result, Strategy
from .faults import FaultRegistry
from .guard import ExecutionGuard, Limits

__version__ = "1.0.0"
__all__ = [
    "Database",
    "Result",
    "Strategy",
    "Limits",
    "ExecutionGuard",
    "FaultRegistry",
    "__version__",
]
