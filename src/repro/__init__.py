"""Reproduction of Complex Query Decorrelation (Seshadri, Pirahesh, Leung - ICDE 1996).

Public entry points: Database, Strategy, Result, the execution guardrails
(Limits, ExecutionGuard), the deterministic fault-injection registry
(FaultRegistry), the concurrent query service (QueryService), the span
collector behind EXPLAIN ANALYZE (Tracer), and the continuous
observability surfaces (EventLog, SamplingProfiler, SlowQueryLog).
"""

from .api import Database, Result, Strategy
from .faults import FaultRegistry
from .guard import ExecutionGuard, Limits
from .obs import EventLog, RingSink, SamplingProfiler, SlowQueryLog
from .serve import QueryService, ServiceStats
from .trace import Tracer

__version__ = "1.0.0"
__all__ = [
    "Database",
    "Result",
    "Strategy",
    "Limits",
    "ExecutionGuard",
    "FaultRegistry",
    "QueryService",
    "ServiceStats",
    "Tracer",
    "EventLog",
    "RingSink",
    "SamplingProfiler",
    "SlowQueryLog",
    "__version__",
]
