"""Reproduction of Complex Query Decorrelation (Seshadri, Pirahesh, Leung - ICDE 1996).

Public entry points: Database, Strategy, Result.
"""

from .api import Database, Result, Strategy

__version__ = "1.0.0"
__all__ = ["Database", "Result", "Strategy", "__version__"]
