"""Work counters collected during execution.

The paper reports wall-clock times on 1996 hardware; absolute numbers are
not reproducible, but the *work* that drives them is. Every benchmark in
this repository therefore reports these counters next to wall time:

* ``subquery_invocations`` -- how many times a subquery plan was executed
  from an expression context (the paper quotes these exactly: 6 / 3954 /
  209 invocations for its queries);
* ``rows_scanned`` -- base-table rows read by sequential scans;
* ``index_lookups`` / ``index_rows`` -- probes into indexes and rows fetched;
* ``rows_joined`` -- env combinations produced by join steps;
* ``rows_grouped`` -- input rows consumed by aggregation;
* ``boxes_recomputed`` -- how many times shared (common-subexpression)
  boxes were re-executed, separating Mag from OptMag behaviour;
* ``rows_materialized`` / ``rows_freed`` -- rows written into temp-table
  materialisations (CSE caches, hash-join builds, aggregation work tables)
  and rows released again when the executor drops a materialisation;
* ``peak_rows_materialized`` -- the high-water mark of *live* materialised
  rows (``rows_materialized - rows_freed`` at its maximum over time); this
  is the memory figure bounded by the ``max_rows_materialized`` budget of
  :mod:`repro.guard`.

Merge policy: every counter is cumulative and sums across executions,
except ``peak_rows_materialized`` which is a per-execution high-water mark
and merges by ``max``. The policy is declared per field (``metadata``
``"merge"``) so :meth:`Metrics.__add__` cannot silently mis-merge a future
counter.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields


@dataclass
class Metrics:
    """Work counters for one query execution (see module docstring)."""

    subquery_invocations: int = 0
    rows_scanned: int = 0
    index_lookups: int = 0
    index_rows: int = 0
    rows_joined: int = 0
    rows_grouped: int = 0
    boxes_recomputed: int = 0
    rows_output: int = 0
    rows_materialized: int = 0
    rows_freed: int = 0
    peak_rows_materialized: int = field(default=0, metadata={"merge": "max"})

    def materialize(self, n_rows: int) -> None:
        """Account ``n_rows`` written into a materialisation, maintaining
        the high-water mark of *live* (not yet released) rows."""
        self.rows_materialized += n_rows
        live = self.rows_materialized - self.rows_freed
        if live > self.peak_rows_materialized:
            self.peak_rows_materialized = live

    def release(self, n_rows: int) -> None:
        """Account ``n_rows`` of a materialisation being dropped (a hash
        build discarded after its probe phase, an aggregation work table
        after its groups are emitted, CSE caches at query teardown). The
        live count falls; the high-water mark is untouched."""
        self.rows_freed += n_rows

    @property
    def live_rows_materialized(self) -> int:
        """Materialised rows not yet released (the current memory load)."""
        return self.rows_materialized - self.rows_freed

    def total_work(self) -> int:
        """A single hardware-independent work figure used by benchmarks."""
        return (
            self.rows_scanned
            + self.index_lookups
            + self.index_rows
            + self.rows_joined
            + self.rows_grouped
        )

    def as_dict(self) -> dict[str, int]:
        """All counters (plus total_work) as a plain dict for reporting."""
        result = {f.name: getattr(self, f.name) for f in fields(self)}
        result["total_work"] = self.total_work()
        return result

    def sum_values(self) -> tuple[int, ...]:
        """The sum-merged counters as a tuple, in :data:`SUM_FIELD_NAMES`
        order -- a cheap snapshot for per-operator delta accounting
        (:mod:`repro.trace`)."""
        return tuple(getattr(self, name) for name in SUM_FIELD_NAMES)

    def __add__(self, other: "Metrics") -> "Metrics":
        result = Metrics()
        for f in fields(self):
            a, b = getattr(self, f.name), getattr(other, f.name)
            policy = f.metadata.get("merge", "sum")
            if policy == "sum":
                setattr(result, f.name, a + b)
            elif policy == "max":
                # High-water marks are per-execution: two executions never
                # share live memory, so the merged peak is the larger one.
                setattr(result, f.name, max(a, b))
            else:  # pragma: no cover - declaration error
                raise ValueError(
                    f"unknown merge policy {policy!r} for Metrics.{f.name}"
                )
        return result


#: Counters that merge by summation (everything except high-water marks);
#: the per-operator attribution in :mod:`repro.trace` deltas exactly these.
SUM_FIELD_NAMES: tuple[str, ...] = tuple(
    f.name for f in fields(Metrics) if f.metadata.get("merge", "sum") == "sum"
)
