"""Work counters collected during execution.

The paper reports wall-clock times on 1996 hardware; absolute numbers are
not reproducible, but the *work* that drives them is. Every benchmark in
this repository therefore reports these counters next to wall time:

* ``subquery_invocations`` -- how many times a subquery plan was executed
  from an expression context (the paper quotes these exactly: 6 / 3954 /
  209 invocations for its queries);
* ``rows_scanned`` -- base-table rows read by sequential scans;
* ``index_lookups`` / ``index_rows`` -- probes into indexes and rows fetched;
* ``rows_joined`` -- env combinations produced by join steps;
* ``rows_grouped`` -- input rows consumed by aggregation;
* ``boxes_recomputed`` -- how many times shared (common-subexpression)
  boxes were re-executed, separating Mag from OptMag behaviour;
* ``rows_materialized`` / ``peak_rows_materialized`` -- rows written into
  temp-table materialisations (CSE caches), cumulative and high-water;
  these drive the ``max_rows_materialized`` memory budget of
  :mod:`repro.guard`.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class Metrics:
    """Work counters for one query execution (see module docstring)."""

    subquery_invocations: int = 0
    rows_scanned: int = 0
    index_lookups: int = 0
    index_rows: int = 0
    rows_joined: int = 0
    rows_grouped: int = 0
    boxes_recomputed: int = 0
    rows_output: int = 0
    rows_materialized: int = 0
    peak_rows_materialized: int = 0

    def materialize(self, n_rows: int) -> None:
        """Account ``n_rows`` written into a materialisation, maintaining
        the high-water mark."""
        self.rows_materialized += n_rows
        if self.rows_materialized > self.peak_rows_materialized:
            self.peak_rows_materialized = self.rows_materialized

    def total_work(self) -> int:
        """A single hardware-independent work figure used by benchmarks."""
        return (
            self.rows_scanned
            + self.index_lookups
            + self.index_rows
            + self.rows_joined
            + self.rows_grouped
        )

    def as_dict(self) -> dict[str, int]:
        """All counters (plus total_work) as a plain dict for reporting."""
        return {
            "subquery_invocations": self.subquery_invocations,
            "rows_scanned": self.rows_scanned,
            "index_lookups": self.index_lookups,
            "index_rows": self.index_rows,
            "rows_joined": self.rows_joined,
            "rows_grouped": self.rows_grouped,
            "boxes_recomputed": self.boxes_recomputed,
            "rows_output": self.rows_output,
            "rows_materialized": self.rows_materialized,
            "peak_rows_materialized": self.peak_rows_materialized,
            "total_work": self.total_work(),
        }

    def __add__(self, other: "Metrics") -> "Metrics":
        result = Metrics()
        for name in vars(result):
            setattr(result, name, getattr(self, name) + getattr(other, name))
        # The high-water mark does not accumulate across executions.
        result.peak_rows_materialized = max(
            self.peak_rows_materialized, other.peak_rows_materialized
        )
        return result
