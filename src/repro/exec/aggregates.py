"""SQL aggregate function implementations (NULL-aware, DISTINCT-aware)."""

from __future__ import annotations

from typing import Any, Iterable, Optional

from ..errors import ExecutionError
from ..types import sort_key


def _non_null(values: Iterable[Any], distinct: bool) -> list[Any]:
    kept = [v for v in values if v is not None]
    if distinct:
        seen: set = set()
        unique = []
        for v in kept:
            if v not in seen:
                seen.add(v)
                unique.append(v)
        return unique
    return kept


def agg_count_star(n_rows: int) -> int:
    """COUNT(*): the number of rows, NULLs and all."""
    return n_rows


def agg_count(values: Iterable[Any], distinct: bool = False) -> int:
    """COUNT(x): non-NULL values (optionally distinct)."""
    return len(_non_null(values, distinct))


def agg_sum(values: Iterable[Any], distinct: bool = False) -> Any:
    """SUM: NULL over an empty/all-NULL input (the COUNT-bug sibling)."""
    kept = _non_null(values, distinct)
    if not kept:
        return None
    return sum(kept)


def agg_avg(values: Iterable[Any], distinct: bool = False) -> Any:
    """AVG: arithmetic mean of non-NULL values, NULL when there are none."""
    kept = _non_null(values, distinct)
    if not kept:
        return None
    return sum(kept) / len(kept)


def agg_min(values: Iterable[Any], distinct: bool = False) -> Any:
    """MIN over non-NULL values; NULL when there are none."""
    kept = _non_null(values, distinct)
    if not kept:
        return None
    return min(kept, key=sort_key)


def agg_max(values: Iterable[Any], distinct: bool = False) -> Any:
    """MAX over non-NULL values; NULL when there are none."""
    kept = _non_null(values, distinct)
    if not kept:
        return None
    return max(kept, key=sort_key)


def compute_aggregate(
    func: str, values: Optional[list[Any]], n_rows: int, distinct: bool,
    guard=None,
) -> Any:
    """Dispatch one aggregate; ``values`` is None for COUNT(*).

    ``guard`` (a :class:`repro.guard.ExecutionGuard`) makes aggregation over
    large groups a cooperative cancellation point too.
    """
    if guard is not None:
        guard.check()
    if values is None:
        if func != "count":
            raise ExecutionError(f"{func}(*) is not a valid aggregate")
        return agg_count_star(n_rows)
    if func == "count":
        return agg_count(values, distinct)
    if func == "sum":
        return agg_sum(values, distinct)
    if func == "avg":
        return agg_avg(values, distinct)
    if func == "min":
        return agg_min(values, distinct)
    if func == "max":
        return agg_max(values, distinct)
    raise ExecutionError(f"unknown aggregate function {func!r}")
