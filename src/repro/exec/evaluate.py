"""Row-context expression evaluation with SQL three-valued logic.

The evaluator works over an :class:`Env` -- the bindings of quantifiers to
current rows. Subquery expression nodes are evaluated by running the nested
box through the executor with the current env as the outer environment;
this *is* nested iteration, and every such run is counted in
``metrics.subquery_invocations``. Scalar subqueries whose values were
pre-computed by a ``SubqueryEvalStep`` are read from the env cache instead.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Optional

from ..errors import ExecutionError
from ..qgm.expr import (
    BoxExists,
    BoxInSubquery,
    BoxQuantifiedComparison,
    BoxScalarSubquery,
    ColumnRef,
)
from ..sql import ast
from ..types import (
    ARITHMETIC,
    COMPARISONS,
    Truth,
    is_true,
    sql_like,
    tv_and,
    tv_not,
    tv_or,
)

if TYPE_CHECKING:  # pragma: no cover
    from .executor import ExecutionContext


class Env:
    """Quantifier bindings plus cached scalar-subquery values."""

    __slots__ = ("bindings", "values")

    def __init__(self, bindings: Optional[dict] = None, values: Optional[dict] = None):
        self.bindings: dict = bindings if bindings is not None else {}
        self.values: dict = values if values is not None else {}

    def bind(self, quantifier, row: tuple) -> "Env":
        """A new Env extending this one with ``quantifier -> row``."""
        new_bindings = dict(self.bindings)
        new_bindings[quantifier] = row
        return Env(new_bindings, self.values)

    def with_value(self, key: int, value: Any) -> "Env":
        """A new Env caching a pre-computed scalar subquery value."""
        new_values = dict(self.values)
        new_values[key] = value
        return Env(self.bindings, new_values)


def evaluate(expr: ast.Expr, env: Env, ctx: "ExecutionContext") -> Any:
    """Evaluate ``expr`` to a SQL value (``None`` = NULL / UNKNOWN)."""
    if isinstance(expr, ast.Literal):
        return expr.value
    if isinstance(expr, ColumnRef):
        row = env.bindings.get(expr.quantifier)
        if row is None:
            raise ExecutionError(
                f"unbound quantifier {expr.quantifier.name!r} while evaluating "
                f"{expr!r}"
            )
        return row[ctx.column_position(expr.quantifier.box, expr.column)]
    if isinstance(expr, ast.Parameter):
        try:
            return ctx.params[expr.index]
        except IndexError:
            raise ExecutionError(
                f"unbound parameter ?{expr.index} "
                f"({len(ctx.params)} value(s) supplied)"
            ) from None
    if isinstance(expr, ast.BinaryOp):
        left = evaluate(expr.left, env, ctx)
        right = evaluate(expr.right, env, ctx)
        if expr.op == "||":
            if left is None or right is None:
                return None
            return str(left) + str(right)
        return ARITHMETIC[expr.op](left, right)
    if isinstance(expr, ast.UnaryMinus):
        value = evaluate(expr.operand, env, ctx)
        return None if value is None else -value
    if isinstance(expr, ast.Comparison):
        return COMPARISONS[expr.op](
            evaluate(expr.left, env, ctx), evaluate(expr.right, env, ctx)
        )
    if isinstance(expr, ast.And):
        result: Truth = True
        for item in expr.items:
            result = tv_and(result, evaluate(item, env, ctx))
            if result is False:
                return False
        return result
    if isinstance(expr, ast.Or):
        result = False
        for item in expr.items:
            result = tv_or(result, evaluate(item, env, ctx))
            if result is True:
                return True
        return result
    if isinstance(expr, ast.Not):
        return tv_not(evaluate(expr.operand, env, ctx))
    if isinstance(expr, ast.IsNull):
        value = evaluate(expr.operand, env, ctx)
        truth = value is None
        return not truth if expr.negated else truth
    if isinstance(expr, ast.Like):
        truth = sql_like(
            evaluate(expr.operand, env, ctx), evaluate(expr.pattern, env, ctx)
        )
        return tv_not(truth) if expr.negated else truth
    if isinstance(expr, ast.Between):
        value = evaluate(expr.operand, env, ctx)
        low = evaluate(expr.low, env, ctx)
        high = evaluate(expr.high, env, ctx)
        truth = tv_and(COMPARISONS[">="](value, low), COMPARISONS["<="](value, high))
        return tv_not(truth) if expr.negated else truth
    if isinstance(expr, ast.InList):
        value = evaluate(expr.operand, env, ctx)
        truth: Truth = False
        for item in expr.items:
            truth = tv_or(truth, COMPARISONS["="](value, evaluate(item, env, ctx)))
            if truth is True:
                break
        return tv_not(truth) if expr.negated else truth
    if isinstance(expr, ast.Case):
        for condition, value in expr.whens:
            if is_true(evaluate(condition, env, ctx)):
                return evaluate(value, env, ctx)
        if expr.otherwise is not None:
            return evaluate(expr.otherwise, env, ctx)
        return None
    if isinstance(expr, ast.FunctionCall):
        return _call_function(expr, env, ctx)
    if isinstance(expr, BoxScalarSubquery):
        if id(expr) in env.values:
            return env.values[id(expr)]
        return scalar_subquery_value(expr, env, ctx)
    if isinstance(expr, BoxExists):
        truth = _exists(expr, env, ctx)
        return tv_not(truth) if expr.negated else truth
    if isinstance(expr, BoxInSubquery):
        truth = _in_subquery(expr, env, ctx)
        return tv_not(truth) if expr.negated else truth
    if isinstance(expr, BoxQuantifiedComparison):
        return _quantified(expr, env, ctx)
    if isinstance(expr, ast.AggregateCall):
        raise ExecutionError("aggregate call evaluated outside a GROUP BY box")
    raise ExecutionError(f"cannot evaluate expression {expr!r}")


def predicate_holds(expr: ast.Expr, env: Env, ctx: "ExecutionContext") -> bool:
    """WHERE semantics: UNKNOWN does not qualify."""
    return is_true(evaluate(expr, env, ctx))


def scalar_subquery_value(
    node: BoxScalarSubquery, env: Env, ctx: "ExecutionContext"
) -> Any:
    """Run a scalar subquery: 0 rows -> NULL, >1 row -> error."""
    rows = ctx.subquery_rows(node.box, env)
    if len(rows) > 1:
        raise ExecutionError("scalar subquery returned more than one row")
    if not rows:
        return None
    row = rows[0]
    if len(row) != 1:
        raise ExecutionError("scalar subquery must return exactly one column")
    return row[0]


def _exists(node: BoxExists, env: Env, ctx: "ExecutionContext") -> Truth:
    return bool(ctx.subquery_rows(node.box, env, first_only=True))


def _in_subquery(node: BoxInSubquery, env: Env, ctx: "ExecutionContext") -> Truth:
    value = evaluate(node.operand, env, ctx)
    truth: Truth = False
    for row in ctx.subquery_rows(node.box, env):
        truth = tv_or(truth, COMPARISONS["="](value, row[0]))
        if truth is True:
            break
    return truth


def _quantified(
    node: BoxQuantifiedComparison, env: Env, ctx: "ExecutionContext"
) -> Truth:
    value = evaluate(node.operand, env, ctx)
    compare = COMPARISONS[node.op]
    rows = ctx.subquery_rows(node.box, env)
    if node.quantifier_kind == "any":
        truth: Truth = False
        for row in rows:
            truth = tv_or(truth, compare(value, row[0]))
            if truth is True:
                break
        return truth
    truth = True
    for row in rows:
        truth = tv_and(truth, compare(value, row[0]))
        if truth is False:
            break
    return truth


def _call_function(expr: ast.FunctionCall, env: Env, ctx: "ExecutionContext") -> Any:
    name = expr.name.lower()
    if name == "coalesce":
        for arg in expr.args:
            value = evaluate(arg, env, ctx)
            if value is not None:
                return value
        return None
    args = [evaluate(a, env, ctx) for a in expr.args]
    if name == "abs":
        if len(args) != 1:
            raise ExecutionError("abs takes one argument")
        return None if args[0] is None else abs(args[0])
    if name == "nullif":
        if len(args) != 2:
            raise ExecutionError("nullif takes two arguments")
        return None if args[0] == args[1] else args[0]
    if name == "upper":
        return None if args[0] is None else str(args[0]).upper()
    if name == "lower":
        return None if args[0] is None else str(args[0]).lower()
    raise ExecutionError(f"unknown function {expr.name!r}")
