"""Query executor: evaluates QGM graphs with a cost-based mini-planner."""

from .metrics import Metrics
from .executor import ExecutionContext, execute_graph

__all__ = ["Metrics", "ExecutionContext", "execute_graph"]
