"""The QGM interpreter.

Each box kind has an evaluation routine; SPJ boxes are first compiled by the
planner (:mod:`repro.plan.planner`) into a step list that fixes access paths,
join order and correlated-subquery placement. There is exactly **one**
executor: nested iteration and the decorrelated strategies differ only in
the QGM they hand over, which mirrors how the paper compares rewrites inside
a single system (Starburst).

Common-subexpression handling follows the paper:

* boxes with a single parent that are uncorrelated are materialised once per
  query (ordinary temp-table behaviour -- this is what makes the paper's CI
  boxes "repeated correlated selections *on the result* of the decorrelated
  subquery" rather than repeated recomputations);
* boxes with several parents (the supplementary table after magic
  decorrelation) follow ``cse_mode``: ``"recompute"`` re-executes per
  reference -- "the version of Starburst on which the experiments were run
  always recomputes common sub-expressions" (section 5.1) -- while
  ``"materialize"`` computes them once (the paper's hypothesised
  improvement, measured by the ablation benchmark).
"""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

from ..errors import ExecutionError
from ..qgm.analysis import external_column_refs, parent_edges
from ..qgm.model import (
    BaseTableBox,
    Box,
    GroupByBox,
    OuterJoinBox,
    QueryGraph,
    SelectBox,
    SetOpBox,
)
from ..plan.planner import (
    HashJoinStep,
    IndexLookupStep,
    PredicateStep,
    ScanStep,
    SelectPlan,
    SubqueryEvalStep,
    plan_select_box,
    step_label,
)
from ..sql import ast
from ..storage.catalog import Catalog
from ..types import sort_key
from .aggregates import compute_aggregate
from .evaluate import Env, evaluate, predicate_holds, scalar_subquery_value
from .metrics import Metrics

if TYPE_CHECKING:  # pragma: no cover - import cycle avoidance
    from ..faults import FaultRegistry
    from ..guard import ExecutionGuard
    from ..trace import Tracer


def box_label(box: Box) -> str:
    """The short operator name a box carries in traces and plan output."""
    if isinstance(box, BaseTableBox):
        return f"table {box.table_name} [{box.id}]"
    return f"{box.kind} [{box.id}]"


class ExecutionContext:
    """Per-query state: catalog, metrics, plan cache, CSE materialisation.

    ``guard`` (optional) is the cooperative budget checker of
    :mod:`repro.guard`; it is consulted at step granularity so budget trips
    and cancellation are observed within one executor step. ``faults``
    (optional) is the deterministic fault-injection registry of
    :mod:`repro.faults`. ``tracer`` (optional) is the span collector of
    :mod:`repro.trace`, fed one aggregated span per box and per plan step.
    All three default to ``None`` -- the zero-overhead path.
    """

    def __init__(
        self,
        catalog: Catalog,
        root: Box,
        cse_mode: str = "recompute",
        guard: Optional["ExecutionGuard"] = None,
        faults: Optional["FaultRegistry"] = None,
        tracer: Optional["Tracer"] = None,
        params: tuple = (),
    ):
        if cse_mode not in ("recompute", "materialize"):
            raise ExecutionError(f"unknown cse_mode {cse_mode!r}")
        self.catalog = catalog
        self.cse_mode = cse_mode
        #: Bound values for ``ast.Parameter`` placeholders (plan-cache hits
        #: execute a shared parameterized graph with per-query values here).
        self.params = params
        self.metrics = Metrics()
        self.guard = guard
        self.faults = faults
        self.tracer = tracer
        if guard is not None:
            guard.attach(self.metrics)
        if tracer is not None:
            tracer.attach(self.metrics)
        self._root = root
        self._parents = parent_edges(root)
        self._plans: dict[int, SelectPlan] = {}
        self._cache: dict[int, list[tuple]] = {}
        self._correlated: dict[int, bool] = {}
        self._executions: dict[int, int] = {}
        self._colpos: dict[int, dict[str, int]] = {}

    # -- helpers -----------------------------------------------------------

    def checkpoint(self) -> None:
        """One cooperative guardrail check (no-op without a guard)."""
        if self.guard is not None:
            self.guard.check()

    def column_position(self, box: Box, column: str) -> int:
        """Ordinal of ``column`` in ``box``'s output row (cached)."""
        positions = self._colpos.get(box.id)
        if positions is None:
            positions = {name: i for i, name in enumerate(box.output_names())}
            self._colpos[box.id] = positions
        try:
            return positions[column]
        except KeyError:
            raise ExecutionError(
                f"box {box.id} has no output column {column!r}"
            ) from None

    def seed_plans(self, plans: dict) -> None:
        """Pre-populate the per-box plan cache (``{box.id: SelectPlan}``).

        Plan-cache hits seed the plans computed at fill time; the shared
        dict is copied from, never mutated, so one cached entry can serve
        concurrent executions."""
        self._plans.update(plans)

    def plan(self, box: SelectBox) -> SelectPlan:
        """The (cached) physical plan for one SPJ box."""
        plan = self._plans.get(box.id)
        if plan is None:
            if self.faults is not None:
                self.faults.trigger("plan.select", detail=f"box {box.id}")
            plan = plan_select_box(self.catalog, box, guard=self.guard)
            self._plans[box.id] = plan
        return plan

    def is_box_correlated(self, box: Box) -> bool:
        """Does ``box``'s subtree reference quantifiers outside itself?"""
        cached = self._correlated.get(box.id)
        if cached is None:
            cached = bool(external_column_refs(box))
            self._correlated[box.id] = cached
        return cached

    def subquery_rows(
        self, box: Box, env: Env, first_only: bool = False
    ) -> list[tuple]:
        """Execute a subquery box from an expression context (one invocation)."""
        self.metrics.subquery_invocations += 1
        self.checkpoint()
        if self.faults is not None:
            self.faults.trigger("exec.subquery", detail=f"box {box.id}")
        return self.box_rows(box, env)

    # -- box dispatch ------------------------------------------------------

    def box_rows(self, box: Box, env: Env) -> list[tuple]:
        """The output rows of ``box`` under ``env``, with CSE caching."""
        correlated = self.is_box_correlated(box)
        if not correlated:
            cached = self._cache.get(box.id)
            if cached is not None:
                if self.tracer is not None:
                    self.tracer.cache_hit(
                        ("box", box.id), box_label(box), "operator"
                    )
                return cached
        tracer = self.tracer
        if tracer is None:
            return self._execute_box(box, env, correlated)
        frame = tracer.begin(("box", box.id), box_label(box), "operator")
        rows: Optional[list[tuple]] = None
        try:
            rows = self._execute_box(box, env, correlated)
            return rows
        finally:
            tracer.end(frame, rows_out=0 if rows is None else len(rows))

    def _execute_box(
        self, box: Box, env: Env, correlated: bool
    ) -> list[tuple]:
        if not isinstance(box, BaseTableBox):
            count = self._executions.get(box.id, 0) + 1
            self._executions[box.id] = count
            if count > 1:
                self.metrics.boxes_recomputed += 1
        rows = self._compute(box, env)
        if not correlated and not isinstance(box, BaseTableBox) and (
            len(self._parents.get(box.id, ())) <= 1
            or self.cse_mode == "materialize"
            or self._forces_materialisation(box)
        ):
            self._cache[box.id] = rows
            self.metrics.materialize(len(rows))
            self.checkpoint()
        return rows

    def release_materializations(self) -> None:
        """Drop every CSE/temp cache, releasing its rows from the live
        materialisation count -- query teardown (the metrics keep the
        cumulative and high-water figures)."""
        for rows in self._cache.values():
            self.metrics.release(len(rows))
        self._cache.clear()

    @staticmethod
    def _forces_materialisation(box: Box) -> bool:
        """Boxes whose operator must materialise its result anyway
        (duplicate elimination, grouping, set operations): re-reading that
        temp is free in any engine, so shared references are served from it
        even under ``cse_mode="recompute"``. The paper's recompute problem
        concerns *streamable* common subexpressions -- specifically the
        supplementary SPJ box ("the common sub-expression formed by the
        supplementary table"), which this predicate deliberately excludes.
        """
        if isinstance(box, (GroupByBox, SetOpBox)):
            return True
        return isinstance(box, SelectBox) and box.distinct

    def _compute(self, box: Box, env: Env) -> list[tuple]:
        if isinstance(box, BaseTableBox):
            return self._rows_base(box)
        if isinstance(box, SelectBox):
            return self._rows_select(box, env)
        if isinstance(box, GroupByBox):
            return self._rows_groupby(box, env)
        if isinstance(box, SetOpBox):
            return self._rows_setop(box, env)
        if isinstance(box, OuterJoinBox):
            return self._rows_outerjoin(box, env)
        raise ExecutionError(f"cannot execute box kind {box.kind!r}")

    # -- base table --------------------------------------------------------

    def _rows_base(self, box: BaseTableBox) -> list[tuple]:
        if self.faults is not None:
            self.faults.trigger("storage.scan", detail=box.table_name)
        table = self.catalog.table(box.table_name)
        self.metrics.rows_scanned += len(table)
        self.checkpoint()
        return table.rows

    # -- SPJ ------------------------------------------------------------------

    def _rows_select(self, box: SelectBox, outer_env: Env) -> list[tuple]:
        plan = self.plan(box)
        tracer = self.tracer
        envs: list[Env] = [outer_env]
        for index, step in enumerate(plan.steps):
            if not envs:
                break
            if tracer is None:
                envs = self._apply_step(box, step, envs, outer_env)
                continue
            frame = tracer.begin(
                ("step", box.id, index), step_label(step), "step",
                rows_in=len(envs),
            )
            out: Optional[list[Env]] = None
            try:
                out = self._apply_step(box, step, envs, outer_env)
                envs = out
            finally:
                tracer.end(frame, rows_out=0 if out is None else len(out))
        rows = [
            tuple(evaluate(output.expr, env, self) for output in box.outputs)
            for env in envs
        ]
        if box.distinct:
            rows = _dedupe(rows)
        return rows

    def _apply_step(
        self, box: SelectBox, step, envs: list[Env], outer_env: Env
    ) -> list[Env]:
        self.checkpoint()
        if isinstance(step, ScanStep):
            q = step.quantifier
            if self.faults is not None:
                self.faults.trigger("exec.join", detail=f"scan {q.name}")
            if step.correlated_to_self:
                result: list[Env] = []
                for env in envs:
                    self.metrics.subquery_invocations += 1
                    child_rows = self.box_rows(q.box, env)
                    self.metrics.rows_joined += len(child_rows)
                    result.extend(env.bind(q, row) for row in child_rows)
                return result
            child_rows = self.box_rows(q.box, outer_env)
            self.metrics.rows_joined += len(child_rows) * len(envs)
            return [env.bind(q, row) for env in envs for row in child_rows]

        if isinstance(step, IndexLookupStep):
            q = step.quantifier
            if self.faults is not None:
                self.faults.trigger(
                    "storage.index_lookup", detail=step.index_name
                )
            table = self.catalog.table(q.box.table_name)
            index = table.indexes.get(step.index_name)
            if index is None:
                raise ExecutionError(
                    f"index {step.index_name!r} disappeared during execution"
                )
            result = []
            for env in envs:
                key_values = [evaluate(e, env, self) for e in step.key_exprs]
                key = key_values[0] if len(key_values) == 1 else tuple(key_values)
                self.metrics.index_lookups += 1
                row_ids = index.lookup(key)
                self.metrics.index_rows += len(row_ids)
                result.extend(env.bind(q, table.fetch(rid)) for rid in row_ids)
            return result

        if isinstance(step, HashJoinStep):
            q = step.quantifier
            if self.faults is not None:
                self.faults.trigger("exec.join", detail=f"hash join {q.name}")
            null_safe = step.null_safe or (False,) * len(step.build_exprs)
            child_rows = self.box_rows(q.box, outer_env)
            buckets: dict[tuple, list[tuple]] = {}
            n_built = 0
            for row in child_rows:
                row_env = outer_env.bind(q, row)
                key = _join_key(
                    [evaluate(e, row_env, self) for e in step.build_exprs],
                    null_safe,
                )
                if key is None:
                    continue
                buckets.setdefault(key, []).append(row)
                n_built += 1
            # The build side is a transient materialisation: it lives for
            # the probe phase only, so it counts against the live/high-water
            # figures and is released when the step completes.
            self.metrics.materialize(n_built)
            self.checkpoint()
            try:
                result = []
                for env in envs:
                    key = _join_key(
                        [evaluate(e, env, self) for e in step.probe_exprs],
                        null_safe,
                    )
                    if key is None:
                        continue
                    matches = buckets.get(key, ())
                    self.metrics.rows_joined += len(matches)
                    result.extend(env.bind(q, row) for row in matches)
                return result
            finally:
                self.metrics.release(n_built)

        if isinstance(step, PredicateStep):
            return [
                env for env in envs if predicate_holds(step.predicate, env, self)
            ]

        if isinstance(step, SubqueryEvalStep):
            node = step.node
            return [
                env.with_value(id(node), scalar_subquery_value(node, env, self))
                for env in envs
            ]

        raise ExecutionError(f"unknown plan step {step!r}")

    # -- GROUP BY ---------------------------------------------------------------

    def _rows_groupby(self, box: GroupByBox, env: Env) -> list[tuple]:
        q = box.quantifier
        if self.faults is not None:
            self.faults.trigger("exec.group", detail=f"box {box.id}")
        input_rows = self.box_rows(q.box, env)
        self.metrics.rows_grouped += len(input_rows)
        self.checkpoint()

        groups: dict[tuple, list[Env]] = {}
        order: list[tuple] = []
        for row in input_rows:
            row_env = env.bind(q, row)
            key = tuple(evaluate(g, row_env, self) for g in box.group_by)
            if key not in groups:
                groups[key] = []
                order.append(key)
            groups[key].append(row_env)

        if box.is_scalar and not groups:
            groups[()] = []
            order.append(())

        # The grouping work table holds the full input partitioned by key
        # until aggregation finishes -- a transient materialisation.
        self.metrics.materialize(len(input_rows))
        self.checkpoint()
        try:
            rows: list[tuple] = []
            for key in order:
                member_envs = groups[key]
                representative = member_envs[0] if member_envs else env
                values = []
                for output in box.outputs:
                    expr = output.expr
                    if isinstance(expr, ast.AggregateCall):
                        if expr.argument is None:
                            value = compute_aggregate(
                                expr.func, None, len(member_envs), expr.distinct,
                                guard=self.guard,
                            )
                        else:
                            arg_values = [
                                evaluate(expr.argument, e, self)
                                for e in member_envs
                            ]
                            value = compute_aggregate(
                                expr.func, arg_values, len(member_envs),
                                expr.distinct, guard=self.guard,
                            )
                    else:
                        value = evaluate(expr, representative, self)
                    values.append(value)
                rows.append(tuple(values))
            return rows
        finally:
            self.metrics.release(len(input_rows))

    # -- set operations ------------------------------------------------------

    def _rows_setop(self, box: SetOpBox, env: Env) -> list[tuple]:
        from collections import Counter

        child_rows = [self.box_rows(q.box, env) for q in box.quantifiers]
        if box.op == "union":
            merged: list[tuple] = []
            for rows in child_rows:
                merged.extend(rows)
            return merged if box.all else _dedupe(merged)
        if box.op == "intersect":
            if box.all:
                # Bag intersection: min of multiplicities.
                counts = Counter(child_rows[0])
                for rows in child_rows[1:]:
                    other = Counter(rows)
                    counts = Counter(
                        {r: min(n, other[r]) for r, n in counts.items() if r in other}
                    )
                result: list[tuple] = []
                for row in child_rows[0]:
                    if counts.get(row, 0) > 0:
                        counts[row] -= 1
                        result.append(row)
                return result
            common = set(child_rows[0])
            for rows in child_rows[1:]:
                common &= set(rows)
            return _dedupe([r for r in child_rows[0] if r in common])
        if box.op == "except":
            if box.all:
                # Bag difference: multiplicities subtract.
                removed_counts = Counter()
                for rows in child_rows[1:]:
                    removed_counts.update(rows)
                result = []
                for row in child_rows[0]:
                    if removed_counts.get(row, 0) > 0:
                        removed_counts[row] -= 1
                    else:
                        result.append(row)
                return result
            removed = set()
            for rows in child_rows[1:]:
                removed |= set(rows)
            return _dedupe([r for r in child_rows[0] if r not in removed])
        raise ExecutionError(f"unknown set operation {box.op!r}")

    # -- outer join -----------------------------------------------------------

    def _rows_outerjoin(self, box: OuterJoinBox, env: Env) -> list[tuple]:
        left_q, right_q = box.preserved, box.null_producing
        left_rows = self.box_rows(left_q.box, env)
        right_rows = self.box_rows(right_q.box, env)
        null_row = (None,) * len(right_q.box.output_names())

        equi = _equi_condition(box)
        rows: list[tuple] = []
        if equi is not None:
            left_keys, right_keys, null_safe = equi
            buckets: dict[tuple, list[tuple]] = {}
            n_built = 0
            for row in right_rows:
                row_env = env.bind(right_q, row)
                key = _join_key(
                    [evaluate(e, row_env, self) for e in right_keys], null_safe
                )
                if key is None:
                    continue
                buckets.setdefault(key, []).append(row)
                n_built += 1
            # Transient build-side materialisation, as in HashJoinStep.
            self.metrics.materialize(n_built)
            self.checkpoint()
            try:
                for lrow in left_rows:
                    lenv = env.bind(left_q, lrow)
                    key = _join_key(
                        [evaluate(e, lenv, self) for e in left_keys], null_safe
                    )
                    matches = [] if key is None else buckets.get(key, [])
                    matched = False
                    for rrow in matches:
                        combined = lenv.bind(right_q, rrow)
                        if box.condition is None or predicate_holds(
                            box.condition, combined, self
                        ):
                            matched = True
                            self.metrics.rows_joined += 1
                            rows.append(self._project_oj(box, combined))
                    if not matched:
                        rows.append(
                            self._project_oj(box, lenv.bind(right_q, null_row))
                        )
            finally:
                self.metrics.release(n_built)
        else:
            for lrow in left_rows:
                lenv = env.bind(left_q, lrow)
                matched = False
                for rrow in right_rows:
                    combined = lenv.bind(right_q, rrow)
                    if box.condition is None or predicate_holds(
                        box.condition, combined, self
                    ):
                        matched = True
                        self.metrics.rows_joined += 1
                        rows.append(self._project_oj(box, combined))
                if not matched:
                    rows.append(self._project_oj(box, lenv.bind(right_q, null_row)))
        return rows

    def _project_oj(self, box: OuterJoinBox, env: Env) -> tuple:
        return tuple(evaluate(o.expr, env, self) for o in box.outputs)


class _NullKey:
    """Sentinel standing in for NULL in null-safe join keys."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover
        return "<NULL>"


_NULL_KEY = _NullKey()


def _join_key(values: list, null_safe: tuple[bool, ...]):
    """Hashable join key; None when any non-null-safe component is NULL."""
    key = []
    for value, safe in zip(values, null_safe):
        if value is None:
            if not safe:
                return None
            key.append(_NULL_KEY)
        else:
            key.append(value)
    return tuple(key)


def _dedupe(rows: list[tuple]) -> list[tuple]:
    seen: set[tuple] = set()
    result = []
    for row in rows:
        if row not in seen:
            seen.add(row)
            result.append(row)
    return result


def _equi_condition(box: OuterJoinBox):
    """Split the ON condition into hashable equi-keys when it is a
    conjunction of (possibly null-safe) equalities between the two sides;
    None otherwise. Returns (left_keys, right_keys, null_safe_flags)."""
    from ..qgm.expr import column_refs, conjuncts

    if box.condition is None:
        return None
    left_keys: list[ast.Expr] = []
    right_keys: list[ast.Expr] = []
    null_safe: list[bool] = []
    for conjunct in conjuncts(box.condition):
        if not (
            isinstance(conjunct, ast.Comparison)
            and conjunct.op in ("=", "<=>")
        ):
            return None
        sides = {}
        for expr in (conjunct.left, conjunct.right):
            quantifiers = {id(r.quantifier) for r in column_refs(expr)}
            if quantifiers == {id(box.preserved)}:
                sides["left"] = expr
            elif quantifiers == {id(box.null_producing)}:
                sides["right"] = expr
            else:
                return None
        if set(sides) != {"left", "right"}:
            return None
        left_keys.append(sides["left"])
        right_keys.append(sides["right"])
        null_safe.append(conjunct.op == "<=>")
    if not left_keys:
        return None
    return tuple(left_keys), tuple(right_keys), tuple(null_safe)


def execute_graph(
    graph: QueryGraph,
    catalog: Catalog,
    cse_mode: str = "recompute",
    ctx: Optional[ExecutionContext] = None,
    limits=None,
    guard: Optional["ExecutionGuard"] = None,
    faults: Optional["FaultRegistry"] = None,
    tracer: Optional["Tracer"] = None,
) -> tuple[list[tuple], Metrics]:
    """Execute a QGM query graph; returns (rows, metrics).

    ``limits`` (a :class:`repro.guard.Limits`) builds a fresh guard for this
    execution; alternatively pass a pre-built ``guard`` (e.g. to cancel the
    query from another thread). ``faults`` enables deterministic fault
    injection, ``tracer`` per-operator span collection. All default to
    ``None`` -- no overhead.
    """
    if ctx is None:
        if guard is None and limits is not None:
            from ..guard import guard_for

            guard = guard_for(limits)
        ctx = ExecutionContext(
            catalog, graph.root, cse_mode,
            guard=guard, faults=faults, tracer=tracer,
        )
    if ctx.tracer is None:
        try:
            rows = _run_graph(graph, ctx)
        finally:
            ctx.release_materializations()
        return rows, ctx.metrics
    # Root "query" span: wraps the whole execution (including ORDER BY /
    # LIMIT / projection and the rows_output bump) so the exclusive
    # per-span deltas telescope to the final Metrics totals exactly.
    frame = ctx.tracer.begin(("query",), "query", "query")
    rows = None
    try:
        rows = _run_graph(graph, ctx)
        return rows, ctx.metrics
    finally:
        ctx.release_materializations()
        ctx.tracer.end(frame, rows_out=0 if rows is None else len(rows))


def _run_graph(graph: QueryGraph, ctx: ExecutionContext) -> list[tuple]:
    ctx.checkpoint()
    rows = list(ctx.box_rows(graph.root, Env()))
    if graph.order_by:
        rows.sort(
            key=lambda row: tuple(
                _order_key(row[pos], desc) for pos, desc in graph.order_by
            )
        )
    if graph.limit is not None:
        rows = rows[: graph.limit]
    if graph.visible_columns is not None:
        rows = [row[: graph.visible_columns] for row in rows]
    ctx.metrics.rows_output += len(rows)
    return rows


class _Reversed:
    """Inverts comparison order for DESC sort keys."""

    __slots__ = ("key",)

    def __init__(self, key):
        self.key = key

    def __lt__(self, other):
        return other.key < self.key

    def __eq__(self, other):
        return other.key == self.key


def _order_key(value, descending: bool):
    key = sort_key(value)
    return _Reversed(key) if descending else key
