"""QGM consistency validation.

The paper (section 3) requires that "each rule application should leave the
QGM in a consistent state, because the query rewrite phase may be terminated
at any point". This validator defines what *consistent* means for this
engine and is called by tests after every individual rewrite step.

Checked invariants:

1. every quantifier's box is reachable and each quantifier is owned by
   exactly one box;
2. every ColumnRef targets an existing output column of its quantifier's box;
3. every ColumnRef's quantifier is *visible* at the point of use: owned by
   the box containing the expression, or by an ancestor box (a correlation);
4. GroupBy boxes only aggregate over their single input quantifier and every
   output is a group expression or an aggregate;
5. SetOp arms have matching arities;
6. output column names are unique within a box;
7. base tables referenced by BaseTableBox exist in the catalog (if given).
"""

from __future__ import annotations

from typing import Optional

from ..errors import QGMConsistencyError
from ..sql import ast
from ..storage.catalog import Catalog
from .analysis import box_children, iter_boxes, quantifier_owner_map
from .expr import ColumnRef, contains_aggregate, walk_expr
from .model import (
    BaseTableBox,
    Box,
    GroupByBox,
    QueryGraph,
    SelectBox,
    SetOpBox,
)


def _fail(box: Box, message: str) -> None:
    raise QGMConsistencyError(f"box {box.id} ({box.kind}): {message}")


def validate_graph(graph: QueryGraph | Box, catalog: Optional[Catalog] = None) -> None:
    """Validate the whole graph; raises :class:`QGMConsistencyError`."""
    root = graph.root if isinstance(graph, QueryGraph) else graph
    boxes = list(iter_boxes(root))
    owners = quantifier_owner_map(root)
    # Reverse edges, computed once for the whole graph: validation runs after
    # every rewrite step under REPRO_VALIDATE, so rebuilding the parent map
    # per box (O(boxes^2)) would dominate the validator's cost.
    parents: dict[int, list[Box]] = {}
    for box in boxes:
        for child in box_children(box):
            parents.setdefault(child.id, []).append(box)

    # Quantifier ownership is unique by construction of quantifier_owner_map
    # only if no quantifier appears in two boxes' FROM lists; check that.
    seen_quantifiers: dict[int, Box] = {}
    for box in boxes:
        for q in box.child_quantifiers():
            if id(q) in seen_quantifiers and seen_quantifiers[id(q)] is not box:
                _fail(box, f"quantifier {q.name} owned by two boxes")
            seen_quantifiers[id(q)] = box

    for box in boxes:
        _validate_box(box, parents, owners, catalog)

    if isinstance(graph, QueryGraph):
        n_outputs = len(root.output_names())
        for position, _ in graph.order_by:
            if not 0 <= position < n_outputs:
                raise QGMConsistencyError(
                    f"ORDER BY position {position} out of range"
                )


def _validate_box(
    box: Box,
    parents: dict[int, list[Box]],
    owners: dict[int, Box],
    catalog: Optional[Catalog],
) -> None:
    names = box.output_names()
    if len(set(names)) != len(names):
        _fail(box, f"duplicate output names: {names}")

    if isinstance(box, BaseTableBox):
        if catalog is not None:
            if not catalog.has_table(box.table_name):
                _fail(box, f"unknown base table {box.table_name!r}")
            schema_names = catalog.table(box.table_name).schema.names()
            if box.column_names != schema_names:
                _fail(box, "column list does not match table schema")
        return

    if isinstance(box, SetOpBox):
        if len(box.quantifiers) < 2:
            _fail(box, "set operation needs at least two inputs")
        arity = len(box.output_names())
        for q in box.quantifiers:
            if len(q.box.output_names()) != arity:
                _fail(box, "set operation arm arity mismatch")
        return

    # Expression-bearing boxes: check refs.
    visible = _visible_quantifiers(box, parents)
    for expr in box.own_exprs():
        for node in walk_expr(expr):
            if isinstance(node, ColumnRef):
                if id(node.quantifier) not in owners:
                    _fail(box, f"ref {node!r} to unreachable quantifier")
                if id(node.quantifier) not in visible:
                    _fail(
                        box,
                        f"ref {node!r} to quantifier not visible here "
                        "(neither own nor ancestor)",
                    )
                if node.column not in node.quantifier.box.output_names():
                    _fail(
                        box,
                        f"ref {node!r}: no such output column on box "
                        f"{node.quantifier.box.id}",
                    )

    if isinstance(box, GroupByBox):
        for group in box.group_by:
            if contains_aggregate(group):
                _fail(box, "aggregate call in GROUP BY expression")
        for output in box.outputs:
            if contains_aggregate(output.expr):
                if not isinstance(output.expr, ast.AggregateCall):
                    _fail(box, "aggregates must be top-level output expressions")
            else:
                from .builder import expr_equal

                if not any(expr_equal(output.expr, g) for g in box.group_by):
                    _fail(
                        box,
                        f"output {output.name!r} is neither an aggregate nor "
                        "a grouping expression",
                    )
    if isinstance(box, SelectBox):
        for predicate in box.predicates:
            if contains_aggregate(predicate):
                _fail(box, "aggregate call in SPJ predicate")
        for output in box.outputs:
            if contains_aggregate(output.expr):
                _fail(box, "aggregate call in SPJ output")


def _visible_quantifiers(box: Box, parents: dict[int, list[Box]]) -> set[int]:
    """Quantifier ids visible inside ``box``: its own plus all ancestors'.

    With shared boxes (post-rewrite DAGs) a box can have several parents; a
    quantifier is visible if *some* ancestor chain provides it, so visibility
    is the union over all parents. ``parents`` is the reverse-edge map
    computed once by :func:`validate_graph`.
    """
    visible: set[int] = {id(q) for q in box.child_quantifiers()}
    frontier = [box]
    seen = {box.id}
    while frontier:
        current = frontier.pop()
        for parent in parents.get(current.id, []):
            if parent.id in seen:
                continue
            seen.add(parent.id)
            visible |= {id(q) for q in parent.child_quantifiers()}
            frontier.append(parent)
    return visible
