"""Textual rendering of a QGM, in the spirit of the paper's figures.

Each box is printed with its kind, quantifiers (with the boxes they range
over), predicates, outputs and -- crucially for this paper -- any correlated
references are annotated with ``^`` so decorrelation progress is visible in
examples and failing-test output.
"""

from __future__ import annotations

from ..sql import ast
from ..sql.printer import _literal
from .analysis import iter_boxes, owned_quantifier_ids
from .expr import (
    BoxExists,
    BoxInSubquery,
    BoxQuantifiedComparison,
    BoxScalarSubquery,
    ColumnRef,
)
from .model import (
    BaseTableBox,
    Box,
    GroupByBox,
    OuterJoinBox,
    QueryGraph,
    SelectBox,
    SetOpBox,
)


def expr_to_text(expr: ast.Expr, own_quantifiers: set[int]) -> str:
    """Render one expression, marking correlated refs with a ``^`` prefix."""

    def render(node: ast.Expr) -> str:
        if isinstance(node, ColumnRef):
            marker = "" if id(node.quantifier) in own_quantifiers else "^"
            return f"{marker}{node.quantifier.name}.{node.column}"
        if isinstance(node, ast.Literal):
            return _literal(node.value)
        if isinstance(node, ast.BinaryOp):
            return f"({render(node.left)} {node.op} {render(node.right)})"
        if isinstance(node, ast.UnaryMinus):
            return f"(-{render(node.operand)})"
        if isinstance(node, ast.Comparison):
            return f"{render(node.left)} {node.op} {render(node.right)}"
        if isinstance(node, ast.And):
            return "(" + " AND ".join(render(i) for i in node.items) + ")"
        if isinstance(node, ast.Or):
            return "(" + " OR ".join(render(i) for i in node.items) + ")"
        if isinstance(node, ast.Not):
            return f"NOT ({render(node.operand)})"
        if isinstance(node, ast.IsNull):
            return f"{render(node.operand)} IS {'NOT ' if node.negated else ''}NULL"
        if isinstance(node, ast.Like):
            return f"{render(node.operand)} LIKE {render(node.pattern)}"
        if isinstance(node, ast.Between):
            return (
                f"{render(node.operand)} BETWEEN {render(node.low)} "
                f"AND {render(node.high)}"
            )
        if isinstance(node, ast.InList):
            return (
                f"{render(node.operand)} IN "
                f"({', '.join(render(i) for i in node.items)})"
            )
        if isinstance(node, ast.Case):
            whens = " ".join(
                f"WHEN {render(c)} THEN {render(v)}" for c, v in node.whens
            )
            otherwise = (
                f" ELSE {render(node.otherwise)}" if node.otherwise else ""
            )
            return f"CASE {whens}{otherwise} END"
        if isinstance(node, ast.FunctionCall):
            return f"{node.name}({', '.join(render(a) for a in node.args)})"
        if isinstance(node, ast.AggregateCall):
            if node.argument is None:
                return "count(*)"
            prefix = "distinct " if node.distinct else ""
            return f"{node.func}({prefix}{render(node.argument)})"
        if isinstance(node, BoxScalarSubquery):
            return f"scalar(box {node.box.id})"
        if isinstance(node, BoxExists):
            return f"{'not ' if node.negated else ''}exists(box {node.box.id})"
        if isinstance(node, BoxInSubquery):
            keyword = "not in" if node.negated else "in"
            return f"{render(node.operand)} {keyword} (box {node.box.id})"
        if isinstance(node, BoxQuantifiedComparison):
            return (
                f"{render(node.operand)} {node.op} "
                f"{node.quantifier_kind}(box {node.box.id})"
            )
        return repr(node)

    return render(expr)


def box_to_text(box: Box) -> list[str]:
    own = owned_quantifier_ids(box)
    lines = [f"[{box.id}] {box.kind.upper()}"]
    if isinstance(box, BaseTableBox):
        lines[0] += f" {box.table_name}({', '.join(box.column_names)})"
        return lines
    for q in box.child_quantifiers():
        lines.append(f"    from {q.name} -> box {q.box.id}")
    if isinstance(box, SelectBox):
        if box.distinct:
            lines[0] += " DISTINCT"
        for predicate in box.predicates:
            lines.append(f"    where {expr_to_text(predicate, own)}")
    if isinstance(box, GroupByBox) and box.group_by:
        rendered = ", ".join(expr_to_text(g, own) for g in box.group_by)
        lines.append(f"    group by {rendered}")
    if isinstance(box, OuterJoinBox):
        condition = (
            expr_to_text(box.condition, own) if box.condition is not None else "TRUE"
        )
        lines.append(f"    on {condition}  (preserved: {box.preserved.name})")
    if isinstance(box, SetOpBox):
        lines[0] += f" {box.op.upper()}{' ALL' if box.all else ''}"
    outputs = getattr(box, "outputs", None)
    if outputs is not None:
        for output in outputs:
            lines.append(f"    out {output.name} = {expr_to_text(output.expr, own)}")
    return lines


def graph_to_text(graph: QueryGraph | Box) -> str:
    """Render every box of the graph, root first."""
    root = graph.root if isinstance(graph, QueryGraph) else graph
    sections: list[str] = []
    for box in iter_boxes(root):
        sections.append("\n".join(box_to_text(box)))
    text = "\n".join(sections)
    if isinstance(graph, QueryGraph) and (graph.order_by or graph.limit is not None):
        extras = []
        if graph.order_by:
            rendered = ", ".join(
                f"#{pos}{' DESC' if desc else ''}" for pos, desc in graph.order_by
            )
            extras.append(f"order by {rendered}")
        if graph.limit is not None:
            extras.append(f"limit {graph.limit}")
        text += "\n" + "; ".join(extras)
    return text
