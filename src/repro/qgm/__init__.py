"""Query Graph Model (QGM) -- the Starburst query representation.

The QGM (Pirahesh, Hellerstein, Hasan: "Extensible/Rule Based Query Rewrite
Optimization in Starburst", SIGMOD 1992) represents a query as a graph of
*boxes* (SELECT/SPJ, GROUP BY, UNION, outer join, base table) connected by
*quantifiers* (the paper's "iterators"). Rewrite rules -- in particular
magic decorrelation -- operate on this graph one box at a time.
"""

from .expr import (
    BoxExists,
    BoxInSubquery,
    BoxQuantifiedComparison,
    BoxScalarSubquery,
    ColumnRef,
    box_subquery_exprs,
    column_refs,
    contains_aggregate,
    replace_column_refs,
    transform_expr,
)
from .model import (
    BaseTableBox,
    Box,
    GroupByBox,
    OuterJoinBox,
    OutputColumn,
    Quantifier,
    QueryGraph,
    SelectBox,
    SetOpBox,
)
from .builder import build_qgm
from .analysis import CorrelationInfo, analyze_correlations, iter_boxes, parent_edges
from .validate import validate_graph
from .pretty import graph_to_text

__all__ = [
    "ColumnRef",
    "BoxScalarSubquery",
    "BoxExists",
    "BoxInSubquery",
    "BoxQuantifiedComparison",
    "transform_expr",
    "replace_column_refs",
    "column_refs",
    "box_subquery_exprs",
    "contains_aggregate",
    "Box",
    "SelectBox",
    "GroupByBox",
    "SetOpBox",
    "OuterJoinBox",
    "BaseTableBox",
    "Quantifier",
    "OutputColumn",
    "QueryGraph",
    "build_qgm",
    "iter_boxes",
    "parent_edges",
    "analyze_correlations",
    "CorrelationInfo",
    "validate_graph",
    "graph_to_text",
]
