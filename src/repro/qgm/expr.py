"""Resolved expression nodes and generic expression utilities.

After binding, the parser's ``Name`` nodes become :class:`ColumnRef` nodes
(a reference to a column of a specific quantifier) and the AST subquery
expressions become ``Box*`` nodes holding a reference to a QGM box.

The generic :func:`transform_expr` walker rebuilds expression trees with a
node-level substitution function; all rewrite rules are written in terms of
it, so adding an expression node type only requires extending this module.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterator, Optional

from ..sql import ast

if TYPE_CHECKING:  # pragma: no cover - import cycle avoidance
    from .model import Box, Quantifier


@dataclass(frozen=True, eq=False)
class ColumnRef(ast.Expr):
    """A resolved reference to ``quantifier.column``.

    Equality is identity-based: two refs to the same quantifier/column are
    interchangeable but rewrites rely on object identity of quantifiers, so
    value comparisons go through :meth:`same`.
    """

    quantifier: "Quantifier"
    column: str

    def same(self, other: "ColumnRef") -> bool:
        return self.quantifier is other.quantifier and self.column == other.column

    def __repr__(self) -> str:
        return f"{self.quantifier.name}.{self.column}"


@dataclass(frozen=True, eq=False)
class BoxScalarSubquery(ast.Expr):
    """A scalar subquery whose body is a QGM box (must yield <= 1 row)."""

    box: "Box"


@dataclass(frozen=True, eq=False)
class BoxExists(ast.Expr):
    """``[NOT] EXISTS`` over a QGM box."""

    box: "Box"
    negated: bool = False


@dataclass(frozen=True, eq=False)
class BoxInSubquery(ast.Expr):
    """``x [NOT] IN`` over a QGM box producing a single column."""

    operand: ast.Expr
    box: "Box"
    negated: bool = False

    def children(self):
        return (self.operand,)


@dataclass(frozen=True, eq=False)
class BoxQuantifiedComparison(ast.Expr):
    """``x <op> ANY/ALL`` over a QGM box producing a single column."""

    op: str
    operand: ast.Expr
    quantifier_kind: str  # "any" | "all"
    box: "Box"

    def children(self):
        return (self.operand,)


#: Expression nodes that carry a nested QGM box.
BOX_SUBQUERY_TYPES = (
    BoxScalarSubquery,
    BoxExists,
    BoxInSubquery,
    BoxQuantifiedComparison,
)


def transform_expr(expr: ast.Expr, fn: Callable[[ast.Expr], Optional[ast.Expr]]) -> ast.Expr:
    """Rebuild ``expr`` bottom-up; ``fn`` may return a replacement node.

    ``fn`` is applied to every node *after* its children were transformed;
    returning ``None`` keeps the (possibly rebuilt) node. Subquery bodies
    (boxes) are not entered -- rewrites address boxes explicitly.
    """

    def rebuild(node: ast.Expr) -> ast.Expr:
        if isinstance(node, ast.BinaryOp):
            node = ast.BinaryOp(node.op, rebuild(node.left), rebuild(node.right))
        elif isinstance(node, ast.UnaryMinus):
            node = ast.UnaryMinus(rebuild(node.operand))
        elif isinstance(node, ast.Comparison):
            node = ast.Comparison(node.op, rebuild(node.left), rebuild(node.right))
        elif isinstance(node, ast.And):
            node = ast.And(tuple(rebuild(i) for i in node.items))
        elif isinstance(node, ast.Or):
            node = ast.Or(tuple(rebuild(i) for i in node.items))
        elif isinstance(node, ast.Not):
            node = ast.Not(rebuild(node.operand))
        elif isinstance(node, ast.IsNull):
            node = ast.IsNull(rebuild(node.operand), node.negated)
        elif isinstance(node, ast.Like):
            node = ast.Like(rebuild(node.operand), rebuild(node.pattern), node.negated)
        elif isinstance(node, ast.Between):
            node = ast.Between(
                rebuild(node.operand), rebuild(node.low), rebuild(node.high), node.negated
            )
        elif isinstance(node, ast.InList):
            node = ast.InList(
                rebuild(node.operand), tuple(rebuild(i) for i in node.items), node.negated
            )
        elif isinstance(node, ast.FunctionCall):
            node = ast.FunctionCall(node.name, tuple(rebuild(a) for a in node.args))
        elif isinstance(node, ast.AggregateCall):
            if node.argument is not None:
                node = ast.AggregateCall(node.func, rebuild(node.argument), node.distinct)
        elif isinstance(node, ast.Case):
            node = ast.Case(
                tuple((rebuild(c), rebuild(v)) for c, v in node.whens),
                None if node.otherwise is None else rebuild(node.otherwise),
            )
        elif isinstance(node, ast.InSubquery):
            node = ast.InSubquery(rebuild(node.operand), node.query, node.negated)
        elif isinstance(node, ast.QuantifiedComparison):
            node = ast.QuantifiedComparison(
                node.op, rebuild(node.operand), node.quantifier, node.query
            )
        elif isinstance(node, BoxInSubquery):
            node = BoxInSubquery(rebuild(node.operand), node.box, node.negated)
        elif isinstance(node, BoxQuantifiedComparison):
            node = BoxQuantifiedComparison(
                node.op, rebuild(node.operand), node.quantifier_kind, node.box
            )
        replacement = fn(node)
        return node if replacement is None else replacement

    return rebuild(expr)


def walk_expr(expr: ast.Expr) -> Iterator[ast.Expr]:
    """Pre-order walk including box-subquery nodes (but not box bodies)."""
    yield expr
    for child in expr.children():
        yield from walk_expr(child)


def column_refs(expr: ast.Expr) -> list[ColumnRef]:
    """All :class:`ColumnRef` nodes in ``expr`` (excluding subquery bodies)."""
    return [node for node in walk_expr(expr) if isinstance(node, ColumnRef)]


def box_subquery_exprs(expr: ast.Expr) -> list[ast.Expr]:
    """All ``Box*`` subquery nodes directly inside ``expr``."""
    return [node for node in walk_expr(expr) if isinstance(node, BOX_SUBQUERY_TYPES)]


def contains_aggregate(expr: ast.Expr) -> bool:
    """Does ``expr`` contain an :class:`~repro.sql.ast.AggregateCall`?"""
    return any(isinstance(node, ast.AggregateCall) for node in walk_expr(expr))


def replace_column_refs(
    expr: ast.Expr, substitute: Callable[[ColumnRef], Optional[ast.Expr]]
) -> ast.Expr:
    """Replace :class:`ColumnRef` nodes; ``substitute`` returns ``None`` to keep."""

    def fn(node: ast.Expr) -> Optional[ast.Expr]:
        if isinstance(node, ColumnRef):
            return substitute(node)
        return None

    return transform_expr(expr, fn)


def redirect_quantifier(
    expr: ast.Expr, old: "Quantifier", new: "Quantifier",
    column_map: Optional[dict[str, str]] = None,
) -> ast.Expr:
    """Retarget refs over quantifier ``old`` to ``new`` (optionally renaming
    columns through ``column_map``). The workhorse of the FEED/ABSORB stages,
    which repeatedly 'modify the destination of correlation so that it gets
    its bindings from Q4 instead of Q1' (paper, section 4.2)."""

    def substitute(ref: ColumnRef) -> Optional[ast.Expr]:
        if ref.quantifier is old:
            column = column_map.get(ref.column, ref.column) if column_map else ref.column
            return ColumnRef(new, column)
        return None

    return replace_column_refs(expr, substitute)


def conjuncts(expr: Optional[ast.Expr]) -> list[ast.Expr]:
    """Flatten a predicate into its top-level AND conjuncts."""
    if expr is None:
        return []
    if isinstance(expr, ast.And):
        result: list[ast.Expr] = []
        for item in expr.items:
            result.extend(conjuncts(item))
        return result
    return [expr]


def conjunction(parts: list[ast.Expr]) -> Optional[ast.Expr]:
    """Combine conjuncts back into one expression (``None`` when empty)."""
    if not parts:
        return None
    if len(parts) == 1:
        return parts[0]
    return ast.And(tuple(parts))
