"""QGM boxes and quantifiers.

Box kinds:

* :class:`BaseTableBox` -- leaf over a catalog table.
* :class:`SelectBox` -- Select-Project-Join (the paper's "SPJ box"):
  a list of quantifiers (FROM), conjunctive predicates (WHERE, possibly
  containing subquery expressions), computed outputs, optional DISTINCT.
* :class:`GroupByBox` -- aggregation over one input quantifier (the paper's
  "Aggregate box", a non-SPJ box).
* :class:`SetOpBox` -- UNION [ALL] / INTERSECT / EXCEPT (non-SPJ).
* :class:`OuterJoinBox` -- left outer join of two quantifiers; introduced by
  explicit ``LEFT OUTER JOIN`` syntax and by decorrelation's COUNT-bug
  removal step.

Boxes form a tree for freshly-built queries; decorrelation deliberately
creates shared boxes (the supplementary common subexpression), after which
the graph is a DAG. Expressions inside a box may reference quantifiers of
ancestor boxes -- those are the *correlations* this whole project is about.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterable, Optional

from ..sql import ast
from .expr import ColumnRef

_box_counter = itertools.count(1)
_quantifier_counter = itertools.count(1)


class Quantifier:
    """A handle on the rows of a box (the paper's *iterator*).

    ``name`` is the user-visible alias (``D``, ``E``, ``Q4``); uniqueness is
    guaranteed by appending a global counter for generated quantifiers.
    """

    def __init__(self, name: str, box: "Box"):
        self.name = name
        self.box = box

    @staticmethod
    def fresh(box: "Box", prefix: str = "q") -> "Quantifier":
        return Quantifier(f"{prefix}{next(_quantifier_counter)}", box)

    def ref(self, column: str) -> ColumnRef:
        """Convenience: a :class:`ColumnRef` to one of this quantifier's columns."""
        return ColumnRef(self, column)

    def refs(self, columns: Iterable[str]) -> list[ColumnRef]:
        return [ColumnRef(self, c) for c in columns]

    def __repr__(self) -> str:
        return f"Quantifier({self.name} over box {self.box.id})"


@dataclass
class OutputColumn:
    """A named output of a box, computed by ``expr`` over the box's inputs."""

    name: str
    expr: ast.Expr


class Box:
    """Base class for QGM boxes."""

    kind = "abstract"
    #: Can this box absorb a magic table directly (paper section 4.4's
    #: AM/NM classification)? SPJ boxes can; aggregates/set-ops feed their
    #: children first.
    accepts_magic = False

    def __init__(self) -> None:
        self.id = next(_box_counter)

    # -- uniform interface -------------------------------------------------

    def output_names(self) -> list[str]:
        raise NotImplementedError

    def child_quantifiers(self) -> list[Quantifier]:
        """Quantifiers this box ranges over (FROM-style children)."""
        raise NotImplementedError

    def own_exprs(self) -> list[ast.Expr]:
        """All expressions evaluated by this box (predicates + outputs)."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}(id={self.id})"


class BaseTableBox(Box):
    """Leaf box over a named base table."""

    kind = "base_table"

    def __init__(self, table_name: str, column_names: list[str]):
        super().__init__()
        self.table_name = table_name.lower()
        self.column_names = [c.lower() for c in column_names]

    def output_names(self) -> list[str]:
        return list(self.column_names)

    def child_quantifiers(self) -> list[Quantifier]:
        return []

    def own_exprs(self) -> list[ast.Expr]:
        return []


class SelectBox(Box):
    """Select-Project-Join box (the paper's SPJ box)."""

    kind = "select"
    accepts_magic = True

    def __init__(
        self,
        quantifiers: Optional[list[Quantifier]] = None,
        predicates: Optional[list[ast.Expr]] = None,
        outputs: Optional[list[OutputColumn]] = None,
        distinct: bool = False,
    ):
        super().__init__()
        self.quantifiers: list[Quantifier] = quantifiers or []
        self.predicates: list[ast.Expr] = predicates or []
        self.outputs: list[OutputColumn] = outputs or []
        self.distinct = distinct

    def output_names(self) -> list[str]:
        return [o.name for o in self.outputs]

    def child_quantifiers(self) -> list[Quantifier]:
        return list(self.quantifiers)

    def own_exprs(self) -> list[ast.Expr]:
        return [*self.predicates, *(o.expr for o in self.outputs)]

    def add_quantifier(self, box: Box, name_prefix: str = "q") -> Quantifier:
        q = Quantifier.fresh(box, name_prefix)
        self.quantifiers.append(q)
        return q


class GroupByBox(Box):
    """Aggregation box: groups its single input and computes aggregates.

    ``group_by`` are expressions over ``quantifier``; every output is either
    one of the group expressions or an aggregate over the input. A GROUP BY
    with no grouping columns is a *scalar* aggregate producing exactly one
    row (the shape of all the paper's correlated subqueries).
    """

    kind = "groupby"

    def __init__(
        self,
        quantifier: Quantifier,
        group_by: Optional[list[ast.Expr]] = None,
        outputs: Optional[list[OutputColumn]] = None,
    ):
        super().__init__()
        self.quantifier = quantifier
        self.group_by: list[ast.Expr] = group_by or []
        self.outputs: list[OutputColumn] = outputs or []

    def output_names(self) -> list[str]:
        return [o.name for o in self.outputs]

    def child_quantifiers(self) -> list[Quantifier]:
        return [self.quantifier]

    def own_exprs(self) -> list[ast.Expr]:
        return [*self.group_by, *(o.expr for o in self.outputs)]

    @property
    def is_scalar(self) -> bool:
        """True when there are no grouping columns (always exactly one row)."""
        return not self.group_by


class SetOpBox(Box):
    """UNION [ALL] / INTERSECT / EXCEPT. Children are matched positionally."""

    kind = "setop"

    def __init__(self, op: str, all: bool, quantifiers: list[Quantifier],
                 output_names: list[str]):
        super().__init__()
        self.op = op  # "union" | "intersect" | "except"
        self.all = all
        self.quantifiers = quantifiers
        self._output_names = [n.lower() for n in output_names]

    def output_names(self) -> list[str]:
        return list(self._output_names)

    def child_quantifiers(self) -> list[Quantifier]:
        return list(self.quantifiers)

    def own_exprs(self) -> list[ast.Expr]:
        return []


class OuterJoinBox(Box):
    """Left outer join: ``preserved LOJ null_producing ON condition``."""

    kind = "outerjoin"

    def __init__(
        self,
        preserved: Quantifier,
        null_producing: Quantifier,
        condition: Optional[ast.Expr],
        outputs: list[OutputColumn],
    ):
        super().__init__()
        self.preserved = preserved
        self.null_producing = null_producing
        self.condition = condition
        self.outputs = outputs

    def output_names(self) -> list[str]:
        return [o.name for o in self.outputs]

    def child_quantifiers(self) -> list[Quantifier]:
        return [self.preserved, self.null_producing]

    def own_exprs(self) -> list[ast.Expr]:
        exprs = [o.expr for o in self.outputs]
        if self.condition is not None:
            exprs.append(self.condition)
        return exprs


@dataclass
class QueryGraph:
    """A complete query: root box plus top-level ORDER BY / LIMIT.

    ``order_by`` entries are ``(output_position, descending)`` pairs over the
    root box's outputs -- ordering is presentation-only in QGM and never
    participates in rewrites.
    """

    root: Box
    order_by: list[tuple[int, bool]] = field(default_factory=list)
    limit: Optional[int] = None
    #: When ORDER BY needs columns that are not in the select list, the
    #: builder appends hidden sort outputs; only the first
    #: ``visible_columns`` outputs are returned to the user.
    visible_columns: Optional[int] = None

    def output_names(self) -> list[str]:
        names = self.root.output_names()
        if self.visible_columns is not None:
            names = names[: self.visible_columns]
        return names


def make_projection_box(
    source: Box, columns: list[str], distinct: bool = False,
    name_prefix: str = "q",
) -> tuple[SelectBox, Quantifier]:
    """A SelectBox projecting ``columns`` from ``source`` (used for magic
    tables and other generated plumbing). Returns the box and its quantifier
    over ``source``."""
    box = SelectBox(distinct=distinct)
    q = box.add_quantifier(source, name_prefix)
    box.outputs = [OutputColumn(c, q.ref(c)) for c in columns]
    return box, q
