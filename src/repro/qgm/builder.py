"""AST -> QGM translation (binding).

Responsibilities:

* name resolution through nested scopes -- a reference that resolves to a
  quantifier of an *outer* block is exactly what the paper calls a
  correlation, and needs no special representation: the ``ColumnRef`` simply
  points at the outer quantifier;
* normalisation of aggregation: ``SELECT ... GROUP BY ... HAVING`` becomes a
  three-box pipeline SPJ -> GroupBy -> SPJ, which is the shape the
  decorrelation algorithm operates on (Figure 1 of the paper);
* view expansion, derived tables (including correlated ones, needed for the
  paper's Query 3), star expansion, explicit inner/outer joins.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..errors import BindError, CatalogError
from ..sql import ast
from ..sql.parser import parse_statement
from ..storage.catalog import Catalog
from .expr import (
    BoxExists,
    BoxInSubquery,
    BoxQuantifiedComparison,
    BoxScalarSubquery,
    ColumnRef,
    column_refs,
    contains_aggregate,
    transform_expr,
    walk_expr,
)
from .model import (
    BaseTableBox,
    Box,
    GroupByBox,
    OuterJoinBox,
    OutputColumn,
    Quantifier,
    QueryGraph,
    SelectBox,
    SetOpBox,
)


@dataclass
class Binding:
    """An alias visible in a scope: a quantifier plus a column-name view.

    ``columns`` maps user-visible column names to the quantifier's actual
    output column names (they differ for outer-join flattening, where both
    sides' columns are exposed through one quantifier with mangled names).
    """

    alias: str
    quantifier: Quantifier
    columns: dict[str, str]  # visible name -> actual output column

    def ref(self, visible: str) -> ColumnRef:
        return ColumnRef(self.quantifier, self.columns[visible])


@dataclass
class Scope:
    """A lexical scope: the bindings of one query block, linked outward."""

    parent: Optional["Scope"] = None
    bindings: list[Binding] = field(default_factory=list)

    def add(self, binding: Binding, span: Optional[ast.Span] = None) -> None:
        if any(b.alias == binding.alias for b in self.bindings):
            raise BindError(f"duplicate alias {binding.alias!r} in FROM", span=span)
        self.bindings.append(binding)

    def resolve_qualified(
        self, alias: str, column: str, span: Optional[ast.Span] = None
    ) -> ColumnRef:
        scope: Optional[Scope] = self
        while scope is not None:
            for binding in scope.bindings:
                if binding.alias == alias:
                    if column not in binding.columns:
                        raise BindError(
                            f"column {column!r} not found in {alias!r}", span=span
                        )
                    return binding.ref(column)
            scope = scope.parent
        raise BindError(f"unknown alias {alias!r}", span=span)

    def resolve_unqualified(
        self, column: str, span: Optional[ast.Span] = None
    ) -> ColumnRef:
        scope: Optional[Scope] = self
        while scope is not None:
            matches = [b for b in scope.bindings if column in b.columns]
            if len(matches) > 1:
                raise BindError(f"ambiguous column {column!r}", span=span)
            if matches:
                return matches[0].ref(column)
            scope = scope.parent
        raise BindError(f"unknown column {column!r}", span=span)


def expr_equal(a: ast.Expr, b: ast.Expr) -> bool:
    """Structural equality treating ColumnRef as (quantifier identity, column)."""
    if isinstance(a, ColumnRef) or isinstance(b, ColumnRef):
        return (
            isinstance(a, ColumnRef)
            and isinstance(b, ColumnRef)
            and a.same(b)
        )
    if type(a) is not type(b):
        return False
    if isinstance(a, ast.Literal):
        return a.value == b.value and type(a.value) is type(b.value)
    children_a, children_b = a.children(), b.children()
    if len(children_a) != len(children_b):
        return False
    # Compare non-child attributes via a shallow field check.
    for attr in ("op", "func", "name", "negated", "distinct", "quantifier_kind"):
        if getattr(a, attr, None) != getattr(b, attr, None):
            return False
    return all(expr_equal(x, y) for x, y in zip(children_a, children_b))


class _Builder:
    """Stateful AST -> QGM translator for one statement."""

    def __init__(self, catalog: Catalog):
        self.catalog = catalog
        self._name_counter = 0
        self._view_stack: list[str] = []

    # -- entry points ------------------------------------------------------

    def build(self, body: ast.QueryBody) -> QueryGraph:
        self._order_result: Optional[list[tuple[int, bool]]] = None
        self._visible_columns: Optional[int] = None
        if isinstance(body, ast.Select):
            box = self.build_select(body, Scope(), top=True)
        else:
            box = self.build_query(body, Scope())
        if self._order_result is not None:
            order_by = self._order_result
        else:
            order_by = self._resolve_order(body, box)
        limit = body.limit if isinstance(body, (ast.Select, ast.SetOp)) else None
        return QueryGraph(
            root=box, order_by=order_by, limit=limit,
            visible_columns=self._visible_columns,
        )

    def build_query(self, body: ast.QueryBody, scope: Scope) -> Box:
        if isinstance(body, ast.Select):
            return self.build_select(body, scope)
        if isinstance(body, ast.SetOp):
            return self.build_setop(body, scope)
        raise BindError(f"cannot build query from {type(body).__name__}")

    # -- set operations ------------------------------------------------------

    def build_setop(self, body: ast.SetOp, scope: Scope) -> Box:
        left = self.build_query(body.left, scope)
        right = self.build_query(body.right, scope)
        left_names = left.output_names()
        right_names = right.output_names()
        if len(left_names) != len(right_names):
            raise BindError(
                f"{body.op.upper()} arms have different arities "
                f"({len(left_names)} vs {len(right_names)})"
            )
        box = SetOpBox(
            body.op, body.all,
            quantifiers=[],
            output_names=left_names,
        )
        box.quantifiers = [Quantifier.fresh(left, "u"), Quantifier.fresh(right, "u")]
        return box

    # -- SELECT blocks -----------------------------------------------------

    def build_select(
        self, select: ast.Select, outer_scope: Scope, top: bool = False
    ) -> Box:
        spj = SelectBox()
        scope = Scope(parent=outer_scope)
        for item in select.from_items:
            self._add_from_item(spj, item, scope)

        where_expr = self._bind(select.where, scope) if select.where else None
        group_exprs = [self._bind(g, scope) for g in select.group_by]
        having_expr = self._bind(select.having, scope) if select.having else None
        select_items = self._expand_stars(select.items, scope)
        bound_items = [
            (self._bind(item.expr, scope), item.alias) for item in select_items
        ]

        from .expr import conjuncts
        spj.predicates.extend(conjuncts(where_expr))

        has_aggregates = any(contains_aggregate(e) for e, _ in bound_items)
        if having_expr is not None and not group_exprs and not contains_aggregate(having_expr) and not has_aggregates:
            raise BindError("HAVING requires GROUP BY or aggregates")
        needs_groupby = bool(group_exprs) or has_aggregates or (
            having_expr is not None and contains_aggregate(having_expr)
        )

        if not needs_groupby:
            spj.distinct = select.distinct
            spj.outputs = self._make_outputs(bound_items)
            if top and select.order_by:
                self._resolve_top_order(select, spj, scope)
            return spj

        box = self._build_aggregation(
            spj, group_exprs, having_expr, bound_items, select.distinct
        )
        if top and select.order_by:
            self._resolve_top_order(select, box, scope, allow_hidden=False)
        return box

    def _resolve_top_order(
        self, select: ast.Select, box: Box, scope: Scope, allow_hidden: bool = True
    ) -> None:
        """Resolve top-level ORDER BY: by output name, position, or -- for
        plain SELECTs -- by any expression over the FROM scope, appending a
        hidden sort column when needed."""
        names = box.output_names()
        visible = len(names)
        resolved: list[tuple[int, bool]] = []
        for item in select.order_by:
            expr = item.expr
            if isinstance(expr, ast.Parameter):
                # A literal here would have been an ordinal, resolved at
                # build time; a parameter cannot be (its value arrives at
                # execution). Refusing keeps the plan cache from freezing
                # one submission's sort position into the shared plan.
                raise BindError("ORDER BY position cannot be a parameter")
            position: Optional[int] = None
            # Syntactic match against a select item (covers qualified names
            # and expressions repeated verbatim, e.g. ORDER BY d.name) --
            # only when no * expansion shifted the positions.
            if not any(isinstance(i.expr, ast.Star) for i in select.items):
                for i, select_item in enumerate(select.items[:visible]):
                    if select_item.expr == expr:
                        position = i
                        break
            if position is not None:
                pass
            elif isinstance(expr, ast.Literal) and isinstance(expr.value, int):
                position = expr.value - 1
                if not 0 <= position < visible:
                    raise BindError(f"ORDER BY position {expr.value} out of range")
            elif isinstance(expr, ast.Name) and len(expr.parts) == 1 \
                    and expr.parts[0].lower() in names:
                position = names.index(expr.parts[0].lower())
            else:
                if not allow_hidden or not isinstance(box, SelectBox):
                    raise BindError(
                        "ORDER BY over aggregated queries supports output "
                        "column names or positions only"
                    )
                bound = self._bind(expr, scope)
                for i, output in enumerate(box.outputs):
                    if expr_equal(output.expr, bound):
                        position = i
                        break
                if position is None:
                    if box.distinct:
                        raise BindError(
                            "ORDER BY expression must be in the select list "
                            "of a SELECT DISTINCT"
                        )
                    hidden_name = self._fresh_name("ord")
                    box.outputs.append(OutputColumn(hidden_name, bound))
                    position = len(box.outputs) - 1
            resolved.append((position, item.descending))
        self._order_result = resolved
        if len(box.output_names()) != visible:
            self._visible_columns = visible

    def _build_aggregation(
        self,
        spj: SelectBox,
        group_exprs: list[ast.Expr],
        having_expr: Optional[ast.Expr],
        bound_items: list[tuple[ast.Expr, Optional[str]]],
        distinct: bool,
    ) -> Box:
        """Normalise into SPJ -> GroupBy -> SPJ (Figure 1's box pipeline)."""
        # 1. Collect aggregate calls appearing anywhere above the SPJ.
        aggregates: list[ast.AggregateCall] = []

        def collect(expr: ast.Expr) -> None:
            for node in walk_expr(expr):
                if isinstance(node, ast.AggregateCall):
                    if not any(expr_equal(node, a) for a in aggregates):
                        aggregates.append(node)

        for expr, _ in bound_items:
            collect(expr)
        if having_expr is not None:
            collect(having_expr)

        for agg in aggregates:
            if agg.argument is not None and contains_aggregate(agg.argument):
                raise BindError("nested aggregate calls are not allowed")

        # 2. SPJ outputs: each group expression and each aggregate argument.
        spj_outputs: list[tuple[str, ast.Expr]] = []

        def spj_output_for(expr: ast.Expr) -> str:
            for name, existing in spj_outputs:
                if expr_equal(existing, expr):
                    return name
            name = self._fresh_name("g" if not spj_outputs else "g")
            spj_outputs.append((name, expr))
            return name

        group_cols = [spj_output_for(g) for g in group_exprs]
        agg_arg_cols: list[Optional[str]] = [
            None if a.argument is None else spj_output_for(a.argument)
            for a in aggregates
        ]
        spj.outputs = [OutputColumn(n, e) for n, e in spj_outputs]
        if not spj.outputs:
            # COUNT(*) over no grouping columns: the SPJ must still emit rows.
            spj.outputs = [OutputColumn(self._fresh_name("one"), ast.Literal(1))]

        # 3. GroupBy box.
        gq = Quantifier.fresh(spj, "a")
        group_box = GroupByBox(gq)
        group_box.group_by = [gq.ref(c) for c in group_cols]
        group_outputs: list[OutputColumn] = []
        group_col_names: list[str] = []
        for col in group_cols:
            name = self._fresh_name("k")
            group_col_names.append(name)
            group_outputs.append(OutputColumn(name, gq.ref(col)))
        agg_col_names: list[str] = []
        for agg, arg_col in zip(aggregates, agg_arg_cols):
            name = self._fresh_name("agg")
            agg_col_names.append(name)
            argument = None if arg_col is None else gq.ref(arg_col)
            group_outputs.append(
                OutputColumn(name, ast.AggregateCall(agg.func, argument, agg.distinct))
            )
        group_box.outputs = group_outputs

        # 4. When every select item is directly an aggregate or a group
        # expression and there is no HAVING/DISTINCT, the GroupBy box itself
        # is the block (this matches the paper's Figure 1, where the
        # correlated subquery is a bare Aggregate box over an SPJ box).
        if having_expr is None and not distinct:
            direct: list[OutputColumn] = []
            for expr, alias in bound_items:
                matched: Optional[ast.Expr] = None
                for agg, arg_col in zip(aggregates, agg_arg_cols):
                    if expr_equal(expr, agg):
                        argument = None if arg_col is None else gq.ref(arg_col)
                        matched = ast.AggregateCall(agg.func, argument, agg.distinct)
                        break
                if matched is None:
                    for group, col in zip(group_exprs, group_cols):
                        if expr_equal(expr, group):
                            matched = gq.ref(col)
                            break
                if matched is None:
                    break
                direct.append(OutputColumn("pending", matched))
            else:
                # Derive user-facing names from the *original* expressions
                # (so ``SELECT building, count(*) ...`` keeps its names).
                named = self._make_outputs(bound_items)
                group_box.outputs = [
                    OutputColumn(n.name, o.expr) for n, o in zip(named, direct)
                ]
                return group_box

        # 5. Final SPJ: HAVING + select items over the GroupBy box. Aggregates
        # and group expressions are replaced by references to GroupBy outputs.
        top = SelectBox(distinct=distinct)
        tq = top.add_quantifier(group_box, "h")

        def to_group_level(expr: ast.Expr) -> ast.Expr:
            def substitute(node: ast.Expr) -> Optional[ast.Expr]:
                for agg, name in zip(aggregates, agg_col_names):
                    if expr_equal(node, agg):
                        return tq.ref(name)
                for group, name in zip(group_exprs, group_col_names):
                    if expr_equal(node, group):
                        return tq.ref(name)
                return None

            rewritten = transform_expr(expr, substitute)
            # Any remaining reference into the SPJ means a non-grouped column.
            for ref in column_refs(rewritten):
                if ref.quantifier in spj.quantifiers:
                    raise BindError(
                        f"column {ref.column!r} must appear in GROUP BY "
                        "or be used in an aggregate"
                    )
            self._retarget_subquery_correlations(
                rewritten, spj, group_exprs, group_col_names, tq
            )
            return rewritten

        if having_expr is not None:
            from .expr import conjuncts
            top.predicates = conjuncts(to_group_level(having_expr))
        top.outputs = self._make_outputs(
            [(to_group_level(e), alias) for e, alias in bound_items]
        )
        return top

    def _retarget_subquery_correlations(
        self,
        expr: ast.Expr,
        spj: SelectBox,
        group_exprs: list[ast.Expr],
        group_col_names: list[str],
        tq: Quantifier,
    ) -> None:
        """Fix correlated refs inside HAVING-level subqueries.

        A subquery in HAVING may reference the block's FROM aliases; after
        aggregation normalisation those quantifiers live in a *descendant*
        box, so such references are remapped onto the GroupBy outputs (legal
        only for grouped columns)."""
        from .analysis import rewrite_subtree_refs

        def substitute(ref: ColumnRef) -> Optional[ast.Expr]:
            if ref.quantifier not in spj.quantifiers:
                return None
            for g, name in zip(group_exprs, group_col_names):
                if isinstance(g, ColumnRef) and g.same(ref):
                    return tq.ref(name)
            raise BindError(
                f"correlated reference to non-grouped column {ref.column!r} "
                "from a HAVING/select-level subquery"
            )

        for node in walk_expr(expr):
            if isinstance(node, (BoxScalarSubquery, BoxExists, BoxInSubquery,
                                 BoxQuantifiedComparison)):
                rewrite_subtree_refs(node.box, substitute)

    # -- FROM items ------------------------------------------------------------

    def _add_from_item(self, spj: SelectBox, item: ast.FromItem, scope: Scope) -> None:
        if isinstance(item, ast.TableRef):
            box, columns = self._relation_box(item.name, span=ast.span_of(item))
            q = spj.add_quantifier(box, item.binding_name)
            q.name = item.binding_name
            scope.add(
                Binding(item.binding_name, q, {c: c for c in columns}),
                span=ast.span_of(item),
            )
            return
        if isinstance(item, ast.DerivedTable):
            box = self.build_query(item.query, scope)
            columns = self._apply_column_aliases(box, item.column_aliases)
            q = spj.add_quantifier(box, item.binding_name)
            q.name = item.binding_name
            scope.add(
                Binding(item.binding_name, q, {c: c for c in columns}),
                span=ast.span_of(item),
            )
            return
        if isinstance(item, ast.Join):
            if item.kind == "inner":
                self._add_from_item(spj, item.left, scope)
                self._add_from_item(spj, item.right, scope)
                if item.condition is not None:
                    from .expr import conjuncts
                    spj.predicates.extend(conjuncts(self._bind(item.condition, scope)))
                return
            self._add_outer_join(spj, item, scope)
            return
        raise BindError(f"unsupported FROM item {type(item).__name__}")

    def _add_outer_join(self, spj: SelectBox, item: ast.Join, scope: Scope) -> None:
        """LEFT OUTER JOIN: build an OuterJoinBox exposing both sides' columns
        (with mangled names) through a single quantifier."""
        left_box, left_bindings = self._from_item_as_box(item.left, scope)
        right_box, right_bindings = self._from_item_as_box(item.right, scope)
        preserved = Quantifier.fresh(left_box, "ojl")
        null_producing = Quantifier.fresh(right_box, "ojr")

        join_scope = Scope(parent=scope)
        outputs: list[OutputColumn] = []
        outer_bindings: list[tuple[str, dict[str, str]]] = []
        for quantifier, side_bindings in (
            (preserved, left_bindings),
            (null_producing, right_bindings),
        ):
            for alias, colmap in side_bindings:
                join_scope.add(Binding(alias, quantifier, dict(colmap)))
                mangled: dict[str, str] = {}
                for visible, actual in colmap.items():
                    out_name = self._fresh_name(f"{alias}_{visible}")
                    outputs.append(OutputColumn(out_name, quantifier.ref(actual)))
                    mangled[visible] = out_name
                outer_bindings.append((alias, mangled))

        condition = self._bind(item.condition, join_scope) if item.condition else None
        oj_box = OuterJoinBox(preserved, null_producing, condition, outputs)
        q = spj.add_quantifier(oj_box, "oj")
        for alias, mangled in outer_bindings:
            scope.add(Binding(alias, q, mangled))

    def _from_item_as_box(
        self, item: ast.FromItem, scope: Scope
    ) -> tuple[Box, list[tuple[str, dict[str, str]]]]:
        """Build one side of an outer join as a standalone box plus the alias
        views it exposes."""
        if isinstance(item, ast.TableRef):
            box, columns = self._relation_box(item.name)
            return box, [(item.binding_name, {c: c for c in columns})]
        if isinstance(item, ast.DerivedTable):
            box = self.build_query(item.query, scope)
            columns = self._apply_column_aliases(box, item.column_aliases)
            return box, [(item.binding_name, {c: c for c in columns})]
        if isinstance(item, ast.Join):
            # Wrap a nested join in its own SPJ box.
            inner = SelectBox()
            inner_scope = Scope(parent=scope)
            self._add_from_item(inner, item, inner_scope)
            outputs: list[OutputColumn] = []
            bindings: list[tuple[str, dict[str, str]]] = []
            for binding in inner_scope.bindings:
                mangled: dict[str, str] = {}
                for visible, actual in binding.columns.items():
                    out_name = self._fresh_name(f"{binding.alias}_{visible}")
                    outputs.append(
                        OutputColumn(out_name, binding.quantifier.ref(actual))
                    )
                    mangled[visible] = out_name
                bindings.append((binding.alias, mangled))
            inner.outputs = outputs
            return inner, bindings
        raise BindError(f"unsupported FROM item {type(item).__name__}")

    def _relation_box(
        self, name: str, span: Optional[ast.Span] = None
    ) -> tuple[Box, list[str]]:
        """A fresh box for a base table or (expanded) view."""
        if self.catalog.has_view(name):
            key = name.lower()
            if key in self._view_stack:
                cycle = " -> ".join(self._view_stack + [key])
                raise BindError(f"cyclic view definition: {cycle}")
            statement = parse_statement(self.catalog.view_sql(name))
            if not isinstance(statement, (ast.Select, ast.SetOp)):
                raise BindError(f"view {name!r} does not define a query")
            self._view_stack.append(key)
            try:
                box = self.build_query(statement, Scope())
            finally:
                self._view_stack.pop()
            return box, box.output_names()
        try:
            table = self.catalog.table(name)
        except CatalogError as exc:
            if span is None:
                raise
            located = CatalogError(f"{exc} ({span.location()})")
            located.span = span  # type: ignore[attr-defined]
            raise located from None
        box = BaseTableBox(table.name, table.schema.names())
        return box, box.column_names

    @staticmethod
    def _apply_column_aliases(box: Box, aliases: tuple[str, ...]) -> list[str]:
        if not aliases:
            return box.output_names()
        names = box.output_names()
        if len(aliases) != len(names):
            raise BindError(
                f"derived table alias list has {len(aliases)} names "
                f"for {len(names)} columns"
            )
        lowered = [a.lower() for a in aliases]
        if isinstance(box, (SelectBox, GroupByBox, OuterJoinBox)):
            for output, alias in zip(box.outputs, lowered):
                output.name = alias
        elif isinstance(box, SetOpBox):
            box._output_names = lowered
        else:
            raise BindError("cannot alias columns of this relation")
        return lowered

    # -- expressions ---------------------------------------------------------

    def _bind(self, expr: ast.Expr, scope: Scope) -> ast.Expr:
        def substitute(node: ast.Expr) -> Optional[ast.Expr]:
            if isinstance(node, ast.Name):
                return self._resolve_name(node, scope)
            if isinstance(node, ast.ScalarSubquery):
                return BoxScalarSubquery(self.build_query(node.query, scope))
            if isinstance(node, ast.Exists):
                return BoxExists(self.build_query(node.query, scope), node.negated)
            if isinstance(node, ast.InSubquery):
                box = self.build_query(node.query, scope)
                self._require_single_column(box, "IN", span=ast.span_of(node))
                return BoxInSubquery(node.operand, box, node.negated)
            if isinstance(node, ast.QuantifiedComparison):
                box = self.build_query(node.query, scope)
                self._require_single_column(
                    box, node.quantifier.upper(), span=ast.span_of(node)
                )
                return BoxQuantifiedComparison(
                    node.op, node.operand, node.quantifier, box
                )
            if isinstance(node, ast.Star):
                raise BindError(
                    "* is only allowed in the select list", span=ast.span_of(node)
                )
            return None

        return transform_expr(expr, substitute)

    @staticmethod
    def _require_single_column(
        box: Box, construct: str, span: Optional[ast.Span] = None
    ) -> None:
        if len(box.output_names()) != 1:
            raise BindError(
                f"{construct} subquery must produce exactly one column", span=span
            )

    def _resolve_name(self, name: ast.Name, scope: Scope) -> ColumnRef:
        span = ast.span_of(name)
        if len(name.parts) == 1:
            return scope.resolve_unqualified(name.parts[0].lower(), span=span)
        if len(name.parts) == 2:
            return scope.resolve_qualified(
                name.parts[0].lower(), name.parts[1].lower(), span=span
            )
        raise BindError(f"over-qualified name {'.'.join(name.parts)!r}", span=span)

    def _expand_stars(
        self, items: tuple[ast.SelectItem, ...], scope: Scope
    ) -> list[ast.SelectItem]:
        expanded: list[ast.SelectItem] = []
        for item in items:
            if isinstance(item.expr, ast.Star):
                if item.expr.qualifier is None:
                    bindings = scope.bindings
                    if not bindings:
                        raise BindError(
                            "* with no FROM clause", span=ast.span_of(item.expr)
                        )
                else:
                    alias = item.expr.qualifier.lower()
                    bindings = [b for b in scope.bindings if b.alias == alias]
                    if not bindings:
                        raise BindError(
                            f"unknown alias {alias!r} in {alias}.*",
                            span=ast.span_of(item.expr),
                        )
                for binding in bindings:
                    for visible in binding.columns:
                        expanded.append(
                            ast.SelectItem(
                                ast.Name((binding.alias, visible)), alias=visible
                            )
                        )
            else:
                expanded.append(item)
        return expanded

    def _make_outputs(
        self, bound_items: list[tuple[ast.Expr, Optional[str]]]
    ) -> list[OutputColumn]:
        outputs: list[OutputColumn] = []
        used: set[str] = set()
        for expr, alias in bound_items:
            name = alias
            if name is None:
                if isinstance(expr, ColumnRef):
                    name = expr.column
                elif isinstance(expr, ast.AggregateCall):
                    name = expr.func
                else:
                    name = f"c{len(outputs)}"
            name = name.lower()
            base = name
            counter = 1
            while name in used:
                name = f"{base}_{counter}"
                counter += 1
            used.add(name)
            outputs.append(OutputColumn(name, expr))
        return outputs

    def _resolve_order(self, body: ast.QueryBody, box: Box) -> list[tuple[int, bool]]:
        order_items = body.order_by if isinstance(body, (ast.Select, ast.SetOp)) else ()
        if not order_items:
            return []
        names = box.output_names()
        resolved: list[tuple[int, bool]] = []
        for item in order_items:
            expr = item.expr
            if isinstance(expr, ast.Parameter):
                raise BindError("ORDER BY position cannot be a parameter")
            if isinstance(expr, ast.Literal) and isinstance(expr.value, int):
                position = expr.value - 1
                if not 0 <= position < len(names):
                    raise BindError(f"ORDER BY position {expr.value} out of range")
            elif isinstance(expr, ast.Name) and len(expr.parts) == 1:
                column = expr.parts[0].lower()
                if column not in names:
                    raise BindError(
                        f"ORDER BY column {column!r} is not in the select list"
                    )
                position = names.index(column)
            else:
                raise BindError(
                    "ORDER BY supports output column names or positions only"
                )
            resolved.append((position, item.descending))
        return resolved

    def _fresh_name(self, prefix: str) -> str:
        self._name_counter += 1
        return f"{prefix}_{self._name_counter}"


def build_qgm(body: ast.QueryBody, catalog: Catalog) -> QueryGraph:
    """Bind a parsed query body against ``catalog`` and return its QGM."""
    return _Builder(catalog).build(body)
