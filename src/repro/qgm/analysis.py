"""Graph traversals and correlation analysis over the QGM.

Section 4.1 of the paper: "the algorithm utilizes the following information:
(1) a list of its ancestors, (2) a list of its descendants, (3) which of its
ancestors it is correlated to, and (4) which descendant box caused each
correlation. In our implementation, this information is precomputed by a
traversal of the graph". :func:`analyze_correlations` is that traversal.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator, Optional

from ..sql import ast
from .expr import (
    BOX_SUBQUERY_TYPES,
    ColumnRef,
    replace_column_refs,
    walk_expr,
)
from .model import (
    Box,
    GroupByBox,
    OuterJoinBox,
    SelectBox,
    SetOpBox,
)


def box_children(box: Box) -> list[Box]:
    """Direct children: boxes under this box's quantifiers plus boxes inside
    subquery expression nodes of this box's own expressions."""
    children = [q.box for q in box.child_quantifiers()]
    for expr in box.own_exprs():
        for node in walk_expr(expr):
            if isinstance(node, BOX_SUBQUERY_TYPES):
                children.append(node.box)
    return children


def iter_boxes(root: Box) -> Iterator[Box]:
    """All boxes reachable from ``root`` (deduplicated; DAG-safe), pre-order."""
    seen: set[int] = set()
    stack = [root]
    while stack:
        box = stack.pop()
        if box.id in seen:
            continue
        seen.add(box.id)
        yield box
        stack.extend(reversed(box_children(box)))


def parent_edges(root: Box) -> dict[int, list[Box]]:
    """Map from box id to the list of parent boxes referencing it.

    A freshly-built query is a tree (every non-root box has exactly one
    parent); magic decorrelation introduces shared boxes (the supplementary
    common subexpression), making this a DAG.
    """
    parents: dict[int, list[Box]] = {root.id: []}
    for box in iter_boxes(root):
        for child in box_children(box):
            parents.setdefault(child.id, []).append(box)
    return parents


def quantifier_owner_map(root: Box) -> dict[int, Box]:
    """Map ``id(quantifier)`` to the box whose FROM it belongs to."""
    owners: dict[int, Box] = {}
    for box in iter_boxes(root):
        for q in box.child_quantifiers():
            owners[id(q)] = box
    return owners


def owned_quantifier_ids(box: Box) -> set[int]:
    return {id(q) for q in box.child_quantifiers()}


def external_column_refs(subtree_root: Box) -> list[tuple[Box, ColumnRef]]:
    """Correlated references of a subtree: ColumnRefs in any box of the
    subtree that target a quantifier owned by a box *outside* the subtree.

    Returns ``(containing_box, ref)`` pairs -- the containing box is the
    paper's *destination of correlation*.
    """
    boxes = list(iter_boxes(subtree_root))
    internal: set[int] = set()
    for box in boxes:
        internal |= owned_quantifier_ids(box)
    result: list[tuple[Box, ColumnRef]] = []
    for box in boxes:
        for expr in box.own_exprs():
            for node in walk_expr(expr):
                if isinstance(node, ColumnRef) and id(node.quantifier) not in internal:
                    result.append((box, node))
    return result


def is_correlated(subtree_root: Box) -> bool:
    """Does the subtree reference any quantifier outside itself?"""
    return bool(external_column_refs(subtree_root))


@dataclass
class CorrelationInfo:
    """Precomputed correlation facts for one box (paper section 4.1)."""

    box: Box
    ancestors: list[Box] = field(default_factory=list)
    descendants: list[Box] = field(default_factory=list)
    #: Ancestor boxes whose quantifiers are referenced from this subtree,
    #: i.e. the *sources of correlation*.
    correlated_to: list[Box] = field(default_factory=list)
    #: For each source-of-correlation box id: the descendant boxes that
    #: contain the correlated reference (destinations of correlation).
    caused_by: dict[int, list[Box]] = field(default_factory=dict)


def analyze_correlations(root: Box) -> dict[int, CorrelationInfo]:
    """One traversal computing the per-box facts of section 4.1."""
    owners = quantifier_owner_map(root)
    info: dict[int, CorrelationInfo] = {
        box.id: CorrelationInfo(box) for box in iter_boxes(root)
    }

    def visit(box: Box, ancestors: list[Box]) -> None:
        record = info[box.id]
        record.ancestors = list(ancestors)
        for ancestor in ancestors:
            info[ancestor.id].descendants.append(box)
        for expr in box.own_exprs():
            for node in walk_expr(expr):
                if isinstance(node, ColumnRef):
                    owner = owners.get(id(node.quantifier))
                    if owner is not None and owner is not box and owner in ancestors:
                        # ``box`` is directly correlated to ``owner``; every
                        # box between them is transitively correlated.
                        for hop in [box] + [
                            a for a in ancestors
                            if a is not owner and info[a.id] and _between(ancestors, a, owner)
                        ]:
                            hop_info = info[hop.id]
                            if owner not in hop_info.correlated_to:
                                hop_info.correlated_to.append(owner)
                            hop_info.caused_by.setdefault(owner.id, [])
                            if box not in hop_info.caused_by[owner.id]:
                                hop_info.caused_by[owner.id].append(box)
        for child in box_children(box):
            visit(child, ancestors + [box])

    def _between(ancestors: list[Box], candidate: Box, owner: Box) -> bool:
        # ancestors is ordered root..parent; a candidate lies strictly below
        # the owner when it appears after it in the list.
        return ancestors.index(candidate) > ancestors.index(owner)

    visit(root, [])
    return info


def rewrite_box_exprs(box: Box, fn: Callable[[ast.Expr], ast.Expr]) -> None:
    """Apply ``fn`` to every expression stored in ``box`` (in place)."""
    if isinstance(box, SelectBox):
        box.predicates = [fn(p) for p in box.predicates]
        for output in box.outputs:
            output.expr = fn(output.expr)
    elif isinstance(box, GroupByBox):
        box.group_by = [fn(g) for g in box.group_by]
        for output in box.outputs:
            output.expr = fn(output.expr)
    elif isinstance(box, OuterJoinBox):
        if box.condition is not None:
            box.condition = fn(box.condition)
        for output in box.outputs:
            output.expr = fn(output.expr)
    elif isinstance(box, SetOpBox):
        pass
    # BaseTableBox holds no expressions.


def rewrite_subtree_refs(
    subtree_root: Box, substitute: Callable[[ColumnRef], Optional[ast.Expr]]
) -> None:
    """Apply a ColumnRef substitution to every box in a subtree (in place).

    Used whenever a rewrite 'modifies the destination of correlation' so that
    references previously pointing at an outer quantifier now draw their
    bindings from a magic table (paper sections 4.2/4.3)."""
    for box in iter_boxes(subtree_root):
        rewrite_box_exprs(box, lambda e: replace_column_refs(e, substitute))
