"""Render a QGM back to SQL, one CREATE VIEW per box.

Section 2.1 of the paper presents the magic-decorrelated example exactly
this way (Supp_Dept / Magic / Decorr_SubQuery / BugRemoval views plus a
final SELECT); this module produces the same presentation for any graph,
so `Database.rewritten_sql()` can show users what a strategy did to their
query in plain SQL.

Shared boxes (the supplementary common subexpression) naturally appear as
one view referenced twice. Remaining correlations render as references to
an enclosing view's alias -- syntactically meaningful to a reader even
though plain SQL engines would reject them; fully decorrelated graphs
produce standard SQL.
"""

from __future__ import annotations

from typing import Optional

from ..sql import ast
from ..sql.printer import _literal
from .analysis import iter_boxes
from .expr import (
    BoxExists,
    BoxInSubquery,
    BoxQuantifiedComparison,
    BoxScalarSubquery,
    ColumnRef,
)
from .model import (
    BaseTableBox,
    Box,
    GroupByBox,
    OuterJoinBox,
    QueryGraph,
    SelectBox,
    SetOpBox,
)

#: View-name prefixes per box role, guessed from shape for readability.
_KIND_PREFIX = {
    "select": "v",
    "groupby": "agg",
    "setop": "setop",
    "outerjoin": "loj",
}


class _SqlGenerator:
    def __init__(self, graph: QueryGraph):
        self.graph = graph
        self.names: dict[int, str] = {}
        self.statements: list[str] = []
        self._assign_names()

    # -- naming -------------------------------------------------------------

    def _assign_names(self) -> None:
        for box in iter_boxes(self.graph.root):
            if isinstance(box, BaseTableBox):
                self.names[box.id] = box.table_name
            else:
                prefix = self._prefix_for(box)
                self.names[box.id] = f"{prefix}_{box.id}"

    def _prefix_for(self, box: Box) -> str:
        if isinstance(box, SelectBox) and box.distinct:
            return "magic"
        if isinstance(box, OuterJoinBox):
            return "bug_removal"
        return _KIND_PREFIX.get(box.kind, "v")

    # -- expressions ----------------------------------------------------------

    def expr(self, node: ast.Expr, local: dict[int, str]) -> str:
        """Render one expression; ``local`` maps quantifier ids to the
        aliases used in the current view's FROM clause."""

        def render(n: ast.Expr) -> str:
            if isinstance(n, ColumnRef):
                alias = local.get(id(n.quantifier), n.quantifier.name)
                return f"{alias}.{n.column}"
            if isinstance(n, ast.Literal):
                return _literal(n.value)
            if isinstance(n, ast.BinaryOp):
                return f"({render(n.left)} {n.op} {render(n.right)})"
            if isinstance(n, ast.UnaryMinus):
                return f"(- {render(n.operand)})"
            if isinstance(n, ast.Comparison):
                if n.op == "<=>":
                    left, right = render(n.left), render(n.right)
                    return (
                        f"({left} = {right} OR ({left} IS NULL "
                        f"AND {right} IS NULL))"
                    )
                return f"{render(n.left)} {n.op} {render(n.right)}"
            if isinstance(n, ast.And):
                return "(" + " AND ".join(render(i) for i in n.items) + ")"
            if isinstance(n, ast.Or):
                return "(" + " OR ".join(render(i) for i in n.items) + ")"
            if isinstance(n, ast.Not):
                return f"NOT ({render(n.operand)})"
            if isinstance(n, ast.IsNull):
                suffix = "IS NOT NULL" if n.negated else "IS NULL"
                return f"{render(n.operand)} {suffix}"
            if isinstance(n, ast.Like):
                keyword = "NOT LIKE" if n.negated else "LIKE"
                return f"{render(n.operand)} {keyword} {render(n.pattern)}"
            if isinstance(n, ast.Between):
                keyword = "NOT BETWEEN" if n.negated else "BETWEEN"
                return (
                    f"{render(n.operand)} {keyword} {render(n.low)} "
                    f"AND {render(n.high)}"
                )
            if isinstance(n, ast.InList):
                keyword = "NOT IN" if n.negated else "IN"
                inner = ", ".join(render(i) for i in n.items)
                return f"{render(n.operand)} {keyword} ({inner})"
            if isinstance(n, ast.FunctionCall):
                return f"{n.name}({', '.join(render(a) for a in n.args)})"
            if isinstance(n, ast.AggregateCall):
                if n.argument is None:
                    return "count(*)"
                prefix = "DISTINCT " if n.distinct else ""
                return f"{n.func}({prefix}{render(n.argument)})"
            if isinstance(n, ast.Case):
                whens = " ".join(
                    f"WHEN {render(c)} THEN {render(v)}" for c, v in n.whens
                )
                otherwise = f" ELSE {render(n.otherwise)}" if n.otherwise else ""
                return f"CASE {whens}{otherwise} END"
            if isinstance(n, BoxScalarSubquery):
                return f"(SELECT * FROM {self.names[n.box.id]})"
            if isinstance(n, BoxExists):
                keyword = "NOT EXISTS" if n.negated else "EXISTS"
                return f"{keyword} (SELECT 1 FROM {self.names[n.box.id]})"
            if isinstance(n, BoxInSubquery):
                keyword = "NOT IN" if n.negated else "IN"
                return (
                    f"{render(n.operand)} {keyword} "
                    f"(SELECT * FROM {self.names[n.box.id]})"
                )
            if isinstance(n, BoxQuantifiedComparison):
                return (
                    f"{render(n.operand)} {n.op} {n.quantifier_kind.upper()} "
                    f"(SELECT * FROM {self.names[n.box.id]})"
                )
            return repr(n)

        return render(node)

    # -- per-box view bodies ---------------------------------------------------

    def body(self, box: Box) -> Optional[str]:
        if isinstance(box, BaseTableBox):
            return None
        if isinstance(box, SelectBox):
            return self._select_body(box)
        if isinstance(box, GroupByBox):
            return self._groupby_body(box)
        if isinstance(box, SetOpBox):
            arms = " UNION ALL ".join(
                f"SELECT * FROM {self.names[q.box.id]}" for q in box.quantifiers
            )
            if box.op == "union" and not box.all:
                arms = " UNION ".join(
                    f"SELECT * FROM {self.names[q.box.id]}"
                    for q in box.quantifiers
                )
            elif box.op != "union":
                arms = f" {box.op.upper()} ".join(
                    f"SELECT * FROM {self.names[q.box.id]}"
                    for q in box.quantifiers
                )
            return arms
        if isinstance(box, OuterJoinBox):
            return self._outerjoin_body(box)
        return None

    def _select_body(self, box: SelectBox) -> str:
        local = {id(q): q.name for q in box.quantifiers}
        froms = ", ".join(
            f"{self.names[q.box.id]} AS {q.name}" for q in box.quantifiers
        )
        items = ", ".join(
            f"{self.expr(o.expr, local)} AS {o.name}" for o in box.outputs
        )
        text = "SELECT "
        if box.distinct:
            text += "DISTINCT "
        text += items
        if froms:
            text += f" FROM {froms}"
        if box.predicates:
            conjuncts = " AND ".join(self.expr(p, local) for p in box.predicates)
            text += f" WHERE {conjuncts}"
        return text

    def _groupby_body(self, box: GroupByBox) -> str:
        q = box.quantifier
        local = {id(q): q.name}
        items = ", ".join(
            f"{self.expr(o.expr, local)} AS {o.name}" for o in box.outputs
        )
        text = f"SELECT {items} FROM {self.names[q.box.id]} AS {q.name}"
        if box.group_by:
            keys = ", ".join(self.expr(g, local) for g in box.group_by)
            text += f" GROUP BY {keys}"
        return text

    def _outerjoin_body(self, box: OuterJoinBox) -> str:
        left, right = box.preserved, box.null_producing
        local = {id(left): left.name, id(right): right.name}
        items = ", ".join(
            f"{self.expr(o.expr, local)} AS {o.name}" for o in box.outputs
        )
        condition = (
            self.expr(box.condition, local) if box.condition is not None else "TRUE"
        )
        return (
            f"SELECT {items} FROM {self.names[left.box.id]} AS {left.name} "
            f"LEFT OUTER JOIN {self.names[right.box.id]} AS {right.name} "
            f"ON {condition}"
        )

    # -- whole graph -------------------------------------------------------------

    def generate(self) -> str:
        # Emit views bottom-up so each references only earlier ones.
        emitted: set[int] = set()
        statements: list[str] = []

        def emit(box: Box) -> None:
            if box.id in emitted:
                return
            emitted.add(box.id)
            from .analysis import box_children

            for child in box_children(box):
                emit(child)
            if box is self.graph.root:
                return
            body = self.body(box)
            if body is not None:
                statements.append(
                    f"CREATE VIEW {self.names[box.id]} AS\n  {body};"
                )

        emit(self.graph.root)
        final = self.body(self.graph.root) or (
            f"SELECT * FROM {self.names[self.graph.root.id]}"
        )
        if self.graph.order_by:
            keys = ", ".join(
                f"{pos + 1}{' DESC' if desc else ''}"
                for pos, desc in self.graph.order_by
            )
            final += f" ORDER BY {keys}"
        if self.graph.limit is not None:
            final += f" LIMIT {self.graph.limit}"
        statements.append(final + ";")
        return "\n\n".join(statements)


def graph_to_sql(graph: QueryGraph) -> str:
    """The whole graph as CREATE VIEW statements plus a final SELECT --
    the presentation the paper itself uses in section 2.1."""
    return _SqlGenerator(graph).generate()
