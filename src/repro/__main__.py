"""Command-line interface.

Usage::

    python -m repro shell                      # interactive SQL shell
    python -m repro run script.sql             # execute a SQL script
    python -m repro figures [--scale 0.01]     # regenerate the paper figures
    python -m repro explain "SELECT ..." --db script.sql --strategy magic

The shell keeps one in-memory database per session; ``\\strategy magic``
switches the decorrelation strategy, ``\\explain on`` prints the rewritten
QGM before each query.
"""

from __future__ import annotations

import argparse
import os
import sys

from . import Database, Strategy
from .errors import BudgetExceeded, QueryCancelled, ReproError

#: Guardrail exit codes for ``repro run`` (distinct and nonzero so scripts
#: and CI can tell a timeout from a row-budget trip from an ordinary error).
EXIT_ERROR = 1
EXIT_TIMEOUT = 124
EXIT_BUDGET = 125
EXIT_CANCELLED = 130

_STRATEGY_NAMES = {s.value: s for s in Strategy}
_STRATEGY_NAMES.update({s.label.lower(): s for s in Strategy})


def _parse_strategy(name: str) -> Strategy:
    try:
        return _STRATEGY_NAMES[name.lower()]
    except KeyError:
        valid = ", ".join(sorted({s.value for s in Strategy}))
        raise SystemExit(f"unknown strategy {name!r}; choose from: {valid}")


def _print_result(result) -> None:
    if result.columns:
        print(" | ".join(result.columns))
        print("-+-".join("-" * len(c) for c in result.columns))
    for row in result.rows:
        print(" | ".join("NULL" if v is None else str(v) for v in row))
    print(
        f"({len(result.rows)} rows; {result.metrics.subquery_invocations} "
        f"subquery invocations; work {result.metrics.total_work()})"
    )


def cmd_run(args: argparse.Namespace) -> int:
    """``repro run``: execute a SQL script file statement by statement.

    Guardrail trips exit with distinct nonzero codes: ``124`` for a
    wall-clock timeout, ``125`` for any row budget, ``130`` for
    cancellation; other engine errors exit ``1``.
    """
    from .faults import FaultRegistry
    from .guard import Limits

    try:
        faults = FaultRegistry.parse(args.faults) if args.faults else None
    except ValueError as exc:
        raise SystemExit(f"--faults: {exc}")
    db = Database(faults=faults)
    with open(args.script) as handle:
        sql = handle.read()
    strategy = _parse_strategy(args.strategy)
    limits = None
    if args.timeout is not None or args.max_rows is not None:
        limits = Limits(timeout=args.timeout, max_rows_scanned=args.max_rows)
    from .sql.parser import parse_statements
    from .sql import ast as sql_ast

    try:
        for statement in parse_statements(sql):
            if isinstance(statement, (sql_ast.Select, sql_ast.SetOp)):
                result = db._run_query(
                    statement, strategy, args.cse_mode,
                    limits=limits, fallback=args.fallback,
                )
                for event in result.degradations:
                    print(f"-- {event}")
                _print_result(result)
            else:
                db._execute_statement(statement)
    except BudgetExceeded as exc:
        print(f"guardrail: {exc}", file=sys.stderr)
        if exc.metrics is not None:
            print(f"guardrail: work at trip time: {exc.metrics.as_dict()}",
                  file=sys.stderr)
        return EXIT_TIMEOUT if exc.budget == "timeout" else EXIT_BUDGET
    except QueryCancelled as exc:
        print(f"guardrail: {exc}", file=sys.stderr)
        return EXIT_CANCELLED
    except ReproError as exc:
        print(f"error: {type(exc).__name__}: {exc}", file=sys.stderr)
        return EXIT_ERROR
    return 0


def cmd_shell(args: argparse.Namespace) -> int:
    """``repro shell``: the interactive SQL loop."""
    db = Database()
    strategy = _parse_strategy(args.strategy)
    explain = False
    print("repro SQL shell -- \\q quits, \\strategy <name>, \\explain on|off")
    buffer = ""
    while True:
        try:
            prompt = "....> " if buffer else "repro> "
            line = input(prompt)
        except (EOFError, KeyboardInterrupt):
            print()
            return 0
        stripped = line.strip()
        if not buffer and stripped.startswith("\\"):
            parts = stripped.split()
            if parts[0] in ("\\q", "\\quit"):
                return 0
            if parts[0] == "\\strategy" and len(parts) > 1:
                strategy = _parse_strategy(parts[1])
                print(f"strategy = {strategy.label}")
            elif parts[0] == "\\explain":
                explain = len(parts) > 1 and parts[1] == "on"
                print(f"explain = {explain}")
            else:
                print("commands: \\q, \\strategy <name>, \\explain on|off")
            continue
        buffer += line + "\n"
        if not stripped.endswith(";"):
            continue
        sql, buffer = buffer, ""
        try:
            if explain:
                try:
                    print(db.explain(sql, strategy))
                except ReproError:
                    pass
            result = db.execute(sql, strategy=strategy)
            _print_result(result)
        except ReproError as exc:
            print(f"error: {exc}")


def _cmd_worker_soak(args: argparse.Namespace) -> int:
    """The ``repro soak --real-workers`` path: chaos-soak the real
    shared-nothing executor.

    Each epoch runs one full section-6 query on a fresh pool of real
    worker processes, SIGKILLs one worker mid-query (unless ``--no-kill``)
    and injects any ``--faults`` process-level sites on top. Exit ``0``
    when every epoch produced the reference answer (directly or via a
    recorded degradation) or a typed error AND the ``worker.*`` event
    counts reconcile with the pool counters; ``1`` on any violation;
    ``2`` on bad configuration.
    """
    import faulthandler
    import json

    from .serve.soak import run_worker_soak

    # Worker recovery is bounded by task_timeout * attempts per epoch; a
    # minute per epoch is a generous hang watchdog. A replaced stderr
    # (in-process test capture) has no fileno -- run unguarded then.
    watchdog = True
    try:
        faulthandler.enable()
        faulthandler.dump_traceback_later(
            args.epochs * 60.0 + 120.0, exit=True
        )
    except (OSError, RuntimeError):
        watchdog = False
    events_log = None
    file_sink = None
    ring = None
    if args.events_out:
        from .obs import EventLog, FileSink, RingSink, TeeSink

        ring = RingSink(capacity=65536)
        file_sink = FileSink(args.events_out, mode="w")
        events_log = EventLog(TeeSink(ring, file_sink))
    try:
        try:
            report = run_worker_soak(
                epochs=args.epochs,
                n_workers=args.workers,
                seed=args.seed,
                faults=args.faults,
                kill_per_epoch=not args.no_kill,
                events=events_log,
                # The tee log is fresh, so forcing reconciliation is safe.
                reconcile=True if events_log is not None else None,
                trace=args.trace or bool(args.trace_out),
            )
        except ValueError as exc:
            print(f"soak: bad configuration: {exc}", file=sys.stderr)
            return 2
    finally:
        if watchdog:
            faulthandler.cancel_dump_traceback_later()
        if file_sink is not None:
            file_sink.close()
    if ring is not None:
        from .obs import validate_events

        try:
            count = validate_events(ring.events())
        except ReproError as exc:
            print(f"soak: event stream invalid: {exc}", file=sys.stderr)
            return 1
        print(f"wrote {args.events_out} ({count} events)")
    if args.trace_out:
        if report.traces:
            with open(args.trace_out, "w") as handle:
                json.dump(report.traces[-1], handle, indent=2,
                          sort_keys=True)
                handle.write("\n")
            print(f"wrote {args.trace_out} "
                  f"({report.trace_reconciled}/{len(report.traces)} epochs "
                  f"reconciled)")
        else:
            print("soak: no traced epochs to export", file=sys.stderr)
    if not args.no_history:
        from .bench import history as bench_history
        from .errors import HistoryError

        try:
            record = bench_history.make_record(
                "worker_soak",
                epochs=report.epochs,
                n_workers=report.n_workers,
                seconds=round(report.seconds, 3),
                kills=report.kills,
                workers_lost=report.workers_lost,
                retries=report.retries,
                recovery_time_s=round(report.recovery_time, 6),
                messages=report.messages,
                ok=report.ok,
                seed=args.seed,
                faults=args.faults or "",
            )
            written = bench_history.append_record(record, path=args.history)
        except HistoryError as exc:
            print(f"soak: history not recorded: {exc}", file=sys.stderr)
        else:
            if written is not None:
                print(f"appended history record to {written}")
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(report.as_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.json}")
    outcomes = ", ".join(
        f"{k}={v}" for k, v in sorted(report.outcomes.items())
    )
    print(
        f"worker soak: {report.epochs} epochs x {report.n_workers} workers "
        f"in {report.seconds:.2f}s -- {outcomes or 'no epochs'}; "
        f"{report.kills} kills, {report.workers_lost} workers lost, "
        f"{report.retries} retries, recovery {report.recovery_time:.3f}s, "
        f"{report.messages} messages"
    )
    for kind, n in sorted(report.event_counts.items()):
        print(f"  {kind:<18} {n}")
    if not report.ok:
        for violation in report.violations:
            print(f"VIOLATION: {violation}", file=sys.stderr)
        return 1
    print("worker soak: all invariants held")
    return 0


def _cmd_overload_soak(args: argparse.Namespace) -> int:
    """``repro soak --overload``: the phased overload comparison.

    Replays one seeded open-loop arrival schedule (warmup, sustained
    overload, recovery) against two fresh services -- adaptive overload
    control and the FIFO baseline -- and compares within-deadline
    goodput and futile executions at identical offered load. Exit codes
    mirror ``repro soak``: ``0`` the adaptive side won and every
    invariant held, ``1`` a violation (lost win, wrong answer, hang, or
    counter mismatch), ``2`` bad configuration.
    """
    import faulthandler
    import json

    from .serve.soak import OVERLOAD_PHASES, run_overload_soak

    faulthandler.enable()
    # Two replays of the same schedule plus drains; generous watchdog.
    budget = sum(phase.seconds for phase in OVERLOAD_PHASES)
    faulthandler.dump_traceback_later(budget * 6 + 120.0, exit=True)
    events_log = None
    file_sink = None
    ring = None
    if args.events_out:
        from .obs import EventLog, FileSink, RingSink, TeeSink

        ring = RingSink(capacity=65536)
        file_sink = FileSink(args.events_out, mode="w")
        events_log = EventLog(TeeSink(ring, file_sink))
    try:
        try:
            report = run_overload_soak(
                seed=args.seed,
                workers=args.workers,
                max_queue=args.max_queue,
                scale=args.scale,
                events=events_log,
            )
        except ValueError as exc:
            print(f"soak: bad configuration: {exc}", file=sys.stderr)
            return 2
    finally:
        faulthandler.cancel_dump_traceback_later()
        if file_sink is not None:
            file_sink.close()

    if ring is not None:
        from .obs import validate_events

        try:
            count = validate_events(ring.events())
        except ReproError as exc:
            print(f"soak: event stream invalid: {exc}", file=sys.stderr)
            return 1
        print(f"wrote {args.events_out} ({count} events)")
    stats = report.adaptive.stats
    if not args.no_history:
        from .bench import history as bench_history
        from .errors import HistoryError

        try:
            record = bench_history.make_record(
                "service_overload",
                seed=args.seed,
                workers=args.workers,
                scale=args.scale,
                throughput_qps=round(report.adaptive.goodput_qps, 2),
                latency_p50_ms=stats.latency_p50_ms,
                latency_p95_ms=stats.latency_p95_ms,
                goodput=report.adaptive.goodput,
                fifo_goodput=report.fifo.goodput,
                futile_executions=report.adaptive.futile_executions,
                fifo_futile_executions=report.fifo.futile_executions,
                shed=stats.shed,
                expired_in_queue=stats.expired_in_queue,
                rejected_futile=stats.rejected_futile,
                brownout_transitions=len(stats.brownout_transitions),
            )
            written = bench_history.append_record(
                record, path=args.history
            )
        except HistoryError as exc:
            print(f"soak: history not recorded: {exc}", file=sys.stderr)
        else:
            if written is not None:
                print(f"appended history record to {written}")
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(report.as_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.json}")
    for side in (report.adaptive, report.fifo):
        print(
            f"overload soak [{side.label}]: {side.offered} offered, "
            f"{side.goodput} within deadline "
            f"({side.goodput_qps:.1f} good q/s), "
            f"{side.futile_executions} futile executions, "
            f"{side.late_completions} late, "
            f"{side.checked_answers} answers checked"
        )
    print(
        f"  adaptive: shed={stats.shed} "
        f"expired_in_queue={stats.expired_in_queue} "
        f"rejected_futile={stats.rejected_futile} "
        f"retry_storm_rejected={stats.retry_storm_rejected} "
        f"brownout_transitions={len(stats.brownout_transitions)}"
    )
    for step in stats.brownout_transitions:
        print(
            f"    brownout {step['from']} -> {step['to']} "
            f"({step['rung']}) at utilization "
            f"{step['utilization']:.2f}"
        )
    if not report.ok:
        for violation in (
            report.violations
            + report.adaptive.violations
            + report.fifo.violations
        ):
            print(f"VIOLATION: {violation}", file=sys.stderr)
        return 1
    print("overload soak: adaptive beat the FIFO baseline; "
          "all invariants held")
    return 0


def _cmd_plan_cache_soak(args: argparse.Namespace) -> int:
    """``repro soak --plan-cache``: the plan-cache A/B comparison.

    Replays one seeded open-loop template workload (the chaos-soak
    queries plus a parameterized salary family) against two fresh FIFO
    services -- plan cache on and off -- and compares within-deadline
    goodput at identical offered load. The cached side must win strictly,
    sustain a hit rate above 0.9, and its ``plan.cache_*`` events must
    reconcile exactly against the cache counters. Exit codes mirror
    ``repro soak``: ``0`` all gates held, ``1`` a violation, ``2`` bad
    configuration.
    """
    import faulthandler
    import json

    from .serve.soak import PLAN_CACHE_PHASES, run_plan_cache_soak

    faulthandler.enable()
    budget = sum(phase.seconds for phase in PLAN_CACHE_PHASES)
    faulthandler.dump_traceback_later(budget * 6 + 120.0, exit=True)
    events_log = None
    file_sink = None
    ring = None
    if args.events_out:
        from .obs import EventLog, FileSink, RingSink, TeeSink

        ring = RingSink(capacity=262144)
        file_sink = FileSink(args.events_out, mode="w")
        events_log = EventLog(TeeSink(ring, file_sink))
    try:
        try:
            report = run_plan_cache_soak(
                seed=args.seed,
                workers=args.workers,
                max_queue=args.max_queue,
                scale=args.scale,
                events=events_log,
                # With a tee'd log the ring is fresh: reconciliation
                # against the cache counters stays exact.
                reconcile=True if events_log is not None else None,
            )
        except ValueError as exc:
            print(f"soak: bad configuration: {exc}", file=sys.stderr)
            return 2
    finally:
        faulthandler.cancel_dump_traceback_later()
        if file_sink is not None:
            file_sink.close()

    if ring is not None:
        from .obs import validate_events

        try:
            count = validate_events(ring.events())
        except ReproError as exc:
            print(f"soak: event stream invalid: {exc}", file=sys.stderr)
            return 1
        print(f"wrote {args.events_out} ({count} events)")
    stats = report.cached.stats
    if not args.no_history:
        from .bench import history as bench_history
        from .errors import HistoryError

        try:
            record = bench_history.make_record(
                "service_plan_cache",
                seed=args.seed,
                workers=args.workers,
                scale=args.scale,
                throughput_qps=round(report.cached.goodput_qps, 2),
                latency_p50_ms=stats.latency_p50_ms,
                latency_p95_ms=stats.latency_p95_ms,
                goodput=report.cached.goodput,
                baseline_goodput=report.baseline.goodput,
                hit_rate=report.hit_rate,
                hits=report.cache.get("hits", 0),
                misses=report.cache.get("misses", 0),
                invalidations=report.cache.get("invalidations", 0),
            )
            written = bench_history.append_record(
                record, path=args.history
            )
        except HistoryError as exc:
            print(f"soak: history not recorded: {exc}", file=sys.stderr)
        else:
            if written is not None:
                print(f"appended history record to {written}")
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(report.as_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.json}")
    if args.bench_out:
        bench = {
            "benchmark": "service_plan_cache",
            "workers": args.workers,
            "scale": args.scale,
            "seed": args.seed,
            "goodput": report.cached.goodput,
            "baseline_goodput": report.baseline.goodput,
            "throughput_qps": round(report.cached.goodput_qps, 2),
            "goodput_qps": round(report.cached.goodput_qps, 2),
            "baseline_goodput_qps": round(report.baseline.goodput_qps, 2),
            "latency_p50_ms": stats.latency_p50_ms,
            "latency_p95_ms": stats.latency_p95_ms,
            "hit_rate": report.hit_rate,
            "hits": report.cache.get("hits", 0),
            "misses": report.cache.get("misses", 0),
            "invalidations": report.cache.get("invalidations", 0),
        }
        with open(args.bench_out, "w") as handle:
            json.dump(bench, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.bench_out}")
    for side in (report.cached, report.baseline):
        print(
            f"plan-cache soak [{side.label}]: {side.offered} offered, "
            f"{side.goodput} within deadline "
            f"({side.goodput_qps:.1f} good q/s), "
            f"{side.futile_executions} futile executions, "
            f"{side.checked_answers} answers checked"
        )
    print(
        f"  cache: hit_rate={report.hit_rate} "
        f"hits={report.cache.get('hits', 0)} "
        f"misses={report.cache.get('misses', 0)} "
        f"invalidations={report.cache.get('invalidations', 0)} "
        f"entries={report.cache.get('entries', 0)}"
    )
    if not report.ok:
        for violation in (
            report.violations
            + report.cached.violations
            + report.baseline.violations
        ):
            print(f"VIOLATION: {violation}", file=sys.stderr)
        return 1
    print("plan-cache soak: cached side beat the uncached baseline; "
          "all invariants held")
    return 0


def cmd_soak(args: argparse.Namespace) -> int:
    """``repro soak``: the chaos soak harness for the query service.

    Runs a seeded mixed workload (EMP/DEPT + TPC-D Q1/Q2/Q3) across worker
    threads with injected faults, random cancellations and tight
    deadlines, then verifies the metamorphic invariant per query and the
    service counter reconciliation. Exit codes: ``0`` all invariants held,
    ``1`` at least one violation (wrong answer, untyped error, hang, or
    counter mismatch), ``2`` bad configuration. A ``faulthandler`` watchdog
    is armed for 3x the soak duration (+60 s), so a deadlocked service
    fails with thread stacks instead of hanging the runner.
    """
    import contextlib
    import faulthandler
    import json

    from .serve.soak import run_soak

    if args.real_workers:
        return _cmd_worker_soak(args)
    if args.overload:
        return _cmd_overload_soak(args)
    if args.plan_cache:
        return _cmd_plan_cache_soak(args)
    faulthandler.enable()
    # A hard watchdog: if the soak (including drain) wedges, dump every
    # thread's stack and kill the process rather than hang CI.
    faulthandler.dump_traceback_later(
        max(args.seconds * 3, 30.0) + 60.0, exit=True
    )
    events_log = None
    file_sink = None
    ring = None
    if args.events_out:
        from .obs import EventLog, FileSink, RingSink, TeeSink

        ring = RingSink(capacity=65536)
        file_sink = FileSink(args.events_out, mode="w")
        events_log = EventLog(TeeSink(ring, file_sink))
    profiler_ctx = contextlib.nullcontext(None)
    if args.profile_out or args.profile_collapsed:
        from .obs import profiling

        # Operator attribution needs the tracer's span stack.
        args.trace = True
        profiler_ctx = profiling(interval=args.profile_interval)
    try:
        try:
            with profiler_ctx as profiler:
                report = run_soak(
                    workers=args.workers,
                    seconds=args.seconds,
                    seed=args.seed,
                    faults=args.faults,
                    scale=args.scale,
                    cancel_rate=args.cancel_rate,
                    tight_deadline_rate=args.tight_deadline_rate,
                    max_queue=args.max_queue,
                    breaker_threshold=args.breaker_threshold,
                    breaker_cooldown=args.breaker_cooldown,
                    fault_scope=args.fault_scope,
                    trace=args.trace,
                    events=events_log,
                    slow_query_ms=args.slow_ms,
                )
        except ValueError as exc:
            print(f"soak: bad configuration: {exc}", file=sys.stderr)
            return 2
    finally:
        faulthandler.cancel_dump_traceback_later()
        if file_sink is not None:
            file_sink.close()

    if ring is not None:
        from .obs import validate_events

        try:
            count = validate_events(ring.events())
        except ReproError as exc:
            print(f"soak: event stream invalid: {exc}", file=sys.stderr)
            return 1
        print(f"wrote {args.events_out} ({count} events)")
    if profiler is not None:
        if args.profile_out:
            with open(args.profile_out, "w") as handle:
                json.dump(profiler.speedscope("repro soak"), handle,
                          sort_keys=True)
                handle.write("\n")
            print(
                f"wrote {args.profile_out} "
                f"({profiler.sample_count} samples)"
            )
        if args.profile_collapsed:
            with open(args.profile_collapsed, "w") as handle:
                handle.write(profiler.collapsed())
            print(f"wrote {args.profile_collapsed}")
        top = list(profiler.operator_samples().items())[:8]
        if top:
            print("  profiler operator samples (top 8):")
            for name, samples in top:
                print(f"    {name:<32} {samples:>6}")
    if not args.no_history:
        from .bench import history as bench_history
        from .errors import HistoryError

        try:
            record = bench_history.record_from_soak(
                report,
                workers=args.workers,
                seed=args.seed,
                scale=args.scale,
                faults=args.faults or "",
            )
            written = bench_history.append_record(
                record, path=args.history
            )
        except HistoryError as exc:
            print(f"soak: history not recorded: {exc}", file=sys.stderr)
        else:
            if written is not None:
                print(f"appended history record to {written}")

    payload = report.as_dict()
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.json}")
    if args.bench_out:
        stats = report.stats
        bench = {
            "benchmark": "service_soak",
            "workers": args.workers,
            "seconds": round(report.seconds, 3),
            "scale": args.scale,
            "seed": args.seed,
            "faults": args.faults or "",
            "throughput_qps": round(report.throughput(), 2),
            "latency_p50_ms": stats.latency_p50_ms,
            "latency_p95_ms": stats.latency_p95_ms,
            "submitted": stats.submitted,
            "completed": stats.completed,
            "failed": stats.failed,
            "cancelled": stats.cancelled,
            "rejected": stats.rejected,
        }
        with open(args.bench_out, "w") as handle:
            json.dump(bench, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.bench_out}")
    print(
        f"soak: {report.seconds:.1f}s, {report.stats.submitted} submitted "
        f"({report.stats.completed} ok / {report.stats.failed} failed / "
        f"{report.stats.cancelled} cancelled / {report.stats.rejected} "
        f"rejected), {report.throughput():.1f} q/s, "
        f"p50 {report.stats.latency_p50_ms} ms, "
        f"p95 {report.stats.latency_p95_ms} ms, "
        f"{report.checked_answers} answers checked, "
        f"{len(report.stats.breaker_transitions)} breaker transitions"
    )
    for strategy, snapshot in sorted(report.stats.breakers.items()):
        print(f"  breaker[{strategy}]: {snapshot['state']}")
    if report.operator_totals:
        print("  per-operator totals (traced queries, top 10 by elapsed):")
        for op in report.operator_totals[:10]:
            print(
                f"    {op['name']:<32} calls={op['calls']:>6} "
                f"rows_out={op['rows_out']:>8} "
                f"elapsed={op['elapsed_ms']:>10.3f}ms"
            )
    if args.slow_ms is not None:
        from .obs import render_slow_log

        slow = report.stats.slow_queries
        print(
            f"  slow queries (> {args.slow_ms} ms): "
            f"{report.stats.slow_total} total, showing {min(len(slow), 5)}"
        )
        if slow:
            print(render_slow_log(slow[-5:], indent="    "))
    if not report.ok:
        for violation in report.violations:
            print(f"VIOLATION: {violation}", file=sys.stderr)
        return 1
    print("soak: all invariants held")
    return 0


def cmd_parallel(args: argparse.Namespace) -> int:
    """``repro parallel``: the section-6 shared-nothing comparison.

    By default prices NI vs the decorrelated plan in the cost simulator
    at the given cluster size. ``--real`` additionally executes both
    plans on real worker processes (the measured run), prints the
    measured-vs-simulated calibration report and appends the measured
    rows plus a calibration record to the perf history
    (``BENCH_history.jsonl``). ``--faults`` injects the process-level
    sites (``worker.crash``/``worker.stall``/``exchange.drop``) into the
    measured runs only.

    Exit ``0`` when all four answers agree (and, fault-free, measured
    message counts exactly match the simulator); ``1`` otherwise.
    """
    import json

    from .faults import FaultRegistry
    from .parallel import simulate_decorrelated, simulate_nested_iteration
    from .tpcd import load_empdept

    try:
        faults = FaultRegistry.parse(args.faults) if args.faults else None
    except ValueError as exc:
        raise SystemExit(f"--faults: {exc}")
    catalog = load_empdept(
        n_depts=args.depts, n_emps=args.emps, n_buildings=8, seed=args.seed
    )
    dept_rows = list(catalog.table("dept").rows)
    emp_rows = list(catalog.table("emp").rows)

    if not args.real:
        sim_ni = simulate_nested_iteration(dept_rows, emp_rows, args.workers)
        sim_mag = simulate_decorrelated(dept_rows, emp_rows, args.workers)
        print(
            f"simulated section 6 @ {args.workers} nodes "
            f"({args.depts} dept x {args.emps} emp):"
        )
        for name, m in (("ni", sim_ni), ("decorrelated", sim_mag)):
            print(
                f"  {name:<14} makespan={m.makespan:>10.1f} "
                f"messages={m.messages:>6} fragments={m.fragments:>6}"
            )
        if sim_mag.makespan > 0:
            print(
                f"  NI/decorrelated makespan ratio: "
                f"{sim_ni.makespan / sim_mag.makespan:.2f}x"
            )
        return 0

    from .bench.calibration import render_calibration, run_calibration

    report = run_calibration(
        dept_rows,
        emp_rows,
        n_workers=args.workers,
        faults=faults,
        history_path=args.history,
        record_history=not args.no_history,
    )
    print(render_calibration(report))
    if not args.no_history:
        print("appended measured + calibration records to perf history")
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.json}")
    ok = report["answers_agree"] and (
        report["faulty"] or report["calibration"]["messages_exact"]
    )
    return 0 if ok else 1


def cmd_figures(args: argparse.Namespace) -> int:
    """``repro figures``: regenerate the paper's tables and figures."""
    from .bench.figures import ALL_FIGURES, table1

    print(f"Table 1 at scale factor {args.scale}:")
    for name, (expected, actual) in table1(args.scale).items():
        print(f"  {name:<10} expected={expected:>8}  generated={actual:>8}")
    print()
    ok = True
    for name, fn in ALL_FIGURES.items():
        if args.only and name not in args.only:
            continue
        report = fn(
            scale_factor=args.scale, repeat=args.repeat, trace=args.operators
        )
        report.print()
        ok = ok and report.shape_holds()
        print()
    return 0 if ok else 1


#: ``repro explain``/``stats`` query-name shorthands (require ``--tpcd``).
_NAMED_QUERIES = ("q1", "q2", "q3", "q1v", "empdept")


def _resolve_query(name_or_sql: str, tpcd_scale) -> tuple[str, bool]:
    """Resolve a query-name shorthand (q1/q2/q3/q1v/empdept) against the
    TPC-D workload; anything else is returned as SQL text verbatim.
    Returns (sql, is_named)."""
    key = name_or_sql.strip().lower()
    if key not in _NAMED_QUERIES:
        return name_or_sql, False
    from . import tpcd

    named = {
        "q1": tpcd.QUERY_1,
        "q1v": tpcd.QUERY_1_VARIANT,
        "q2": tpcd.QUERY_2,
        "q3": tpcd.QUERY_3,
        "empdept": tpcd.EMP_DEPT_QUERY,
    }
    return named[key], True


def _explain_db(args: argparse.Namespace, needs_data: bool) -> Database:
    """The database for ``explain``/``stats``: ``--tpcd SCALE`` loads the
    paper's workload, ``--db script.sql`` runs a schema script."""
    if args.tpcd is not None:
        from .tpcd import load_empdept, load_tpcd

        catalog = load_tpcd(scale_factor=args.tpcd)
        load_empdept(catalog=catalog)
        return Database(catalog=catalog)
    db = Database()
    if args.db:
        with open(args.db) as handle:
            db.execute_script(handle.read())
    elif needs_data:
        raise SystemExit(
            "explain --analyze needs data: pass --tpcd SCALE or --db script"
        )
    return db


def cmd_explain(args: argparse.Namespace) -> int:
    """``repro explain``: print the (rewritten) QGM of one query.

    ``--analyze`` executes the query under a tracer and prints the
    physical plan annotated EXPLAIN ANALYZE-style (per-operator calls,
    rows, elapsed), the rewrite timeline, a per-operator breakdown and a
    metrics reconciliation footer. ``--tpcd SCALE`` loads the paper's
    TPC-D workload so the named queries q1/q2/q3 (and q1v/empdept) work
    as shorthands. ``--trace-out PATH`` additionally writes the full span
    tree as versioned JSON (see ``repro trace-check``)."""
    sql, is_named = _resolve_query(args.query, args.tpcd)
    if is_named and args.tpcd is None:
        raise SystemExit(
            f"named query {args.query!r} needs --tpcd SCALE for its data"
        )
    db = _explain_db(args, needs_data=args.analyze)
    strategy = _parse_strategy(args.strategy)
    if not args.analyze:
        print(db.explain(sql, strategy))
        return 0

    from .trace import Tracer

    tracer = Tracer()
    print(db.explain(
        sql, strategy, analyze=True, cse_mode=args.cse_mode, tracer=tracer,
    ))
    if args.trace_out:
        import json

        payload = tracer.export(sql=sql, strategy=strategy.value)
        with open(args.trace_out, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.trace_out}")
    return 0


def cmd_stats(args: argparse.Namespace) -> int:
    """``repro stats``: run a seeded workload through the query service
    with tracing on and print the service metrics export.

    The workload is the paper trio (Q1/Q2/Q3) plus EMP/DEPT across all
    four strategies -- enough traffic to populate the latency and
    queue-depth histograms and the per-query trace ring. ``--format
    prometheus`` prints the text exposition format; ``json`` (default)
    the full snapshot including recent traces."""
    from .serve.service import QueryService
    from .tpcd import (
        EMP_DEPT_QUERY, QUERY_1, QUERY_2, QUERY_3, load_empdept, load_tpcd,
    )

    catalog = load_tpcd(scale_factor=args.scale)
    load_empdept(catalog=catalog)
    db = Database(catalog=catalog)
    queries = [QUERY_1, QUERY_2, QUERY_3, EMP_DEPT_QUERY]
    strategies = ["ni", "kim", "dayal", "magic"]
    with QueryService(
        db, workers=args.workers, trace=True,
        trace_history=args.trace_history,
    ) as service:
        tickets = [
            service.submit(sql, strategy=strategy)
            for sql in queries for strategy in strategies
        ]
        for ticket in tickets:
            ticket.wait(timeout=120)
        service.drain(timeout=120)
        stats = service.stats()
    if args.phases:
        histograms = stats.phase_histograms
        if not histograms:
            print("stats: no phase samples recorded", file=sys.stderr)
            return 1
        print(f"{'phase':<12} {'count':>7} {'mean_ms':>10} {'total_ms':>12}"
              f"  cumulative buckets (le: n)")
        for name, data in histograms.items():
            count = data["count"]
            mean_ms = (data["sum"] / count * 1000.0) if count else 0.0
            buckets = " ".join(
                f"{bound:g}:{n}" for bound, n in data["buckets"].items()
            )
            print(
                f"{name:<12} {count:>7} {mean_ms:>10.3f} "
                f"{data['sum'] * 1000.0:>12.3f}  {buckets}"
            )
        return 0
    print(stats.export(args.format))
    return 0


def cmd_trace_check(args: argparse.Namespace) -> int:
    """``repro trace-check``: validate an exported trace JSON file.

    Checks the file against the versioned schema and verifies it
    round-trips byte-identically through the parser (the CI schema
    check). Exit 0 when both hold, 1 otherwise."""
    import json

    from .errors import TraceError
    from .trace import trace_round_trips

    try:
        with open(args.file) as handle:
            payload = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"trace-check: cannot read {args.file}: {exc}", file=sys.stderr)
        return 1
    try:
        if not trace_round_trips(payload):
            print(
                f"trace-check: {args.file} does not round-trip through the "
                "parser", file=sys.stderr,
            )
            return 1
    except TraceError as exc:
        print(f"trace-check: {args.file}: {exc}", file=sys.stderr)
        return 1
    spans = payload.get("spans", [])
    print(
        f"trace-check: {args.file} OK (version {payload.get('version')}, "
        f"{len(spans)} root spans)"
    )
    return 0


def _lint_units(args: argparse.Namespace) -> list[tuple[str, str]]:
    """Expand the lint targets into ``(kind, payload)`` work units.

    ``kind`` is ``"sql"`` (payload: SQL text) or ``"py"`` (payload: a
    Python file or directory for the concurrency lint). A target that
    names an existing directory or ``.py`` file is concurrency-linted;
    a ``.sql`` file is split into statements; anything else is SQL text.
    """
    from .sql.splitter import split_statements

    units: list[tuple[str, str]] = []
    for target in args.targets:
        if os.path.isdir(target) or (
            target.endswith(".py") and os.path.isfile(target)
        ):
            units.append(("py", target))
        elif target.endswith(".sql") and os.path.isfile(target):
            with open(target) as handle:
                units.extend(("sql", s) for s in split_statements(handle.read()))
        else:
            units.append(("sql", target))
    if args.script:
        with open(args.script) as handle:
            units.extend(("sql", s) for s in split_statements(handle.read()))
    return units


def cmd_lint(args: argparse.Namespace) -> int:
    """``repro lint``: static analysis of queries, scripts and modules.

    Each positional target may be SQL text, a ``.sql`` script (split into
    statements), or a Python file/directory (run through the concurrency
    lint, :mod:`repro.analyze.conc`). ``--json`` emits one machine-readable
    report instead of human output.

    Exit codes (stable, scriptable):

    * ``0`` -- every target linted, no error-level diagnostics;
    * ``1`` -- at least one error-level diagnostic was reported;
    * ``2`` -- usage or I/O error (no target, unreadable file/schema).
    """
    import json

    from .analyze import Severity

    if not args.targets and not args.script:
        print("error: no lint target (pass SQL text, a .sql/.py file, "
              "a directory, or --script)", file=sys.stderr)
        return 2
    db = Database()
    try:
        if args.db:
            with open(args.db) as handle:
                db.execute_script(handle.read())
        units = _lint_units(args)
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except ReproError as exc:
        print(f"error in --db script: {exc}", file=sys.stderr)
        return 2

    failed = False
    json_diags: list[dict] = []
    n_sql = sum(1 for kind, _ in units if kind == "sql")
    statement_no = 0
    for kind, payload in units:
        if kind == "py":
            from .analyze.conc import lint_paths

            diagnostics = lint_paths([payload])
            failed = failed or any(
                d.severity is Severity.ERROR for d in diagnostics
            )
            if args.json:
                json_diags.extend(
                    _diag_json(d, target=payload) for d in diagnostics
                )
            else:
                for d in diagnostics:
                    print(str(d))
                print(f"{payload}: {len(diagnostics)} concurrency finding(s)")
        else:
            statement_no += 1
            report = db.analyze(payload)
            failed = failed or not report.ok
            if args.json:
                json_diags.extend(
                    _diag_json(d, target=payload) for d in report.diagnostics
                )
            else:
                if n_sql > 1:
                    print(f"-- statement {statement_no} " + "-" * 40)
                print(report.render(show_analysis=not args.quiet))
                if n_sql > 1:
                    print()
    if args.json:
        print(json.dumps({
            "version": 1,
            "diagnostics": json_diags,
            "errors": sum(1 for d in json_diags if d["severity"] == "error"),
            "warnings": sum(
                1 for d in json_diags if d["severity"] == "warning"
            ),
        }, indent=2, sort_keys=True))
    return 1 if failed else 0


def _diag_json(diagnostic, target: str) -> dict:
    """One diagnostic as a flat JSON-ready object (``--json`` output)."""
    return {
        "code": diagnostic.code,
        "severity": diagnostic.severity.value,
        "message": diagnostic.message,
        "hint": diagnostic.hint,
        "target": target,
    }


def cmd_report(args: argparse.Namespace) -> int:
    """``repro report``: regenerate the evaluation as a Markdown document."""
    from .bench.report import generate_report

    text = generate_report(
        scale_factor=args.scale, repeat=args.repeat, figures=args.only
    )
    if args.out == "-":
        print(text)
    else:
        with open(args.out, "w") as handle:
            handle.write(text + "\n")
        print(f"wrote {args.out}")
    return 0


def cmd_events(args: argparse.Namespace) -> int:
    """``repro events``: inspect a structured event-log JSONL file.

    Validates the stream (schema version, strictly increasing sequence
    numbers, known kinds) and prints the events one per line, optionally
    filtered by kind or query id and limited to the newest ``--tail``.
    ``--json`` prints the raw JSON lines instead; ``--check`` only
    validates and prints per-kind counts. Exit 1 on an invalid stream.
    """
    import json

    from .errors import EventLogError
    from .obs import count_by_kind, load_events, render_event

    try:
        events = load_events(args.file)
    except (OSError, EventLogError) as exc:
        print(f"events: {exc}", file=sys.stderr)
        return 1
    selected = [
        e for e in events
        if (args.kind is None or e["kind"] == args.kind)
        and (args.query_id is None or e["query_id"] == args.query_id)
    ]
    if args.tail is not None:
        selected = selected[-args.tail:]
    if args.check:
        print(f"events: {args.file} OK ({len(events)} events, "
              f"{len(selected)} selected)")
        for kind, count in sorted(count_by_kind(selected).items()):
            print(f"  {kind:<24} {count}")
        return 0
    for event in selected:
        if args.json:
            print(json.dumps(event, sort_keys=True))
        else:
            print(render_event(event))
    return 0


def cmd_why(args: argparse.Namespace) -> int:
    """``repro why``: reconstruct one query's lifecycle from an event log.

    Joins the structured event log (a soak's ``--events-out`` JSONL) for
    one query id into an annotated timeline: lifecycle steps offset from
    submission, the phase budget as a proportional waterfall, brownout
    rung, degradations, budget trips, overlapping service context
    (breaker/brownout movement), and -- with ``--trace`` pointing at an
    exported v2 trace -- the grafted worker-process spans. ``--json``
    prints the machine-readable join instead. Exit 1 when the log cannot
    be read or holds no events for the query id.
    """
    import json

    from .errors import EventLogError, TraceError
    from .obs import build_timeline, load_events, render_timeline

    try:
        events = load_events(args.events)
    except (OSError, EventLogError) as exc:
        print(f"why: {exc}", file=sys.stderr)
        return 1
    trace = None
    if args.trace:
        from .trace import validate_trace

        try:
            with open(args.trace) as handle:
                trace = json.load(handle)
        except (OSError, json.JSONDecodeError) as exc:
            print(f"why: cannot read trace {args.trace}: {exc}",
                  file=sys.stderr)
            return 1
        try:
            validate_trace(trace)
        except TraceError as exc:
            print(f"why: {args.trace}: {exc}", file=sys.stderr)
            return 1
    try:
        timeline = build_timeline(args.query_id, events, trace=trace)
    except EventLogError as exc:
        print(f"why: {exc}", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(timeline, indent=2, sort_keys=True))
    else:
        print(render_timeline(timeline))
    return 0


def cmd_slow(args: argparse.Namespace) -> int:
    """``repro slow``: run the paper workload through the query service
    with a slow-query threshold and print the captured slow-query log.

    The workload matches ``repro stats`` (Q1/Q2/Q3 + EMP/DEPT across the
    four strategies). Queries over ``--threshold-ms`` are captured with
    their SQL, strategy, degradations, metrics and -- since the service
    runs traced -- their top operators. ``--json`` dumps the raw records.
    """
    import json

    from .serve.service import QueryService
    from .obs import render_slow_log
    from .tpcd import (
        EMP_DEPT_QUERY, QUERY_1, QUERY_2, QUERY_3, load_empdept, load_tpcd,
    )

    catalog = load_tpcd(scale_factor=args.scale)
    load_empdept(catalog=catalog)
    db = Database(catalog=catalog)
    queries = [QUERY_1, QUERY_2, QUERY_3, EMP_DEPT_QUERY]
    strategies = ["ni", "kim", "dayal", "magic"]
    with QueryService(
        db, workers=args.workers, trace=True,
        slow_query_ms=args.threshold_ms,
    ) as service:
        tickets = [
            service.submit(sql, strategy=strategy)
            for sql in queries for strategy in strategies
        ]
        for ticket in tickets:
            ticket.wait(timeout=120)
        service.drain(timeout=120)
        records = service.slow_queries()
        total = service.slow_log.total
    print(
        f"slow queries (> {args.threshold_ms} ms): {total} of "
        f"{len(tickets)} submitted"
    )
    if args.json:
        print(json.dumps(records, indent=2, sort_keys=True))
    elif records:
        print(render_slow_log(records, indent="  "))
    return 0


def cmd_profile(args: argparse.Namespace) -> int:
    """``repro profile``: run another repro command under the sampling
    profiler and export its profile.

    Example::

        repro profile --speedscope-out soak.speedscope.json -- \\
            soak --seconds 5 --trace

    Tracers created by the wrapped command register automatically, so
    samples taken while a traced query executes are attributed to its
    plan operators (``op:`` frames at the flamegraph root).
    """
    import json

    from .errors import EventLogError
    from .obs import profiling

    command = list(args.command)
    if command and command[0] == "--":
        command = command[1:]
    if not command:
        print("profile: no command given (usage: repro profile "
              "[options] -- <repro args>)", file=sys.stderr)
        return 2
    if command[0] == "profile":
        print("profile: refusing to profile itself", file=sys.stderr)
        return 2
    try:
        with profiling(interval=args.interval) as profiler:
            code = main(command)
    except EventLogError as exc:
        print(f"profile: {exc}", file=sys.stderr)
        return 2
    if args.speedscope_out:
        with open(args.speedscope_out, "w") as handle:
            json.dump(
                profiler.speedscope(" ".join(command)), handle, sort_keys=True
            )
            handle.write("\n")
        print(f"wrote {args.speedscope_out} "
              f"({profiler.sample_count} samples)")
    if args.collapsed_out:
        with open(args.collapsed_out, "w") as handle:
            handle.write(profiler.collapsed())
        print(f"wrote {args.collapsed_out}")
    if not args.speedscope_out and not args.collapsed_out:
        print(profiler.collapsed(), end="")
    top = list(profiler.operator_samples().items())[:10]
    if top:
        print("profile: operator samples (top 10):")
        for name, samples in top:
            print(f"  {name:<32} {samples:>6}")
    return code


def cmd_bench_compare(args: argparse.Namespace) -> int:
    """``repro bench-compare``: flag perf regressions against a baseline.

    Compares the newest matching record of the perf history
    (``BENCH_history.jsonl``) against a named baseline JSON
    (``BENCH_service.json`` layout): throughput may drop and latencies
    may rise at most ``--tolerance`` (fractional). Exit 0 within
    tolerance, 1 on a regression (0 with ``--warn-only``), 2 on bad
    configuration or malformed files.
    """
    import json

    from .bench import history as bench_history
    from .errors import HistoryError

    try:
        with open(args.baseline) as handle:
            baseline = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"bench-compare: cannot read baseline {args.baseline!r}: "
              f"{exc}", file=sys.stderr)
        return 2
    history_path = args.history or bench_history.DEFAULT_HISTORY_PATH
    try:
        records = bench_history.load_history(history_path)
        current = bench_history.latest(records, benchmark=args.benchmark)
        problems = bench_history.compare(
            current, baseline, tolerance=args.tolerance
        )
    except HistoryError as exc:
        print(f"bench-compare: {exc}", file=sys.stderr)
        return 2
    sha = current.get("git_sha") or "?"
    print(
        f"bench-compare: {history_path} [{current['benchmark']} @ {sha}] "
        f"vs {args.baseline} (tolerance {args.tolerance:.0%})"
    )
    for key, _ in bench_history.COMPARE_METRICS:
        if key in current or key in baseline:
            print(f"  {key:<18} current={current.get(key)!r:>12} "
                  f"baseline={baseline.get(key)!r:>12}")
    if problems:
        for problem in problems:
            print(f"REGRESSION: {problem}", file=sys.stderr)
        if args.warn_only:
            print("bench-compare: regressions found (warn-only mode)")
            return 0
        return 1
    print("bench-compare: within tolerance")
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Complex Query Decorrelation (ICDE 1996) reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="execute a SQL script")
    p_run.add_argument("script")
    p_run.add_argument("--strategy", default="ni")
    p_run.add_argument("--cse-mode", default="recompute", dest="cse_mode")
    p_run.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="wall-clock budget per query; exit 124 when tripped",
    )
    p_run.add_argument(
        "--max-rows", type=int, default=None, dest="max_rows", metavar="N",
        help="budget on base-table rows scanned per query; exit 125 when tripped",
    )
    p_run.add_argument(
        "--faults", default=None, metavar="SEED:SPEC",
        help="deterministic fault injection, e.g. '42:exec.join=0.01' "
             "(overrides REPRO_FAULTS)",
    )
    p_run.add_argument(
        "--fallback", action="store_true",
        help="degrade requested strategy -> magic -> nested iteration on "
             "rewrite failure",
    )
    p_run.set_defaults(fn=cmd_run)

    p_soak = sub.add_parser(
        "soak", help="chaos soak: concurrent mixed workload with faults"
    )
    p_soak.add_argument("--workers", type=int, default=8)
    p_soak.add_argument("--seconds", type=float, default=20.0)
    p_soak.add_argument("--seed", type=int, default=42)
    p_soak.add_argument(
        "--faults", default=None, metavar="SEED:SPEC",
        help="deterministic fault injection, e.g. "
             "'42:storage.scan=0.002,rewrite.strategy=0.05'",
    )
    p_soak.add_argument("--scale", type=float, default=0.005,
                        help="TPC-D scale factor for the soak database")
    p_soak.add_argument("--cancel-rate", type=float, default=0.05,
                        dest="cancel_rate",
                        help="probability a background canceller targets an "
                             "in-flight query each tick")
    p_soak.add_argument("--tight-deadline-rate", type=float, default=0.1,
                        dest="tight_deadline_rate",
                        help="fraction of submissions given a millisecond "
                             "deadline")
    p_soak.add_argument("--max-queue", type=int, default=64, dest="max_queue")
    p_soak.add_argument("--breaker-threshold", type=int, default=3,
                        dest="breaker_threshold")
    p_soak.add_argument("--breaker-cooldown", type=float, default=1.0,
                        dest="breaker_cooldown")
    p_soak.add_argument("--fault-scope", choices=["shared", "worker"],
                        default="shared", dest="fault_scope")
    p_soak.add_argument("--trace", action="store_true",
                        help="trace every query; report per-operator totals "
                             "(with --real-workers: run each epoch under a "
                             "coordinator tracer that grafts worker spans)")
    p_soak.add_argument("--trace-out", default=None, metavar="PATH",
                        dest="trace_out",
                        help="with --real-workers, write the last epoch's "
                             "v2 trace export (grafted worker spans) as "
                             "JSON -- feed it to 'repro why --trace' "
                             "(implies --trace)")
    p_soak.add_argument("--json", default=None, metavar="PATH",
                        help="write the full report as JSON")
    p_soak.add_argument("--bench-out", default=None, metavar="PATH",
                        dest="bench_out",
                        help="write a throughput/latency baseline JSON "
                             "(e.g. BENCH_service.json)")
    p_soak.add_argument("--events-out", default=None, metavar="PATH",
                        dest="events_out",
                        help="stream structured lifecycle events as JSONL "
                             "(validated after the run)")
    p_soak.add_argument("--profile-out", default=None, metavar="PATH",
                        dest="profile_out",
                        help="write a speedscope JSON profile of the soak "
                             "(implies --trace for operator attribution)")
    p_soak.add_argument("--profile-collapsed", default=None, metavar="PATH",
                        dest="profile_collapsed",
                        help="write a collapsed-stack (flamegraph.pl) "
                             "profile (implies --trace)")
    p_soak.add_argument("--profile-interval", type=float, default=0.002,
                        dest="profile_interval",
                        help="profiler sampling interval in seconds")
    p_soak.add_argument("--slow-ms", type=float, default=None,
                        dest="slow_ms", metavar="MS",
                        help="capture queries slower than this threshold "
                             "on the service slow-query log")
    p_soak.add_argument("--history", default=None, metavar="PATH",
                        help="perf-history JSONL to append this run to "
                             "(default BENCH_history.jsonl; "
                             "REPRO_BENCH_HISTORY overrides)")
    p_soak.add_argument("--no-history", action="store_true",
                        dest="no_history",
                        help="skip the perf-history append")
    p_soak.add_argument("--real-workers", action="store_true",
                        dest="real_workers",
                        help="chaos-soak the real worker-process executor "
                             "instead of the query service (--workers then "
                             "counts processes; one is SIGKILLed per epoch)")
    p_soak.add_argument("--overload", action="store_true",
                        help="run the phased overload soak instead: replay "
                             "one open-loop arrival schedule against "
                             "adaptive overload control and the FIFO "
                             "baseline, and compare within-deadline "
                             "goodput")
    p_soak.add_argument("--plan-cache", action="store_true",
                        dest="plan_cache",
                        help="run the plan-cache A/B soak instead: replay "
                             "one open-loop template workload with the "
                             "plan cache on and off, gate on strict "
                             "goodput win + hit rate > 0.9 + exact "
                             "counter/event reconciliation")
    p_soak.add_argument("--epochs", type=int, default=4,
                        help="query epochs for --real-workers")
    p_soak.add_argument("--no-kill", action="store_true", dest="no_kill",
                        help="with --real-workers, skip the per-epoch "
                             "SIGKILL (fault spec only)")
    p_soak.set_defaults(fn=cmd_soak)

    p_par = sub.add_parser(
        "parallel",
        help="section-6 shared-nothing comparison: simulator, or --real "
             "worker processes with measured-vs-simulated calibration",
    )
    p_par.add_argument("--workers", "--nodes", type=int, default=4,
                       dest="workers",
                       help="cluster size (simulator nodes / real processes)")
    p_par.add_argument("--depts", type=int, default=40,
                       help="DEPT rows to generate")
    p_par.add_argument("--emps", type=int, default=300,
                       help="EMP rows to generate")
    p_par.add_argument("--seed", type=int, default=2,
                       help="data-generator seed")
    p_par.add_argument("--real", action="store_true",
                       help="also execute on real worker processes and "
                            "print the calibration report")
    p_par.add_argument("--faults", default=None, metavar="SEED:SPEC",
                       help="process-level fault injection for the measured "
                            "runs, e.g. '7:worker.crash=0.05'")
    p_par.add_argument("--history", default=None, metavar="PATH",
                       help="perf-history JSONL to append measured rows to "
                            "(default BENCH_history.jsonl)")
    p_par.add_argument("--no-history", action="store_true",
                       dest="no_history",
                       help="skip the perf-history append")
    p_par.add_argument("--json", default=None, metavar="PATH",
                       help="write the calibration report as JSON")
    p_par.set_defaults(fn=cmd_parallel)

    p_shell = sub.add_parser("shell", help="interactive SQL shell")
    p_shell.add_argument("--strategy", default="ni")
    p_shell.set_defaults(fn=cmd_shell)

    p_fig = sub.add_parser("figures", help="regenerate the paper's figures")
    p_fig.add_argument("--scale", type=float, default=0.01)
    p_fig.add_argument("--repeat", type=int, default=1)
    p_fig.add_argument("--only", nargs="*", default=None,
                       help="e.g. --only figure8 figure9")
    p_fig.add_argument("--operators", action="store_true",
                       help="add a traced run per strategy and print "
                            "per-operator breakdowns")
    p_fig.set_defaults(fn=cmd_figures)

    p_lint = sub.add_parser(
        "lint", help="static analysis: diagnostics, patterns, applicability, "
                     "and the concurrency lint for Python modules"
    )
    p_lint.add_argument(
        "targets", nargs="*",
        help="SQL text, .sql scripts, or Python files/directories "
             "(the latter run the concurrency lint); exit 0 clean, "
             "1 on errors, 2 on usage/I-O problems",
    )
    p_lint.add_argument("--script", help="lint every statement of a script")
    p_lint.add_argument("--db", help="SQL script creating the schema")
    p_lint.add_argument("--quiet", action="store_true",
                        help="diagnostics only (no pattern/strategy report)")
    p_lint.add_argument("--json", action="store_true",
                        help="machine-readable report on stdout")
    p_lint.set_defaults(fn=cmd_lint)

    p_explain = sub.add_parser(
        "explain",
        help="print the rewritten QGM (or, with --analyze, the executed "
             "plan with per-operator profiling)",
    )
    p_explain.add_argument(
        "query",
        help="SQL text, or a named query (q1/q2/q3/q1v/empdept, with --tpcd)",
    )
    p_explain.add_argument("--db", help="SQL script creating the schema")
    p_explain.add_argument("--strategy", default="magic")
    p_explain.add_argument(
        "--analyze", action="store_true",
        help="execute the query under a tracer and annotate the plan with "
             "actual per-operator rows/calls/elapsed",
    )
    p_explain.add_argument(
        "--tpcd", type=float, default=None, metavar="SCALE",
        help="load the TPC-D + EMP/DEPT workload at this scale factor",
    )
    p_explain.add_argument("--cse-mode", default="recompute", dest="cse_mode")
    p_explain.add_argument(
        "--trace-out", default=None, metavar="PATH", dest="trace_out",
        help="write the span tree as versioned JSON (with --analyze)",
    )
    p_explain.set_defaults(fn=cmd_explain)

    p_stats = sub.add_parser(
        "stats",
        help="run a traced workload through the query service and print "
             "its metrics export",
    )
    p_stats.add_argument("--scale", type=float, default=0.005,
                         help="TPC-D scale factor for the workload")
    p_stats.add_argument("--workers", type=int, default=4)
    p_stats.add_argument("--trace-history", type=int, default=64,
                         dest="trace_history",
                         help="ring-buffer size for per-query trace summaries")
    p_stats.add_argument("--format", choices=["json", "prometheus"],
                         default="json")
    p_stats.add_argument("--phases", action="store_true",
                         help="print the per-phase latency histogram table "
                              "instead of the full export")
    p_stats.set_defaults(fn=cmd_stats)

    p_trace = sub.add_parser(
        "trace-check",
        help="validate an exported trace JSON file (schema + round-trip)",
    )
    p_trace.add_argument("file")
    p_trace.set_defaults(fn=cmd_trace_check)

    p_events = sub.add_parser(
        "events",
        help="inspect/validate a structured event-log JSONL file",
    )
    p_events.add_argument("file")
    p_events.add_argument("--kind", default=None,
                          help="only events of this kind "
                               "(e.g. query.finished)")
    p_events.add_argument("--query-id", type=int, default=None,
                          dest="query_id",
                          help="only events attributed to this query id")
    p_events.add_argument("--tail", type=int, default=None, metavar="N",
                          help="only the newest N selected events")
    p_events.add_argument("--json", action="store_true",
                          help="print raw JSON lines instead of the "
                               "rendered form")
    p_events.add_argument("--check", action="store_true",
                          help="validate only; print per-kind counts")
    p_events.set_defaults(fn=cmd_events)

    p_why = sub.add_parser(
        "why",
        help="explain one query's lifecycle from an event log "
             "(timeline, phase waterfall, worker spans)",
    )
    p_why.add_argument("query_id", type=int,
                       help="the query id to explain (see repro events)")
    p_why.add_argument("--events", required=True, metavar="PATH",
                       help="event-log JSONL (a soak's --events-out file)")
    p_why.add_argument("--trace", default=None, metavar="PATH",
                       help="exported v2 trace JSON whose grafted worker "
                            "spans to include")
    p_why.add_argument("--json", action="store_true",
                       help="print the machine-readable join instead of "
                            "the rendered waterfall")
    p_why.set_defaults(fn=cmd_why)

    p_slow = sub.add_parser(
        "slow",
        help="run the paper workload with a slow-query threshold and "
             "print the captured slow-query log",
    )
    p_slow.add_argument("--threshold-ms", type=float, default=50.0,
                        dest="threshold_ms",
                        help="capture queries slower than this (ms)")
    p_slow.add_argument("--scale", type=float, default=0.005,
                        help="TPC-D scale factor for the workload")
    p_slow.add_argument("--workers", type=int, default=4)
    p_slow.add_argument("--json", action="store_true",
                        help="dump the raw slow-query records as JSON")
    p_slow.set_defaults(fn=cmd_slow)

    p_profile = sub.add_parser(
        "profile",
        help="run another repro command under the sampling profiler",
    )
    p_profile.add_argument("--interval", type=float, default=0.002,
                           help="sampling interval in seconds")
    p_profile.add_argument("--speedscope-out", default=None, metavar="PATH",
                           dest="speedscope_out",
                           help="write a speedscope JSON profile")
    p_profile.add_argument("--collapsed-out", default=None, metavar="PATH",
                           dest="collapsed_out",
                           help="write collapsed stacks (flamegraph.pl "
                                "format)")
    p_profile.add_argument("command", nargs=argparse.REMAINDER,
                           help="the repro command to profile "
                                "(after '--')")
    p_profile.set_defaults(fn=cmd_profile)

    p_compare = sub.add_parser(
        "bench-compare",
        help="flag perf regressions: newest history record vs a baseline",
    )
    p_compare.add_argument("--baseline", default="BENCH_service.json",
                           help="baseline JSON (BENCH_service.json layout)")
    p_compare.add_argument("--history", default=None, metavar="PATH",
                           help="perf-history JSONL "
                                "(default BENCH_history.jsonl)")
    p_compare.add_argument("--benchmark", default=None,
                           help="restrict to records of this benchmark name")
    p_compare.add_argument("--tolerance", type=float, default=0.2,
                           help="fractional regression tolerance "
                                "(default 0.2)")
    p_compare.add_argument("--warn-only", action="store_true",
                           dest="warn_only",
                           help="report regressions but exit 0")
    p_compare.set_defaults(fn=cmd_bench_compare)

    p_report = sub.add_parser(
        "report", help="write the full evaluation as Markdown"
    )
    p_report.add_argument("--scale", type=float, default=0.01)
    p_report.add_argument("--repeat", type=int, default=1)
    p_report.add_argument("--out", default="-",
                          help="output path ('-' for stdout)")
    p_report.add_argument("--only", nargs="*", default=None)
    p_report.set_defaults(fn=cmd_report)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
