"""Pre-execution semantic analysis over the SQL AST.

Mirrors the QGM builder's binding rules (``repro.qgm.builder``) but is
*error-tolerant*: instead of raising on the first :class:`BindError`, it
collects every problem it can find as coded diagnostics. Unknown tables
become wildcard relations (any column resolves against them) so one typo in
FROM does not cascade into a spurious unknown-column error per reference.

The analyzer also performs correlation-depth analysis: a name that resolves
in an *enclosing* query block is exactly what the paper calls a correlation,
and is reported as an informational ``SEM101`` diagnostic carrying the
number of block levels the reference crosses.
"""

from __future__ import annotations

import difflib
from dataclasses import dataclass, field
from typing import Optional

from ..errors import LexError, ParseError
from ..sql import ast
from ..sql.parser import parse_statement
from ..storage.catalog import Catalog
from .diagnostics import Diagnostic, Severity

#: Clauses in which aggregate calls are illegal (they would end up inside
#: SPJ predicates, which ``validate_graph`` rejects).
_NO_AGGREGATE_CLAUSES = frozenset({"WHERE", "GROUP BY", "join condition"})


@dataclass
class _Relation:
    """One FROM binding. ``columns is None`` marks a wildcard relation (its
    definition was unknown or invalid); every column resolves against it so
    follow-on errors are suppressed."""

    alias: str
    columns: Optional[list[str]]


@dataclass
class _Scope:
    parent: Optional["_Scope"] = None
    relations: list[_Relation] = field(default_factory=list)

    def find(self, alias: str) -> Optional[_Relation]:
        for relation in self.relations:
            if relation.alias == alias:
                return relation
        return None


class SemanticAnalyzer:
    """Collects semantic diagnostics for one statement."""

    def __init__(self, catalog: Catalog, _view_stack: Optional[list[str]] = None):
        self.catalog = catalog
        self.diagnostics: list[Diagnostic] = []
        self._view_stack: list[str] = _view_stack if _view_stack is not None else []

    # -- entry points --------------------------------------------------------

    def analyze(self, statement: ast.Statement) -> list[Diagnostic]:
        if isinstance(statement, (ast.Select, ast.SetOp)):
            self._visit_query(statement, None, top=True)
        elif isinstance(statement, ast.CreateView):
            self._visit_query(statement.query, None)
        elif isinstance(statement, ast.Insert):
            if not self.catalog.has_table(statement.table):
                self._emit("SEM001", Severity.ERROR,
                           f"unknown table {statement.table!r}", None,
                           hint=self._table_hint(statement.table))
            if statement.query is not None:
                self._visit_query(statement.query, None)
        return self.diagnostics

    # -- helpers -------------------------------------------------------------

    def _emit(
        self,
        code: str,
        severity: Severity,
        message: str,
        span: Optional[ast.Span],
        hint: Optional[str] = None,
    ) -> None:
        self.diagnostics.append(Diagnostic(code, severity, message, span, hint))

    def _table_hint(self, name: str) -> Optional[str]:
        known = sorted(
            [t.name for t in self.catalog.tables()]
            + [v for v in getattr(self.catalog, "_views", {})]
        )
        close = difflib.get_close_matches(name.lower(), known, n=1)
        return f"did you mean {close[0]!r}?" if close else None

    @staticmethod
    def _column_hint(name: str, candidates: list[str]) -> Optional[str]:
        close = difflib.get_close_matches(name.lower(), candidates, n=1)
        return f"did you mean {close[0]!r}?" if close else None

    @staticmethod
    def _contains_aggregate(expr: ast.Expr) -> bool:
        return any(isinstance(n, ast.AggregateCall) for n in expr.walk())

    # -- query bodies --------------------------------------------------------

    def _visit_query(
        self, body: ast.QueryBody, scope: Optional[_Scope], top: bool = False
    ) -> Optional[list[str]]:
        """Analyze a query body; returns its output column names when they
        can be determined, ``None`` otherwise."""
        if isinstance(body, ast.Select):
            return self._visit_select(body, scope, top=top)
        left = self._visit_query(body.left, scope)
        right = self._visit_query(body.right, scope)
        if left is not None and right is not None and len(left) != len(right):
            self._emit(
                "SEM012", Severity.ERROR,
                f"{body.op.upper()} arms have different arities "
                f"({len(left)} vs {len(right)})",
                ast.span_of(body),
            )
        names = left if left is not None else right
        if top and names is not None:
            self._check_order_positions(body.order_by, len(names))
        return names

    def _visit_select(
        self, select: ast.Select, outer: Optional[_Scope], top: bool = False
    ) -> Optional[list[str]]:
        scope = _Scope(parent=outer)
        for item in select.from_items:
            self._add_from_item(item, scope)

        if select.where is not None:
            self._check_expr(select.where, scope, "WHERE")
        for group in select.group_by:
            self._check_expr(group, scope, "GROUP BY")
        if select.having is not None:
            self._check_expr(select.having, scope, "HAVING")
        for item in select.items:
            if isinstance(item.expr, ast.Star):
                self._check_star(item.expr, scope)
            else:
                self._check_expr(item.expr, scope, "select list")
        for order in select.order_by:
            if not isinstance(order.expr, (ast.Literal, ast.Name)):
                self._check_expr(order.expr, scope, "ORDER BY")

        has_aggregates = any(
            not isinstance(i.expr, ast.Star) and self._contains_aggregate(i.expr)
            for i in select.items
        )
        having_aggregates = (
            select.having is not None and self._contains_aggregate(select.having)
        )
        if (
            select.having is not None
            and not select.group_by
            and not having_aggregates
            and not has_aggregates
        ):
            self._emit(
                "SEM008", Severity.ERROR,
                "HAVING requires GROUP BY or aggregates",
                ast.span_of(select.having),
            )
        if select.group_by or has_aggregates or having_aggregates:
            self._check_grouping(select, scope)

        names = self._output_names(select, scope)
        if top and names is not None:
            self._check_order_positions(select.order_by, len(names))
        return names

    def _check_order_positions(
        self, order_by: tuple[ast.OrderItem, ...], n_outputs: int
    ) -> None:
        for item in order_by:
            expr = item.expr
            if isinstance(expr, ast.Literal) and isinstance(expr.value, int):
                if not 1 <= expr.value <= n_outputs:
                    self._emit(
                        "SEM013", Severity.ERROR,
                        f"ORDER BY position {expr.value} out of range "
                        f"(query produces {n_outputs} column(s))",
                        ast.span_of(expr),
                    )

    # -- FROM ----------------------------------------------------------------

    def _add_from_item(self, item: ast.FromItem, scope: _Scope) -> None:
        if isinstance(item, ast.TableRef):
            columns = self._relation_columns(item.name, ast.span_of(item))
            self._add_relation(scope, item.binding_name, columns, ast.span_of(item))
            return
        if isinstance(item, ast.DerivedTable):
            # Derived tables bind against the *current* scope (the paper's
            # Query 3 correlates a table expression to a sibling quantifier),
            # so earlier FROM items are already visible here.
            names = self._visit_query(item.query, scope)
            if item.column_aliases:
                if names is not None and len(names) != len(item.column_aliases):
                    self._emit(
                        "SEM012", Severity.ERROR,
                        f"derived table {item.alias!r} alias list names "
                        f"{len(item.column_aliases)} column(s) but the query "
                        f"produces {len(names)}",
                        ast.span_of(item),
                    )
                names = [a.lower() for a in item.column_aliases]
            self._add_relation(scope, item.binding_name, names, ast.span_of(item))
            return
        if isinstance(item, ast.Join):
            self._add_from_item(item.left, scope)
            self._add_from_item(item.right, scope)
            if item.condition is not None:
                self._check_expr(item.condition, scope, "join condition")
            return

    def _add_relation(
        self,
        scope: _Scope,
        alias: str,
        columns: Optional[list[str]],
        span: Optional[ast.Span],
    ) -> None:
        if scope.find(alias) is not None:
            self._emit(
                "SEM005", Severity.ERROR,
                f"duplicate alias {alias!r} in FROM", span,
            )
            return
        scope.relations.append(_Relation(alias, columns))

    def _relation_columns(
        self, name: str, span: Optional[ast.Span]
    ) -> Optional[list[str]]:
        key = name.lower()
        if self.catalog.has_view(name):
            if key in self._view_stack:
                self._emit(
                    "SEM001", Severity.ERROR,
                    "cyclic view definition: "
                    + " -> ".join(self._view_stack + [key]),
                    span,
                )
                return None
            try:
                statement = parse_statement(self.catalog.view_sql(name))
            except (LexError, ParseError):
                return None
            if not isinstance(statement, (ast.Select, ast.SetOp)):
                return None
            # Analyze the view body in its own analyzer so its diagnostics
            # (reported when the view was created) do not repeat here; we
            # only need the output column names.
            sub = SemanticAnalyzer(
                self.catalog, _view_stack=self._view_stack + [key]
            )
            return sub._visit_query(statement, None)
        if self.catalog.has_table(name):
            return list(self.catalog.table(name).schema.names())
        self._emit(
            "SEM001", Severity.ERROR,
            f"unknown table or view {name!r}", span,
            hint=self._table_hint(name),
        )
        return None

    # -- expressions ---------------------------------------------------------

    def _check_expr(
        self,
        expr: ast.Expr,
        scope: _Scope,
        clause: str,
        in_aggregate: bool = False,
    ) -> None:
        if isinstance(expr, ast.Name):
            self._resolve_name(expr, scope)
            return
        if isinstance(expr, ast.Star):
            self._emit(
                "SEM010", Severity.ERROR,
                f"* is not allowed in {clause}", ast.span_of(expr),
            )
            return
        if isinstance(expr, ast.AggregateCall):
            if clause in _NO_AGGREGATE_CLAUSES:
                self._emit(
                    "SEM006", Severity.ERROR,
                    f"aggregate {expr.func.upper()} is not allowed in {clause}",
                    ast.span_of(expr),
                )
            if in_aggregate:
                self._emit(
                    "SEM007", Severity.ERROR,
                    "aggregate calls cannot be nested", ast.span_of(expr),
                )
            if expr.argument is not None:
                self._check_expr(expr.argument, scope, clause, in_aggregate=True)
            return
        if isinstance(expr, ast.ScalarSubquery):
            names = self._visit_query(expr.query, scope)
            if names is not None and len(names) != 1:
                self._emit(
                    "SEM009", Severity.ERROR,
                    f"scalar subquery must produce exactly one column, "
                    f"got {len(names)}",
                    ast.span_of(expr),
                )
            return
        if isinstance(expr, ast.Exists):
            self._visit_query(expr.query, scope)
            return
        if isinstance(expr, (ast.InSubquery, ast.QuantifiedComparison)):
            self._check_expr(expr.operand, scope, clause, in_aggregate)
            construct = (
                "IN" if isinstance(expr, ast.InSubquery)
                else expr.quantifier.upper()
            )
            names = self._visit_query(expr.query, scope)
            if names is not None and len(names) != 1:
                self._emit(
                    "SEM009", Severity.ERROR,
                    f"{construct} subquery must produce exactly one column, "
                    f"got {len(names)}",
                    ast.span_of(expr),
                )
            return
        for child in expr.children():
            self._check_expr(child, scope, clause, in_aggregate)

    def _check_star(self, star: ast.Star, scope: _Scope) -> None:
        if star.qualifier is None:
            if not scope.relations:
                self._emit(
                    "SEM010", Severity.ERROR,
                    "* with no FROM clause", ast.span_of(star),
                )
            return
        alias = star.qualifier.lower()
        if scope.find(alias) is None:
            self._emit(
                "SEM004", Severity.ERROR,
                f"unknown alias {alias!r} in {alias}.*", ast.span_of(star),
            )

    def _resolve_name(self, name: ast.Name, scope: _Scope) -> None:
        parts = tuple(p.lower() for p in name.parts)
        span = ast.span_of(name)
        if len(parts) > 2:
            self._emit(
                "SEM004", Severity.ERROR,
                f"over-qualified name {'.'.join(parts)!r}", span,
            )
            return
        if len(parts) == 2:
            alias, column = parts
            depth = 0
            current: Optional[_Scope] = scope
            while current is not None:
                relation = current.find(alias)
                if relation is not None:
                    if (
                        relation.columns is not None
                        and column not in relation.columns
                    ):
                        self._emit(
                            "SEM002", Severity.ERROR,
                            f"column {column!r} not found in {alias!r}", span,
                            hint=self._column_hint(column, relation.columns),
                        )
                    elif depth > 0:
                        self._report_correlation(str(name), depth, span)
                    return
                current = current.parent
                depth += 1
            self._emit(
                "SEM004", Severity.ERROR, f"unknown alias {alias!r}", span,
            )
            return
        column = parts[0]
        depth = 0
        wildcard = False
        candidates: list[str] = []
        current = scope
        while current is not None:
            matches = [
                r for r in current.relations
                if r.columns is not None and column in r.columns
            ]
            wildcard = wildcard or any(
                r.columns is None for r in current.relations
            )
            if len(matches) > 1:
                self._emit(
                    "SEM003", Severity.ERROR,
                    f"ambiguous column {column!r} (in "
                    + " and ".join(repr(m.alias) for m in matches)
                    + ")",
                    span,
                )
                return
            if matches:
                if depth > 0:
                    self._report_correlation(column, depth, span)
                return
            for relation in current.relations:
                candidates.extend(relation.columns or [])
            current = current.parent
            depth += 1
        if not wildcard:
            self._emit(
                "SEM002", Severity.ERROR,
                f"unknown column {column!r}", span,
                hint=self._column_hint(column, candidates),
            )

    def _report_correlation(
        self, name: str, depth: int, span: Optional[ast.Span]
    ) -> None:
        self._emit(
            "SEM101", Severity.INFO,
            f"{name!r} is a correlated reference crossing {depth} query "
            f"block level(s)",
            span,
        )

    # -- grouping ------------------------------------------------------------

    def _check_grouping(self, select: ast.Select, scope: _Scope) -> None:
        """SEM011: in a grouped block, bare columns of *this* block must be
        grouping expressions. Conservative: bails out when a grouping
        expression is not a plain column name."""
        group_keys: list[tuple[int, str]] = []
        for group in select.group_by:
            if not isinstance(group, ast.Name):
                return
            key = self._resolution_key(group, scope)
            if key is None:
                return
            group_keys.append(key)

        checked: list[tuple[ast.Expr, str]] = []
        for item in select.items:
            if isinstance(item.expr, ast.Star):
                return
            checked.append((item.expr, "select list"))
        if select.having is not None:
            checked.append((select.having, "HAVING"))

        for expr, clause in checked:
            for name in self._names_outside_aggregates(expr):
                key = self._resolution_key(name, scope)
                if key is not None and key not in group_keys:
                    self._emit(
                        "SEM011", Severity.ERROR,
                        f"column {str(name)!r} in {clause} must appear in "
                        "GROUP BY or inside an aggregate",
                        ast.span_of(name),
                    )

    def _names_outside_aggregates(self, expr: ast.Expr) -> list[ast.Name]:
        if isinstance(expr, ast.AggregateCall):
            return []
        if isinstance(expr, ast.Name):
            return [expr]
        names: list[ast.Name] = []
        for child in expr.children():
            names.extend(self._names_outside_aggregates(child))
        return names

    def _resolution_key(
        self, name: ast.Name, scope: _Scope
    ) -> Optional[tuple[int, str]]:
        """Silently resolve ``name`` in the current block only; returns
        ``(relation identity, column)`` or ``None`` when the name is
        unresolved, ambiguous, correlated, or hits a wildcard relation."""
        parts = tuple(p.lower() for p in name.parts)
        if len(parts) == 2:
            relation = scope.find(parts[0])
            if relation is None or relation.columns is None:
                return None
            if parts[1] not in relation.columns:
                return None
            return (id(relation), parts[1])
        if len(parts) != 1:
            return None
        if any(r.columns is None for r in scope.relations):
            return None
        matches = [r for r in scope.relations if parts[0] in (r.columns or [])]
        if len(matches) != 1:
            return None
        return (id(matches[0]), parts[0])

    # -- output names (mirrors builder naming) --------------------------------

    def _output_names(
        self, select: ast.Select, scope: _Scope
    ) -> Optional[list[str]]:
        raw: list[str] = []
        for item in select.items:
            if isinstance(item.expr, ast.Star):
                if item.expr.qualifier is None:
                    relations = scope.relations
                else:
                    relation = scope.find(item.expr.qualifier.lower())
                    relations = [relation] if relation is not None else []
                for relation in relations:
                    if relation.columns is None:
                        return None
                    raw.extend(relation.columns)
                continue
            name = item.alias
            if name is None:
                if isinstance(item.expr, ast.Name):
                    name = item.expr.parts[-1]
                elif isinstance(item.expr, ast.AggregateCall):
                    name = item.expr.func
                else:
                    name = f"c{len(raw)}"
            raw.append(name.lower())
        # Builder-style de-duplication with _N suffixes.
        used: set[str] = set()
        names: list[str] = []
        for name in raw:
            base, counter = name, 1
            while name in used:
                name = f"{base}_{counter}"
                counter += 1
            used.add(name)
            names.append(name)
        return names


def analyze_statement(
    statement: ast.Statement, catalog: Catalog
) -> list[Diagnostic]:
    """Semantic diagnostics for a parsed statement."""
    return SemanticAnalyzer(catalog).analyze(statement)
