"""Static analysis for SQL text and query graphs.

The pipeline run by :func:`analyze_sql`:

1. parse (lex/parse failures become ``SYN001``/``SYN002`` diagnostics);
2. semantic analysis over the AST (:mod:`repro.analyze.semantic`) --
   error-tolerant name resolution, aggregate placement, arity checks and
   correlation-depth analysis, all as coded ``SEM`` diagnostics;
3. when no semantic errors were found, bind to QGM and run the lint rules
   (:mod:`repro.analyze.lint`), the correlation-pattern classifier and the
   per-strategy applicability checkers.

Exposed to users as ``Database.analyze()`` and ``python -m repro lint``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..errors import BindError, CatalogError, LexError, ParseError
from ..sql import ast
from ..sql.parser import parse_statement
from ..storage.catalog import Catalog
from .diagnostics import (
    CODES,
    Diagnostic,
    Severity,
    render_diagnostic,
    render_diagnostics,
    sort_key,
)
from .lint import (
    LINT_RULES,
    LintRule,
    PatternMatch,
    StrategyVerdict,
    classify_patterns,
    lint_graph,
    pattern_diagnostics,
    strategy_verdicts,
    verdict_diagnostics,
)
from .semantic import SemanticAnalyzer, analyze_statement

__all__ = [
    "CODES",
    "Diagnostic",
    "Severity",
    "render_diagnostic",
    "render_diagnostics",
    "LINT_RULES",
    "LintRule",
    "PatternMatch",
    "StrategyVerdict",
    "classify_patterns",
    "lint_graph",
    "SemanticAnalyzer",
    "analyze_statement",
    "strategy_verdicts",
    "AnalysisReport",
    "analyze_sql",
]


@dataclass
class AnalysisReport:
    """Everything the analyzer found out about one statement."""

    sql: str
    diagnostics: list[Diagnostic] = field(default_factory=list)
    patterns: list[PatternMatch] = field(default_factory=list)
    verdicts: list[StrategyVerdict] = field(default_factory=list)

    @property
    def errors(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.ERROR]

    @property
    def warnings(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.WARNING]

    @property
    def ok(self) -> bool:
        """True when the statement has no error-level diagnostics."""
        return not self.errors

    def diagnostics_for(self, code: str) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.code == code]

    def has(self, code: str) -> bool:
        return any(d.code == code for d in self.diagnostics)

    def verdict(self, strategy: str) -> Optional[StrategyVerdict]:
        for verdict in self.verdicts:
            if verdict.strategy == strategy:
                return verdict
        return None

    def render(self, show_analysis: bool = True) -> str:
        """Human-readable report: diagnostics with caret underlining, then
        (optionally) the correlation patterns and strategy verdicts."""
        sections: list[str] = []
        if self.diagnostics:
            sections.append(render_diagnostics(self.diagnostics, self.sql))
        n_err, n_warn = len(self.errors), len(self.warnings)
        n_info = len(self.diagnostics) - n_err - n_warn
        sections.append(
            f"{len(self.diagnostics)} diagnostic(s): "
            f"{n_err} error(s), {n_warn} warning(s), {n_info} info"
        )
        if show_analysis and self.patterns:
            sections.append(
                "correlation patterns:\n"
                + "\n".join(f"  - {p.describe()}" for p in self.patterns)
            )
        if show_analysis and self.verdicts:
            sections.append(
                "strategy applicability:\n"
                + "\n".join(f"  - {v.describe()}" for v in self.verdicts)
            )
        return "\n\n".join(sections)


#: Step-level verifier codes (the interface-level PLN codes already arrive
#: through the registered lint rules; reporting both would double up).
_PLAN_STEP_CODES = frozenset(
    {"PLN002", "PLN003", "PLN004", "PLN008", "PLN009", "PLN010"}
)


def _plan_step_diagnostics(graph, catalog: Catalog) -> list[Diagnostic]:
    """Physical-plan verification for the report: plan every SPJ box and
    keep the step-level findings. Planner refusals surface as ``PLN008``
    via :func:`~repro.analyze.plans.verify_query_plan`."""
    from .plans import verify_query_plan

    diagnostics, _ = verify_query_plan(catalog, graph)
    return [d for d in diagnostics if d.code in _PLAN_STEP_CODES]


def analyze_sql(sql: str, catalog: Catalog) -> AnalysisReport:
    """Run the full analysis pipeline over one SQL statement."""
    report = AnalysisReport(sql)
    try:
        statement = parse_statement(sql)
    except LexError as exc:
        span = ast.Span(exc.position, exc.position + 1, exc.line, exc.column)
        report.diagnostics.append(
            Diagnostic("SYN001", Severity.ERROR, exc.args[0], span)
        )
        return report
    except ParseError as exc:
        report.diagnostics.append(
            Diagnostic("SYN002", Severity.ERROR, exc.args[0], exc.span)
        )
        return report

    report.diagnostics.extend(analyze_statement(statement, catalog))
    if not isinstance(statement, (ast.Select, ast.SetOp)):
        return report
    if report.errors:
        # Binding would raise on the first of these anyway; the semantic
        # pass already reported them all, with spans.
        report.diagnostics.sort(key=sort_key)
        return report

    from ..qgm.builder import build_qgm

    try:
        graph = build_qgm(statement, catalog)
    except (BindError, CatalogError, ParseError) as exc:
        # A binder rule the semantic pass does not model; keep the message
        # but mark it as uncoded so the gap is visible (and testable).
        report.diagnostics.append(Diagnostic(
            "SEM099", Severity.ERROR, str(exc),
            span=getattr(exc, "span", None),
        ))
        report.diagnostics.sort(key=sort_key)
        return report

    report.diagnostics.extend(lint_graph(graph, catalog))
    report.diagnostics.extend(_plan_step_diagnostics(graph, catalog))
    report.patterns = classify_patterns(graph)
    report.verdicts = strategy_verdicts(graph, catalog)
    report.diagnostics.extend(pattern_diagnostics(report.patterns))
    report.diagnostics.extend(verdict_diagnostics(report.verdicts))
    report.diagnostics.sort(key=sort_key)
    return report
