"""Static plan contracts: typed verification of box interfaces and plans.

The paper's correctness argument (section 3) is that every rewrite step
leaves the QGM consistent; :mod:`repro.qgm.validate` enforces that at the
*structural* level. This module adds the *typed* level: every box gets an
inferred output contract -- column names, SQL types, nullability with
provenance, uniqueness, and a cardinality bound from :mod:`repro.plan.cost`
-- and every physical plan the planner emits is checked for executor
compatibility against those contracts.

Nullability provenance is the interesting part. Three taints flow through
the contract lattice:

* ``agg-empty`` -- SUM/AVG/MIN/MAX over a possibly-empty input yields NULL
  (ordinary SQL semantics; informational provenance only);
* ``outer-join`` -- the null-producing side of a left outer join;
* ``count-rewrite`` -- a *grouped* COUNT output. A scalar COUNT is total
  (an empty input still produces one row with 0), but once Kim's rewrite
  turns it into a grouped aggregate, empty groups have no row at all: fed
  through an inner join the outer row disappears (the COUNT bug,
  section 2.1), fed through an outer join the 0 becomes NULL. Both
  consumption shapes are therefore statically detectable: ``PLN007`` flags
  the inner-join shape and ``PLN006`` flags null-rejecting use of the
  nullable variant without a COALESCE guard. ``COALESCE(col, 0)`` -- the
  magic rewrite's COUNT-bug fix -- clears the taint.

Two entry points:

* :func:`check_interfaces` -- contracts only, safe on any consistent graph;
  registered as lint rules so :meth:`repro.rewrite.engine.RewriteEngine.check`
  re-verifies typed interfaces after every FEED/ABSORB step.
* :func:`verify_query_plan` / :func:`verify_pre_execution` -- additionally
  plans every SPJ box and checks the step lists (reference binding order,
  index/key agreement, ``correlated_to_self`` markings, arities,
  cardinality sanity). ``Database`` runs this pre-execution when
  ``REPRO_VALIDATE`` is on; with validation off the verifier is never
  imported (zero overhead, like the ``tracer is None`` fast paths).

Like :mod:`repro.analyze.lint`, imports from ``repro.plan`` stay at module
level (no cycle: the plan package never imports the analyzers), while this
module is itself imported lazily by the rewrite engine via ``lint``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Callable, Optional, Union

from ..errors import CatalogError, PlanError, SchemaError
from ..plan.cost import estimate_box_rows
from ..plan.planner import (
    HashJoinStep,
    IndexLookupStep,
    PredicateStep,
    ScanStep,
    SelectPlan,
    SubqueryEvalStep,
    _subtree_refs_to_box,
    plan_select_box,
)
from ..qgm.analysis import iter_boxes
from ..qgm.expr import (
    BoxExists,
    BoxInSubquery,
    BoxQuantifiedComparison,
    BoxScalarSubquery,
    ColumnRef,
    walk_expr,
)
from ..qgm.model import (
    BaseTableBox,
    Box,
    GroupByBox,
    OuterJoinBox,
    QueryGraph,
    SelectBox,
    SetOpBox,
)
from ..sql import ast
from ..storage.catalog import Catalog
from ..types import SQLType
from .diagnostics import Diagnostic, Severity
from .lint import register_rule

#: Nullability provenance tags (the taint half of the contract lattice).
TAINT_AGG_EMPTY = "agg-empty"
TAINT_OUTER_JOIN = "outer-join"
TAINT_COUNT_REWRITE = "count-rewrite"


@dataclass(frozen=True)
class ColumnContract:
    """One output column's inferred contract.

    ``type`` is ``None`` when inference cannot pin a declared type (an
    unknown function, a contract over an unbound catalog); unknown never
    produces a diagnostic -- only *known-wrong* does.
    """

    name: str
    type: Optional[SQLType]
    nullable: bool
    taint: frozenset[str] = frozenset()

    def describe(self) -> str:
        text = self.name or "<expr>"
        text += f" {self.type.value}" if self.type is not None else " ?"
        text += "" if self.nullable else " NOT NULL"
        if self.taint:
            text += " [" + ",".join(sorted(self.taint)) + "]"
        return text


_UNKNOWN = ColumnContract("", None, True)
_BOOL = ColumnContract("", SQLType.BOOL, True)

_Resolver = Callable[[ColumnRef], Optional[ColumnContract]]


@dataclass(frozen=True)
class BoxContract:
    """A box's inferred output interface.

    ``unique`` lists column-name tuples known to be duplicate-free;
    ``exactly_one`` marks boxes guaranteed to produce a single row (scalar
    aggregates and pure projections over them); ``rows`` is the optimizer's
    cardinality bound (``None`` without a catalog).
    """

    box_id: int
    kind: str
    columns: tuple[ColumnContract, ...]
    unique: tuple[tuple[str, ...], ...] = ()
    exactly_one: bool = False
    rows: Optional[float] = None

    def column(self, name: str) -> Optional[ColumnContract]:
        wanted = name.lower()
        for col in self.columns:
            if col.name == wanted:
                return col
        return None

    def names(self) -> list[str]:
        return [c.name for c in self.columns]


class ContractInferencer:
    """Infers :class:`BoxContract` for every box of a graph (memoized --
    the post-magic QGM is a DAG and shared boxes are typed once), recording
    coded problems as a side effect."""

    def __init__(self, catalog: Optional[Catalog] = None):
        self.catalog = catalog
        self.memo: dict[int, BoxContract] = {}
        self.problems: list[Diagnostic] = []
        self._in_progress: set[int] = set()
        self._reported: set[tuple[str, int, str]] = set()

    # -- reporting ---------------------------------------------------------

    def _report(
        self, code: str, severity: Severity, box: Box, message: str,
        hint: Optional[str] = None, key: str = "",
    ) -> None:
        dedup = (code, box.id, key or message)
        if dedup in self._reported:
            return
        self._reported.add(dedup)
        self.problems.append(Diagnostic(
            code, severity, f"box {box.id} ({box.kind}): {message}", hint=hint,
        ))

    # -- box contracts -----------------------------------------------------

    def contract(self, box: Box) -> BoxContract:
        cached = self.memo.get(box.id)
        if cached is not None:
            return cached
        if box.id in self._in_progress:
            # A cyclic graph is QGM001's problem; give up on typing it.
            return BoxContract(box.id, box.kind, tuple(
                ColumnContract(n, None, True) for n in box.output_names()
            ))
        self._in_progress.add(box.id)
        try:
            result = self._infer(box)
        finally:
            self._in_progress.discard(box.id)
        self.memo[box.id] = result
        return result

    def _infer(self, box: Box) -> BoxContract:
        if isinstance(box, BaseTableBox):
            return self._infer_base_table(box)
        if isinstance(box, SelectBox):
            return self._infer_select(box)
        if isinstance(box, GroupByBox):
            return self._infer_groupby(box)
        if isinstance(box, SetOpBox):
            return self._infer_setop(box)
        if isinstance(box, OuterJoinBox):
            return self._infer_outerjoin(box)
        return BoxContract(box.id, box.kind, tuple(
            ColumnContract(n, None, True) for n in box.output_names()
        ))

    def _rows(self, box: Box) -> Optional[float]:
        if self.catalog is None:
            return None
        try:
            return estimate_box_rows(self.catalog, box)
        except (CatalogError, SchemaError):
            return None

    def _infer_base_table(self, box: BaseTableBox) -> BoxContract:
        schema = None
        if self.catalog is not None:
            try:
                schema = self.catalog.table(box.table_name).schema
            except CatalogError:
                schema = None  # QGM001 reports the missing table
        columns = []
        for name in box.column_names:
            if schema is not None and schema.has_column(name):
                col = schema.column(name)
                columns.append(ColumnContract(col.name, col.type, col.nullable))
            else:
                columns.append(ColumnContract(name, None, True))
        unique: tuple[tuple[str, ...], ...] = ()
        if schema is not None and schema.primary_key:
            unique = (tuple(schema.primary_key),)
        return BoxContract(
            box.id, box.kind, tuple(columns), unique=unique,
            rows=self._rows(box),
        )

    def _default_resolver(self, box: Box) -> _Resolver:
        def resolve(ref: ColumnRef) -> Optional[ColumnContract]:
            producer = self.contract(ref.quantifier.box)
            col = producer.column(ref.column)
            if col is None:
                self._report(
                    "PLN001", Severity.ERROR, box,
                    f"column {ref.column!r} of quantifier "
                    f"{ref.quantifier.name!r} does not exist in the contract "
                    f"of box {ref.quantifier.box.id} "
                    f"(columns: {', '.join(producer.names()) or 'none'})",
                    key=f"{ref.quantifier.name}.{ref.column}",
                )
                return None
            return col
        return resolve

    def _infer_select(self, box: SelectBox) -> BoxContract:
        resolve = self._default_resolver(box)
        for predicate in box.predicates:
            self.expr_contract(predicate, resolve, box)
        columns = tuple(
            replace(self.expr_contract(o.expr, resolve, box), name=o.name.lower())
            for o in box.outputs
        )
        self._nullability_hazards(box, resolve)

        unique: list[tuple[str, ...]] = []
        out_names = [c.name for c in columns]
        if box.distinct and out_names:
            unique.append(tuple(out_names))
        if len(box.quantifiers) == 1:
            # A pure projection passes its child's keys through when every
            # key column survives as a bare reference.
            q = box.quantifiers[0]
            child = self.contract(q.box)
            projected = {
                o.expr.column: o.name.lower()
                for o in box.outputs
                if isinstance(o.expr, ColumnRef) and o.expr.quantifier is q
            }
            for key in child.unique:
                if all(col in projected for col in key):
                    mapped = tuple(projected[col] for col in key)
                    if mapped not in unique:
                        unique.append(mapped)
        children = [self.contract(q.box) for q in box.quantifiers]
        exactly_one = (
            bool(children)
            and all(c.exactly_one for c in children)
            and not box.predicates
        )
        return BoxContract(
            box.id, box.kind, columns, unique=tuple(unique),
            exactly_one=exactly_one, rows=self._rows(box),
        )

    def _infer_groupby(self, box: GroupByBox) -> BoxContract:
        resolve = self._default_resolver(box)
        for group_expr in box.group_by:
            self.expr_contract(group_expr, resolve, box)
        columns: list[ColumnContract] = []
        # A grouped COUNT is the COUNT-bug's raw material: empty groups have
        # no output row. Grouping over an outer join's preserved domain
        # (the Ganski/Wong fix) re-establishes totality, so it stays clean.
        grouped_count_hazard = (
            not box.is_scalar
            and not isinstance(box.quantifier.box, OuterJoinBox)
        )
        for output in box.outputs:
            col = replace(
                self.expr_contract(output.expr, resolve, box),
                name=output.name.lower(),
            )
            if grouped_count_hazard and any(
                isinstance(n, ast.AggregateCall) and n.is_count
                for n in walk_expr(output.expr)
            ):
                col = replace(col, taint=col.taint | {TAINT_COUNT_REWRITE})
            columns.append(col)

        unique: tuple[tuple[str, ...], ...] = ()
        if box.group_by:
            # Outputs that are bare copies of the grouping columns form a
            # key of the result when they cover every grouping expression.
            mapped: list[str] = []
            covered = 0
            for group_expr in box.group_by:
                if not isinstance(group_expr, ColumnRef):
                    continue
                for output in box.outputs:
                    if isinstance(output.expr, ColumnRef) and \
                            output.expr.same(group_expr):
                        mapped.append(output.name.lower())
                        covered += 1
                        break
            if covered == len(box.group_by) and mapped:
                unique = (tuple(mapped),)
        elif columns:
            unique = (tuple(c.name for c in columns),)
        return BoxContract(
            box.id, box.kind, tuple(columns), unique=unique,
            exactly_one=box.is_scalar, rows=self._rows(box),
        )

    def _infer_setop(self, box: SetOpBox) -> BoxContract:
        children = [self.contract(q.box) for q in box.quantifiers]
        columns: list[ColumnContract] = []
        for position, name in enumerate(box.output_names()):
            branch_cols = [
                c.columns[position] for c in children
                if position < len(c.columns)
            ]
            columns.append(_merge_contracts(branch_cols, name))
        return BoxContract(
            box.id, box.kind, tuple(columns), rows=self._rows(box),
        )

    def _infer_outerjoin(self, box: OuterJoinBox) -> BoxContract:
        plain = self._default_resolver(box)
        if box.condition is not None:
            # The condition is evaluated against actual join candidates,
            # before any NULL padding: plain resolution applies.
            self.expr_contract(box.condition, plain, box)

        def resolve(ref: ColumnRef) -> Optional[ColumnContract]:
            col = plain(ref)
            if col is not None and ref.quantifier is box.null_producing:
                return replace(
                    col, nullable=True, taint=col.taint | {TAINT_OUTER_JOIN},
                )
            return col

        columns = tuple(
            replace(self.expr_contract(o.expr, resolve, box), name=o.name.lower())
            for o in box.outputs
        )
        return BoxContract(
            box.id, box.kind, columns, rows=self._rows(box),
        )

    # -- expression contracts ----------------------------------------------

    def expr_contract(
        self, expr: ast.Expr, resolve: _Resolver, box: Box
    ) -> ColumnContract:
        """Bottom-up typing of one expression in ``box``'s context."""
        if isinstance(expr, ColumnRef):
            return resolve(expr) or _UNKNOWN
        if isinstance(expr, ast.Literal):
            return _literal_contract(expr.value)
        if isinstance(expr, ast.BinaryOp):
            left = self.expr_contract(expr.left, resolve, box)
            right = self.expr_contract(expr.right, resolve, box)
            taint = left.taint | right.taint
            if expr.op == "||":
                return ColumnContract(
                    "", SQLType.STR, left.nullable or right.nullable, taint)
            if expr.op == "/":
                # Division by zero yields NULL in this engine.
                return ColumnContract("", SQLType.FLOAT, True, taint)
            result = _numeric_join(left.type, right.type)
            return ColumnContract(
                "", result, left.nullable or right.nullable, taint)
        if isinstance(expr, ast.UnaryMinus):
            operand = self.expr_contract(expr.operand, resolve, box)
            return replace(operand, name="")
        if isinstance(expr, ast.Comparison):
            left = self.expr_contract(expr.left, resolve, box)
            right = self.expr_contract(expr.right, resolve, box)
            nullable = (left.nullable or right.nullable) and expr.op != "<=>"
            return ColumnContract(
                "", SQLType.BOOL, nullable, left.taint | right.taint)
        if isinstance(expr, (ast.And, ast.Or)):
            parts = [self.expr_contract(e, resolve, box) for e in expr.items]
            return ColumnContract(
                "", SQLType.BOOL,
                any(p.nullable for p in parts),
                frozenset().union(*(p.taint for p in parts)) if parts
                else frozenset(),
            )
        if isinstance(expr, ast.Not):
            operand = self.expr_contract(expr.operand, resolve, box)
            return ColumnContract("", SQLType.BOOL, operand.nullable, operand.taint)
        if isinstance(expr, ast.IsNull):
            self.expr_contract(expr.operand, resolve, box)
            return ColumnContract("", SQLType.BOOL, False)
        if isinstance(expr, (ast.Like, ast.Between, ast.InList)):
            parts = [self.expr_contract(e, resolve, box) for e in expr.children()]
            return ColumnContract(
                "", SQLType.BOOL,
                any(p.nullable for p in parts),
                frozenset().union(*(p.taint for p in parts)) if parts
                else frozenset(),
            )
        if isinstance(expr, ast.FunctionCall):
            return self._function_contract(expr, resolve, box)
        if isinstance(expr, ast.Case):
            return self._case_contract(expr, resolve, box)
        if isinstance(expr, ast.AggregateCall):
            return self._aggregate_contract(expr, resolve, box)
        if isinstance(expr, BoxScalarSubquery):
            sub = self.contract(expr.box)
            out = sub.columns[0] if sub.columns else _UNKNOWN
            # An empty subquery result reads as NULL unless the box is a
            # guaranteed single-row producer (scalar aggregate).
            return ColumnContract(
                "", out.type, out.nullable or not sub.exactly_one, out.taint)
        if isinstance(expr, BoxExists):
            self.contract(expr.box)
            return ColumnContract("", SQLType.BOOL, False)
        if isinstance(expr, (BoxInSubquery, BoxQuantifiedComparison)):
            self.expr_contract(expr.operand, resolve, box)
            self.contract(expr.box)
            return _BOOL
        return _UNKNOWN

    def _function_contract(
        self, expr: ast.FunctionCall, resolve: _Resolver, box: Box
    ) -> ColumnContract:
        args = [self.expr_contract(a, resolve, box) for a in expr.args]
        if expr.name.lower() == "coalesce" and args:
            result = next((a.type for a in args if a.type is not None), None)
            nullable = all(a.nullable for a in args)
            if nullable:
                taint = frozenset().union(*(a.taint for a in args))
            else:
                # A non-nullable fallback restores totality: this is the
                # magic rewrite's COUNT-bug fix, so the taint is cleared.
                taint = frozenset()
            return ColumnContract("", result, nullable, taint)
        if expr.name.lower() == "abs" and args:
            return replace(args[0], name="")
        taint = frozenset().union(*(a.taint for a in args)) if args \
            else frozenset()
        return ColumnContract("", None, True, taint)

    def _case_contract(
        self, expr: ast.Case, resolve: _Resolver, box: Box
    ) -> ColumnContract:
        values: list[ColumnContract] = []
        for condition, value in expr.whens:
            self.expr_contract(condition, resolve, box)
            values.append(self.expr_contract(value, resolve, box))
        if expr.otherwise is not None:
            values.append(self.expr_contract(expr.otherwise, resolve, box))
        merged = _merge_contracts(values, "")
        if expr.otherwise is None:
            merged = replace(merged, nullable=True)
        return merged

    def _aggregate_contract(
        self, expr: ast.AggregateCall, resolve: _Resolver, box: Box
    ) -> ColumnContract:
        argument = (
            self.expr_contract(expr.argument, resolve, box)
            if expr.argument is not None else None
        )
        if expr.is_count:
            # COUNT never yields NULL -- within its own box. Grouped COUNT
            # totality loss is tainted at the GroupByBox level.
            return ColumnContract("", SQLType.INT, False)
        taint = (argument.taint if argument else frozenset()) \
            | {TAINT_AGG_EMPTY}
        if expr.func in ("sum", "avg"):
            if argument is not None and argument.type in (
                SQLType.STR, SQLType.BOOL, SQLType.DATE,
            ):
                self._report(
                    "PLN005", Severity.ERROR, box,
                    f"{expr.func.upper()} over a {argument.type.value} input "
                    f"is ill-typed",
                    hint="SUM/AVG require an INT or FLOAT argument",
                    key=f"{expr.func}:{argument.type.value}",
                )
            if expr.func == "avg":
                return ColumnContract("", SQLType.FLOAT, True, taint)
            result = argument.type if argument is not None else None
            return ColumnContract("", result, True, taint)
        # MIN/MAX preserve the argument type (strings and dates included).
        result = argument.type if argument is not None else None
        return ColumnContract("", result, True, taint)

    # -- nullability hazards (the COUNT bug, statically) --------------------

    def _nullability_hazards(self, box: SelectBox, resolve: _Resolver) -> None:
        joins = len(box.quantifiers) >= 2
        for predicate in box.predicates:
            self._scan_hazard(box, predicate, resolve, joins, guarded=False)

    def _scan_hazard(
        self, box: SelectBox, expr: ast.Expr, resolve: _Resolver,
        joins: bool, guarded: bool,
    ) -> None:
        if isinstance(expr, ast.FunctionCall) and \
                expr.name.lower() == "coalesce":
            guarded = True
        elif isinstance(expr, ast.IsNull):
            guarded = True
        elif isinstance(expr, ast.Comparison) and expr.op == "<=>":
            guarded = True
        if isinstance(expr, ColumnRef):
            producer = self.contract(expr.quantifier.box)
            col = producer.column(expr.column)
            if col is not None and TAINT_COUNT_REWRITE in col.taint \
                    and not guarded:
                if col.nullable:
                    self._report(
                        "PLN006", Severity.WARNING, box,
                        f"COUNT-derived column "
                        f"{expr.quantifier.name}.{expr.column} is nullable "
                        f"({'/'.join(sorted(col.taint))}) and consumed "
                        f"null-rejectingly: empty groups yield NULL where "
                        f"the original query produced 0",
                        hint="wrap the column in COALESCE(col, 0) -- the "
                             "magic rewrite's COUNT-bug fix",
                        key=f"{expr.quantifier.name}.{expr.column}",
                    )
                elif joins and any(
                    expr.quantifier is q for q in box.quantifiers
                ):
                    self._report(
                        "PLN007", Severity.WARNING, box,
                        f"grouped COUNT column "
                        f"{expr.quantifier.name}.{expr.column} is consumed "
                        f"through an inner join: empty groups have no row, "
                        f"so outer rows silently disappear (the paper's "
                        f"COUNT bug, section 2.1)",
                        hint="join through a left outer join plus "
                             "COALESCE (Ganski/Wong fix), or use the magic "
                             "strategy",
                        key=f"{expr.quantifier.name}.{expr.column}",
                    )
            return
        for child in expr.children():
            self._scan_hazard(box, child, resolve, joins, guarded)


def _literal_contract(value: object) -> ColumnContract:
    if value is None:
        return ColumnContract("", None, True)
    if isinstance(value, bool):
        return ColumnContract("", SQLType.BOOL, False)
    if isinstance(value, int):
        return ColumnContract("", SQLType.INT, False)
    if isinstance(value, float):
        return ColumnContract("", SQLType.FLOAT, False)
    return ColumnContract("", SQLType.STR, False)


def _numeric_join(
    left: Optional[SQLType], right: Optional[SQLType]
) -> Optional[SQLType]:
    if SQLType.FLOAT in (left, right):
        return SQLType.FLOAT
    if left is SQLType.INT and right is SQLType.INT:
        return SQLType.INT
    return None


def _merge_contracts(
    parts: list[ColumnContract], name: str
) -> ColumnContract:
    """Positional merge (set operations, CASE branches): first known type
    wins when branches agree, unknown otherwise; nullability and taint are
    unioned."""
    if not parts:
        return replace(_UNKNOWN, name=name)
    known = {p.type for p in parts if p.type is not None}
    merged_type = known.pop() if len(known) == 1 else None
    return ColumnContract(
        name,
        merged_type,
        any(p.nullable for p in parts),
        frozenset().union(*(p.taint for p in parts)),
    )


# -- graph-interface checking (wired into the rewrite engine's lint) ---------


def _root_of(graph: Union[QueryGraph, Box]) -> Box:
    return graph.root if isinstance(graph, QueryGraph) else graph


def check_interfaces(
    graph: Union[QueryGraph, Box], catalog: Optional[Catalog] = None
) -> ContractInferencer:
    """Type every box interface of the graph; the returned inferencer holds
    the contracts (``.memo``) and the coded problems (``.problems``)."""
    inferencer = ContractInferencer(catalog)
    for box in iter_boxes(_root_of(graph)):
        inferencer.contract(box)
    return inferencer


def interface_diagnostics(
    graph: Union[QueryGraph, Box], catalog: Optional[Catalog] = None
) -> list[Diagnostic]:
    """Contract-level diagnostics only (no physical planning): safe to run
    on every intermediate rewrite graph."""
    return check_interfaces(graph, catalog).problems


def _make_interface_rule(code: str):
    def rule(
        graph: Union[QueryGraph, Box], catalog: Optional[Catalog]
    ) -> list[Diagnostic]:
        return [
            d for d in interface_diagnostics(graph, catalog) if d.code == code
        ]
    return rule


for _code, _title, _paper in (
    ("PLN001", "contract column resolution",
     'section 3: rewrite steps must preserve box interfaces'),
    ("PLN005", "typed aggregate inputs",
     'section 2: aggregate subqueries compute over typed columns'),
    ("PLN006", "COUNT-derived nullability provenance",
     'section 2.1: the COUNT bug as a nullability violation'),
    ("PLN007", "grouped COUNT through inner join",
     "section 2.1: Kim's rewrite drops empty groups"),
):
    register_rule(_code, _title, _paper)(_make_interface_rule(_code))


# -- physical-plan verification ----------------------------------------------


def verify_select_plan(
    catalog: Catalog,
    plan: SelectPlan,
    inferencer: Optional[ContractInferencer] = None,
) -> list[Diagnostic]:
    """Check one planned SPJ box for executor compatibility.

    Verifies access-step coverage (PLN010), reference binding order
    (PLN002), column resolution in step expressions (PLN001), index/key
    agreement (PLN003), ``correlated_to_self`` markings (PLN004), step
    arities (PLN009), and cardinality sanity (PLN008).
    """
    inf = inferencer if inferencer is not None else ContractInferencer(catalog)
    box = plan.box
    diags: list[Diagnostic] = []
    own = {id(q): q for q in box.quantifiers}

    def report(code: str, severity: Severity, message: str,
               hint: Optional[str] = None) -> None:
        diags.append(Diagnostic(
            code, severity, f"box {box.id} (select): {message}", hint=hint,
        ))

    # PLN010: every quantifier bound exactly once, no foreign quantifiers.
    access_steps = [
        s for s in plan.steps
        if isinstance(s, (ScanStep, IndexLookupStep, HashJoinStep))
    ]
    access_ids = [id(s.quantifier) for s in access_steps]
    for qid, q in own.items():
        bound_count = access_ids.count(qid)
        if bound_count == 0:
            report("PLN010", Severity.ERROR,
                   f"quantifier {q.name!r} has no access step")
        elif bound_count > 1:
            report("PLN010", Severity.ERROR,
                   f"quantifier {q.name!r} is bound by {bound_count} "
                   f"access steps")
    for step in access_steps:
        if id(step.quantifier) not in own:
            report("PLN010", Severity.ERROR,
                   f"access step binds foreign quantifier "
                   f"{step.quantifier.name!r} not ranged over by this box")

    # PLN008: cardinality bound sanity.
    rows = plan.estimated_rows
    if not isinstance(rows, (int, float)) or math.isnan(rows) \
            or math.isinf(rows) or rows < 0:
        report("PLN008", Severity.ERROR,
               f"estimated cardinality {rows!r} is not a finite "
               f"non-negative number")
    for placement in plan.scalar_placement.values():
        if not isinstance(placement, int) or placement < 0:
            report("PLN008", Severity.ERROR,
                   f"scalar subquery placement {placement!r} is not a "
                   f"valid barrier index")

    def check_refs(expr: ast.Expr, bound: set[int], what: str) -> None:
        for node in walk_expr(expr):
            if not isinstance(node, ColumnRef):
                continue
            qid = id(node.quantifier)
            if qid in own and qid not in bound:
                report("PLN002", Severity.ERROR,
                       f"{what} reads {node.quantifier.name}.{node.column} "
                       f"before the access step binding "
                       f"{node.quantifier.name!r}")
            producer = inf.contract(node.quantifier.box)
            if producer.column(node.column) is None:
                report("PLN001", Severity.ERROR,
                       f"{what} references column {node.column!r} absent "
                       f"from box {node.quantifier.box.id}'s contract")

    bound: set[int] = set()
    for step in plan.steps:
        if isinstance(step, ScanStep):
            expected = bool(_subtree_refs_to_box(box, step.quantifier.box))
            if step.correlated_to_self and not expected:
                report("PLN004", Severity.ERROR,
                       f"scan of {step.quantifier.name!r} is marked "
                       f"correlated_to_self but its subtree references no "
                       f"quantifier of this box")
            elif expected and not step.correlated_to_self:
                report("PLN004", Severity.ERROR,
                       f"scan of {step.quantifier.name!r} is not marked "
                       f"correlated_to_self but its subtree references "
                       f"quantifiers of this box (it must be re-executed "
                       f"per outer row)")
            if expected:
                required = _subtree_refs_to_box(box, step.quantifier.box)
                if not required <= bound:
                    names = sorted(
                        own[qid].name for qid in required - bound if qid in own
                    )
                    report("PLN002", Severity.ERROR,
                           f"correlated scan of {step.quantifier.name!r} "
                           f"runs before its correlation quantifiers "
                           f"({', '.join(names)}) are bound")
            bound.add(id(step.quantifier))
        elif isinstance(step, IndexLookupStep):
            if len(step.key_columns) != len(step.key_exprs):
                report("PLN009", Severity.ERROR,
                       f"index lookup on {step.quantifier.name!r} has "
                       f"{len(step.key_columns)} key columns but "
                       f"{len(step.key_exprs)} key expressions")
            if not isinstance(step.quantifier.box, BaseTableBox):
                report("PLN003", Severity.ERROR,
                       f"index lookup on {step.quantifier.name!r} targets a "
                       f"{step.quantifier.box.kind} box (only base tables "
                       f"have indexes)")
            else:
                try:
                    table = catalog.table(step.quantifier.box.table_name)
                    index = table.find_index(list(step.key_columns))
                except (CatalogError, SchemaError) as exc:
                    index = None
                    table = None
                    report("PLN003", Severity.ERROR,
                           f"index lookup on {step.quantifier.name!r} cannot "
                           f"be resolved: {exc}")
                if table is not None:
                    if index is None:
                        report(
                            "PLN003", Severity.ERROR,
                            f"no index on {step.quantifier.box.table_name}"
                            f"({', '.join(step.key_columns)}) for lookup "
                            f"step (claimed {step.index_name!r})")
                    elif index.name != step.index_name:
                        report(
                            "PLN003", Severity.ERROR,
                            f"index lookup names {step.index_name!r} but the "
                            f"index on ({', '.join(step.key_columns)}) is "
                            f"{index.name!r}")
            for expr in step.key_exprs:
                check_refs(expr, bound, "index key expression")
            bound.add(id(step.quantifier))
        elif isinstance(step, HashJoinStep):
            if len(step.build_exprs) != len(step.probe_exprs):
                report("PLN009", Severity.ERROR,
                       f"hash join on {step.quantifier.name!r} has "
                       f"{len(step.build_exprs)} build keys but "
                       f"{len(step.probe_exprs)} probe keys")
            if step.null_safe and \
                    len(step.null_safe) != len(step.build_exprs):
                report("PLN009", Severity.ERROR,
                       f"hash join on {step.quantifier.name!r} has "
                       f"{len(step.null_safe)} null-safe flags for "
                       f"{len(step.build_exprs)} key pairs")
            if _subtree_refs_to_box(box, step.quantifier.box):
                report("PLN004", Severity.ERROR,
                       f"hash join on {step.quantifier.name!r} builds over a "
                       f"child correlated to this box (must be a correlated "
                       f"scan)")
            this_q = id(step.quantifier)
            for expr in step.build_exprs:
                for node in walk_expr(expr):
                    if isinstance(node, ColumnRef):
                        qid = id(node.quantifier)
                        if qid in own and qid != this_q:
                            report(
                                "PLN002", Severity.ERROR,
                                f"hash-join build expression reads "
                                f"{node.quantifier.name}.{node.column}, not "
                                f"the joined quantifier "
                                f"{step.quantifier.name!r}")
                check_refs(expr, bound | {this_q}, "hash-join build key")
            for expr in step.probe_exprs:
                check_refs(expr, bound, "hash-join probe key")
            bound.add(this_q)
        elif isinstance(step, PredicateStep):
            check_refs(step.predicate, bound, "predicate")
        elif isinstance(step, SubqueryEvalStep):
            required = _subtree_refs_to_box(box, step.node.box)
            if not required <= bound:
                names = sorted(
                    own[qid].name for qid in required - bound if qid in own
                )
                report("PLN002", Severity.ERROR,
                       f"scalar subquery of box {step.node.box.id} is "
                       f"evaluated before its correlation quantifiers "
                       f"({', '.join(names)}) are bound")
    return diags


def verify_query_plan(
    catalog: Catalog, graph: Union[QueryGraph, Box]
) -> tuple[list[Diagnostic], dict]:
    """Full verification: typed interfaces plus a planned-and-checked step
    list for every SPJ box. Returns the diagnostics and a contract summary
    (the payload of the ``plan.verified`` event)."""
    root = _root_of(graph)
    inferencer = check_interfaces(root, catalog)
    diagnostics = list(inferencer.problems)
    plans = 0
    steps = 0
    for box in iter_boxes(root):
        if not isinstance(box, SelectBox):
            continue
        try:
            plan = plan_select_box(catalog, box)
        except PlanError as exc:
            diagnostics.append(Diagnostic(
                "PLN008", Severity.ERROR,
                f"box {box.id} (select): planning failed: {exc}",
            ))
            continue
        diagnostics.extend(verify_select_plan(catalog, plan, inferencer))
        plans += 1
        steps += len(plan.steps)
    contracts = list(inferencer.memo.values())
    columns = [col for c in contracts for col in c.columns]
    summary = {
        "boxes": len(contracts),
        "plans": plans,
        "steps": steps,
        "columns": len(columns),
        "nullable_columns": sum(1 for col in columns if col.nullable),
        "tainted_columns": sum(1 for col in columns if col.taint),
        "errors": sum(
            1 for d in diagnostics if d.severity is Severity.ERROR),
        "warnings": sum(
            1 for d in diagnostics if d.severity is Severity.WARNING),
    }
    return diagnostics, summary


def verify_pre_execution(catalog: Catalog, graph: QueryGraph) -> dict:
    """The ``REPRO_VALIDATE`` pre-execution gate: verify every plan of the
    rewritten graph, raising :class:`~repro.errors.PlanError` on any
    error-level finding; returns the contract summary for the
    ``plan.verified`` event."""
    diagnostics, summary = verify_query_plan(catalog, graph)
    errors = [d for d in diagnostics if d.severity is Severity.ERROR]
    if errors:
        details = "; ".join(f"[{d.code}] {d.message}" for d in errors)
        raise PlanError(f"plan contract violated: {details}")
    return summary
