"""Diagnostics framework: coded, span-carrying findings plus a renderer.

Every finding the static-analysis subsystem produces is a :class:`Diagnostic`
with a stable error code (``SEM002``, ``QGM001``, ``DEC004``, ...), a
severity, and -- when the offending construct came from source text -- the
:class:`~repro.sql.ast.Span` the parser stamped on the AST node. The codes
are registered centrally so documentation, tests and the CLI can enumerate
them; ``DESIGN.md`` lists the registry with the paper invariant behind each
QGM rule.

The renderer produces compiler-style output with caret underlining::

    error[SEM002]: unknown column 'nme' in 'd'
      --> line 1, column 8
       |
     1 | SELECT d.nme FROM dept d
       |        ^^^^^
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from ..sql.ast import Span


class Severity(enum.Enum):
    """How serious a diagnostic is.

    ``ERROR`` findings mean the query cannot run (or a rewrite invariant is
    broken); ``WARNING`` findings mean the query runs but a paper-documented
    hazard applies (e.g. COUNT-bug exposure); ``INFO`` findings explain the
    analysis (correlation patterns, strategy applicability).
    """

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    @property
    def rank(self) -> int:
        return {"error": 0, "warning": 1, "info": 2}[self.value]


#: The error-code registry: code -> one-line title. Codes are append-only
#: and stable; tests enumerate this mapping to enforce coverage.
CODES: dict[str, str] = {}


def register_code(code: str, title: str) -> str:
    """Register ``code`` in the global registry (idempotent for same title)."""
    existing = CODES.get(code)
    if existing is not None and existing != title:
        raise ValueError(f"diagnostic code {code} registered twice: "
                         f"{existing!r} vs {title!r}")
    CODES[code] = title
    return code


# -- syntax (SYN): lexer/parser failures surfaced as diagnostics -------------
SYN001 = register_code("SYN001", "invalid character sequence (lexer)")
SYN002 = register_code("SYN002", "syntax error (parser)")

# -- semantic analysis (SEM): pre-execution checks over the SQL AST ----------
SEM001 = register_code("SEM001", "unknown table or view")
SEM002 = register_code("SEM002", "unknown column")
SEM003 = register_code("SEM003", "ambiguous column reference")
SEM004 = register_code("SEM004", "unknown or over-qualified alias")
SEM005 = register_code("SEM005", "duplicate alias in FROM")
SEM006 = register_code("SEM006", "aggregate call in an illegal clause")
SEM007 = register_code("SEM007", "nested aggregate calls")
SEM008 = register_code("SEM008", "HAVING without GROUP BY or aggregates")
SEM009 = register_code("SEM009", "subquery produces the wrong number of columns")
SEM010 = register_code("SEM010", "illegal use of *")
SEM011 = register_code("SEM011", "column is neither grouped nor aggregated")
SEM012 = register_code("SEM012", "arity mismatch (set operation or alias list)")
SEM013 = register_code("SEM013", "ORDER BY position out of range")
SEM099 = register_code("SEM099", "binder rejected the query (uncoded)")
#: Correlation-depth analysis (informational).
SEM101 = register_code("SEM101", "correlated reference to an outer query block")

# -- QGM lint (QGM): graph-level invariants and hazards ----------------------
QGM001 = register_code("QGM001", "QGM consistency violation (paper section 3)")
QGM002 = register_code("QGM002", "COUNT-bug exposure (paper section 2.1)")
QGM003 = register_code("QGM003", "non-linear correlated query (paper section 2)")
QGM004 = register_code("QGM004", "correlation spans multiple outer quantifiers")

# -- decorrelation analysis (DEC): patterns and strategy applicability -------
DEC001 = register_code("DEC001", "correlation pattern classification (paper section 2)")
DEC002 = register_code("DEC002", "Kim's method applicability")
DEC003 = register_code("DEC003", "Dayal's method applicability")
DEC004 = register_code("DEC004", "Ganski/Wong applicability")
DEC005 = register_code("DEC005", "magic decorrelation applicability")

# -- plan contracts (PLN): typed physical-plan verification ------------------
# Emitted by repro.analyze.plans: the static verifier over box output
# contracts and the planner's step lists (see DESIGN section 12).
PLN001 = register_code("PLN001", "column reference does not resolve in the producing box's contract")
PLN002 = register_code("PLN002", "step reads a quantifier before its access step binds it")
PLN003 = register_code("PLN003", "index lookup does not match any index on the base table")
PLN004 = register_code("PLN004", "correlated_to_self marking disagrees with the subtree's references")
PLN005 = register_code("PLN005", "ill-typed aggregate input (SUM/AVG over a non-numeric column)")
PLN006 = register_code("PLN006", "COUNT-derived nullable column consumed null-rejectingly without COALESCE")
PLN007 = register_code("PLN007", "grouped COUNT consumed through an inner join (empty groups dropped)")
PLN008 = register_code("PLN008", "plan infeasible or cardinality bound violated")
PLN009 = register_code("PLN009", "step arity mismatch (join keys / null-safe flags)")
PLN010 = register_code("PLN010", "plan access steps do not cover the box's quantifiers exactly once")

# -- concurrency lint (CONC): the DESIGN section-9 contract, machine-checked -
CONC001 = register_code("CONC001", "lock acquisition violates the declared lock order")
CONC002 = register_code("CONC002", "shared attribute mutated outside its guarding lock")
CONC003 = register_code("CONC003", "acquisition of an undeclared lock attribute")


@dataclass(frozen=True)
class Diagnostic:
    """One coded finding, optionally anchored to a source span."""

    code: str
    severity: Severity
    message: str
    span: Optional[Span] = None
    hint: Optional[str] = None

    def location(self) -> str:
        return self.span.location() if self.span is not None else "<no location>"

    def __str__(self) -> str:
        head = f"{self.severity.value}[{self.code}]: {self.message}"
        if self.span is not None:
            head += f" ({self.span.location()})"
        return head


def sort_key(diagnostic: Diagnostic) -> tuple[int, int, str]:
    """Stable display order: errors first, then source position, then code."""
    start = diagnostic.span.start if diagnostic.span is not None else 1 << 30
    return (diagnostic.severity.rank, start, diagnostic.code)


def render_diagnostic(diagnostic: Diagnostic, source: Optional[str] = None) -> str:
    """Render one diagnostic; with ``source``, underline the offending span."""
    lines = [f"{diagnostic.severity.value}[{diagnostic.code}]: {diagnostic.message}"]
    span = diagnostic.span
    if span is not None:
        lines.append(f"  --> {span.location()}")
        if source is not None:
            source_lines = source.splitlines()
            if 0 < span.line <= len(source_lines):
                text = source_lines[span.line - 1]
                gutter = len(str(span.line))
                blank = " " * gutter
                lines.append(f" {blank} |")
                lines.append(f" {span.line} | {text}")
                # Clamp the underline to the first line of the span.
                width = max(1, min(span.end - span.start,
                                   len(text) - (span.column - 1)))
                caret_pad = " " * (span.column - 1)
                lines.append(f" {blank} | {caret_pad}{'^' * width}")
    if diagnostic.hint:
        lines.append(f"  = help: {diagnostic.hint}")
    return "\n".join(lines)


def render_diagnostics(
    diagnostics: list[Diagnostic], source: Optional[str] = None
) -> str:
    """Render a batch in display order, separated by blank lines."""
    ordered = sorted(diagnostics, key=sort_key)
    return "\n\n".join(render_diagnostic(d, source) for d in ordered)
