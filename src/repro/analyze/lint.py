"""QGM lint rules: graph invariants, correlation patterns, applicability.

Three cooperating pieces, all operating on a *bound* query graph:

* a rule registry (:data:`LINT_RULES`) whose rules turn graph-level hazards
  into coded diagnostics -- consistency (``QGM001``, the paper's section-3
  invariant that every rewrite step leaves the QGM consistent), COUNT-bug
  exposure (``QGM002``, section 2.1), non-linearity (``QGM003``, the
  section-2 Query 3 shape) and multi-quantifier correlation (``QGM004``);
* a correlation-pattern classifier (:func:`classify_patterns`) naming each
  subquery per the paper's section-2 taxonomy: scalar aggregate, plain
  scalar, existential (EXISTS), set containment (IN), quantified comparison
  (ANY/ALL), and correlated table expressions;
* per-strategy applicability checkers (:func:`strategy_verdicts`) that reuse
  the rewrite engine's own matchers to report *why* each historical method
  (Kim, Dayal, Ganski/Wong) does or does not apply, and what magic
  decorrelation will do (full, partial via correlated-input boxes, or
  nothing).

The heavy imports from ``repro.rewrite`` are deferred into the functions so
that ``repro.rewrite.engine`` can import this module without a cycle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Optional

from ..errors import NotApplicableError, QGMConsistencyError
from ..qgm.analysis import external_column_refs, is_correlated, iter_boxes
from ..qgm.expr import (
    BOX_SUBQUERY_TYPES,
    BoxExists,
    BoxInSubquery,
    BoxQuantifiedComparison,
    BoxScalarSubquery,
    walk_expr,
)
from ..qgm.model import Box, QueryGraph, SelectBox, SetOpBox
from ..qgm.validate import validate_graph
from ..storage.catalog import Catalog
from .diagnostics import Diagnostic, Severity

#: The paper's section-2 correlation-pattern names.
PATTERN_KINDS = (
    "scalar-agg",
    "scalar",
    "exists",
    "set-containment",
    "quantified-comparison",
    "table-expression",
)


@dataclass(frozen=True)
class PatternMatch:
    """One classified subquery (or correlated table expression)."""

    kind: str  # one of PATTERN_KINDS
    box_id: int  # the subquery's QGM box
    owner_id: int  # the box whose expression/FROM holds it
    correlated: bool
    count_bug: bool = False  # scalar-agg with COUNT outputs and correlation

    def describe(self) -> str:
        text = {
            "scalar-agg": "scalar aggregate subquery",
            "scalar": "scalar subquery",
            "exists": "existential (EXISTS) subquery",
            "set-containment": "set-containment (IN) subquery",
            "quantified-comparison": "quantified comparison (ANY/ALL) subquery",
            "table-expression": "table expression in FROM",
        }[self.kind]
        text += f" (box {self.box_id})"
        text += ", correlated" if self.correlated else ", uncorrelated"
        if self.count_bug:
            text += ", COUNT-bug exposed"
        return text


@dataclass(frozen=True)
class StrategyVerdict:
    """Whether one decorrelation strategy applies to a query, and why."""

    strategy: str  # Strategy enum value: "ni", "kim", ...
    label: str  # human name: "Kim's method", ...
    applicable: bool
    reason: str

    def describe(self) -> str:
        verdict = "applicable" if self.applicable else "not applicable"
        return f"{self.label}: {verdict} -- {self.reason}"


# -- pattern classification ---------------------------------------------------


def classify_patterns(graph: QueryGraph | Box) -> list[PatternMatch]:
    """Classify every subquery in the graph per the paper's taxonomy."""
    from ..rewrite.decorrelate.common import match_scalar_agg

    root = graph.root if isinstance(graph, QueryGraph) else graph
    patterns: list[PatternMatch] = []
    subquery_subtree_ids: set[int] = set()

    for box in iter_boxes(root):
        for expr in box.own_exprs():
            for node in walk_expr(expr):
                if not isinstance(node, BOX_SUBQUERY_TYPES):
                    continue
                subquery_subtree_ids.update(b.id for b in iter_boxes(node.box))
                correlated = is_correlated(node.box)
                if isinstance(node, BoxScalarSubquery):
                    pattern = match_scalar_agg(node)
                    if pattern is not None:
                        patterns.append(PatternMatch(
                            "scalar-agg", node.box.id, box.id, correlated,
                            count_bug=bool(pattern.count_outputs) and correlated,
                        ))
                    else:
                        patterns.append(PatternMatch(
                            "scalar", node.box.id, box.id, correlated,
                        ))
                elif isinstance(node, BoxExists):
                    patterns.append(PatternMatch(
                        "exists", node.box.id, box.id, correlated,
                    ))
                elif isinstance(node, BoxInSubquery):
                    patterns.append(PatternMatch(
                        "set-containment", node.box.id, box.id, correlated,
                    ))
                elif isinstance(node, BoxQuantifiedComparison):
                    patterns.append(PatternMatch(
                        "quantified-comparison", node.box.id, box.id, correlated,
                    ))

    # Correlated table expressions: a FROM-clause quantifier whose subtree
    # references outer quantifiers (the paper's Query 3). Boxes *inside* an
    # already-classified subquery (e.g. the SPJ under a scalar aggregate)
    # are skipped -- their correlation belongs to the subquery pattern --
    # and so are table expressions nested inside an outer one: iter_boxes
    # is pre-order, so the outermost expression claims its whole subtree.
    claimed = set(subquery_subtree_ids)
    for box in iter_boxes(root):
        if not isinstance(box, SelectBox) or box.id in claimed:
            continue
        for q in box.child_quantifiers():
            if q.box.id in claimed:
                continue
            if is_correlated(q.box):
                patterns.append(PatternMatch(
                    "table-expression", q.box.id, box.id, correlated=True,
                ))
                claimed.update(b.id for b in iter_boxes(q.box))
    return patterns


# -- lint rules ----------------------------------------------------------------


@dataclass(frozen=True)
class LintRule:
    """One registered lint rule over a bound graph.

    ``paper`` names the invariant or observation in the source paper that
    motivates the rule (listed in DESIGN.md's error-code registry).
    """

    code: str
    title: str
    paper: str
    check: Callable[[QueryGraph | Box, Optional[Catalog]], Iterable[Diagnostic]]


LINT_RULES: list[LintRule] = []


def register_rule(code: str, title: str, paper: str):
    """Decorator registering a check function as a lint rule."""

    def wrap(fn: Callable) -> Callable:
        LINT_RULES.append(LintRule(code, title, paper, fn))
        return fn

    return wrap


def lint_graph(
    graph: QueryGraph | Box, catalog: Optional[Catalog] = None
) -> list[Diagnostic]:
    """Run every registered lint rule; never raises."""
    diagnostics: list[Diagnostic] = []
    for rule in LINT_RULES:
        diagnostics.extend(rule.check(graph, catalog))
    return diagnostics


@register_rule(
    "QGM001", "graph consistency",
    'section 3: "each rule application should leave the QGM in a '
    'consistent state"',
)
def _check_consistency(
    graph: QueryGraph | Box, catalog: Optional[Catalog]
) -> Iterable[Diagnostic]:
    try:
        validate_graph(graph, catalog)
    except QGMConsistencyError as exc:
        yield Diagnostic("QGM001", Severity.ERROR, str(exc))


@register_rule(
    "QGM002", "COUNT-bug exposure",
    "section 2.1: a correlated COUNT subquery must yield 0 (not no row) "
    "for empty groups; naive rewrites need a left outer join + COALESCE",
)
def _check_count_bug(
    graph: QueryGraph | Box, catalog: Optional[Catalog]
) -> Iterable[Diagnostic]:
    from ..rewrite.decorrelate.common import (
        match_scalar_agg,
        node_use_is_null_rejecting,
    )

    root = graph.root if isinstance(graph, QueryGraph) else graph
    for box in iter_boxes(root):
        if not isinstance(box, SelectBox):
            continue
        for expr in box.own_exprs():
            for node in walk_expr(expr):
                if not isinstance(node, BoxScalarSubquery):
                    continue
                pattern = match_scalar_agg(node)
                if pattern is None or not pattern.count_outputs:
                    continue
                if not is_correlated(node.box):
                    continue
                null_rejecting = node_use_is_null_rejecting(box, node)
                message = (
                    f"correlated COUNT subquery (box {node.box.id}): empty "
                    "groups must produce 0, so join-based rewrites need a "
                    "left outer join with COALESCE (the COUNT bug)"
                )
                hint = (
                    "every use of the subquery is null-rejecting, so the "
                    "engine may substitute a plain join (paper section 4.3)"
                    if null_rejecting else None
                )
                yield Diagnostic("QGM002", Severity.WARNING, message, hint=hint)


@register_rule(
    "QGM003", "non-linear correlated query",
    "section 2, Query 3: set operations make the query non-linear; Kim's "
    "and Dayal's methods are then not applicable",
)
def _check_non_linear(
    graph: QueryGraph | Box, catalog: Optional[Catalog]
) -> Iterable[Diagnostic]:
    root = graph.root if isinstance(graph, QueryGraph) else graph
    has_setop = any(isinstance(b, SetOpBox) for b in iter_boxes(root))
    if not has_setop:
        return
    if any(p.correlated for p in classify_patterns(root)):
        yield Diagnostic(
            "QGM003", Severity.INFO,
            "correlated query is non-linear (contains a set operation); "
            "only magic decorrelation applies",
        )


@register_rule(
    "QGM004", "multi-quantifier correlation",
    "section 2: Ganski/Wong project the magic table from a single outer "
    "table; correlation into several quantifiers disqualifies it",
)
def _check_multi_quantifier(
    graph: QueryGraph | Box, catalog: Optional[Catalog]
) -> Iterable[Diagnostic]:
    root = graph.root if isinstance(graph, QueryGraph) else graph
    for pattern in classify_patterns(root):
        if not pattern.correlated:
            continue
        subtree = _box_by_id(root, pattern.box_id)
        if subtree is None:
            continue
        targets = {id(ref.quantifier) for _, ref in external_column_refs(subtree)}
        if len(targets) > 1:
            yield Diagnostic(
                "QGM004", Severity.INFO,
                f"{pattern.describe()} draws bindings from {len(targets)} "
                "outer quantifiers; single-table rewrites (Ganski/Wong) "
                "cannot apply",
            )


def _box_by_id(root: Box, box_id: int) -> Optional[Box]:
    for box in iter_boxes(root):
        if box.id == box_id:
            return box
    return None


# -- strategy applicability ----------------------------------------------------


def strategy_verdicts(graph: QueryGraph, catalog: Catalog) -> list[StrategyVerdict]:
    """Report, for every decorrelation strategy, whether it applies to the
    *freshly bound* graph and why. Purely analytical: the graph is never
    mutated (the checks reuse the rewrite engine's matchers)."""
    from ..rewrite.decorrelate.common import (
        correlation_refs_into,
        match_outer_agg_subquery,
    )
    from ..rewrite.decorrelate.encapsulators import subtree_can_absorb

    root = graph.root
    verdicts: list[StrategyVerdict] = [
        StrategyVerdict(
            "ni", "nested iteration", True,
            "baseline execution; correlated subqueries are re-evaluated "
            "per outer binding",
        )
    ]

    def attempt(strategy: str, label: str, matcher: Callable[[], str]) -> None:
        try:
            reason = matcher()
        except NotApplicableError as exc:
            verdicts.append(StrategyVerdict(strategy, label, False, exc.reason))
        else:
            verdicts.append(StrategyVerdict(strategy, label, True, reason))

    def match_kim() -> str:
        match_outer_agg_subquery(root, "Kim", require_equality=True)
        return ("single correlated scalar-aggregate subquery with pure "
                "equality correlation over base tables")

    def match_dayal() -> str:
        match = match_outer_agg_subquery(root, "Dayal", require_equality=False)
        for q in match.outer.quantifiers:
            table = catalog.table(q.box.table_name)
            if not table.schema.primary_key:
                raise NotApplicableError(
                    "Dayal", f"outer table {table.name!r} has no key to group on"
                )
        return ("scalar-aggregate subquery and every outer table has a "
                "declared key to group on")

    def match_ganski_wong() -> str:
        match = match_outer_agg_subquery(
            root, "Ganski/Wong", require_equality=False
        )
        if len(match.outer.quantifiers) != 1:
            raise NotApplicableError(
                "Ganski/Wong", "outer block references more than one table"
            )
        refs = correlation_refs_into(match.pattern.node.box, match.outer)
        if len({id(r.quantifier) for r in refs}) > 1:
            raise NotApplicableError(
                "Ganski/Wong", "correlation spans more than one outer table"
            )
        return ("scalar-aggregate subquery correlated to a single outer "
                "base table")

    attempt("kim", "Kim's method", match_kim)
    attempt("dayal", "Dayal's method", match_dayal)
    attempt("ganski_wong", "Ganski/Wong", match_ganski_wong)

    # Magic decorrelation is always applicable; describe what it will do.
    patterns = classify_patterns(root)
    correlated = [p for p in patterns if p.correlated]
    if not correlated:
        magic_reason = "no correlated subquery or table expression; no-op"
    else:
        parts: list[str] = []
        full = partial = left = 0
        for pattern in correlated:
            subtree = _box_by_id(root, pattern.box_id)
            absorbable = subtree is not None and subtree_can_absorb(subtree)
            if pattern.kind == "scalar-agg" and absorbable:
                full += 1
            elif absorbable:
                partial += 1
            else:
                left += 1
        if full:
            parts.append(f"{full} scalar aggregate(s) fully decorrelated")
        if partial:
            parts.append(
                f"{partial} subquery(ies) partially decorrelated via "
                "correlated-input boxes (section 4.4)"
            )
        if left:
            parts.append(f"{left} subquery(ies) left correlated (NM subtree)")
        magic_reason = "; ".join(parts)
    verdicts.append(StrategyVerdict("magic", "magic decorrelation", True,
                                    magic_reason))
    verdicts.append(StrategyVerdict(
        "magic_opt", "magic decorrelation (OptMag)", True,
        magic_reason + "; keyed supplementary boxes are simplified when the "
        "correlation attributes form a key (section 5.1)",
    ))
    return verdicts


# -- diagnostics from analysis results ----------------------------------------


def pattern_diagnostics(patterns: list[PatternMatch]) -> list[Diagnostic]:
    return [
        Diagnostic("DEC001", Severity.INFO, p.describe()) for p in patterns
    ]


def verdict_diagnostics(verdicts: list[StrategyVerdict]) -> list[Diagnostic]:
    code_by_strategy = {
        "kim": "DEC002",
        "dayal": "DEC003",
        "ganski_wong": "DEC004",
        "magic": "DEC005",
    }
    result: list[Diagnostic] = []
    for verdict in verdicts:
        code = code_by_strategy.get(verdict.strategy)
        if code is not None:
            result.append(Diagnostic(code, Severity.INFO, verdict.describe()))
    return result


# The plan-contract rules (PLN001/PLN005/PLN006/PLN007) live in
# repro.analyze.plans and register themselves on import; importing the
# module here guarantees they are in LINT_RULES whenever lint_graph runs
# (in particular inside RewriteEngine.check, which re-verifies typed
# interfaces after every rewrite step). The import sits at the bottom so
# plans.py can import register_rule from this module without a cycle.
from . import plans  # noqa: E402,F401  (registration side effect)
