"""Concurrency lint: DESIGN section 9's prose contract, machine-checked.

A small AST-based analyzer over ``src/repro/serve`` and
``src/repro/storage`` that turns the documented locking discipline into
coded diagnostics:

* ``CONC001`` -- a ``with <lock>`` nesting that contradicts the declared
  acquisition order (:data:`LOCK_ORDER`), or re-acquisition of a
  non-reentrant lock. Cycle freedom follows from the order being total:
  every permitted edge goes strictly downward.
* ``CONC002`` -- mutation of a declared shared attribute
  (:data:`GUARDED_ATTRS`) outside a ``with <lock>`` block of its class.
* ``CONC003`` -- acquisition of a lock-like attribute the contract does
  not declare (new locks must be added to the order before use).

The declared order (service -> plan cache -> catalog -> table -> breaker
-> event log) is the union of the acquisition chains the code actually
needs: the service calls breaker methods and emits events under its lock,
the plan cache emits ``plan.cache_*`` events inside its critical section
(and reads the catalog generation *before* taking its lock, so no
cache -> catalog edge exists), breaker transitions emit events under the
breaker lock, and the event-log lock is a leaf (it never takes another
lock). The catalog lock is about the
*namespace*, the per-table lock about the *data*; stats computation holds
the catalog lock while reading tables lock-free.

Documented intentional exceptions (DESIGN section 9) the lint encodes:

* constructor writes (``__init__``) are unguarded by definition;
* a method whose docstring says the *caller holds the lock* (e.g.
  ``CircuitBreaker._transition``) is checked at its call sites' level,
  not lexically;
* ``QueryService._transitions`` is lock-free by design (atomic list
  append; taking the service lock there could deadlock against
  ``_breaker()``), so it is deliberately absent from
  :data:`GUARDED_ATTRS`;
* ``Table.rows`` / ``Table.indexes`` *readers* take no lock (append-only
  list, copy-on-write dict) -- only mutations are checked.

The analysis is lexical and intraprocedural: it sees ``with`` nesting
inside one function body and receiver names (``self``, or a variable
whose name contains a known noun such as ``catalog``/``table``). That is
exactly the level at which the contract is written, and it is enough to
catch reordered acquisitions and stray unguarded mutations in CI.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

from .diagnostics import Diagnostic, Severity


@dataclass(frozen=True)
class LockSpec:
    """One declared lock: where it lives and its place in the order."""

    key: str           # stable name used in messages ("service", "table", ...)
    rank: int          # acquisition order: may only nest strictly upward
    reentrant: bool    # RLock: same-lock re-acquisition is legal


#: The declared total acquisition order (DESIGN section 9).
LOCK_ORDER: dict[str, LockSpec] = {
    "service": LockSpec("service", 10, reentrant=False),
    "plan_cache": LockSpec("plan_cache", 15, reentrant=False),
    "catalog": LockSpec("catalog", 20, reentrant=True),
    "table": LockSpec("table", 30, reentrant=False),
    "breaker": LockSpec("breaker", 40, reentrant=False),
    "events": LockSpec("events", 50, reentrant=False),
}

#: class name (lower) -> {lock attribute -> lock key}. Conditions sharing
#: the service lock alias the same key (acquiring one IS acquiring it).
CLASS_LOCKS: dict[str, dict[str, str]] = {
    "queryservice": {
        "_lock": "service", "_not_empty": "service", "_idle": "service",
    },
    "plancache": {"_lock": "plan_cache"},
    "catalog": {"_lock": "catalog"},
    "table": {"_lock": "table"},
    "circuitbreaker": {"_lock": "breaker"},
    "eventlog": {"_lock": "events"},
}

#: class name (lower) -> shared attributes whose *mutation* must happen
#: under that class's lock (DESIGN section 9, "who owns what").
GUARDED_ATTRS: dict[str, frozenset[str]] = {
    "queryservice": frozenset({
        "_queue", "_tickets", "_latencies", "_trace_history",
        "_queue_depth_samples", "_breakers", "_closed",
        "_submitted", "_admitted", "_rejected", "_completed", "_failed",
        "_cancelled", "_in_flight",
    }),
    "plancache": frozenset({"_entries", "hits", "misses", "invalidations"}),
    "catalog": frozenset({"_tables", "_views", "_generation"}),
    "table": frozenset({"rows", "indexes", "_pk_index"}),
    "circuitbreaker": frozenset({
        "_state", "_consecutive_failures", "_opened_at", "_probe_inflight",
    }),
}

#: Documented lock-free shared state (listed so the contract is explicit;
#: the lint does not check these -- see the module docstring).
LOCK_FREE_BY_DESIGN: dict[str, frozenset[str]] = {
    "queryservice": frozenset({"_transitions"}),
}

#: Receiver-name nouns used to resolve ``<var>._lock`` acquisitions.
_RECEIVER_NOUNS: tuple[tuple[str, str], ...] = (
    ("service", "queryservice"),
    ("cache", "plancache"),
    ("catalog", "catalog"),
    ("table", "table"),
    ("breaker", "circuitbreaker"),
    ("event", "eventlog"),
)

#: Mutating method names on guarded container attributes.
_MUTATORS = frozenset({
    "append", "appendleft", "extend", "insert", "add", "remove", "discard",
    "pop", "popleft", "popitem", "clear", "update", "setdefault",
})

#: Docstring markers exempting a function from the CONC002 check: the
#: lock is held by the caller, so the guarantee is checked at call sites.
_CALLER_HOLDS_MARKERS = ("caller holds", "lock held", "holds the lock")


def _self_attr(node: ast.expr) -> Optional[str]:
    if isinstance(node, ast.Attribute) and \
            isinstance(node.value, ast.Name) and node.value.id == "self":
        return node.attr
    return None


def _lock_like(attr: str) -> bool:
    return attr.endswith("lock") or attr in ("_not_empty", "_idle")


class _Linter(ast.NodeVisitor):
    def __init__(self, filename: str):
        self.filename = filename
        self.diagnostics: list[Diagnostic] = []
        self._class: list[str] = []       # enclosing class names (lower)
        self._exempt: list[bool] = []     # per-function exemption stack
        self._locks: list[tuple[str, str]] = []  # held (key, display) stack

    # -- reporting ---------------------------------------------------------

    def _report(self, code: str, node: ast.AST, message: str,
                hint: Optional[str] = None) -> None:
        line = getattr(node, "lineno", 0)
        self.diagnostics.append(Diagnostic(
            code, Severity.ERROR,
            f"{self.filename}:{line}: {message}", hint=hint,
        ))

    # -- scope tracking ----------------------------------------------------

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._class.append(node.name.lower())
        self.generic_visit(node)
        self._class.pop()

    def _visit_function(self, node) -> None:
        docstring = ast.get_docstring(node) or ""
        exempt = node.name == "__init__" or any(
            marker in docstring.lower() for marker in _CALLER_HOLDS_MARKERS
        )
        self._exempt.append(exempt)
        saved = self._locks
        self._locks = []  # a new frame holds no locks lexically
        self.generic_visit(node)
        self._locks = saved
        self._exempt.pop()

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function

    # -- lock acquisition --------------------------------------------------

    def _resolve_lock(self, item: ast.expr) -> Optional[tuple[str, str]]:
        """Resolve a with-item to ``(lock key, display name)``, reporting
        CONC003 for lock-like attributes outside the declared registry."""
        if not isinstance(item, ast.Attribute):
            return None
        attr = item.attr
        if isinstance(item.value, ast.Name) and item.value.id == "self":
            owner = self._class[-1] if self._class else ""
            declared = CLASS_LOCKS.get(owner, {})
            if attr in declared:
                return declared[attr], f"self.{attr}"
            if owner in CLASS_LOCKS and _lock_like(attr):
                self._report(
                    "CONC003", item,
                    f"acquisition of undeclared lock 'self.{attr}' in class "
                    f"{owner!r}",
                    hint="declare the lock in repro.analyze.conc.CLASS_LOCKS "
                         "and give it a place in LOCK_ORDER",
                )
            return None
        if isinstance(item.value, ast.Name) and _lock_like(attr):
            hint = item.value.id.lower()
            for noun, owner in _RECEIVER_NOUNS:
                if noun in hint:
                    key = CLASS_LOCKS.get(owner, {}).get(attr)
                    if key is not None:
                        return key, f"{item.value.id}.{attr}"
        return None

    def visit_With(self, node: ast.With) -> None:
        acquired: list[tuple[str, str]] = []
        for with_item in node.items:
            resolved = self._resolve_lock(with_item.context_expr)
            if resolved is None:
                continue
            key, display = resolved
            spec = LOCK_ORDER[key]
            if self._locks:
                top_key, top_display = self._locks[-1]
                top = LOCK_ORDER[top_key]
                if key == top_key:
                    if not spec.reentrant:
                        self._report(
                            "CONC001", with_item.context_expr,
                            f"re-acquisition of non-reentrant lock "
                            f"{display!r} while already held "
                            f"(as {top_display!r}): self-deadlock",
                        )
                elif spec.rank <= top.rank:
                    self._report(
                        "CONC001", with_item.context_expr,
                        f"acquiring {display!r} ({key}, rank {spec.rank}) "
                        f"while holding {top_display!r} ({top_key}, rank "
                        f"{top.rank}) violates the declared lock order "
                        f"{_order_text()}",
                        hint="release the held lock first, or acquire in "
                             "declared order (DESIGN section 9)",
                    )
            self._locks.append((key, display))
            acquired.append((key, display))
        for statement in node.body:
            self.visit(statement)
        for _ in acquired:
            self._locks.pop()

    # -- shared-attribute mutation -----------------------------------------

    def _guarded(self) -> frozenset[str]:
        owner = self._class[-1] if self._class else ""
        return GUARDED_ATTRS.get(owner, frozenset())

    def _own_lock_held(self) -> bool:
        owner = self._class[-1] if self._class else ""
        keys = set(CLASS_LOCKS.get(owner, {}).values())
        return any(key in keys for key, _ in self._locks)

    def _check_mutation(self, node: ast.AST, attr: str) -> None:
        if attr not in self._guarded():
            return
        if self._exempt and self._exempt[-1]:
            return
        if self._own_lock_held():
            return
        owner = self._class[-1] if self._class else "?"
        self._report(
            "CONC002", node,
            f"mutation of shared attribute 'self.{attr}' of class "
            f"{owner!r} outside a 'with <lock>' block",
            hint="wrap the mutation in the owning lock, or document the "
                 "exception ('caller holds the lock' in the docstring) "
                 "and verify every call site",
        )

    def _mutated_attr(self, target: ast.expr) -> Optional[str]:
        attr = _self_attr(target)
        if attr is not None:
            return attr
        if isinstance(target, ast.Subscript):
            return _self_attr(target.value)
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                found = self._mutated_attr(element)
                if found is not None:
                    return found
        return None

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            attr = self._mutated_attr(target)
            if attr is not None:
                self._check_mutation(node, attr)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        attr = self._mutated_attr(node.target)
        if attr is not None:
            self._check_mutation(node, attr)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            attr = self._mutated_attr(node.target)
            if attr is not None:
                self._check_mutation(node, attr)
        self.generic_visit(node)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            attr = self._mutated_attr(target)
            if attr is not None:
                self._check_mutation(node, attr)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr in _MUTATORS:
            attr = _self_attr(func.value)
            if attr is not None:
                self._check_mutation(node, attr)
        self.generic_visit(node)


def _order_text() -> str:
    ordered = sorted(LOCK_ORDER.values(), key=lambda spec: spec.rank)
    return " -> ".join(spec.key for spec in ordered)


def lint_source(source: str, filename: str = "<string>") -> list[Diagnostic]:
    """Lint one module's source text (used by the mutation self-tests)."""
    try:
        tree = ast.parse(source, filename=filename)
    except SyntaxError as exc:
        return [Diagnostic(
            "CONC003", Severity.ERROR,
            f"{filename}:{exc.lineno or 0}: cannot parse module: {exc.msg}",
        )]
    linter = _Linter(filename)
    linter.visit(tree)
    return linter.diagnostics


def lint_file(path: str) -> list[Diagnostic]:
    with open(path, encoding="utf-8") as handle:
        return lint_source(handle.read(), filename=path)


def iter_python_files(paths: Sequence[str]) -> Iterable[str]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    for path in paths:
        if os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames.sort()
                for name in sorted(filenames):
                    if name.endswith(".py"):
                        yield os.path.join(dirpath, name)
        else:
            yield path


def lint_paths(paths: Sequence[str]) -> list[Diagnostic]:
    """Concurrency-lint every ``.py`` file under ``paths``."""
    diagnostics: list[Diagnostic] = []
    for filename in iter_python_files(paths):
        diagnostics.extend(lint_file(filename))
    return diagnostics


def default_targets(root: Optional[str] = None) -> list[str]:
    """The subsystems the DESIGN section-9 contract covers."""
    if root is None:
        root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    return [
        os.path.join(root, "serve"),
        os.path.join(root, "storage"),
        os.path.join(root, "plan", "cache.py"),
    ]
