"""SQL value model and three-valued logic (3VL).

SQL values are represented by plain Python objects:

* ``None``  -> SQL NULL
* ``bool``  -> SQL BOOLEAN
* ``int``   -> SQL INTEGER
* ``float`` -> SQL DOUBLE
* ``str``   -> SQL VARCHAR (also used for DATE in ISO format, which keeps
  lexicographic ordering consistent with chronological ordering)

Truth values in predicates are ``True``, ``False`` and ``None`` (UNKNOWN).
The helpers in this module centralise NULL propagation so that the executor,
the rewrite null-rejection analysis, and tests all share one definition.
"""

from __future__ import annotations

import enum
from typing import Any, Optional

from .errors import SchemaError

#: Truth value type alias used in signatures: True / False / None (UNKNOWN).
Truth = Optional[bool]


class SQLType(enum.Enum):
    """Declared column types. Runtime values are duck-typed (see module doc);
    the declared type is used for validation on insert and for display."""

    INT = "INT"
    FLOAT = "FLOAT"
    STR = "STR"
    BOOL = "BOOL"
    DATE = "DATE"

    def validate(self, value: Any) -> Any:
        """Check (and mildly coerce) ``value`` for this type.

        Returns the stored representation or raises :class:`SchemaError`.
        NULL is accepted for every type; nullability is enforced at the
        schema level, not here.
        """
        if value is None:
            return None
        if self is SQLType.INT:
            if isinstance(value, bool) or not isinstance(value, int):
                raise SchemaError(f"expected INT, got {value!r}")
            return value
        if self is SQLType.FLOAT:
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise SchemaError(f"expected FLOAT, got {value!r}")
            return float(value)
        if self is SQLType.STR or self is SQLType.DATE:
            if not isinstance(value, str):
                raise SchemaError(f"expected {self.value}, got {value!r}")
            return value
        if self is SQLType.BOOL:
            if not isinstance(value, bool):
                raise SchemaError(f"expected BOOL, got {value!r}")
            return value
        raise AssertionError(f"unhandled type {self}")


def tv_not(a: Truth) -> Truth:
    """3VL NOT: NOT UNKNOWN = UNKNOWN."""
    if a is None:
        return None
    return not a


def tv_and(a: Truth, b: Truth) -> Truth:
    """3VL AND: FALSE dominates, UNKNOWN otherwise propagates."""
    if a is False or b is False:
        return False
    if a is None or b is None:
        return None
    return True


def tv_or(a: Truth, b: Truth) -> Truth:
    """3VL OR: TRUE dominates, UNKNOWN otherwise propagates."""
    if a is True or b is True:
        return True
    if a is None or b is None:
        return None
    return False


def is_true(t: Truth) -> bool:
    """WHERE-clause semantics: only TRUE qualifies (UNKNOWN filters out)."""
    return t is True


_NUMERIC = (int, float)


def _comparable(a: Any, b: Any) -> bool:
    if isinstance(a, bool) or isinstance(b, bool):
        return isinstance(a, bool) and isinstance(b, bool)
    if isinstance(a, _NUMERIC) and isinstance(b, _NUMERIC):
        return True
    return isinstance(a, str) and isinstance(b, str)


def _check_comparable(a: Any, b: Any) -> None:
    if not _comparable(a, b):
        raise SchemaError(f"cannot compare {a!r} with {b!r}")


def sql_eq(a: Any, b: Any) -> Truth:
    """SQL ``=``: NULL if either operand is NULL."""
    if a is None or b is None:
        return None
    _check_comparable(a, b)
    return a == b


def sql_ne(a: Any, b: Any) -> Truth:
    """SQL ``<>``."""
    return tv_not(sql_eq(a, b))


def sql_lt(a: Any, b: Any) -> Truth:
    """SQL ``<``."""
    if a is None or b is None:
        return None
    _check_comparable(a, b)
    return a < b


def sql_le(a: Any, b: Any) -> Truth:
    """SQL ``<=``."""
    if a is None or b is None:
        return None
    _check_comparable(a, b)
    return a <= b


def sql_gt(a: Any, b: Any) -> Truth:
    """SQL ``>``."""
    return sql_lt(b, a)


def sql_ge(a: Any, b: Any) -> Truth:
    """SQL ``>=``."""
    return sql_le(b, a)


def sql_is_not_distinct(a: Any, b: Any) -> Truth:
    """Null-safe equality (``<=>``): NULL matches NULL, never UNKNOWN.

    Used by magic decorrelation's correlated-input join: a NULL correlation
    binding must still find its (count = 0 / NULL) row in the decorrelated
    subquery result.
    """
    if a is None or b is None:
        return a is None and b is None
    _check_comparable(a, b)
    return a == b


#: Comparison operator name -> implementation. Shared by evaluator and tests.
COMPARISONS = {
    "=": sql_eq,
    "<>": sql_ne,
    "!=": sql_ne,
    "<": sql_lt,
    "<=": sql_le,
    ">": sql_gt,
    ">=": sql_ge,
    "<=>": sql_is_not_distinct,
}


def sql_add(a: Any, b: Any) -> Any:
    """SQL ``+`` with NULL propagation."""
    if a is None or b is None:
        return None
    return a + b


def sql_sub(a: Any, b: Any) -> Any:
    """SQL ``-`` with NULL propagation."""
    if a is None or b is None:
        return None
    return a - b


def sql_mul(a: Any, b: Any) -> Any:
    """SQL ``*`` with NULL propagation."""
    if a is None or b is None:
        return None
    return a * b


def sql_div(a: Any, b: Any) -> Any:
    """SQL ``/`` with NULL propagation; division by zero yields NULL
    (a pragmatic choice also made by several analytical engines)."""
    if a is None or b is None:
        return None
    if b == 0:
        return None
    return a / b


#: Arithmetic operator name -> implementation.
ARITHMETIC = {
    "+": sql_add,
    "-": sql_sub,
    "*": sql_mul,
    "/": sql_div,
}


def sql_like(value: Any, pattern: Any) -> Truth:
    """SQL ``LIKE`` with ``%`` and ``_`` wildcards (no escape support)."""
    if value is None or pattern is None:
        return None
    if not isinstance(value, str) or not isinstance(pattern, str):
        raise SchemaError("LIKE requires string operands")
    return _like_match(value, pattern)


def _like_match(value: str, pattern: str) -> bool:
    # Iterative matcher with backtracking on '%', linear in practice.
    vi, pi = 0, 0
    star_pi, star_vi = -1, 0
    while vi < len(value):
        # '%' must be tested first: a literal '%' in the *value* must not be
        # consumed by the literal-match branch.
        if pi < len(pattern) and pattern[pi] == "%":
            star_pi, star_vi = pi, vi
            pi += 1
        elif pi < len(pattern) and (pattern[pi] == "_" or pattern[pi] == value[vi]):
            vi += 1
            pi += 1
        elif star_pi >= 0:
            star_vi += 1
            vi = star_vi
            pi = star_pi + 1
        else:
            return False
    while pi < len(pattern) and pattern[pi] == "%":
        pi += 1
    return pi == len(pattern)


def sort_key(value: Any) -> tuple:
    """Total-order key placing NULLs first, then by type class, then value.

    Used for ORDER BY and for deterministic result comparison in tests.
    """
    if value is None:
        return (0, 0)
    if isinstance(value, bool):
        return (1, value)
    if isinstance(value, (int, float)):
        return (2, value)
    return (3, value)
