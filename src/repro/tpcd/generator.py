"""Deterministic TPC-D data generator.

Seeded per table, so any table can be regenerated independently and a given
``(seed, scale_factor)`` pair always produces identical data. Value
distributions are uniform (as in TPC-D) with selectivities calibrated so the
paper's reported subquery invocation counts reproduce at scale factor 0.1:

* Query 1: ~6 invocations, no duplicate bindings (p_size + p_type +
  s_nation cut the join to a handful of rows);
* Query 1 variant: ~3 954 invocations of which ~2 138 distinct;
* Query 2: ~209 invocations, bindings keyed by p_partkey;
* Query 3: ~209 invocations with only 5 distinct binding values (the five
  European nations).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..storage import Catalog
from .schema import (
    MARKET_SEGMENTS,
    NATIONS,
    PART_BRANDS,
    PART_CONTAINERS,
    PART_SIZES,
    PART_TYPES,
    SUPPLIERS_PER_PART,
    create_tpcd_schema,
    paper_row_counts,
)


@dataclass
class TPCDGenerator:
    """Generate TPC-D tables into a catalog."""

    scale_factor: float = 0.01
    seed: int = 19960226  # ICDE 1996

    def _rng(self, table: str) -> random.Random:
        return random.Random((self.seed, table, self.scale_factor).__repr__())

    def counts(self) -> dict[str, int]:
        return paper_row_counts(self.scale_factor)

    # -- per-table generators ----------------------------------------------

    def generate_suppliers(self, catalog: Catalog) -> int:
        rng = self._rng("suppliers")
        table = catalog.table("suppliers")
        n = self.counts()["suppliers"]
        for key in range(1, n + 1):
            nation, region = NATIONS[rng.randrange(len(NATIONS))]
            table.insert(
                (
                    key,
                    f"Supplier#{key:09d}",
                    f"{rng.randrange(1, 999)} Main St",
                    nation,
                    region,
                    f"{rng.randrange(10, 35)}-{rng.randrange(100, 999)}-{rng.randrange(1000, 9999)}",
                    round(rng.uniform(-999.99, 9999.99), 2),
                    "generated supplier",
                )
            )
        return n

    def generate_parts(self, catalog: Catalog) -> int:
        rng = self._rng("parts")
        table = catalog.table("parts")
        n = self.counts()["parts"]
        for key in range(1, n + 1):
            table.insert(
                (
                    key,
                    f"Part#{key:09d}",
                    PART_BRANDS[rng.randrange(len(PART_BRANDS))],
                    PART_TYPES[rng.randrange(len(PART_TYPES))],
                    PART_SIZES[rng.randrange(len(PART_SIZES))],
                    PART_CONTAINERS[rng.randrange(len(PART_CONTAINERS))],
                    round(900 + (key % 1000) * 0.5, 2),
                )
            )
        return n

    def generate_partsupp(self, catalog: Catalog) -> int:
        rng = self._rng("partsupp")
        table = catalog.table("partsupp")
        counts = self.counts()
        n_suppliers = counts["suppliers"]
        inserted = 0
        for part in range(1, counts["parts"] + 1):
            # TPC-D picks 4 distinct suppliers per part.
            suppliers = rng.sample(
                range(1, n_suppliers + 1), min(SUPPLIERS_PER_PART, n_suppliers)
            )
            for supplier in suppliers:
                table.insert(
                    (
                        part,
                        supplier,
                        rng.randrange(1, 10_000),
                        round(rng.uniform(1.0, 1000.0), 2),
                    )
                )
                inserted += 1
        return inserted

    def generate_customers(self, catalog: Catalog) -> int:
        rng = self._rng("customers")
        table = catalog.table("customers")
        n = self.counts()["customers"]
        for key in range(1, n + 1):
            nation, region = NATIONS[rng.randrange(len(NATIONS))]
            table.insert(
                (
                    key,
                    f"Customer#{key:09d}",
                    nation,
                    region,
                    round(rng.uniform(-999.99, 9999.99), 2),
                    MARKET_SEGMENTS[rng.randrange(len(MARKET_SEGMENTS))],
                )
            )
        return n

    def generate_lineitem(self, catalog: Catalog) -> int:
        rng = self._rng("lineitem")
        table = catalog.table("lineitem")
        counts = self.counts()
        n = counts["lineitem"]
        n_parts = counts["parts"]
        n_suppliers = counts["suppliers"]
        order = 0
        line = 7  # forces a new order at the first row
        for _ in range(n):
            if line >= 7:
                order += 1
                line = 1
            table.insert(
                (
                    order,
                    line,
                    rng.randrange(1, n_parts + 1),
                    rng.randrange(1, n_suppliers + 1),
                    float(rng.randrange(1, 51)),
                    round(rng.uniform(900.0, 105_000.0), 2),
                    round(rng.uniform(0.0, 0.1), 2),
                )
            )
            line += rng.randrange(1, 3)
        return n

    def generate_all(self, catalog: Catalog) -> dict[str, int]:
        """Generate every table; returns actual row counts per table."""
        produced = {
            "suppliers": self.generate_suppliers(catalog),
            "parts": self.generate_parts(catalog),
            "partsupp": self.generate_partsupp(catalog),
            "customers": self.generate_customers(catalog),
            "lineitem": self.generate_lineitem(catalog),
        }
        for name in produced:
            catalog.invalidate_stats(name)
        return produced


def load_tpcd(
    scale_factor: float = 0.01,
    seed: int = 19960226,
    with_indexes: bool = True,
) -> Catalog:
    """Create and populate a TPC-D catalog (schema + data + indexes)."""
    catalog = Catalog()
    create_tpcd_schema(catalog, with_indexes=with_indexes)
    TPCDGenerator(scale_factor=scale_factor, seed=seed).generate_all(catalog)
    return catalog
