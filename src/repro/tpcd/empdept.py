"""EMP/DEPT generator for the section-2 example and the parallel experiments.

"Each employee is assigned to a building in which he/she works. Each
department is situated in a building, but may have employees in other
buildings as well."
"""

from __future__ import annotations

import random

from ..storage import Catalog, Column, Schema
from ..types import SQLType


def create_empdept_schema(catalog: Catalog, with_indexes: bool = True) -> None:
    catalog.create_table(
        "dept",
        Schema(
            [
                Column("name", SQLType.STR, nullable=False),
                Column("budget", SQLType.FLOAT),
                Column("num_emps", SQLType.INT),
                Column("building", SQLType.STR),
            ],
            primary_key=["name"],
        ),
    )
    catalog.create_table(
        "emp",
        Schema(
            [
                Column("empno", SQLType.INT, nullable=False),
                Column("name", SQLType.STR),
                Column("building", SQLType.STR),
                Column("salary", SQLType.FLOAT),
            ],
            primary_key=["empno"],
        ),
    )
    if with_indexes:
        catalog.table("emp").create_index("emp_building_idx", ["building"])


def load_empdept(
    n_depts: int = 100,
    n_emps: int = 2000,
    n_buildings: int = 20,
    seed: int = 2,
    with_indexes: bool = True,
    empty_building_fraction: float = 0.1,
    catalog: Catalog | None = None,
) -> Catalog:
    """A populated EMP/DEPT catalog.

    ``empty_building_fraction`` of the buildings hold departments but no
    employees -- the situation that triggers the COUNT bug. ``catalog``
    loads the tables into an existing catalog (e.g. alongside TPC-D for a
    mixed workload) instead of creating a fresh one.
    """
    rng = random.Random(seed)
    if catalog is None:
        catalog = Catalog()
    create_empdept_schema(catalog, with_indexes=with_indexes)
    dept = catalog.table("dept")
    emp = catalog.table("emp")
    buildings = [f"B{i}" for i in range(n_buildings)]
    n_empty = max(1, int(n_buildings * empty_building_fraction))
    staffed = buildings[:-n_empty] if n_empty < n_buildings else buildings[:1]
    for i in range(n_depts):
        dept.insert(
            (
                f"dept{i:04d}",
                round(rng.uniform(100.0, 20000.0), 2),
                rng.randrange(0, 60),
                buildings[rng.randrange(len(buildings))],
            )
        )
    for i in range(n_emps):
        emp.insert(
            (
                i + 1,
                f"emp{i:05d}",
                staffed[rng.randrange(len(staffed))],
                round(rng.uniform(40.0, 200.0), 2),
            )
        )
    return catalog
