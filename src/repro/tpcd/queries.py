"""The paper's benchmark queries (section 5), as SQL text.

Query 1 and 2 come from the late-1993 TPC-D draft (the paper used those
versions); Query 3 is the paper's non-linear UNION query. The EMP/DEPT
query is the running example of section 2.
"""

#: Section 2's running example.
EMP_DEPT_QUERY = """
    Select D.name From Dept D
    Where D.budget < 10000 and D.num_emps >
      (Select Count(*) From Emp E Where D.building = E.building)
"""

#: Query 1 (Figure 5): minimum-cost supplier; ~6 invocations, no duplicate
#: correlation bindings. The correlation attribute p_partkey is not a key of
#: the supplementary table (a three-way join), so the supplementary common
#: subexpression cannot be eliminated.
QUERY_1 = """
    Select s.s_name, s.s_acctbal, s.s_address, s.s_phone, s.s_comment
    From Parts p, Suppliers s, Partsupp ps
    Where s.s_nation = 'FRANCE' and p.p_size = 15 and p.p_type = 'BRASS'
      and p.p_partkey = ps.ps_partkey and s.s_suppkey = ps.ps_suppkey
      and ps.ps_supplycost =
        (Select min(ps1.ps_supplycost)
         From Partsupp ps1, Suppliers s1
         Where p.p_partkey = ps1.ps_partkey
           and s1.s_suppkey = ps1.ps_suppkey
           and s1.s_nation = 'FRANCE')
"""

#: Query 1 variant (Figures 6 and 7): drop "p_size = 15", widen the
#: supplier predicate to two regions -- ~3 954 invocations, ~2 138 distinct.
QUERY_1_VARIANT = """
    Select s.s_name, s.s_acctbal, s.s_address, s.s_phone, s.s_comment
    From Parts p, Suppliers s, Partsupp ps
    Where s.s_region in ('AMERICA', 'EUROPE') and p.p_type = 'BRASS'
      and p.p_partkey = ps.ps_partkey and s.s_suppkey = ps.ps_suppkey
      and ps.ps_supplycost =
        (Select min(ps1.ps_supplycost)
         From Partsupp ps1, Suppliers s1
         Where p.p_partkey = ps1.ps_partkey
           and s1.s_suppkey = ps1.ps_suppkey
           and s1.s_region in ('AMERICA', 'EUROPE'))
"""

#: Query 2 (Figure 8): average yearly loss in revenue; ~209 keyed
#: invocations of a cheap (indexed) subquery -- the case where
#: decorrelation should not help, and must not hurt.
QUERY_2 = """
    Select sum(l.l_extendedprice * l.l_quantity) / 5
    From Lineitem l, Parts p
    Where p.p_partkey = l.l_partkey and p.p_brand = 'Brand#23'
      and p.p_container = '6 PACK' and l.l_quantity <
        (Select 0.2 * avg(l1.l_quantity)
         From Lineitem l1 Where l1.l_partkey = p.p_partkey)
"""

#: Query 3 (Figure 9): non-linear (UNION ALL inside the correlated table
#: expression), duplicate correlation values (only 5 distinct European
#: nations among ~209 European suppliers). Kim's and Dayal's methods are
#: not applicable. Uses the paper's Starburst DT(cols) AS (...) syntax.
QUERY_3 = """
    Select s.s_name, s.s_nation, dt.sumbal
    From Suppliers s, DT(sumbal) AS
      (Select sum(bal) From DDT(bal) AS
        ((Select a.c_acctbal From Customers a
          Where a.c_mktsegment = 'BUILDING' and a.c_nation = s.s_nation)
         Union All
         (Select b.c_acctbal From Customers b
          Where b.c_mktsegment = 'AUTOMOBILE' and b.c_nation = s.s_nation)))
    Where s.s_region = 'EUROPE'
"""
