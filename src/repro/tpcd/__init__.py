"""TPC-D substrate: schema, deterministic data generator, paper queries.

The paper used the (late-1993) TPC-D benchmark database at 120 MB, i.e.
scale factor 0.1: customers 15 000, parts 20 000, suppliers 1 000,
partsupp 80 000, lineitem 600 000 (Table 1). The schema here is the
1993-style *denormalised* variant the paper's query text implies
(``s_nation``, ``s_region``, ``c_nation`` inline, no NATION/REGION joins).
"""

from .schema import TPCD_TABLES, create_tpcd_schema, paper_row_counts
from .generator import TPCDGenerator, load_tpcd
from .queries import (
    EMP_DEPT_QUERY,
    QUERY_1,
    QUERY_1_VARIANT,
    QUERY_2,
    QUERY_3,
)
from .empdept import load_empdept

__all__ = [
    "TPCD_TABLES",
    "create_tpcd_schema",
    "paper_row_counts",
    "TPCDGenerator",
    "load_tpcd",
    "load_empdept",
    "QUERY_1",
    "QUERY_1_VARIANT",
    "QUERY_2",
    "QUERY_3",
    "EMP_DEPT_QUERY",
]
