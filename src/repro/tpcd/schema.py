"""TPC-D schema (1993-style, denormalised nations/regions) and indexes."""

from __future__ import annotations

from ..storage import Catalog, Column, Schema
from ..types import SQLType

#: Nations per region, following TPC-D's 25 nations / 5 regions.
REGIONS: dict[str, list[str]] = {
    "AFRICA": ["ALGERIA", "ETHIOPIA", "KENYA", "MOROCCO", "MOZAMBIQUE"],
    "AMERICA": ["ARGENTINA", "BRAZIL", "CANADA", "PERU", "UNITED STATES"],
    "ASIA": ["CHINA", "INDIA", "INDONESIA", "JAPAN", "VIETNAM"],
    "EUROPE": ["FRANCE", "GERMANY", "ROMANIA", "RUSSIA", "UNITED KINGDOM"],
    "MIDDLE EAST": ["EGYPT", "IRAN", "IRAQ", "JORDAN", "SAUDI ARABIA"],
}

NATIONS: list[tuple[str, str]] = [
    (nation, region) for region, nations in REGIONS.items() for nation in nations
]

#: Part types -- 8 values calibrated so the paper's invocation counts at
#: scale factor 0.1 reproduce (about 3 954 qualifying rows / 2 138 distinct
#: parts for the Query 1 variant; see tpcd/generator.py).
PART_TYPES = ["BRASS", "COPPER", "NICKEL", "STEEL", "TIN", "ZINC", "IRON", "PEWTER"]
PART_BRANDS = [f"Brand#{m}{n}" for m in range(1, 6) for n in range(1, 6)]
PART_CONTAINERS = ["6 PACK", "12 PACK", "JUMBO", "CASE"]
PART_SIZES = list(range(1, 51))
MARKET_SEGMENTS = ["BUILDING", "AUTOMOBILE", "MACHINERY", "HOUSEHOLD", "FURNITURE"]

#: TPC-D base cardinalities at scale factor 1.0 (the paper ran SF = 0.1).
BASE_ROWS = {
    "customers": 150_000,
    "parts": 200_000,
    "suppliers": 10_000,
    "lineitem": 6_000_000,
}
SUPPLIERS_PER_PART = 4
PAPER_SCALE_FACTOR = 0.1

TPCD_TABLES = ["customers", "parts", "suppliers", "partsupp", "lineitem"]


def paper_row_counts(scale_factor: float = PAPER_SCALE_FACTOR) -> dict[str, int]:
    """Row counts at ``scale_factor`` (Table 1 of the paper at 0.1)."""
    parts = round(BASE_ROWS["parts"] * scale_factor)
    return {
        "customers": round(BASE_ROWS["customers"] * scale_factor),
        "parts": parts,
        "suppliers": round(BASE_ROWS["suppliers"] * scale_factor),
        "partsupp": parts * SUPPLIERS_PER_PART,
        "lineitem": round(BASE_ROWS["lineitem"] * scale_factor),
    }


def create_tpcd_schema(catalog: Catalog, with_indexes: bool = True) -> None:
    """Create the five TPC-D tables (Table 1) plus the paper's index set
    ("indexes were available on all the necessary attributes")."""
    catalog.create_table(
        "customers",
        Schema(
            [
                Column("c_custkey", SQLType.INT, nullable=False),
                Column("c_name", SQLType.STR),
                Column("c_nation", SQLType.STR),
                Column("c_region", SQLType.STR),
                Column("c_acctbal", SQLType.FLOAT),
                Column("c_mktsegment", SQLType.STR),
            ],
            primary_key=["c_custkey"],
        ),
    )
    catalog.create_table(
        "parts",
        Schema(
            [
                Column("p_partkey", SQLType.INT, nullable=False),
                Column("p_name", SQLType.STR),
                Column("p_brand", SQLType.STR),
                Column("p_type", SQLType.STR),
                Column("p_size", SQLType.INT),
                Column("p_container", SQLType.STR),
                Column("p_retailprice", SQLType.FLOAT),
            ],
            primary_key=["p_partkey"],
        ),
    )
    catalog.create_table(
        "suppliers",
        Schema(
            [
                Column("s_suppkey", SQLType.INT, nullable=False),
                Column("s_name", SQLType.STR),
                Column("s_address", SQLType.STR),
                Column("s_nation", SQLType.STR),
                Column("s_region", SQLType.STR),
                Column("s_phone", SQLType.STR),
                Column("s_acctbal", SQLType.FLOAT),
                Column("s_comment", SQLType.STR),
            ],
            primary_key=["s_suppkey"],
        ),
    )
    catalog.create_table(
        "partsupp",
        Schema(
            [
                Column("ps_partkey", SQLType.INT, nullable=False),
                Column("ps_suppkey", SQLType.INT, nullable=False),
                Column("ps_availqty", SQLType.INT),
                Column("ps_supplycost", SQLType.FLOAT),
            ],
            primary_key=["ps_partkey", "ps_suppkey"],
        ),
    )
    catalog.create_table(
        "lineitem",
        Schema(
            [
                Column("l_orderkey", SQLType.INT, nullable=False),
                Column("l_linenumber", SQLType.INT, nullable=False),
                Column("l_partkey", SQLType.INT),
                Column("l_suppkey", SQLType.INT),
                Column("l_quantity", SQLType.FLOAT),
                Column("l_extendedprice", SQLType.FLOAT),
                Column("l_discount", SQLType.FLOAT),
            ],
            primary_key=["l_orderkey", "l_linenumber"],
        ),
    )
    if with_indexes:
        create_tpcd_indexes(catalog)


def create_tpcd_indexes(catalog: Catalog) -> None:
    """The experiment index set.

    Note there is deliberately *no* single-column index on ps_partkey: the
    1993 TPC-D PARTSUPP key is the composite (ps_partkey, ps_suppkey), and
    the paper's correlated invocations reach PARTSUPP through the
    ``ps_suppkey`` index (which is exactly why Figure 7 drops that index to
    "increase the work performed in each correlated invocation").
    """
    catalog.table("partsupp").create_index("ps_suppkey_idx", ["ps_suppkey"])
    catalog.table("suppliers").create_index("s_nation_idx", ["s_nation"])
    catalog.table("suppliers").create_index("s_region_idx", ["s_region"])
    catalog.table("parts").create_index("p_type_idx", ["p_type"])
    catalog.table("parts").create_index("p_brand_idx", ["p_brand"])
    catalog.table("lineitem").create_index("l_partkey_idx", ["l_partkey"])
    catalog.table("customers").create_index("c_nation_idx", ["c_nation"])
    catalog.table("customers").create_index("c_mktsegment_idx", ["c_mktsegment"])
