"""Shared-nothing parallel execution (section 6 of the paper): the cost
simulator (:mod:`.simulate`) and the real worker-process executor with
crash recovery (:mod:`.workers`)."""

from .cluster import (
    MEASURED_RETRY_POLICY,
    SIMULATED_RETRY_POLICY,
    Cluster,
    Node,
    RetryPolicy,
    hash_partition,
    partition_owner,
)
from .simulate import (
    ParallelMetrics,
    simulate_decorrelated,
    simulate_nested_iteration,
    sweep_nodes,
)
from .workers import (
    WorkerPool,
    WorkerRunMetrics,
    local_reference,
    run_real,
    run_real_decorrelated,
    run_real_nested_iteration,
)

__all__ = [
    "Cluster",
    "Node",
    "RetryPolicy",
    "SIMULATED_RETRY_POLICY",
    "MEASURED_RETRY_POLICY",
    "hash_partition",
    "partition_owner",
    "ParallelMetrics",
    "simulate_nested_iteration",
    "simulate_decorrelated",
    "sweep_nodes",
    "WorkerPool",
    "WorkerRunMetrics",
    "local_reference",
    "run_real",
    "run_real_decorrelated",
    "run_real_nested_iteration",
]
