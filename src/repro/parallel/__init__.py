"""Shared-nothing parallel execution simulator (section 6 of the paper)."""

from .cluster import Cluster, Node, hash_partition
from .simulate import (
    ParallelMetrics,
    simulate_decorrelated,
    simulate_nested_iteration,
    sweep_nodes,
)

__all__ = [
    "Cluster",
    "Node",
    "hash_partition",
    "ParallelMetrics",
    "simulate_nested_iteration",
    "simulate_decorrelated",
    "sweep_nodes",
]
