"""Cluster model: nodes, partitioned tables, message accounting.

This is a *cost simulator*, not a distributed runtime: it executes the
actual relational work single-threaded while accounting, per node, for the
rows processed and messages sent/received, then derives a makespan from a
simple cost model. Section 6 of the paper presents no measured numbers --
only an execution-strategy analysis (broadcast-per-tuple nested iteration
versus fully partitioned decorrelated plans) -- and this model quantifies
exactly the effects it describes.

Failure model: with a :class:`repro.faults.FaultRegistry` attached, the
soft fault sites ``cluster.node`` (a node crashes mid-step and the step is
re-run after recovery) and ``cluster.deliver`` (a message is lost and
re-sent after a timeout) fire deterministically from the registry seed.
Each retry doubles the affected work/traffic and adds the cluster's
:class:`RetryPolicy` delay for that attempt to the node, folded into its
busy time and therefore the makespan -- answers are never affected, only
cost. The default policy is flat at :data:`RETRY_BACKOFF` per retry; the
real executor (:mod:`repro.parallel.workers`) accepts the same policy
object so simulated and measured recovery share one schedule.
"""

from __future__ import annotations

import zlib

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Iterable, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle avoidance
    from ..faults import FaultRegistry

#: Base recovery/timeout penalty per retry (same arbitrary time units as
#: the row/message costs of :mod:`repro.parallel.simulate`); the default
#: :class:`RetryPolicy` of the simulator is flat at this value.
RETRY_BACKOFF = 25.0


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff with deterministic jitter.

    One policy object is shared by the cost simulator and the real worker
    executor (:mod:`repro.parallel.workers`), so simulated and measured
    recovery follow the same schedule -- only the unit differs (abstract
    cost units in the simulator, seconds on real processes).

    ``delay(attempt)`` is ``base_delay * multiplier**attempt``, stretched
    by up to ``jitter`` (a fraction in ``[0, 1]``) using a crc32 draw on
    ``(seed, attempt)`` -- no ``random`` module, so a seeded run replays
    identically. ``max_attempts`` bounds the total tries of one task
    (first attempt included); ``allows(attempt)`` says whether attempt
    number ``attempt`` (0-based) may still run.
    """

    base_delay: float = RETRY_BACKOFF
    multiplier: float = 1.0
    jitter: float = 0.0
    max_attempts: int = 3

    def __post_init__(self) -> None:
        if self.base_delay < 0:
            raise ValueError("retry base_delay must be >= 0")
        if self.multiplier < 1.0:
            raise ValueError("retry multiplier must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("retry jitter must be in [0, 1]")
        if self.max_attempts < 1:
            raise ValueError("retry max_attempts must be >= 1")

    def allows(self, attempt: int) -> bool:
        """May attempt number ``attempt`` (0-based) still run?"""
        return attempt < self.max_attempts

    def delay(self, attempt: int, seed: int = 0) -> float:
        """The backoff before retry number ``attempt`` (0-based)."""
        delay = self.base_delay * self.multiplier ** attempt
        if self.jitter:
            draw = zlib.crc32(f"{seed}:retry:{attempt}".encode()) / 2**32
            delay *= 1.0 + self.jitter * draw
        return delay


#: The simulator's default: a flat RETRY_BACKOFF per retry, preserving the
#: historical ``backoff_time == retries * RETRY_BACKOFF`` accounting.
SIMULATED_RETRY_POLICY = RetryPolicy()

#: The real executor's default (seconds): exponential with jitter, bounded.
MEASURED_RETRY_POLICY = RetryPolicy(
    base_delay=0.05, multiplier=2.0, jitter=0.25, max_attempts=4
)


@dataclass
class Node:
    """One shared-nothing node: local work and traffic counters."""

    node_id: int
    rows_processed: int = 0
    messages_sent: int = 0
    messages_received: int = 0
    failures: int = 0
    retries: int = 0
    backoff_time: float = 0.0

    def busy_time(self, row_cost: float, message_cost: float) -> float:
        """Simulated busy time under the given cost model (retry backoff
        included -- failures stretch the makespan)."""
        return (
            self.rows_processed * row_cost
            + (self.messages_sent + self.messages_received) * message_cost
            + self.backoff_time
        )


def partition_owner(key: Any, n_nodes: int) -> int:
    """The node owning ``key`` under hash partitioning (NULL -> node 0).

    Uses a stable hash (CRC32 of the repr) so placements -- and therefore
    message counts, simulated or measured -- are reproducible across
    processes regardless of PYTHONHASHSEED. Shared by the simulator and
    the real worker executor so both ship exactly the same rows.
    """
    if key is None:
        return 0
    return zlib.crc32(repr(key).encode()) % n_nodes


class Cluster:
    """A set of nodes plus hash-partitioned table storage."""

    def __init__(
        self,
        n_nodes: int,
        faults: Optional["FaultRegistry"] = None,
        retry_policy: Optional[RetryPolicy] = None,
    ):
        if n_nodes < 1:
            raise ValueError("cluster needs at least one node")
        self.nodes = [Node(i) for i in range(n_nodes)]
        self.faults = faults
        self.retry_policy = (
            retry_policy if retry_policy is not None else SIMULATED_RETRY_POLICY
        )
        #: table name -> list of per-node row lists
        self.partitions: dict[str, list[list[tuple]]] = {}

    @property
    def n_nodes(self) -> int:
        """Cluster size."""
        return len(self.nodes)

    def owner(self, key: Any) -> int:
        """The node owning ``key`` (see :func:`partition_owner`)."""
        return partition_owner(key, self.n_nodes)

    def load_partitioned(
        self, name: str, rows: Iterable[tuple], key: Callable[[tuple], Any]
    ) -> None:
        """Load ``rows`` hash-partitioned on ``key(row)`` (no messages: this
        models the initial physical placement)."""
        partitions: list[list[tuple]] = [[] for _ in self.nodes]
        for row in rows:
            partitions[self.owner(key(row))].append(row)
        self.partitions[name] = partitions

    def local_rows(self, name: str, node_id: int) -> list[tuple]:
        """The partition of table ``name`` stored at ``node_id``."""
        return self.partitions[name][node_id]

    def send(self, sender: int, receiver: int, n_messages: int = 1) -> None:
        """Record ``n_messages`` from ``sender`` to ``receiver`` (loopback
        delivery within a node is free).

        With faults attached, a fired ``cluster.deliver`` models one lost
        delivery: the batch is re-sent after a timeout, doubling its traffic
        and charging the sender the :class:`RetryPolicy` delay for this
        retry attempt.
        """
        if sender == receiver:
            return
        if self.faults is not None and self.faults.should_fire(
            "cluster.deliver", detail=f"{sender}->{receiver}"
        ):
            node = self.nodes[sender]
            attempt = node.retries
            node.retries += 1
            node.backoff_time += self.retry_policy.delay(attempt, seed=sender)
            n_messages *= 2
        self.nodes[sender].messages_sent += n_messages
        self.nodes[receiver].messages_received += n_messages

    def broadcast(self, sender: int, n_messages: int = 1) -> None:
        """One message from ``sender`` to every other node."""
        for node in self.nodes:
            self.send(sender, node.node_id, n_messages)

    def work(self, node_id: int, n_rows: int) -> None:
        """Account ``n_rows`` of local processing at ``node_id``.

        With faults attached, a fired ``cluster.node`` models the node
        crashing mid-step: after recovery the step re-runs from scratch
        (doubled rows) plus the :class:`RetryPolicy` delay for this retry
        attempt as recovery time.
        """
        node = self.nodes[node_id]
        if (
            n_rows > 0
            and self.faults is not None
            and self.faults.should_fire("cluster.node", detail=f"node {node_id}")
        ):
            node.failures += 1
            attempt = node.retries
            node.retries += 1
            node.backoff_time += self.retry_policy.delay(attempt, seed=node_id)
            n_rows *= 2
        node.rows_processed += n_rows

    def reset_counters(self) -> None:
        """Zero all work and traffic counters."""
        for node in self.nodes:
            node.rows_processed = 0
            node.messages_sent = 0
            node.messages_received = 0
            node.failures = 0
            node.retries = 0
            node.backoff_time = 0.0


#: Rows per network message during set-oriented repartitioning. Bulk
#: exchanges ship rows in page-sized batches; nested iteration's
#: per-invocation request/reply messages cannot be batched -- the asymmetry
#: at the heart of the paper's section 6 argument.
ROWS_PER_MESSAGE = 50


def hash_partition(
    cluster: Cluster,
    source: Sequence[Sequence[tuple]],
    key: Callable[[tuple], Any],
) -> list[list[tuple]]:
    """Repartition per-node row lists by a new key, counting batched
    messages (one per :data:`ROWS_PER_MESSAGE` rows per sender/receiver
    pair). ``source[i]`` are the rows currently at node ``i``."""
    result: list[list[tuple]] = [[] for _ in cluster.nodes]
    shipped: dict[tuple[int, int], int] = {}
    for sender, rows in enumerate(source):
        for row in rows:
            receiver = cluster.owner(key(row))
            if sender != receiver:
                shipped[(sender, receiver)] = shipped.get((sender, receiver), 0) + 1
            result[receiver].append(row)
    for (sender, receiver), n_rows in shipped.items():
        n_messages = -(-n_rows // ROWS_PER_MESSAGE)  # ceil division
        cluster.send(sender, receiver, n_messages)
    return result
