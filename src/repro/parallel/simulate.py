"""Parallel execution strategies for the section-2 example query.

The simulated query is the paper's running example::

    Select D.name From Dept D
    Where D.budget < 10000 and D.num_emps >
      (Select Count(*) From Emp E Where D.building = E.building)

with DEPT and EMP hash-partitioned on their primary keys (the section 6
"common case" where neither table is partitioned on the correlation
attribute and neither is small enough to replicate).

* :func:`simulate_nested_iteration` -- section 6.1: for each qualifying
  DEPT tuple, the requesting node broadcasts the binding to all nodes, each
  node computes a local count over its EMP partition and replies; the
  requesting node combines the partial counts. This produces O(n^2)
  computation fragments (every node serves subqueries for every node) and
  per-binding broadcast traffic.

* :func:`simulate_decorrelated` -- section 6.2: the supplementary table and
  the magic table are computed locally, repartitioned on the correlation
  attribute, the decorrelated subquery is evaluated with local joins and
  local aggregation (the GROUP BY is on the partitioning attribute), and the
  final join is local too. Every exchange is a single hash repartitioning.

Both simulations compute the *actual* query answer (verified against the
single-node engine in tests) while accounting work and messages.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from ..exec.metrics import Metrics
from ..guard import guard_for
from .cluster import Cluster, RetryPolicy, hash_partition

if TYPE_CHECKING:  # pragma: no cover - import cycle avoidance
    from ..faults import FaultRegistry
    from ..guard import ExecutionGuard, Limits

#: Cost model (arbitrary units): a network message is much more expensive
#: than touching a row, the defining property of shared-nothing systems.
ROW_COST = 1.0
MESSAGE_COST = 50.0

#: DEPT rows are (name, budget, num_emps, building); EMP rows are
#: (empno, name, building, salary) -- as produced by repro.tpcd.empdept.
_D_NAME, _D_BUDGET, _D_NUMEMPS, _D_BUILDING = range(4)
_E_BUILDING = 2


@dataclass
class ParallelMetrics:
    """Outcome of one simulated parallel execution."""

    strategy: str
    n_nodes: int
    answer: list[tuple]
    #: (requesting node, serving node) pairs that executed subquery work --
    #: the paper's "computation fragments"; O(n^2) under nested iteration.
    fragments: int
    messages: int
    rows_processed: int
    makespan: float
    per_node_busy: list[float] = field(default_factory=list)
    #: Failure accounting (non-zero only under injected cluster faults);
    #: the retry backoff is already folded into the per-node busy times and
    #: therefore into the makespan.
    node_failures: int = 0
    retries: int = 0
    backoff_time: float = 0.0

    def speedup_reference(self) -> float:
        """Total work if executed serially (for speedup computations)."""
        return self.rows_processed * ROW_COST


def _load(cluster: Cluster, dept_rows: list[tuple], emp_rows: list[tuple]) -> None:
    cluster.load_partitioned("dept", dept_rows, key=lambda r: r[_D_NAME])
    cluster.load_partitioned("emp", emp_rows, key=lambda r: r[0])


def _metrics(
    cluster: Cluster, strategy: str, answer: list[tuple], fragments: int
) -> ParallelMetrics:
    per_node = [n.busy_time(ROW_COST, MESSAGE_COST) for n in cluster.nodes]
    return ParallelMetrics(
        strategy=strategy,
        n_nodes=cluster.n_nodes,
        answer=sorted(answer),
        fragments=fragments,
        messages=sum(n.messages_sent for n in cluster.nodes),
        rows_processed=sum(n.rows_processed for n in cluster.nodes),
        makespan=max(per_node) if per_node else 0.0,
        per_node_busy=per_node,
        node_failures=sum(n.failures for n in cluster.nodes),
        retries=sum(n.retries for n in cluster.nodes),
        backoff_time=sum(n.backoff_time for n in cluster.nodes),
    )


def _checkpoint(cluster: Cluster, guard: Optional["ExecutionGuard"]) -> None:
    """Map the cluster's work onto the guard's counters and check budgets.

    Rows processed across the cluster count against ``max_rows_scanned``;
    the wall-clock timeout and cancellation apply as in the single-node
    engine. Called once per simulated node step.
    """
    if guard is None:
        return
    guard.metrics.rows_scanned = sum(n.rows_processed for n in cluster.nodes)
    guard.check()


def simulate_nested_iteration(
    dept_rows: list[tuple],
    emp_rows: list[tuple],
    n_nodes: int,
    budget_limit: float = 10000.0,
    faults: Optional["FaultRegistry"] = None,
    limits: Optional["Limits"] = None,
    retry_policy: Optional[RetryPolicy] = None,
) -> ParallelMetrics:
    """Section 6.1: broadcast-per-tuple nested iteration."""
    cluster = Cluster(n_nodes, faults=faults, retry_policy=retry_policy)
    guard = guard_for(limits)
    if guard is not None:
        guard.attach(Metrics())
    _load(cluster, dept_rows, emp_rows)
    answer: list[tuple] = []
    fragment_pairs: set[tuple[int, int]] = set()
    for node in cluster.nodes:
        local_depts = cluster.local_rows("dept", node.node_id)
        cluster.work(node.node_id, len(local_depts))  # the outer scan
        _checkpoint(cluster, guard)
        for dept in local_depts:
            if not (dept[_D_BUDGET] is not None and dept[_D_BUDGET] < budget_limit):
                continue
            # Broadcast the correlation binding to every node...
            cluster.broadcast(node.node_id)
            total = 0
            for server in cluster.nodes:
                # ...each node scans its EMP partition for a local count...
                emp_partition = cluster.local_rows("emp", server.node_id)
                cluster.work(server.node_id, len(emp_partition))
                total += sum(
                    1 for e in emp_partition if e[_E_BUILDING] == dept[_D_BUILDING]
                )
                fragment_pairs.add((node.node_id, server.node_id))
                # ...and returns its partial count.
                cluster.send(server.node_id, node.node_id)
            _checkpoint(cluster, guard)
            if dept[_D_NUMEMPS] is not None and dept[_D_NUMEMPS] > total:
                answer.append((dept[_D_NAME],))
    return _metrics(cluster, "nested_iteration", answer, len(fragment_pairs))


def simulate_decorrelated(
    dept_rows: list[tuple],
    emp_rows: list[tuple],
    n_nodes: int,
    budget_limit: float = 10000.0,
    faults: Optional["FaultRegistry"] = None,
    limits: Optional["Limits"] = None,
    retry_policy: Optional[RetryPolicy] = None,
) -> ParallelMetrics:
    """Section 6.2: the magic-decorrelated plan, fully partition-parallel."""
    cluster = Cluster(n_nodes, faults=faults, retry_policy=retry_policy)
    guard = guard_for(limits)
    if guard is not None:
        guard.attach(Metrics())
    _load(cluster, dept_rows, emp_rows)

    # 1. Supplementary table computed locally, repartitioned on building.
    supp_local: list[list[tuple]] = []
    for node in cluster.nodes:
        local = cluster.local_rows("dept", node.node_id)
        cluster.work(node.node_id, len(local))
        supp_local.append(
            [d for d in local if d[_D_BUDGET] is not None and d[_D_BUDGET] < budget_limit]
        )
    supp = hash_partition(cluster, supp_local, key=lambda d: d[_D_BUILDING])
    _checkpoint(cluster, guard)

    # 2. Magic: distinct bindings, projected locally (already partitioned).
    magic: list[set] = []
    for node in cluster.nodes:
        cluster.work(node.node_id, len(supp[node.node_id]))
        magic.append({d[_D_BUILDING] for d in supp[node.node_id]})
    _checkpoint(cluster, guard)

    # 3. EMP repartitioned on the correlation attribute; the decorrelated
    # subquery (join + GROUP BY on building) is then entirely local.
    emp_by_building = hash_partition(
        cluster,
        [cluster.local_rows("emp", n.node_id) for n in cluster.nodes],
        key=lambda e: e[_E_BUILDING],
    )
    counts: list[dict] = []
    for node in cluster.nodes:
        local_emp = emp_by_building[node.node_id]
        cluster.work(node.node_id, len(local_emp))
        local_counts: dict = {}
        for e in local_emp:
            if e[_E_BUILDING] in magic[node.node_id]:
                local_counts[e[_E_BUILDING]] = local_counts.get(e[_E_BUILDING], 0) + 1
        counts.append(local_counts)
    _checkpoint(cluster, guard)

    # 4. Final join: SUPP and the decorrelated counts are co-partitioned on
    # building, so the join (with the COUNT-bug COALESCE) is local.
    answer: list[tuple] = []
    for node in cluster.nodes:
        local_supp = supp[node.node_id]
        cluster.work(node.node_id, len(local_supp))
        for dept in local_supp:
            count = counts[node.node_id].get(dept[_D_BUILDING], 0)
            if dept[_D_NUMEMPS] is not None and dept[_D_NUMEMPS] > count:
                answer.append((dept[_D_NAME],))
    _checkpoint(cluster, guard)
    return _metrics(cluster, "magic_decorrelated", answer, cluster.n_nodes)


def sweep_nodes(
    dept_rows: list[tuple],
    emp_rows: list[tuple],
    node_counts: Optional[list[int]] = None,
    faults: Optional["FaultRegistry"] = None,
) -> list[tuple[ParallelMetrics, ParallelMetrics]]:
    """Run both strategies over a range of cluster sizes.

    Each simulation gets its own replica of the fault registry (same seed,
    zeroed trigger counters) so that one sweep is reproducible run-to-run
    and the cluster sizes do not interfere with each other's fault draws.
    """
    results = []
    for n in node_counts or [1, 2, 4, 8, 16]:
        ni = simulate_nested_iteration(
            dept_rows, emp_rows, n,
            faults=faults.replica() if faults is not None else None,
        )
        magic = simulate_decorrelated(
            dept_rows, emp_rows, n,
            faults=faults.replica() if faults is not None else None,
        )
        results.append((ni, magic))
    return results
