"""Real shared-nothing execution: worker processes with crash recovery.

Where :mod:`repro.parallel.simulate` *prices* the paper's section-6
execution strategies under a cost model, this module *runs* them: base
tables are hash-partitioned across real ``multiprocessing`` worker
processes, plan fragments execute inside each worker through the ordinary
:class:`repro.Database` facade (parser, rewriter, iterator executor), and
the coordinator merges partial results. The same strategies are measured:

* ``nested_iteration`` -- per qualifying DEPT binding, a COUNT probe is
  dispatched to every EMP partition (the O(n^2)-fragment pathology);
* ``magic_decorrelated`` -- SUPP and EMP are repartitioned once on the
  correlation attribute and the decorrelated query runs locally per
  partition (the engine's MAGIC strategy inside each worker).

Message accounting is *point-to-point parity* with the simulator: the
coordinator mediates every exchange over queues, but messages are counted
as if partitions shipped rows directly (loopback free, bulk rows batched
``ROWS_PER_MESSAGE`` per message, the same crc32 :func:`partition_owner`
placement), so a fault-free measured run reports exactly the simulator's
message count -- the calibration hook of :mod:`repro.bench.calibration`.

Robustness contract (the part the simulator only priced):

* **Liveness.** Workers heartbeat on their result queue; the coordinator
  timestamps arrivals with its own injectable clock. A worker is *lost*
  when its process is dead or its last heartbeat is older than
  ``heartbeat_timeout``. Lost is permanent -- a stalled worker that wakes
  up is never re-admitted, only drained.
* **Recovery.** The coordinator retains every partition it shipped, so
  losing a worker re-ships only the lost partitions (under their
  partition-scoped names, e.g. ``emp_p3``, which coexist on the
  replacement) and re-dispatches only the orphaned tasks, with the
  bounded exponential backoff of :class:`repro.parallel.cluster.RetryPolicy`.
* **No partial results.** Every task carries an ``(task_id, attempt)``
  epoch; marking a worker lost bumps the attempt of its in-flight tasks
  *before* any further message is drained, so a late result from a
  presumed-dead worker can never match and is dropped as stale. A merge
  therefore sees each partition exactly once or the query fails typed.
* **Degradation.** When a task exhausts its retry budget or the pool has
  no live workers, the run degrades to single-process execution and
  records a :class:`repro.rewrite.engine.DegradationEvent` -- the same
  structure as the strategy-fallback chain.

Fault injection: each worker builds its own :class:`FaultRegistry`
(seed ``base_seed + worker_id``) and honours three process-level sites --
``worker.crash`` (``os._exit`` before executing a task), ``worker.stall``
(sleep through several heartbeat windows) and ``exchange.drop`` (compute a
result, never send it; the coordinator recovers via the task timeout).

Transport note: worker-to-coordinator messages (heartbeats, counts,
qualifying-row lists) stay far below Linux's ``PIPE_BUF`` (4096 bytes is
the portable floor; 64KiB in practice), so a SIGKILL mid-send cannot leave
a torn frame on the per-worker result queue; bulk data only ever flows
coordinator-to-workers, and the coordinator is never killed. Traced runs
(``tracer=``) ship each task's span tree alongside its ``Metrics`` and may
exceed that floor -- a frame torn by a kill mid-send surfaces as an
EOF/OS error on the drain path, which the liveness machinery already
treats as worker loss.

Cross-process tracing: give the pool (or :func:`run_real`) a
:class:`repro.trace.Tracer` and every worker runs each task under its own
child tracer, serialising the span tree back with the result. The
coordinator grafts accepted trees under the distributing operator's span
as ``worker`` (one per contributing process, tagged ``worker_id``/``pid``)
-> ``dispatch`` (one per (task, attempt) -- retries and re-hosted attempts
appear as *sibling* dispatches with their failure reason) -> the worker's
own spans. Coordinator-side worker/dispatch spans carry zero metric
counters, so the grafted tree's exclusive-delta totals reconcile exactly
with ``rows_processed`` (only epoch-accepted results are grafted, the same
rule the counters follow).
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import time
import zlib
from dataclasses import dataclass, field
from queue import Empty
from typing import TYPE_CHECKING, Any, Callable, Optional, Sequence

from ..errors import WorkerPoolError, WorkerTaskError
from ..exec.metrics import Metrics
from ..guard import guard_for
from ..rewrite.engine import DegradationEvent
from ..trace.tracer import _span_from_dict
from .cluster import (
    MEASURED_RETRY_POLICY,
    ROWS_PER_MESSAGE,
    RetryPolicy,
    partition_owner,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle avoidance
    from ..faults import FaultRegistry
    from ..guard import Limits

#: Column specs shipped to workers: (name, SQLType member name, nullable).
DEPT_COLUMNS: tuple = (
    ("name", "STR", False),
    ("budget", "FLOAT", True),
    ("num_emps", "INT", True),
    ("building", "STR", True),
)
EMP_COLUMNS: tuple = (
    ("empno", "INT", False),
    ("name", "STR", True),
    ("building", "STR", True),
    ("salary", "FLOAT", True),
)

#: The worker-side fault sites this executor honours.
WORKER_FAULT_SITES = ("worker.crash", "worker.stall", "exchange.drop")


def _row_key(row: Sequence) -> tuple:
    """A total order over rows that may contain NULLs (None sorts first
    within a column; the placeholder is only compared between two Nones)."""
    return tuple((v is None, "" if v is None else v) for v in row)


def _sql_literal(value: Any) -> str:
    if value is None:
        return "NULL"
    if isinstance(value, str):
        return "'" + value.replace("'", "''") + "'"
    return repr(value)


# -- worker process side -------------------------------------------------------

def _worker_main(worker_id: int, config: dict, task_queue, result_queue) -> None:
    """The worker loop: heartbeat, load partitions, execute plan fragments.

    Runs in a child process. Every fragment executes through a
    worker-local :class:`repro.Database` (full parse -> rewrite -> iterate
    pipeline); results go back as ``(kind, worker_id, ...)`` tuples on the
    per-worker result queue.
    """
    from ..api import Database, Strategy
    from ..faults import FaultRegistry
    from ..storage import Catalog, Column, Schema
    from ..types import SQLType

    faults = (
        FaultRegistry.parse(config["fault_spec"])
        if config.get("fault_spec")
        else None
    )
    heartbeat_interval = config["heartbeat_interval"]
    stall_seconds = config["stall_seconds"]
    trace = bool(config.get("trace"))
    catalog = Catalog()
    # An explicit empty registry: the worker must not pick engine-level
    # faults out of REPRO_FAULTS -- process-level sites are injected here,
    # engine-level sites belong to the single-node fault tests.
    db = Database(catalog, faults=FaultRegistry(0, []))

    def heartbeat() -> None:
        result_queue.put(("heartbeat", worker_id))

    def execute(task_id: str, attempt: int, op: str, payload: tuple) -> None:
        if faults is not None and faults.should_fire(
            "worker.crash", detail=f"w{worker_id}:{task_id}"
        ):
            os._exit(1)
        if faults is not None and faults.should_fire(
            "worker.stall", detail=f"w{worker_id}:{task_id}"
        ):
            time.sleep(stall_seconds)  # no heartbeats while stalled
        tracer = None
        if trace:
            # A child tracer per task: its span tree rides back with the
            # result and the coordinator grafts it under the dispatch span.
            from ..trace import Tracer

            tracer = Tracer()
        try:
            if op == "sql":
                sql, strategy_value = payload
                result = db.execute(
                    sql, strategy=Strategy(strategy_value), tracer=tracer
                )
                rows = sorted(result.rows, key=_row_key)
                outcome: Any = rows
                metrics = result.metrics
            elif op == "count":
                table, column, value = payload
                if value is None:
                    # SQL equality with NULL matches nothing: the count is
                    # 0 by definition, no scan needed.
                    outcome, metrics = 0, Metrics()
                else:
                    result = db.execute(
                        f"Select Count(*) From {table} "
                        f"Where {column} = {_sql_literal(value)}",
                        tracer=tracer,
                    )
                    outcome, metrics = result.scalar(), result.metrics
            else:
                raise ValueError(f"unknown worker op {op!r}")
        except Exception as exc:  # typed reply; the coordinator re-raises
            result_queue.put(
                ("error", worker_id, task_id, attempt,
                 type(exc).__name__, str(exc))
            )
            return
        if faults is not None and faults.should_fire(
            "exchange.drop", detail=f"w{worker_id}:{task_id}"
        ):
            return  # the result evaporates; recovery is the task timeout
        spans = (
            [span.as_dict() for span in tracer.roots]
            if tracer is not None else []
        )
        result_queue.put(
            ("result", worker_id, task_id, attempt, outcome, metrics, spans)
        )

    heartbeat()
    try:
        while True:
            try:
                message = task_queue.get(timeout=heartbeat_interval)
            except Empty:
                heartbeat()
                continue
            if message is None:
                break
            kind = message[0]
            if kind == "load":
                _, name, columns, primary_key, rows = message
                if catalog.has_table(name):
                    catalog.drop_table(name)
                catalog.create_table(
                    name,
                    Schema(
                        [
                            Column(cname, SQLType[tname], nullable)
                            for cname, tname, nullable in columns
                        ],
                        primary_key=primary_key,
                    ),
                )
                catalog.table(name).insert_many(rows)
                catalog.invalidate_stats(name)
            elif kind == "task":
                _, task_id, attempt, op, payload = message
                execute(task_id, attempt, op, payload)
            heartbeat()
    except (KeyboardInterrupt, EOFError, OSError):  # pragma: no cover
        pass


# -- coordinator side ----------------------------------------------------------

@dataclass
class Task:
    """One plan fragment addressed to a partition (not a worker: the
    host mapping may change when workers are lost)."""

    task_id: str
    partition: int
    op: str
    payload: tuple
    #: Messages charged on *every* dispatch of this task (a retried probe
    #: doubles its traffic, exactly like the simulator's fault paths).
    message_cost: int = 0
    attempt: int = 0
    worker_id: int = -1
    dispatched_at: float = 0.0
    done: bool = False
    result: Any = None


@dataclass
class _TableSpec:
    """A partitioned table the coordinator retains for re-hosting."""

    columns: tuple
    primary_key: tuple
    partitions: list


@dataclass
class _WorkerState:
    worker_id: int
    process: Any
    task_queue: Any
    result_queue: Any
    last_seen: float
    lost: bool = False


@dataclass
class WorkerRunMetrics:
    """Outcome of one measured parallel execution (the real-process
    counterpart of :class:`repro.parallel.simulate.ParallelMetrics`)."""

    strategy: str
    n_workers: int
    answer: list
    fragments: int
    messages: int
    makespan: float           # wall-clock seconds, dispatch -> final merge
    rows_processed: int       # rows scanned across all workers
    retries: int
    workers_lost: int
    recovery_time: float      # summed retry backoff (seconds)
    degraded: bool = False
    degradations: list = field(default_factory=list)


class WorkerPool:
    """A coordinator over ``n_workers`` real worker processes.

    The pool owns the task ledger (see the module docstring for the
    liveness/recovery contract), the partition -> worker host map, and the
    point-to-point message accounting. ``clock``/``sleep`` are injectable
    for deterministic liveness tests; ``events`` (an
    :class:`repro.obs.events.EventLog`) receives ``worker.*`` lifecycle
    events; ``guard`` (an :class:`repro.guard.ExecutionGuard`) absorbs
    every accepted result's :class:`Metrics`, so remote work counts
    against the coordinator's budgets.
    """

    def __init__(
        self,
        n_workers: int,
        faults: Optional["FaultRegistry"] = None,
        retry_policy: Optional[RetryPolicy] = None,
        heartbeat_interval: float = 0.05,
        heartbeat_timeout: float = 0.5,
        task_timeout: float = 5.0,
        events=None,
        guard=None,
        tracer=None,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
    ):
        if n_workers < 1:
            raise WorkerPoolError(
                "worker pool needs at least one worker", 0, n_workers
            )
        self.n_workers = n_workers
        self.faults = faults
        self.retry_policy = (
            retry_policy if retry_policy is not None else MEASURED_RETRY_POLICY
        )
        self.heartbeat_interval = heartbeat_interval
        self.heartbeat_timeout = heartbeat_timeout
        self.task_timeout = task_timeout
        self.events = events
        self.guard = guard
        self.tracer = tracer
        #: Span the grafted ``worker``/``dispatch`` sub-trees hang under;
        #: :func:`run_real` points it at the distributing operator's span.
        #: Left ``None`` with a tracer set, the pool lazily creates a
        #: ``parallel pool`` root on first graft.
        self.graft_parent = None
        self._clock = clock
        self._sleep = sleep
        self._poll_interval = min(heartbeat_interval, 0.01)
        self._ctx = multiprocessing.get_context("fork")
        self._workers: list[_WorkerState] = []
        self._hosts = list(range(n_workers))  # partition index -> worker id
        self._tables: dict[str, _TableSpec] = {}
        self._pending: dict[str, Task] = {}
        self._started = False
        self._closed = False
        # -- counters (the measured analogue of the simulator's Node sums)
        self.messages = 0
        self.rows_processed = 0
        self.retries = 0
        self.workers_lost = 0
        self.recovery_time = 0.0
        self.stale_results = 0
        self.tasks_dispatched = 0

    # -- lifecycle ---------------------------------------------------------

    def _worker_fault_spec(self, worker_id: int) -> Optional[str]:
        """Each worker replays its own deterministic schedule: same rules,
        seed offset by worker id (so a 2-worker and a 4-worker run draw
        independently, like :meth:`FaultRegistry.replica` per stream)."""
        if self.faults is None:
            return None
        rules = ",".join(f"{r.site}={r.rate}" for r in self.faults.rules)
        return f"{self.faults.seed + worker_id}:{rules}"

    def start(self) -> None:
        """Spawn the worker processes (idempotent until :meth:`close`)."""
        if self._closed:
            raise WorkerPoolError("worker pool is closed", 0, self.n_workers)
        if self._started:
            return
        for worker_id in range(self.n_workers):
            task_queue = self._ctx.Queue()
            result_queue = self._ctx.Queue()
            config = {
                "fault_spec": self._worker_fault_spec(worker_id),
                "heartbeat_interval": self.heartbeat_interval,
                # Long enough that a stall is always detected as lost.
                "stall_seconds": self.heartbeat_timeout * 3.0,
                "trace": self.tracer is not None,
            }
            process = self._ctx.Process(
                target=_worker_main,
                args=(worker_id, config, task_queue, result_queue),
                daemon=True,
            )
            process.start()
            self._workers.append(
                _WorkerState(
                    worker_id, process, task_queue, result_queue,
                    last_seen=self._clock(),
                )
            )
            self._emit("worker.spawned", worker=worker_id, pid=process.pid)
        self._started = True

    def close(self) -> None:
        """Shut every worker down (graceful, then escalating)."""
        if self._closed:
            return
        self._closed = True
        for state in self._workers:
            if state.process.is_alive():
                try:
                    state.task_queue.put(None)
                except (ValueError, OSError):  # pragma: no cover
                    pass
        for state in self._workers:
            state.process.join(timeout=1.0)
            if state.process.is_alive():
                state.process.terminate()
                state.process.join(timeout=0.5)
            if state.process.is_alive():  # pragma: no cover - last resort
                state.process.kill()
                state.process.join(timeout=0.5)
            for q in (state.task_queue, state.result_queue):
                q.cancel_join_thread()
                q.close()

    def __enter__(self) -> "WorkerPool":
        self.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def kill_worker(self, worker_id: int) -> None:
        """Chaos hook: SIGKILL one worker (the soak's guaranteed kill).
        Detection and recovery then run through the ordinary liveness
        machinery -- nothing is special-cased for an explicit kill."""
        state = self._workers[worker_id]
        if state.process.is_alive():
            os.kill(state.process.pid, signal.SIGKILL)

    @property
    def live_workers(self) -> list[int]:
        """Worker ids not (yet) marked lost."""
        return [w.worker_id for w in self._workers if not w.lost]

    def _emit(self, kind: str, **fields) -> None:
        if self.events is not None:
            self.events.emit(kind, **fields)

    # -- data placement ----------------------------------------------------

    def _send_load(
        self, worker_id: int, name: str, columns: tuple,
        primary_key: tuple, rows: list,
    ) -> None:
        self._workers[worker_id].task_queue.put(
            ("load", name, columns, primary_key, rows)
        )

    def load_partitioned(
        self,
        name: str,
        columns: tuple,
        primary_key: tuple,
        rows: list,
        key: Callable[[tuple], Any],
    ) -> None:
        """Hash-partition ``rows`` on ``key`` and ship partition ``p`` to
        its host as table ``{name}_p{p}``. Initial placement is free of
        message charges, exactly like the simulator's ``load_partitioned``;
        the rows are retained for re-hosting after a worker loss."""
        self._require_started()
        partitions: list[list] = [[] for _ in range(self.n_workers)]
        for row in rows:
            partitions[partition_owner(key(row), self.n_workers)].append(row)
        self._tables[name] = _TableSpec(columns, primary_key, partitions)
        for p, part_rows in enumerate(partitions):
            self._send_load(
                self._hosts[p], f"{name}_p{p}", columns, primary_key, part_rows
            )

    def exchange(
        self,
        name: str,
        columns: tuple,
        primary_key: tuple,
        row_sources: list,
        key: Callable[[tuple], Any],
    ) -> None:
        """Hash-repartition rows on a *new* key -- the set-oriented
        exchange of the decorrelated plan. ``row_sources[p]`` are the rows
        whose current home is partition ``p``; messages are charged
        point-to-point and batched (:data:`ROWS_PER_MESSAGE` rows per
        message, loopback free), mirroring the simulator's
        :func:`~repro.parallel.cluster.hash_partition`."""
        self._require_started()
        partitions: list[list] = [[] for _ in range(self.n_workers)]
        shipped: dict[tuple, int] = {}
        for source, rows in enumerate(row_sources):
            for row in rows:
                target = partition_owner(key(row), self.n_workers)
                if source != target:
                    shipped[(source, target)] = shipped.get(
                        (source, target), 0
                    ) + 1
                partitions[target].append(row)
        for n_rows in shipped.values():
            self.messages += -(-n_rows // ROWS_PER_MESSAGE)  # ceil
        self._tables[name] = _TableSpec(columns, primary_key, partitions)
        for p, part_rows in enumerate(partitions):
            self._send_load(
                self._hosts[p], f"{name}_p{p}", columns, primary_key, part_rows
            )

    def table_partitions(self, name: str) -> list:
        """The retained per-partition row lists of a loaded table."""
        return self._tables[name].partitions

    # -- the task ledger ---------------------------------------------------

    def _require_started(self) -> None:
        if not self._started or self._closed:
            raise WorkerPoolError(
                "worker pool is not running (start() it, and not after "
                "close())",
                len(self.live_workers),
                self.n_workers,
            )

    def _dispatch(self, task: Task) -> None:
        worker_id = self._hosts[task.partition]
        state = self._workers[worker_id]
        task.worker_id = worker_id
        task.dispatched_at = self._clock()
        self._pending[task.task_id] = task
        self.messages += task.message_cost
        self.tasks_dispatched += 1
        state.task_queue.put(
            ("task", task.task_id, task.attempt, task.op, task.payload)
        )

    def _retry(self, task: Task, reason: str) -> None:
        """Bump the task epoch (stale-proofing any in-flight result),
        back off per the :class:`RetryPolicy`, and re-dispatch to the
        partition's current host."""
        task.attempt += 1
        if self.tracer is not None and task.worker_id is not None:
            # The failed attempt stays visible as a sibling dispatch span
            # (grafted even when the retry budget is about to exhaust).
            self._graft_dispatch(
                task.worker_id, task, task.attempt - 1,
                outcome="retried", reason=reason,
            )
        if not self.retry_policy.allows(task.attempt):
            raise WorkerTaskError(task.task_id, task.attempt, reason)
        delay = self.retry_policy.delay(
            task.attempt - 1, seed=zlib.crc32(task.task_id.encode())
        )
        self.retries += 1
        self.recovery_time += delay
        self._emit(
            "worker.retry",
            task=task.task_id, attempt=task.attempt,
            delay=round(delay, 6), reason=reason,
        )
        self._sleep(delay)
        self._dispatch(task)

    def _mark_lost(self, state: _WorkerState, reason: str) -> None:
        """Permanent exile: re-host the worker's partitions from retained
        rows, then retry its orphaned tasks (attempt bumped *first*, so a
        late result from this worker can never merge)."""
        state.lost = True
        self.workers_lost += 1
        self._emit("worker.lost", worker=state.worker_id, reason=reason)
        live = [w for w in self._workers if not w.lost]
        if not live:
            raise WorkerPoolError(
                "no live workers remain", 0, self.n_workers
            )
        for p in range(self.n_workers):
            if self._hosts[p] != state.worker_id:
                continue
            replacement = live[p % len(live)].worker_id
            self._hosts[p] = replacement
            for name, spec in self._tables.items():
                rows = spec.partitions[p]
                if rows:
                    # Re-hosting is real recovery traffic, charged batched.
                    self.messages += -(-len(rows) // ROWS_PER_MESSAGE)
                self._send_load(
                    replacement, f"{name}_p{p}",
                    spec.columns, spec.primary_key, rows,
                )
        for task in list(self._pending.values()):
            if task.worker_id == state.worker_id and not task.done:
                self._retry(task, reason)

    def _handle(self, state: _WorkerState, message: tuple) -> None:
        kind = message[0]
        if state.lost:
            # Drained, never trusted: heartbeats do not resurrect, results
            # are checked against the (already bumped) task epoch below.
            if kind == "heartbeat":
                return
        else:
            state.last_seen = self._clock()
        if kind == "heartbeat":
            return
        if kind == "result":
            _, worker_id, task_id, attempt, outcome, metrics, spans = message
            task = self._pending.get(task_id)
            if task is None or task.done or task.attempt != attempt:
                self.stale_results += 1
                return
            task.result = outcome
            task.done = True
            del self._pending[task_id]
            if isinstance(metrics, Metrics):
                self.rows_processed += metrics.rows_scanned
                if self.guard is not None:
                    self.guard.absorb(metrics)
            if self.tracer is not None:
                self._graft(worker_id, task, attempt, spans)
            return
        if kind == "error":
            _, worker_id, task_id, attempt, error_type, text = message
            task = self._pending.get(task_id)
            if task is None or task.done or task.attempt != attempt:
                self.stale_results += 1
                return
            # Deterministic engine errors would fail again on retry:
            # surface them typed instead of burning the retry budget.
            raise WorkerTaskError(
                task_id, attempt + 1, f"{error_type}: {text}"
            )

    # -- cross-process span grafting ---------------------------------------

    def _graft_dispatch(
        self, worker_id: int, task: Task, attempt: int, **attrs
    ) -> "Any":
        """The coordinator-side ``worker`` -> ``dispatch`` chain for one
        (task, attempt). Both spans keep zero metric counters, so the
        grafted tree's exclusive-delta totals are exactly the sum of the
        accepted worker sub-trees -- the reconciliation invariant."""
        parent = self.graft_parent
        if parent is None:
            parent = self.tracer._node(
                ("parallel", "pool"), "parallel pool", "operator"
            )
            self.graft_parent = parent
        state = self._workers[worker_id]
        wspan = parent.child(
            ("worker", worker_id), f"worker {worker_id}", "worker"
        )
        if not wspan.attrs:
            wspan.attrs.update(
                {"worker_id": worker_id, "pid": state.process.pid}
            )
        dspan = wspan.child(
            ("dispatch", task.task_id, attempt),
            f"dispatch {task.task_id}#{attempt}",
            "dispatch",
        )
        dspan.calls += 1
        # Inclusive dispatch->disposition wall time, on the pool's clock.
        dspan.elapsed += max(0.0, self._clock() - task.dispatched_at)
        dspan.attrs.update(
            {
                "task": task.task_id,
                "attempt": attempt,
                "worker_id": worker_id,
                "op": task.op,
                **attrs,
            }
        )
        return dspan

    def _graft(
        self, worker_id: int, task: Task, attempt: int, spans: list
    ) -> None:
        """Attach an epoch-accepted result's worker span tree (shipped as
        ``as_dict`` payloads) under its dispatch span."""
        dspan = self._graft_dispatch(
            worker_id, task, attempt, outcome="accepted"
        )
        for data in spans:
            child = _span_from_dict(data)
            # (task, attempt) keys make the dispatch span unique, so the
            # rebuilt roots never collide with an existing child.
            dspan._index[child.key] = child
            dspan.children.append(child)

    def _drain(self) -> bool:
        progressed = False
        for state in self._workers:
            if state.lost and not state.process.is_alive():
                continue  # nothing further can arrive; skip the dead queue
            while True:
                try:
                    message = state.result_queue.get_nowait()
                except Empty:
                    break
                except (EOFError, OSError):  # pragma: no cover
                    break
                progressed = True
                self._handle(state, message)
        return progressed

    def _check_liveness(self) -> None:
        now = self._clock()
        for state in self._workers:
            if state.lost:
                continue
            if not state.process.is_alive():
                self._mark_lost(state, "process died")
            elif now - state.last_seen > self.heartbeat_timeout:
                self._mark_lost(
                    state,
                    f"missed heartbeats for "
                    f"{now - state.last_seen:.3f}s",
                )

    def _check_timeouts(self) -> None:
        now = self._clock()
        for task in list(self._pending.values()):
            if not task.done and now - task.dispatched_at > self.task_timeout:
                self._retry(task, "task timeout")

    def run_tasks(self, tasks: list) -> dict:
        """Dispatch ``tasks`` and drive the ledger until every one has a
        result. Returns ``{task_id: result}``. Raises
        :class:`~repro.errors.WorkerTaskError` (retry budget exhausted or
        a typed worker error) or :class:`~repro.errors.WorkerPoolError`
        (no live workers) -- never a silent partial result."""
        self._require_started()
        tasks = list(tasks)
        for task in tasks:
            self._dispatch(task)
        while self._pending:
            progressed = self._drain()
            self._check_liveness()
            self._check_timeouts()
            if not progressed and self._pending:
                self._sleep(self._poll_interval)
        return {task.task_id: task.result for task in tasks}


# -- the section-6 strategies on real processes --------------------------------

def _scan_sql(partition: int, budget_limit: float) -> str:
    return (
        f"Select name, budget, num_emps, building From dept_p{partition} "
        f"Where budget < {budget_limit!r}"
    )


def _ni_plan(pool: WorkerPool, budget_limit: float) -> tuple:
    """Nested iteration: qualifying bindings probe every EMP partition."""
    n = pool.n_workers
    scans = [
        Task(f"ni.scan.{p}", p, "sql", (_scan_sql(p, budget_limit), "ni"))
        for p in range(n)
    ]
    supp_by_home = pool.run_tasks(scans)
    fragments: set = set()
    probes: list[Task] = []
    bindings: list[tuple] = []
    for p in range(n):
        for i, (name, _budget, num_emps, building) in enumerate(
            supp_by_home[f"ni.scan.{p}"]
        ):
            probe_ids = []
            for q in range(n):
                fragments.add((p, q))
                task_id = f"ni.count.{p}.{i}.{q}"
                probes.append(
                    Task(
                        task_id, q, "count",
                        (f"emp_p{q}", "building", building),
                        # Request + reply, loopback free -- the simulator's
                        # broadcast/reply accounting per remote partition.
                        message_cost=0 if q == p else 2,
                    )
                )
                probe_ids.append(task_id)
            bindings.append((name, num_emps, probe_ids))
    counts = pool.run_tasks(probes)
    answer = sorted(
        (name,)
        for name, num_emps, probe_ids in bindings
        if num_emps is not None
        and num_emps > sum(counts[t] for t in probe_ids)
    )
    return answer, len(fragments)


def _decorrelated_plan(pool: WorkerPool, budget_limit: float) -> tuple:
    """Magic decorrelation: repartition once on the correlation attribute,
    then one fully local decorrelated query per partition."""
    n = pool.n_workers
    scans = [
        Task(f"mag.scan.{p}", p, "sql", (_scan_sql(p, budget_limit), "ni"))
        for p in range(n)
    ]
    supp_by_home = pool.run_tasks(scans)
    pool.exchange(
        "supp", DEPT_COLUMNS, ("name",),
        [supp_by_home[f"mag.scan.{p}"] for p in range(n)],
        key=lambda row: row[3],
    )
    pool.exchange(
        "empb", EMP_COLUMNS, ("empno",),
        pool.table_partitions("emp"),
        key=lambda row: row[2],
    )
    finals = [
        Task(
            f"mag.local.{j}", j, "sql",
            (
                f"Select D.name From supp_p{j} D Where D.num_emps > "
                f"(Select Count(*) From empb_p{j} E "
                f"Where D.building = E.building)",
                "magic",
            ),
        )
        for j in range(n)
    ]
    locals_ = pool.run_tasks(finals)
    answer = sorted(
        row for j in range(n) for row in locals_[f"mag.local.{j}"]
    )
    return answer, n


def local_reference(
    dept_rows: list, emp_rows: list, budget_limit: float = 10000.0
) -> list:
    """The single-process answer (also the degradation fallback): the
    section-2 query over full tables through the ordinary engine."""
    from ..api import Database, Strategy
    from ..storage import Catalog
    from ..tpcd.empdept import create_empdept_schema

    catalog = Catalog()
    create_empdept_schema(catalog, with_indexes=False)
    catalog.table("dept").insert_many(dept_rows)
    catalog.table("emp").insert_many(emp_rows)
    result = Database(catalog).execute(
        f"Select D.name From Dept D Where D.budget < {budget_limit!r} "
        f"and D.num_emps > (Select Count(*) From Emp E "
        f"Where D.building = E.building)",
        strategy=Strategy.MAGIC,
    )
    return sorted(result.rows)


_PLANS = {
    "nested_iteration": _ni_plan,
    "magic_decorrelated": _decorrelated_plan,
}


def run_real(
    strategy: str,
    dept_rows: list,
    emp_rows: list,
    n_workers: int,
    budget_limit: float = 10000.0,
    faults: Optional["FaultRegistry"] = None,
    retry_policy: Optional[RetryPolicy] = None,
    limits: Optional["Limits"] = None,
    events=None,
    degrade: bool = True,
    on_pool: Optional[Callable[[WorkerPool], None]] = None,
    tracer=None,
    **pool_kwargs,
) -> WorkerRunMetrics:
    """Measure one strategy on real worker processes.

    ``on_pool`` runs after the pool is started and loaded (the chaos
    soak's kill hook). ``degrade=True`` converts an exhausted retry budget
    or a dead pool into single-process execution with a recorded
    :class:`DegradationEvent` (and a ``worker.degraded`` event);
    ``degrade=False`` lets the typed :class:`~repro.errors.WorkerError`
    propagate. Budget trips (:class:`~repro.errors.BudgetExceeded`) always
    propagate -- governance is not an infrastructure failure.

    ``tracer`` (a :class:`repro.trace.Tracer`) turns on cross-process
    tracing: workers run child tracers and the pool grafts their span
    trees under the ``parallel <strategy>`` span opened here (see the
    module docstring for the grafting contract).
    """
    if strategy not in _PLANS:
        raise ValueError(
            f"unknown strategy {strategy!r}; expected one of {sorted(_PLANS)}"
        )
    guard = guard_for(limits)
    if guard is not None:
        guard.attach(Metrics())
    pool = WorkerPool(
        n_workers,
        faults=faults,
        retry_policy=retry_policy,
        events=events,
        guard=guard,
        tracer=tracer,
        **pool_kwargs,
    )
    started = pool._clock()
    frame = None
    if tracer is not None:
        # The distributing operator's span: every grafted worker/dispatch
        # sub-tree hangs under it, degraded runs included.
        frame = tracer.begin(
            ("parallel", strategy), f"parallel {strategy}", "operator"
        )
        pool.graft_parent = frame.span
    try:
        pool.start()
        pool.load_partitioned(
            "dept", DEPT_COLUMNS, ("name",), dept_rows, key=lambda r: r[0]
        )
        pool.load_partitioned(
            "emp", EMP_COLUMNS, ("empno",), emp_rows, key=lambda r: r[0]
        )
        if on_pool is not None:
            on_pool(pool)
        t0 = pool._clock()
        answer, fragments = _PLANS[strategy](pool, budget_limit)
        if frame is not None:
            tracer.end(frame, rows_out=len(answer))
            frame = None
        return WorkerRunMetrics(
            strategy=strategy,
            n_workers=n_workers,
            answer=answer,
            fragments=fragments,
            messages=pool.messages,
            makespan=pool._clock() - t0,
            rows_processed=pool.rows_processed,
            retries=pool.retries,
            workers_lost=pool.workers_lost,
            recovery_time=pool.recovery_time,
        )
    except (WorkerTaskError, WorkerPoolError) as exc:
        if not degrade:
            raise
        event = DegradationEvent(
            requested=f"real:{strategy}",
            attempted="workers",
            fallback="local",
            error_type=type(exc).__name__,
            message=str(exc),
        )
        if events is not None:
            events.emit(
                "worker.degraded",
                strategy=strategy,
                error_type=event.error_type,
                message=event.message,
            )
        answer = local_reference(dept_rows, emp_rows, budget_limit)
        return WorkerRunMetrics(
            strategy=strategy,
            n_workers=n_workers,
            answer=answer,
            fragments=1,
            messages=pool.messages,
            makespan=pool._clock() - started,
            rows_processed=pool.rows_processed,
            retries=pool.retries,
            workers_lost=pool.workers_lost,
            recovery_time=pool.recovery_time,
            degraded=True,
            degradations=[event],
        )
    finally:
        if frame is not None:
            tracer.end(frame)
        pool.close()


def run_real_nested_iteration(
    dept_rows: list, emp_rows: list, n_workers: int, **kwargs
) -> WorkerRunMetrics:
    """Section 6.1 on real processes: broadcast-per-tuple nested iteration."""
    return run_real("nested_iteration", dept_rows, emp_rows, n_workers, **kwargs)


def run_real_decorrelated(
    dept_rows: list, emp_rows: list, n_workers: int, **kwargs
) -> WorkerRunMetrics:
    """Section 6.2 on real processes: the magic-decorrelated plan."""
    return run_real(
        "magic_decorrelated", dept_rows, emp_rows, n_workers, **kwargs
    )
