"""Box encapsulators: per-box-kind magic-absorption behaviour.

Section 4.4 of the paper: "the actual Starburst implementation allows for
extensibility of SQL constructs by classifying each kind of box as either
capable of accepting a magic table (AM) or incapable of it (NM). The
behavior of each box with respect to the magic decorrelation algorithm is
captured by a box *encapsulator*."

This module is that mechanism: each box type registers an encapsulator
that answers (a) whether its subtree can absorb a magic table and (b) how
to perform the absorption. Unregistered kinds (and kinds whose
encapsulator declines, like the left outer join) are NM: the decorrelator
leaves them correlated -- the section 4.4 knob in action.

New box kinds plug in via :func:`register_encapsulator` without touching
the decorrelation algorithm.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional

from ...errors import RewriteError
from ...qgm.model import Box, GroupByBox, SelectBox, SetOpBox

if TYPE_CHECKING:  # pragma: no cover
    from .magic import MagicDecorrelator

#: An absorb function: (decorrelator, box, magic box, mapping) -> the output
#: column names under which the box now exposes the binding columns.
AbsorbFn = Callable[["MagicDecorrelator", Box, Box, dict], list[str]]
#: A capability check: can this box's subtree absorb a magic table?
CanAbsorbFn = Callable[[Box], bool]


class BoxEncapsulator:
    """Behaviour of one box kind under magic decorrelation."""

    def __init__(self, can_absorb: CanAbsorbFn, absorb: AbsorbFn):
        self._can_absorb = can_absorb
        self._absorb = absorb

    def can_absorb(self, box: Box) -> bool:
        return self._can_absorb(box)

    def absorb(
        self, decorrelator: "MagicDecorrelator", box: Box, magic: Box,
        mapping: dict,
    ) -> list[str]:
        return self._absorb(decorrelator, box, magic, mapping)


_REGISTRY: dict[type, BoxEncapsulator] = {}


def register_encapsulator(box_type: type, encapsulator: BoxEncapsulator) -> None:
    """Register (or replace) the encapsulator for a box type."""
    _REGISTRY[box_type] = encapsulator


def encapsulator_for(box: Box) -> Optional[BoxEncapsulator]:
    """The encapsulator handling ``box`` (walking the MRO so subclasses of
    registered box kinds inherit behaviour); None for NM kinds."""
    for klass in type(box).__mro__:
        found = _REGISTRY.get(klass)
        if found is not None:
            return found
    return None


def subtree_can_absorb(box: Box) -> bool:
    """AM/NM classification of a whole subtree."""
    encapsulator = encapsulator_for(box)
    return encapsulator is not None and encapsulator.can_absorb(box)


def absorb_via_encapsulator(
    decorrelator: "MagicDecorrelator", box: Box, magic: Box, mapping: dict
) -> list[str]:
    encapsulator = encapsulator_for(box)
    if encapsulator is None:
        raise RewriteError(
            f"no encapsulator registered for box kind {box.kind!r}"
        )
    return encapsulator.absorb(decorrelator, box, magic, mapping)


# -- built-in encapsulators -----------------------------------------------------


def _register_builtins() -> None:
    register_encapsulator(
        SelectBox,
        BoxEncapsulator(
            can_absorb=lambda box: True,
            absorb=lambda d, box, magic, mapping: d._absorb_select(
                box, magic, mapping
            ),
        ),
    )
    register_encapsulator(
        GroupByBox,
        BoxEncapsulator(
            can_absorb=lambda box: subtree_can_absorb(box.quantifier.box),
            absorb=lambda d, box, magic, mapping: d._absorb_groupby(
                box, magic, mapping
            ),
        ),
    )
    register_encapsulator(
        SetOpBox,
        BoxEncapsulator(
            can_absorb=lambda box: all(
                subtree_can_absorb(q.box) for q in box.quantifiers
            ),
            absorb=lambda d, box, magic, mapping: d._absorb_setop(
                box, magic, mapping
            ),
        ),
    )


_register_builtins()
