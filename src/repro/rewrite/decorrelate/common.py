"""Shared analysis for the decorrelation rewrites.

* collecting a subtree's correlated references into a given box;
* recognising the *scalar aggregate subquery* pattern all three historical
  methods require (GroupBy box with no grouping columns over an SPJ box);
* the null-rejection analysis that decides whether magic decorrelation needs
  a left outer join (COUNT bug removal) or can use a plain join -- the paper
  notes "none of the queries required the use of an outer-join during
  decorrelation, so we use a normal join instead";
* equality-correlation extraction for Kim's method.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ...errors import NotApplicableError
from ...qgm.analysis import external_column_refs, iter_boxes
from ...qgm.expr import (
    BOX_SUBQUERY_TYPES,
    BoxScalarSubquery,
    ColumnRef,
    walk_expr,
)
from ...qgm.model import (
    BaseTableBox,
    Box,
    GroupByBox,
    SelectBox,
    SetOpBox,
)
from ...sql import ast


def correlation_refs_into(subtree_root: Box, source: SelectBox) -> list[ColumnRef]:
    """Correlated references from ``subtree_root``'s subtree into the
    quantifiers of ``source`` (the paper's correlation *bindings*),
    deduplicated by (quantifier, column)."""
    own = {id(q) for q in source.quantifiers}
    seen: set[tuple[int, str]] = set()
    refs: list[ColumnRef] = []
    for _, ref in external_column_refs(subtree_root):
        if id(ref.quantifier) in own:
            key = (id(ref.quantifier), ref.column)
            if key not in seen:
                seen.add(key)
                refs.append(ref)
    return refs


@dataclass
class ScalarAggPattern:
    """A correlated scalar aggregate subquery: GroupBy (no grouping) over SPJ.

    ``wrapper`` covers the shape ``SELECT 0.2 * avg(x) ...`` (the paper's
    Query 2): a pure-projection SPJ box over the scalar GroupBy, whose single
    output expression is re-applied on top of the decorrelated value.
    """

    node: BoxScalarSubquery
    group_box: GroupByBox
    spj: SelectBox
    #: aggregate output names that are COUNTs (need COALESCE after LOJ)
    count_outputs: list[str]
    wrapper: Optional[SelectBox] = None


def match_scalar_agg(node: BoxScalarSubquery) -> Optional[ScalarAggPattern]:
    """Match the Figure-1 shape; returns None when the subquery is anything
    else (plain SELECT, UNION, grouped aggregate, ...)."""
    box = node.box
    wrapper: Optional[SelectBox] = None
    if (
        isinstance(box, SelectBox)
        and len(box.quantifiers) == 1
        and not box.predicates
        and not box.distinct
        and len(box.outputs) == 1
        and isinstance(box.quantifiers[0].box, GroupByBox)
        and not any(
            isinstance(n, BOX_SUBQUERY_TYPES)
            for n in walk_expr(box.outputs[0].expr)
        )
    ):
        wrapper = box
        box = box.quantifiers[0].box
    if not isinstance(box, GroupByBox) or not box.is_scalar:
        return None
    child = box.quantifier.box
    if not isinstance(child, SelectBox):
        return None
    counts = [
        output.name
        for output in box.outputs
        if isinstance(output.expr, ast.AggregateCall) and output.expr.is_count
    ]
    return ScalarAggPattern(node, box, child, counts, wrapper)


def subquery_nodes_in(box: SelectBox) -> list[ast.Expr]:
    """All subquery expression nodes in the box's predicates and outputs."""
    nodes: list[ast.Expr] = []
    for expr in box.own_exprs():
        for node in walk_expr(expr):
            if isinstance(node, BOX_SUBQUERY_TYPES):
                nodes.append(node)
    return nodes


# -- null-rejection analysis -----------------------------------------------------

#: Node types through which a NULL scalar value still yields UNKNOWN (and is
#: therefore filtered by WHERE): the value cannot "escape" as TRUE.
_NULL_REJECTING_PARENTS = (
    ast.Comparison,
    ast.BinaryOp,
    ast.UnaryMinus,
    ast.Not,
    ast.And,
    ast.Between,
    ast.Like,
)


def _paths_to_node(expr: ast.Expr, target: ast.Expr) -> list[list[ast.Expr]]:
    """All root-to-target ancestor chains inside one expression tree."""
    paths: list[list[ast.Expr]] = []

    def walk(node: ast.Expr, trail: list[ast.Expr]) -> None:
        if node is target:
            paths.append(list(trail))
            return
        for child in node.children():
            walk(child, trail + [node])

    walk(expr, [])
    return paths


def node_use_is_null_rejecting(box: SelectBox, node: ast.Expr) -> bool:
    """True when every use of ``node`` in ``box`` filters the row whenever
    the node's value is NULL.

    Uses in output expressions are never null-rejecting (the NULL must be
    *returned*). In predicates, a use is null-rejecting when every ancestor
    on the path is arithmetic/comparison/NOT/AND -- an OR, IS NULL, COALESCE
    or IN-list could turn UNKNOWN into TRUE or a value.
    """
    for output in box.outputs:
        if any(n is node for n in walk_expr(output.expr)):
            return False
    found = False
    for predicate in box.predicates:
        for path in _paths_to_node(predicate, node):
            found = True
            for ancestor in path:
                if not isinstance(ancestor, _NULL_REJECTING_PARENTS):
                    return False
    return found


# -- equality-correlation extraction (Kim / linearity checks) ---------------------


@dataclass
class EqualityCorrelation:
    """One conjunct ``inner_col = outer_col`` inside the subquery's SPJ."""

    predicate: ast.Expr
    inner: ColumnRef  # over a quantifier of the subquery SPJ
    outer: ColumnRef  # over a quantifier of the outer box


def extract_equality_correlations(
    spj: SelectBox, outer: SelectBox
) -> Optional[list[EqualityCorrelation]]:
    """Split the SPJ's predicates into pure-inner ones and simple equality
    correlations to ``outer``. Returns None when any correlated reference
    occurs outside such an equality (Kim's method then does not apply)."""
    outer_ids = {id(q) for q in outer.quantifiers}
    inner_ids = {id(q) for q in spj.quantifiers}
    correlations: list[EqualityCorrelation] = []
    for predicate in spj.predicates:
        refs = [n for n in walk_expr(predicate) if isinstance(n, ColumnRef)]
        outer_refs = [r for r in refs if id(r.quantifier) in outer_ids]
        if not outer_refs:
            continue
        if (
            isinstance(predicate, ast.Comparison)
            and predicate.op == "="
            and isinstance(predicate.left, ColumnRef)
            and isinstance(predicate.right, ColumnRef)
        ):
            left, right = predicate.left, predicate.right
            if id(left.quantifier) in inner_ids and id(right.quantifier) in outer_ids:
                correlations.append(EqualityCorrelation(predicate, left, right))
                continue
            if id(right.quantifier) in inner_ids and id(left.quantifier) in outer_ids:
                correlations.append(EqualityCorrelation(predicate, right, left))
                continue
        return None
    # Correlated refs elsewhere (outputs, nested subqueries) also disqualify.
    for _, ref in external_column_refs(spj):
        if id(ref.quantifier) in outer_ids and not any(
            c.outer.same(ref) or c.inner.same(ref) for c in correlations
        ):
            # The ref must occur inside one of the matched predicates.
            matched = any(
                any(n is ref for n in walk_expr(c.predicate)) for c in correlations
            )
            if not matched:
                return None
    return correlations


def require_linear(graph_root: Box, method: str) -> None:
    """Kim's and Dayal's methods handle only *linear* queries: no set
    operations anywhere (the paper's Query 3 disqualifies both)."""
    for box in iter_boxes(graph_root):
        if isinstance(box, SetOpBox):
            raise NotApplicableError(
                method, "query is not linear (contains a set operation)"
            )


def single_base_table(box: Box) -> Optional[BaseTableBox]:
    """The base table under a (possibly trivial) chain, if unique."""
    if isinstance(box, BaseTableBox):
        return box
    return None


@dataclass
class OuterAggSubquery:
    """The single correlated scalar-agg subquery of a linear outer block --
    the common applicability requirement of Kim's and Dayal's methods."""

    outer: SelectBox
    predicate: ast.Expr  # the conjunct containing the subquery node
    pattern: ScalarAggPattern
    correlations: list[EqualityCorrelation]


def match_outer_agg_subquery(
    root: Box, method: str, require_equality: bool = True
) -> OuterAggSubquery:
    """Match the restricted shape or raise :class:`NotApplicableError`.

    The subquery-bearing SPJ box need not be the root: the paper's Query 2
    has an aggregated outer block, so the correlated predicate sits in the
    SPJ box underneath the outer aggregation.
    """
    require_linear(root, method)
    candidates: list[tuple[SelectBox, ast.Expr, BoxScalarSubquery]] = []
    subquery_box_ids: set[int] = set()
    for box in iter_boxes(root):
        if not isinstance(box, SelectBox) or box.id in subquery_box_ids:
            continue
        for predicate in box.predicates:
            for node in walk_expr(predicate):
                if isinstance(node, BOX_SUBQUERY_TYPES):
                    if not isinstance(node, BoxScalarSubquery):
                        raise NotApplicableError(
                            method, "non-scalar (existential/universal) subquery"
                        )
                    candidates.append((box, predicate, node))
                    subquery_box_ids.update(b.id for b in iter_boxes(node.box))
        for output in box.outputs:
            for node in walk_expr(output.expr):
                if isinstance(node, BOX_SUBQUERY_TYPES):
                    raise NotApplicableError(method, "subquery in the select list")
    if not candidates:
        raise NotApplicableError(method, "no correlated subquery found")
    if len(candidates) != 1:
        raise NotApplicableError(method, "more than one subquery")
    outer, predicate, node = candidates[0]
    pattern = match_scalar_agg(node)
    if pattern is None:
        raise NotApplicableError(
            method, "subquery is not a scalar aggregate over an SPJ block"
        )
    for q in outer.quantifiers:
        if not isinstance(q.box, BaseTableBox):
            raise NotApplicableError(method, "outer block is not over base tables")
        if external_column_refs(q.box):
            raise NotApplicableError(method, "correlated table expression")
    for q in pattern.spj.quantifiers:
        if not isinstance(q.box, BaseTableBox):
            raise NotApplicableError(
                method, "subquery FROM clause is not over base tables"
            )
    if subquery_nodes_in(pattern.spj):
        raise NotApplicableError(method, "nested subquery below the aggregate")
    correlations = extract_equality_correlations(pattern.spj, outer)
    if correlations is None:
        if require_equality:
            raise NotApplicableError(
                method, "correlation predicate is not a simple equality"
            )
        correlations = []
    if require_equality and not correlations:
        raise NotApplicableError(method, "subquery is not correlated")
    return OuterAggSubquery(outer, predicate, pattern, correlations)
