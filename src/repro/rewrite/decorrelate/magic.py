"""Magic decorrelation (sections 2.1 and 4 of the paper).

The rewrite walks the QGM top-down, one box at a time. At each SPJ box it
looks for correlated children -- scalar/existential/universal subquery
expressions and correlated table expressions -- and runs the FEED stage:

1. collect the computation ahead of the subquery into a *supplementary*
   box (SUPP), using the join order the nested-iteration optimizer chose
   (section 7);
2. project the distinct correlation bindings into a *magic* box;
3. ABSORB the bindings into the child subtree: SPJ boxes add the magic
   table to their FROM clause and redirect the destinations of correlation
   to it; non-SPJ boxes (GroupBy, set operations) first absorb into their
   children, then extend their own grouping/output columns (section 4.3.1);
4. remove the COUNT bug: a left outer join of the magic table with the
   decorrelated subquery re-creates the missing bindings, with COALESCE
   turning a missing COUNT into 0 (the BugRemoval box of section 2.1). When
   every use of the value is null-rejecting and the aggregate is not a
   COUNT, a plain join is used instead -- exactly the optimisation the
   paper applies to its benchmark queries;
5. re-establish the correlating relationship: the parent joins the
   supplementary box with the decorrelated result on the binding columns
   (the CI box, immediately merged into the parent as an equi-join). The
   join uses null-safe equality so NULL bindings keep their rows.

Existential and universal subqueries (EXISTS/IN/ANY/ALL) and scalar
subqueries without the aggregate shape are *partially* decorrelated: the
subquery body is decorrelated and materialised once, and a correlated-input
(CI) box performs the per-row selection on that result -- the paper's
section 4.4 knob, preserving exact three-valued logic for NOT IN and ALL.

With ``optimize_keys=True`` (the paper's OptMag), when the correlation
columns form a key of the supplementary table and a plain join suffices,
the supplementary common subexpression is eliminated by routing the whole
supplementary row through the decorrelated subquery.

``apply_ganski_wong`` reuses the same machinery restricted to the historic
special case: single-table outer block, magic table projected from the raw
base table (no supplementary predicates).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from ...errors import NotApplicableError, RewriteError
from ...plan.planner import plan_select_box
from ...qgm.analysis import (
    box_children,
    iter_boxes,
    rewrite_box_exprs,
    rewrite_subtree_refs,
)
from ...qgm.expr import (
    BOX_SUBQUERY_TYPES,
    BoxExists,
    BoxInSubquery,
    BoxQuantifiedComparison,
    BoxScalarSubquery,
    ColumnRef,
    replace_column_refs,
    transform_expr,
    walk_expr,
)
from ...qgm.model import (
    BaseTableBox,
    Box,
    GroupByBox,
    OuterJoinBox,
    OutputColumn,
    Quantifier,
    QueryGraph,
    SelectBox,
    SetOpBox,
)
from ...sql import ast
from ...storage.catalog import Catalog
from ..cleanup import run_cleanup
from .common import (
    ScalarAggPattern,
    correlation_refs_into,
    match_scalar_agg,
    node_use_is_null_rejecting,
)

StepHook = Optional[Callable[[str, QueryGraph], None]]


@dataclass
class _FeedContext:
    """Everything the FEED stage produced for one correlated child."""

    supp: Optional[SelectBox]  # None in the Ganski/Wong variant
    supp_quantifier: Optional[Quantifier]
    magic: Box
    #: absorb mapping: (id(original outer quantifier), column) -> magic column
    mapping: dict[tuple[int, str], str]
    #: per correlation binding: (expr in the parent producing the binding,
    #: magic column name)
    bindings: list[tuple[ast.Expr, str]]


class MagicDecorrelator:
    """One run of the magic decorrelation rewrite over a query graph."""

    def __init__(
        self,
        graph: QueryGraph,
        catalog: Catalog,
        optimize_keys: bool = False,
        decorrelate_existential: bool = True,
        ganski_wong: bool = False,
        on_step: StepHook = None,
    ):
        self.graph = graph
        self.catalog = catalog
        self.optimize_keys = optimize_keys
        self.decorrelate_existential = decorrelate_existential
        self.ganski_wong = ganski_wong
        self.on_step = on_step
        self._visited: set[int] = set()
        self._no_feed: set[int] = set()
        #: ids of boxes whose holding expression node must not be re-fed
        #: (node objects can be rebuilt by expression transforms, so the
        #: nested box -- which keeps identity -- is the robust key).
        self._no_feed_boxes: set[int] = set()

    # -- driver ----------------------------------------------------------------

    def run(self) -> QueryGraph:
        self._process(self.graph.root)
        run_cleanup(self.graph, on_step=self.on_step)
        self._step("cleanup")
        return self.graph

    def _process(self, box: Box) -> None:
        if id(box) in self._visited:
            return
        self._visited.add(id(box))
        if isinstance(box, SelectBox):
            self._feed_all(box)
        for child in box_children(box):
            self._process(child)

    def _step(self, description: str) -> None:
        if self.on_step is not None:
            self.on_step(description, self.graph)

    # -- FEED loop ---------------------------------------------------------------

    def _feed_all(self, box: SelectBox) -> None:
        for _ in range(100):
            target = self._next_correlated_child(box)
            if target is None:
                return
            kind, payload = target
            if kind == "quantifier":
                self._feed_quantifier(box, payload)
            else:
                self._feed_expression(box, payload)
        raise RewriteError(f"feed loop did not converge on box {box.id}")

    def _next_correlated_child(self, box: SelectBox):
        for q in box.quantifiers:
            if id(q) in self._no_feed:  # fed quantifiers are final
                continue
            if correlation_refs_into(q.box, box):
                return ("quantifier", q)
        for expr in box.own_exprs():
            for node in walk_expr(expr):
                if isinstance(node, BOX_SUBQUERY_TYPES):
                    if id(node) in self._no_feed or node.box.id in self._no_feed_boxes:
                        continue
                    if correlation_refs_into(node.box, box):
                        return ("expr", node)
        return None

    # -- FEED stage: supplementary and magic boxes ---------------------------------

    def _build_feed(
        self,
        box: SelectBox,
        corr_refs: list[ColumnRef],
        scalar_node: Optional[BoxScalarSubquery] = None,
    ) -> _FeedContext:
        """Create SUPP and MAGIC and restructure ``box`` around them.

        After this call ``box``'s moved quantifiers are replaced by one
        quantifier over SUPP; the child to decorrelate must be absorbed with
        the returned mapping *before* its old references become dangling --
        the caller sequences that (absorb first, then
        :meth:`_redirect_parent_refs`).
        """
        if self.ganski_wong:
            return self._build_feed_ganski_wong(box, corr_refs)

        plan = plan_select_box(self.catalog, box)
        join_order = plan.join_order
        needed = {id(r.quantifier) for r in corr_refs}
        if scalar_node is not None and id(scalar_node) in plan.scalar_placement:
            prefix_length = plan.scalar_placement[id(scalar_node)]
        else:
            positions = [
                i for i, q in enumerate(join_order) if id(q) in needed
            ]
            if not positions:
                raise RewriteError("correlation bindings not in join order")
            prefix_length = max(positions) + 1
        moved = join_order[:prefix_length]
        moved_ids = {id(q) for q in moved}
        if not needed <= moved_ids:
            raise RewriteError("subquery placement precedes its bindings")

        # Split predicates: subquery-free predicates over moved quantifiers
        # travel into the supplementary box.
        own_ids = {id(q) for q in box.quantifiers}
        supp_preds: list[ast.Expr] = []
        kept_preds: list[ast.Expr] = []
        for predicate in box.predicates:
            has_subquery = any(
                isinstance(n, BOX_SUBQUERY_TYPES) for n in walk_expr(predicate)
            )
            refs = {
                id(n.quantifier)
                for n in walk_expr(predicate)
                if isinstance(n, ColumnRef) and id(n.quantifier) in own_ids
            }
            if not has_subquery and refs <= moved_ids:
                supp_preds.append(predicate)
            else:
                kept_preds.append(predicate)

        supp = SelectBox(quantifiers=list(moved), predicates=supp_preds)
        used: set[str] = set()
        supp_columns: dict[tuple[int, str], str] = {}
        for q in moved:
            for column in q.box.output_names():
                name = f"{q.name}_{column}"
                counter = 1
                while name in used:
                    name = f"{q.name}_{column}_{counter}"
                    counter += 1
                used.add(name)
                supp.outputs.append(OutputColumn(name, q.ref(column)))
                supp_columns[(id(q), column)] = name

        sq = Quantifier.fresh(supp, "supp")
        box.quantifiers = [sq] + [q for q in box.quantifiers if id(q) not in moved_ids]
        box.predicates = kept_preds

        # Magic box: the duplicate-free correlation bindings.
        magic = SelectBox(distinct=True)
        mq = magic.add_quantifier(supp, "mg")
        mapping: dict[tuple[int, str], str] = {}
        bindings: list[tuple[ast.Expr, str]] = []
        for ref in corr_refs:
            supp_col = supp_columns[(id(ref.quantifier), ref.column)]
            if (id(ref.quantifier), ref.column) not in mapping:
                magic.outputs.append(OutputColumn(supp_col, mq.ref(supp_col)))
                mapping[(id(ref.quantifier), ref.column)] = supp_col
                bindings.append((ColumnRef(sq, supp_col), supp_col))

        self._redirect_map = (moved_ids, supp_columns, sq)
        return _FeedContext(supp, sq, magic, mapping, bindings)

    def _build_feed_ganski_wong(
        self, box: SelectBox, corr_refs: list[ColumnRef]
    ) -> _FeedContext:
        """Ganski/Wong: magic projected from the *single* outer base table,
        no supplementary predicates (section 2 / section 7 of the paper)."""
        quantifiers = {id(r.quantifier) for r in corr_refs}
        if len(quantifiers) != 1:
            raise NotApplicableError(
                "Ganski/Wong", "correlation spans more than one outer table"
            )
        outer_q = corr_refs[0].quantifier
        if not isinstance(outer_q.box, BaseTableBox):
            raise NotApplicableError(
                "Ganski/Wong", "outer block is not a plain base table"
            )
        if len(box.quantifiers) != 1:
            raise NotApplicableError(
                "Ganski/Wong", "outer block references more than one table"
            )
        table = self.catalog.table(outer_q.box.table_name)
        base = BaseTableBox(table.name, table.schema.names())
        magic = SelectBox(distinct=True)
        mq = magic.add_quantifier(base, "gw")
        mapping: dict[tuple[int, str], str] = {}
        bindings: list[tuple[ast.Expr, str]] = []
        for ref in corr_refs:
            key = (id(ref.quantifier), ref.column)
            if key not in mapping:
                magic.outputs.append(OutputColumn(ref.column, mq.ref(ref.column)))
                mapping[key] = ref.column
                bindings.append((ColumnRef(outer_q, ref.column), ref.column))
        self._redirect_map = None
        return _FeedContext(None, None, magic, mapping, bindings)

    def _redirect_parent_refs(self, box: SelectBox) -> None:
        """Point every remaining reference to moved quantifiers at SUPP.

        The SUPP subtree itself is excluded: the moved quantifiers now live
        there, and references to them *inside* SUPP (its outputs, its moved
        predicates) are exactly where they belong.
        """
        if self._redirect_map is None:
            return
        moved_ids, supp_columns, sq = self._redirect_map
        exclude = {b.id for b in iter_boxes(sq.box)}

        def substitute(ref: ColumnRef):
            if id(ref.quantifier) in moved_ids:
                return ColumnRef(sq, supp_columns[(id(ref.quantifier), ref.column)])
            return None

        for candidate in iter_boxes(box):
            if candidate.id in exclude:
                continue
            rewrite_box_exprs(
                candidate, lambda e: replace_column_refs(e, substitute)
            )
        self._redirect_map = None

    # -- ABSORB stage -------------------------------------------------------------
    #
    # Dispatch goes through the box-encapsulator registry (section 4.4's
    # AM/NM classification): each box kind registers how -- and whether --
    # it absorbs a magic table; unregistered kinds (e.g. outer joins) are
    # NM and the decorrelator leaves their correlations in place.

    @staticmethod
    def _can_absorb(box: Box) -> bool:
        """AM/NM pre-check: can the whole chain absorb a magic table?
        Checked *before* mutating so a refusal leaves the graph untouched."""
        from .encapsulators import subtree_can_absorb

        return subtree_can_absorb(box)

    def _absorb(
        self, box: Box, magic: Box, mapping: dict[tuple[int, str], str]
    ) -> list[str]:
        """Absorb the magic bindings into ``box``'s subtree.

        Returns the output column names under which ``box`` now exposes the
        binding columns (in ``mapping`` iteration order).
        """
        from .encapsulators import absorb_via_encapsulator

        return absorb_via_encapsulator(self, box, magic, mapping)

    def _absorb_select(
        self, box: SelectBox, magic: Box, mapping: dict[tuple[int, str], str]
    ) -> list[str]:
        """SPJ absorb (section 4.3.2): add the magic table to the FROM
        clause, redirect the destinations of correlation to it, expose the
        binding columns in the output."""
        mq = Quantifier.fresh(magic, "mg")
        box.quantifiers.append(mq)

        def substitute(ref: ColumnRef):
            key = (id(ref.quantifier), ref.column)
            if key in mapping:
                return ColumnRef(mq, mapping[key])
            return None

        # The magic box's own subtree reaches back to SUPP, whose
        # references to the moved quantifiers are legitimate -- the
        # redirect must not walk into it.
        exclude = {b.id for b in iter_boxes(magic)}
        for candidate in iter_boxes(box):
            if candidate.id in exclude:
                continue
            rewrite_box_exprs(
                candidate, lambda e: replace_column_refs(e, substitute)
            )
        added: list[str] = []
        existing = set(box.output_names())
        for magic_col in mapping.values():
            name = magic_col
            counter = 1
            while name in existing:
                name = f"{magic_col}_{counter}"
                counter += 1
            existing.add(name)
            box.outputs.append(OutputColumn(name, mq.ref(magic_col)))
            added.append(name)
        return added

    def _absorb_groupby(
        self, box: GroupByBox, magic: Box, mapping: dict[tuple[int, str], str]
    ) -> list[str]:
        """Non-SPJ absorb (section 4.3.1): feed the child first, then
        extend the grouping and outputs with the binding columns."""
        child_cols = self._absorb(box.quantifier.box, magic, mapping)
        gq = box.quantifier
        added = []
        existing = set(box.output_names())
        for child_col in child_cols:
            box.group_by.append(gq.ref(child_col))
            name = child_col
            counter = 1
            while name in existing:
                name = f"{child_col}_{counter}"
                counter += 1
            existing.add(name)
            box.outputs.append(OutputColumn(name, gq.ref(child_col)))
            added.append(name)
        return added

    def _absorb_setop(
        self, box: SetOpBox, magic: Box, mapping: dict[tuple[int, str], str]
    ) -> list[str]:
        """Set-operation absorb: every arm absorbs the same magic table and
        appends the binding columns positionally."""
        arm_columns = [
            self._absorb(q.box, magic, mapping) for q in box.quantifiers
        ]
        added = []
        existing = set(box.output_names())
        for position in range(len(mapping)):
            base_name = arm_columns[0][position]
            name = base_name
            counter = 1
            while name in existing:
                name = f"{base_name}_{counter}"
                counter += 1
            existing.add(name)
            box._output_names.append(name)
            added.append(name)
        # Arms expose the columns positionally; ensure every arm added
        # them at the end in the same order (guaranteed by recursion).
        for arm_cols in arm_columns:
            if len(arm_cols) != len(mapping):
                raise RewriteError("set-operation arm arity drift in absorb")
        return added

    # -- per-child FEED entry points -------------------------------------------

    def _feed_expression(self, box: SelectBox, node: ast.Expr) -> None:
        corr_refs = correlation_refs_into(node.box, box)
        if isinstance(node, BoxScalarSubquery):
            pattern = match_scalar_agg(node)
            if pattern is not None:
                self._feed_scalar_agg(box, node, pattern, corr_refs)
                return
            if self.ganski_wong:
                raise NotApplicableError(
                    "Ganski/Wong", "subquery is not a scalar aggregate"
                )
            self._feed_via_ci(box, node, corr_refs)
            return
        if self.ganski_wong:
            raise NotApplicableError(
                "Ganski/Wong", "existential/universal subquery"
            )
        if not self.decorrelate_existential:
            self._no_feed.add(id(node))
            self._no_feed_boxes.add(node.box.id)
            return
        self._feed_via_ci(box, node, corr_refs)

    # -- scalar aggregate: full decorrelation -------------------------------------

    def _feed_scalar_agg(
        self,
        box: SelectBox,
        node: BoxScalarSubquery,
        pattern: ScalarAggPattern,
        corr_refs: list[ColumnRef],
    ) -> None:
        null_rejecting = node_use_is_null_rejecting(box, node)
        needs_loj = bool(pattern.count_outputs) or not null_rejecting

        feed = self._build_feed(box, corr_refs, scalar_node=node)
        group_box = pattern.group_box

        # OptMag supplementary-CSE elimination (section 5.1): correlation
        # columns form a key of SUPP and a plain join suffices.
        if (
            self.optimize_keys
            and not needs_loj
            and feed.supp is not None
            and self._supp_keyed_by(feed, corr_refs)
        ):
            self._feed_scalar_agg_keyed(box, node, pattern, feed)
            self._step(f"feed+absorb optmag scalar box {group_box.id}")
            return

        corr_out = self._absorb(group_box, feed.magic, feed.mapping)

        if needs_loj:
            dco_box, corr_cols, value_cols = self._bug_removal(
                feed.magic, group_box, corr_out, pattern.count_outputs
            )
        else:
            dco_box = group_box
            corr_cols = corr_out
            value_cols = {
                output.name: output.name
                for output in group_box.outputs
                if output.name not in corr_out
            }

        bq = Quantifier.fresh(dco_box, "dco")
        box.quantifiers.append(bq)
        for (binding_expr, _), corr_col in zip(feed.bindings, corr_cols):
            box.predicates.append(
                ast.Comparison("<=>", binding_expr, ColumnRef(bq, corr_col))
            )
        value_expr = self._value_expression(pattern, bq, value_cols)
        self._replace_node(box, node, value_expr)
        self._redirect_parent_refs(box)
        self._no_feed.add(id(bq))
        self._step(f"feed scalar aggregate into box {box.id}")

    def _feed_scalar_agg_keyed(
        self,
        box: SelectBox,
        node: BoxScalarSubquery,
        pattern: ScalarAggPattern,
        feed: _FeedContext,
    ) -> None:
        """OptMag: route the whole supplementary row through the subquery.

        The decorrelated subquery joins SUPP directly (instead of a distinct
        magic projection), groups by *all* SUPP columns (legal: the binding
        is a key), and replaces SUPP in the parent -- SUPP is referenced
        exactly once, eliminating the common subexpression.
        """
        supp = feed.supp
        assert supp is not None and feed.supp_quantifier is not None
        group_box = pattern.group_box

        # Absorb with magic := SUPP itself.
        supp_mapping = {}
        moved_ids, supp_columns, sq = self._redirect_map
        for key, supp_col in supp_columns.items():
            if key in feed.mapping:
                supp_mapping[key] = supp_col
        corr_out = self._absorb(group_box, supp, supp_mapping)

        # Extend the grouping to every SUPP column. The absorb added the
        # binding columns already; find the magic quantifier it created.
        spj = pattern.spj
        mq = spj.quantifiers[-1]
        gq = group_box.quantifier
        existing_group_cols = set(corr_out)
        existing = set(group_box.output_names())
        carried: dict[str, str] = {}
        for output in supp.outputs:
            if output.name in [supp_mapping[k] for k in supp_mapping]:
                carried[output.name] = corr_out[
                    list(supp_mapping.values()).index(output.name)
                ]
                continue
            spj_name = output.name
            counter = 1
            while spj_name in set(spj.output_names()):
                spj_name = f"{output.name}_{counter}"
                counter += 1
            spj.outputs.append(OutputColumn(spj_name, mq.ref(output.name)))
            group_box.group_by.append(gq.ref(spj_name))
            g_name = spj_name
            counter = 1
            while g_name in existing:
                g_name = f"{spj_name}_{counter}"
                counter += 1
            existing.add(g_name)
            group_box.outputs.append(OutputColumn(g_name, gq.ref(spj_name)))
            carried[output.name] = g_name
        del existing_group_cols

        # Replace SUPP's quantifier in the parent with the decorrelated box.
        new_q = Quantifier.fresh(group_box, "ds")
        box.quantifiers = [
            new_q if q is sq else q for q in box.quantifiers
        ]

        def substitute(ref: ColumnRef):
            if ref.quantifier is sq:
                return ColumnRef(new_q, carried[ref.column])
            if id(ref.quantifier) in moved_ids:
                return ColumnRef(
                    new_q, carried[supp_columns[(id(ref.quantifier), ref.column)]]
                )
            return None

        value_cols = {
            output.name: output.name
            for output in group_box.outputs
            if isinstance(output.expr, ast.AggregateCall)
        }
        value_expr = self._value_expression(pattern, new_q, value_cols)
        self._replace_node(box, node, value_expr)
        # As in _redirect_parent_refs: SUPP's subtree keeps its references
        # to the moved quantifiers -- exclude it from the rewrite.
        exclude = {b.id for b in iter_boxes(supp)}
        for candidate in iter_boxes(box):
            if candidate.id in exclude:
                continue
            rewrite_box_exprs(
                candidate, lambda e: replace_column_refs(e, substitute)
            )
        self._redirect_map = None
        self._no_feed.add(id(new_q))

    def _supp_keyed_by(
        self, feed: _FeedContext, corr_refs: list[ColumnRef]
    ) -> bool:
        """Is the binding a key of SUPP? Conservative check: SUPP ranges over
        a single base table whose declared/unique key is contained in the
        correlation columns."""
        supp = feed.supp
        if supp is None or len(supp.quantifiers) != 1:
            return False
        base = supp.quantifiers[0].box
        if not isinstance(base, BaseTableBox):
            return False
        columns = [
            ref.column
            for ref in corr_refs
            if ref.quantifier is supp.quantifiers[0]
        ]
        if len(columns) != len(corr_refs):
            return False
        return self.catalog.is_key(base.table_name, columns)

    def _bug_removal(
        self,
        magic: Box,
        group_box: GroupByBox,
        corr_out: list[str],
        count_outputs: list[str],
    ) -> tuple[OuterJoinBox, list[str], dict[str, str]]:
        """The BugRemoval box: ``magic LOJ decorrelated-subquery`` with
        COALESCE(count, 0) for missing bindings (section 2.1)."""
        preserved = Quantifier.fresh(magic, "mgb")
        null_side = Quantifier.fresh(group_box, "dsb")
        magic_cols = magic.output_names()
        # Null-safe equality: a NULL binding can still have decorrelated
        # rows (a UNION arm correlated on a different column, a correlation
        # used only in outputs, ...), and those must find their magic row.
        condition_parts: list[ast.Expr] = [
            ast.Comparison("<=>", preserved.ref(m), null_side.ref(c))
            for m, c in zip(magic_cols, corr_out)
        ]
        condition = (
            condition_parts[0]
            if len(condition_parts) == 1
            else ast.And(tuple(condition_parts))
        )
        outputs: list[OutputColumn] = []
        corr_cols: list[str] = []
        used: set[str] = set()
        for m in magic_cols:
            name = f"b_{m}"
            outputs.append(OutputColumn(name, preserved.ref(m)))
            corr_cols.append(name)
            used.add(name)
        value_cols: dict[str, str] = {}
        for output in group_box.outputs:
            if output.name in corr_out:
                continue
            name = output.name
            counter = 1
            while name in used:
                name = f"{output.name}_{counter}"
                counter += 1
            used.add(name)
            value: ast.Expr = null_side.ref(output.name)
            if output.name in count_outputs:
                value = ast.FunctionCall("coalesce", (value, ast.Literal(0)))
            outputs.append(OutputColumn(name, value))
            value_cols[output.name] = name
        return (
            OuterJoinBox(preserved, null_side, condition, outputs),
            corr_cols,
            value_cols,
        )

    def _value_expression(
        self,
        pattern: ScalarAggPattern,
        bq: Quantifier,
        value_cols: dict[str, str],
    ) -> ast.Expr:
        """The expression replacing the scalar subquery node in the parent."""
        scalar_col = pattern.group_box.outputs[0].name
        if pattern.wrapper is None:
            return ColumnRef(bq, value_cols[scalar_col])
        wrapper_q = pattern.wrapper.quantifiers[0]

        def substitute(ref: ColumnRef):
            if ref.quantifier is wrapper_q:
                return ColumnRef(bq, value_cols[ref.column])
            return None

        return replace_column_refs(pattern.wrapper.outputs[0].expr, substitute)

    # -- CI (partial) decorrelation -------------------------------------------------

    def _feed_via_ci(
        self, box: SelectBox, node: ast.Expr, corr_refs: list[ColumnRef]
    ) -> None:
        """Partially decorrelate: the subquery body absorbs the magic table
        and is materialised once; a correlated-input box keeps performing the
        per-binding selection on that result (paper section 4.4)."""
        if not self._can_absorb(node.box):
            # Leave this subquery correlated (the section 4.4 knob).
            self._no_feed.add(id(node))
            self._no_feed_boxes.add(node.box.id)
            return
        feed = self._build_feed(box, corr_refs)
        original_outputs = list(node.box.output_names())
        corr_out = self._absorb(node.box, feed.magic, feed.mapping)

        ci = SelectBox()
        dq = ci.add_quantifier(node.box, "ci")
        for (binding_expr, _), corr_col in zip(feed.bindings, corr_out):
            ci.predicates.append(
                ast.Comparison("<=>", dq.ref(corr_col), binding_expr)
            )
        ci.outputs = [OutputColumn(c, dq.ref(c)) for c in original_outputs]

        replacement = self._rebuild_subquery_node(node, ci)
        self._replace_node(box, node, replacement)
        self._redirect_parent_refs(box)
        self._no_feed.add(id(replacement))
        self._no_feed_boxes.add(ci.id)
        self._no_feed.add(id(dq))
        self._step(f"feed CI subquery into box {box.id}")

    @staticmethod
    def _rebuild_subquery_node(node: ast.Expr, ci: SelectBox) -> ast.Expr:
        if isinstance(node, BoxScalarSubquery):
            return BoxScalarSubquery(ci)
        if isinstance(node, BoxExists):
            return BoxExists(ci, node.negated)
        if isinstance(node, BoxInSubquery):
            return BoxInSubquery(node.operand, ci, node.negated)
        if isinstance(node, BoxQuantifiedComparison):
            return BoxQuantifiedComparison(
                node.op, node.operand, node.quantifier_kind, ci
            )
        raise RewriteError(f"unexpected subquery node {node!r}")

    # -- correlated table expressions -------------------------------------------

    def _feed_quantifier(self, box: SelectBox, q: Quantifier) -> None:
        corr_refs = correlation_refs_into(q.box, box)
        if self.ganski_wong:
            raise NotApplicableError(
                "Ganski/Wong", "correlated table expression"
            )
        scalar_shape = isinstance(q.box, GroupByBox) and q.box.is_scalar
        if not self._can_absorb(q.box):
            self._no_feed.add(id(q))
            return
        feed = self._build_feed(box, corr_refs)
        corr_out = self._absorb(q.box, feed.magic, feed.mapping)

        if scalar_shape:
            count_outputs = [
                output.name
                for output in q.box.outputs
                if isinstance(output.expr, ast.AggregateCall)
                and output.expr.is_count
            ]
            dco_box, corr_cols, value_cols = self._bug_removal(
                feed.magic, q.box, corr_out, count_outputs
            )
            old_box = q.box
            q.box = dco_box

            def substitute(ref: ColumnRef):
                if ref.quantifier is q and ref.column in value_cols:
                    return ColumnRef(q, value_cols[ref.column])
                return None

            rewrite_subtree_refs(box, substitute)
            join_cols = corr_cols
            del old_box
        else:
            join_cols = corr_out

        for (binding_expr, _), corr_col in zip(feed.bindings, join_cols):
            box.predicates.append(
                ast.Comparison("<=>", binding_expr, ColumnRef(q, corr_col))
            )
        self._redirect_parent_refs(box)
        self._no_feed.add(id(q))
        self._step(f"feed table expression into box {box.id}")

    # -- node replacement -----------------------------------------------------------

    @staticmethod
    def _replace_node(box: SelectBox, node: ast.Expr, replacement: ast.Expr) -> None:
        """Replace a subquery expression node inside ``box``'s expressions.

        ``transform_expr`` rebuilds nodes bottom-up, so operand-carrying
        subquery nodes lose object identity before the substitution function
        sees them; matching on the (unique) nested box identity is robust.
        """
        target_box = getattr(node, "box", None)

        def substitute(n: ast.Expr):
            if n is node:
                return replacement
            if (
                target_box is not None
                and isinstance(n, BOX_SUBQUERY_TYPES)
                and type(n) is type(node)
                and n.box is target_box
            ):
                return replacement
            return None

        rewrite_box_exprs(box, lambda e: transform_expr(e, substitute))


def apply_magic(
    graph: QueryGraph,
    catalog: Catalog,
    optimize_keys: bool = False,
    decorrelate_existential: bool = True,
    on_step: StepHook = None,
) -> QueryGraph:
    """Apply magic decorrelation (Mag; OptMag with ``optimize_keys``)."""
    return MagicDecorrelator(
        graph,
        catalog,
        optimize_keys=optimize_keys,
        decorrelate_existential=decorrelate_existential,
        on_step=on_step,
    ).run()


def apply_ganski_wong(
    graph: QueryGraph, catalog: Catalog, on_step: StepHook = None
) -> QueryGraph:
    """Apply the Ganski/Wong special case (section 2); raises
    :class:`NotApplicableError` outside its narrow shape."""
    return MagicDecorrelator(
        graph, catalog, ganski_wong=True, on_step=on_step
    ).run()
