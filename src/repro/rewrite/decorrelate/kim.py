"""Kim's method (Kim 1982, as characterised in section 2 of the paper).

The correlated aggregate subquery becomes a grouped table expression: the
equality correlation columns turn into GROUP BY columns, and the correlation
predicate moves to the outer block as a plain equi-join.

This implementation is *deliberately faithful to the method's known flaws*:

* the **COUNT bug** -- bindings with no matching inner rows produce no group,
  so outer rows whose COUNT should be 0 silently disappear (tests assert the
  divergence on the paper's section-2 example);
* the aggregate is computed for *every* group in the inner table, not just
  the bindings the outer block needs (the source of its poor performance on
  the paper's Queries 1 and 2);
* it applies only to linear queries whose single correlated subquery is a
  scalar aggregate with pure equality correlation.
"""

from __future__ import annotations

from typing import Callable, Optional

from ...qgm.expr import ColumnRef, replace_column_refs
from ...qgm.model import OutputColumn, Quantifier, QueryGraph
from ...sql import ast
from ...storage.catalog import Catalog
from ..cleanup import run_cleanup
from .common import ScalarAggPattern, match_outer_agg_subquery

StepHook = Optional[Callable[[str, QueryGraph], None]]


def _value_expression(
    pattern: ScalarAggPattern, bq: Quantifier, value_cols: dict[str, str]
) -> ast.Expr:
    """Expression replacing the subquery node (re-applies a Q2-style wrapper)."""
    scalar_col = pattern.group_box.outputs[0].name
    if pattern.wrapper is None:
        return ColumnRef(bq, value_cols[scalar_col])
    wrapper_q = pattern.wrapper.quantifiers[0]

    def substitute(ref: ColumnRef):
        if ref.quantifier is wrapper_q:
            return ColumnRef(bq, value_cols[ref.column])
        return None

    return replace_column_refs(pattern.wrapper.outputs[0].expr, substitute)


def apply_kim(
    graph: QueryGraph, catalog: Catalog, on_step: StepHook = None
) -> QueryGraph:
    """Apply Kim's method or raise :class:`NotApplicableError`."""
    match = match_outer_agg_subquery(graph.root, "Kim", require_equality=True)
    outer = match.outer
    pattern = match.pattern
    group_box = pattern.group_box
    spj = pattern.spj

    # 1. Remove the correlation predicates from the subquery SPJ and expose
    # the inner columns instead.
    inner_cols: list[str] = []
    for correlation in match.correlations:
        spj.predicates = [
            p for p in spj.predicates if p is not correlation.predicate
        ]
        name = f"kim_{correlation.inner.column}"
        counter = 1
        existing = set(spj.output_names())
        while name in existing:
            name = f"kim_{correlation.inner.column}_{counter}"
            counter += 1
        spj.outputs.append(OutputColumn(name, correlation.inner))
        inner_cols.append(name)

    # 2. Group the aggregate by the correlation columns.
    gq = group_box.quantifier
    group_out_cols: list[str] = []
    for name in inner_cols:
        group_box.group_by.append(gq.ref(name))
        out_name = name
        counter = 1
        existing = set(group_box.output_names())
        while out_name in existing:
            out_name = f"{name}_{counter}"
            counter += 1
        group_box.outputs.append(OutputColumn(out_name, gq.ref(name)))
        group_out_cols.append(out_name)
    if on_step is not None:
        on_step("kim: group subquery by correlation columns", graph)

    # 3. Join the grouped table expression into the outer block with plain
    # equality -- Kim's semantics, COUNT bug included.
    bq = Quantifier.fresh(group_box, "kim")
    outer.quantifiers.append(bq)
    for correlation, out_col in zip(match.correlations, group_out_cols):
        outer.predicates.append(
            ast.Comparison("=", correlation.outer, ColumnRef(bq, out_col))
        )
    value_cols = {o.name: o.name for o in group_box.outputs}
    value_expr = _value_expression(pattern, bq, value_cols)

    def substitute(n: ast.Expr):
        return value_expr if n is pattern.node else None

    from ...qgm.expr import transform_expr

    outer.predicates = [
        transform_expr(p, substitute) for p in outer.predicates
    ]
    if on_step is not None:
        on_step("kim: join grouped expression into outer block", graph)

    run_cleanup(graph, on_step=on_step)
    return graph
