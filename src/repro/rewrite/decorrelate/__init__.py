"""Decorrelation strategies: magic (the paper's contribution), plus the
Kim, Dayal and Ganski/Wong baselines it compares against."""

from .common import (
    EqualityCorrelation,
    ScalarAggPattern,
    correlation_refs_into,
    match_outer_agg_subquery,
    match_scalar_agg,
    node_use_is_null_rejecting,
)
from .magic import MagicDecorrelator, apply_ganski_wong, apply_magic
from .kim import apply_kim
from .dayal import apply_dayal

__all__ = [
    "apply_magic",
    "apply_ganski_wong",
    "apply_kim",
    "apply_dayal",
    "MagicDecorrelator",
    "match_scalar_agg",
    "match_outer_agg_subquery",
    "correlation_refs_into",
    "node_use_is_null_rejecting",
    "ScalarAggPattern",
    "EqualityCorrelation",
]
