"""Dayal's method (Dayal 1987, as characterised in section 2 of the paper).

The outer block and the correlated aggregate subquery merge into a single
block: the outer tables are LEFT-OUTER-JOINed with the subquery's tables on
the correlation predicate, grouped by a key of the outer block, and the
subquery comparison becomes a HAVING predicate. The left outer join (plus
counting a never-NULL inner column) avoids the COUNT bug.

Faithfully reproduced weaknesses (section 2):

* the join of *all* involved relations happens before aggregation -- on the
  paper's Query 2 this joins the outer LINEITEM too, which is why Dayal is
  orders of magnitude slower there;
* aggregate computation repeats per outer row when the correlation column
  is not a key;
* only linear SELECT/GROUP BY queries qualify, and the outer block must have
  a key to group on (we require declared primary keys on its base tables).
"""

from __future__ import annotations

from typing import Callable, Optional

from ...errors import NotApplicableError
from ...qgm.analysis import parent_edges
from ...qgm.expr import ColumnRef, replace_column_refs, walk_expr
from ...qgm.model import (
    GroupByBox,
    OuterJoinBox,
    OutputColumn,
    Quantifier,
    QueryGraph,
    SelectBox,
)
from ...sql import ast
from ...storage.catalog import Catalog
from ..cleanup import run_cleanup
from .common import match_outer_agg_subquery
from .kim import _value_expression

StepHook = Optional[Callable[[str, QueryGraph], None]]


def apply_dayal(
    graph: QueryGraph, catalog: Catalog, on_step: StepHook = None
) -> QueryGraph:
    """Apply Dayal's method or raise :class:`NotApplicableError`."""
    match = match_outer_agg_subquery(graph.root, "Dayal", require_equality=False)
    outer = match.outer
    pattern = match.pattern
    spj = pattern.spj
    group_box = pattern.group_box

    # The outer block needs a key to group on: require declared primary keys.
    for q in outer.quantifiers:
        table = catalog.table(q.box.table_name)
        if not table.schema.primary_key:
            raise NotApplicableError(
                "Dayal", f"outer table {table.name!r} has no key to group on"
            )

    # 1. Split the subquery's predicates: correlated ones move to the outer
    # join condition, the rest stay with the subquery tables.
    outer_ids = {id(q) for q in outer.quantifiers}
    corr_preds: list[ast.Expr] = []
    inner_preds: list[ast.Expr] = []
    for predicate in spj.predicates:
        refs = [n for n in walk_expr(predicate) if isinstance(n, ColumnRef)]
        if any(id(r.quantifier) in outer_ids for r in refs):
            corr_preds.append(predicate)
        else:
            inner_preds.append(predicate)

    # 2. Preserved side: the outer block minus the subquery predicate.
    ob = SelectBox(quantifiers=list(outer.quantifiers))
    subquery_pred = match.predicate
    ob.predicates = [p for p in outer.predicates if p is not subquery_pred]
    ob_columns: dict[tuple[int, str], str] = {}
    used: set[str] = set()
    for q in ob.quantifiers:
        for column in q.box.output_names():
            name = f"{q.name}_{column}"
            counter = 1
            while name in used:
                name = f"{q.name}_{column}_{counter}"
                counter += 1
            used.add(name)
            ob.outputs.append(OutputColumn(name, q.ref(column)))
            ob_columns[(id(q), column)] = name

    # 3. Null-producing side: the subquery SPJ with its inner predicates,
    # plus a never-NULL marker column for COUNT(*) (the "E.[key]" trick).
    spj.predicates = inner_preds
    marker = "dayal_one"
    counter = 1
    while marker in set(spj.output_names()):
        marker = f"dayal_one_{counter}"
        counter += 1
    spj.outputs.append(OutputColumn(marker, ast.Literal(1)))

    # 4. The left outer join on the correlation predicates.
    ob_q = Quantifier.fresh(ob, "dob")
    qb_q = Quantifier.fresh(spj, "dqb")

    def to_join_refs(expr: ast.Expr) -> ast.Expr:
        def substitute(ref: ColumnRef):
            if id(ref.quantifier) in outer_ids:
                return ColumnRef(ob_q, ob_columns[(id(ref.quantifier), ref.column)])
            if ref.quantifier in spj.quantifiers:
                # Route inner refs through the SPJ's outputs, adding one if
                # the column is not yet exposed.
                for output in spj.outputs:
                    if isinstance(output.expr, ColumnRef) and output.expr.same(ref):
                        return ColumnRef(qb_q, output.name)
                name = f"dayal_{ref.column}"
                inner_counter = 1
                while name in set(spj.output_names()):
                    name = f"dayal_{ref.column}_{inner_counter}"
                    inner_counter += 1
                spj.outputs.append(OutputColumn(name, ref))
                return ColumnRef(qb_q, name)
            return None

        return replace_column_refs(expr, substitute)

    condition_parts = [to_join_refs(p) for p in corr_preds]
    condition = None
    if condition_parts:
        condition = (
            condition_parts[0]
            if len(condition_parts) == 1
            else ast.And(tuple(condition_parts))
        )
    oj_outputs = [OutputColumn(o.name, ob_q.ref(o.name)) for o in ob.outputs]
    oj_outputs += [OutputColumn(o.name, qb_q.ref(o.name)) for o in spj.outputs]
    oj = OuterJoinBox(ob_q, qb_q, condition, oj_outputs)
    if on_step is not None:
        on_step("dayal: merge blocks with left outer join", graph)

    # 5. Group by every outer column (the outer keys make groups = rows) and
    # recompute the subquery's aggregates over the inner side.
    gq = Quantifier.fresh(oj, "dgrp")
    grouped = GroupByBox(gq)
    grouped.group_by = [gq.ref(o.name) for o in ob.outputs]
    grouped.outputs = [OutputColumn(o.name, gq.ref(o.name)) for o in ob.outputs]
    value_cols: dict[str, str] = {}
    for output in group_box.outputs:
        agg = output.expr
        assert isinstance(agg, ast.AggregateCall)
        if agg.argument is None:
            argument: Optional[ast.Expr] = gq.ref(marker)
        else:
            # The builder normalised the argument to a ref over an SPJ output.
            assert isinstance(agg.argument, ColumnRef)
            argument = gq.ref(agg.argument.column)
        name = output.name
        counter = 1
        while name in {o.name for o in grouped.outputs}:
            name = f"{output.name}_{counter}"
            counter += 1
        grouped.outputs.append(
            OutputColumn(name, ast.AggregateCall(agg.func, argument, agg.distinct))
        )
        value_cols[output.name] = name
    if on_step is not None:
        on_step("dayal: group by the outer block's key", graph)

    # 6. Top block: the subquery comparison (HAVING) plus the original
    # outputs, all rerouted through the grouped box.
    top = SelectBox(distinct=outer.distinct)
    tq = Quantifier.fresh(grouped, "dtop")
    top.quantifiers = [tq]
    value_expr = _value_expression(pattern, tq, value_cols)

    def reroute(expr: ast.Expr) -> ast.Expr:
        def node_sub(n: ast.Expr):
            if n is pattern.node:
                return value_expr
            if isinstance(n, ColumnRef) and id(n.quantifier) in outer_ids:
                return ColumnRef(tq, ob_columns[(id(n.quantifier), n.column)])
            return None

        from ...qgm.expr import transform_expr

        return transform_expr(expr, node_sub)

    top.predicates = [reroute(subquery_pred)]
    top.outputs = [OutputColumn(o.name, reroute(o.expr)) for o in outer.outputs]
    if on_step is not None:
        on_step("dayal: apply subquery comparison as HAVING", graph)

    # 7. Splice the rewritten block where the outer block was.
    _replace_box(graph, outer, top)
    run_cleanup(graph, on_step=on_step)
    return graph


def _replace_box(graph: QueryGraph, old: SelectBox, new: SelectBox) -> None:
    if graph.root is old:
        graph.root = new
        return
    parents = parent_edges(graph.root)
    for parent in parents.get(old.id, []):
        for q in parent.child_quantifiers():
            if q.box is old:
                q.box = new
    # Expression-held boxes (subquery nodes) cannot occur: the matcher
    # rejected nested subqueries around the outer block.
