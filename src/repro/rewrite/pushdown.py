"""Predicate pushdown.

A classic Starburst-family rewrite that complements SPJ merging: predicates
of an SPJ box that reference a single quantifier move *into* the box that
quantifier ranges over, filtering earlier:

* into a DISTINCT SPJ child (filter before duplicate elimination);
* through a GROUP BY, when the predicate touches only grouping columns;
* into every arm of a set operation.

All three are semantics-preserving for the respective shapes; each
application leaves the QGM consistent (section 3's contract), which the
property suite verifies. Decorrelated plans benefit directly: filters that
end up above a BugRemoval join or a magic DISTINCT migrate below them.
"""

from __future__ import annotations

from typing import Optional

from ..qgm.analysis import parent_edges
from ..qgm.expr import (
    BOX_SUBQUERY_TYPES,
    ColumnRef,
    replace_column_refs,
    walk_expr,
)
from ..qgm.model import (
    Box,
    GroupByBox,
    OutputColumn,
    QueryGraph,
    SelectBox,
    SetOpBox,
)
from ..sql import ast


def _single_quantifier_pred(box: SelectBox, predicate: ast.Expr):
    """The one quantifier of ``box`` the predicate references, if exactly
    one, the predicate is subquery-free, and no outer references occur."""
    if any(isinstance(n, BOX_SUBQUERY_TYPES) for n in walk_expr(predicate)):
        return None
    quantifiers = {
        id(n.quantifier): n.quantifier
        for n in walk_expr(predicate)
        if isinstance(n, ColumnRef)
    }
    own = {id(q) for q in box.quantifiers}
    if len(quantifiers) != 1 or not set(quantifiers) <= own:
        return None
    return next(iter(quantifiers.values()))


def _rewrite_to_outputs(
    predicate: ast.Expr, quantifier, outputs: list[OutputColumn]
) -> Optional[ast.Expr]:
    """Translate a predicate over ``quantifier`` into one over the target
    box's *input* expressions by inlining output definitions."""
    exprs = {o.name: o.expr for o in outputs}

    failed = []

    def substitute(ref: ColumnRef):
        if ref.quantifier is quantifier:
            replacement = exprs.get(ref.column)
            if replacement is None:
                failed.append(ref)
                return None
            return replacement
        return None

    rewritten = replace_column_refs(predicate, substitute)
    return None if failed else rewritten


def _push_into(child: Box, predicate: ast.Expr, quantifier) -> bool:
    """Try to sink one predicate into ``child``; True when it moved."""
    if isinstance(child, SelectBox):
        # Only useful for DISTINCT children (plain SPJ children are merged
        # by merge_spj_boxes); but pushing is correct either way.
        rewritten = _rewrite_to_outputs(predicate, quantifier, child.outputs)
        if rewritten is None:
            return False
        child.predicates.append(rewritten)
        return True
    if isinstance(child, GroupByBox):
        # Legal only over grouping columns; translate two levels down into
        # the GroupBy's input box when that is an SPJ.
        grouped = {
            o.name: o.expr
            for o in child.outputs
            if not isinstance(o.expr, ast.AggregateCall)
        }
        refs = [
            n for n in walk_expr(predicate)
            if isinstance(n, ColumnRef) and n.quantifier is quantifier
        ]
        if not all(r.column in grouped for r in refs):
            return False
        gq_level = _rewrite_to_outputs(predicate, quantifier, child.outputs)
        if gq_level is None:
            return False
        input_box = child.quantifier.box
        if not isinstance(input_box, SelectBox) or input_box.distinct:
            return False
        pushed = _rewrite_to_outputs(gq_level, child.quantifier, input_box.outputs)
        if pushed is None:
            return False
        input_box.predicates.append(pushed)
        return True
    if isinstance(child, SetOpBox):
        names = child.output_names()
        rewritten_per_arm = []
        for q in child.quantifiers:
            arm = q.box
            if not isinstance(arm, SelectBox):
                return False
            arm_outputs = [
                OutputColumn(name, arm.outputs[i].expr)
                for i, name in enumerate(names)
            ]
            rewritten = _rewrite_to_outputs(predicate, quantifier, arm_outputs)
            if rewritten is None:
                return False
            rewritten_per_arm.append((arm, rewritten))
        for arm, rewritten in rewritten_per_arm:
            arm.predicates.append(rewritten)
        return True
    return False


def push_down_predicates(graph: QueryGraph) -> bool:
    """One pass of predicate pushdown; True when anything moved."""
    from ..qgm.analysis import iter_boxes

    changed = False
    parents = parent_edges(graph.root)
    for box in list(iter_boxes(graph.root)):
        if not isinstance(box, SelectBox):
            continue
        for predicate in list(box.predicates):
            quantifier = _single_quantifier_pred(box, predicate)
            if quantifier is None:
                continue
            child = quantifier.box
            if len(parents.get(child.id, [])) != 1:
                continue  # shared boxes must not grow per-parent filters
            worth_it = (
                (isinstance(child, SelectBox) and child.distinct)
                or isinstance(child, (GroupByBox, SetOpBox))
            )
            if not worth_it:
                continue
            if _push_into(child, predicate, quantifier):
                box.predicates.remove(predicate)
                changed = True
    return changed
