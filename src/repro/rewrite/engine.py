"""The rewrite engine: strategy dispatch with invariant checking.

The paper's section-3 contract is that "each rule application should leave
the QGM in a consistent state, because the query rewrite phase may be
terminated at any point". :class:`RewriteEngine` enforces it: with
validation enabled (``RewriteEngine(validate=True)`` or the
``REPRO_VALIDATE`` environment variable) the full consistency validator
*and* every registered lint rule run after the initial bind and after every
individual rewrite step, via the strategies' ``on_step`` hooks. An
error-level finding aborts the rewrite with a
:class:`~repro.errors.QGMConsistencyError` naming the offending step.

Without validation only the (cheap) whole-graph consistency check runs
before and after the rewrite -- the engine's historical behaviour.

Strategies are dispatched by their string value (``"kim"``, ``"magic"``,
...) so this module does not import the ``Strategy`` enum from
``repro.api`` (which itself imports the rewrite package).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Callable, Optional, TYPE_CHECKING

from ..errors import FaultInjectedError, QGMConsistencyError, RewriteError
from ..qgm.analysis import iter_boxes
from ..qgm.model import QueryGraph
from ..qgm.validate import validate_graph
from ..storage.catalog import Catalog

if TYPE_CHECKING:  # pragma: no cover - import cycle avoidance
    from ..faults import FaultRegistry
    from ..trace import Tracer


def _box_ids(graph: QueryGraph) -> frozenset[int]:
    return frozenset(box.id for box in iter_boxes(graph.root))

StepHook = Callable[[str, QueryGraph], None]

#: The graceful-degradation order: whatever was requested, then magic (the
#: paper's general method), then nested iteration (always applicable --
#: "guarantees an answer whenever NI can produce one").
FALLBACK_CHAIN: tuple[str, ...] = ("magic", "ni")


@dataclass(frozen=True)
class DegradationEvent:
    """One step down the strategy fallback chain.

    Recorded on the query result whenever a requested strategy (or a
    fallback) failed and the engine moved on to the next strategy in
    :data:`FALLBACK_CHAIN`.
    """

    requested: str   # the strategy the caller asked for
    attempted: str   # the strategy that failed here
    fallback: str    # the strategy tried next ("" when the chain ran out)
    error_type: str  # class name of the error that triggered the step
    message: str     # its message

    def __str__(self) -> str:  # pragma: no cover - display helper
        target = self.fallback or "<none>"
        return (
            f"degraded {self.attempted!r} -> {target!r} "
            f"[{self.error_type}]: {self.message}"
        )


def env_validate_default() -> bool:
    """The process-wide default: ``REPRO_VALIDATE`` set to anything but
    ``0``/empty turns per-step validation on."""
    return os.environ.get("REPRO_VALIDATE", "") not in ("", "0")


class RewriteEngine:
    """Applies a decorrelation strategy to a bound graph, with checking."""

    def __init__(
        self,
        catalog: Catalog,
        validate: Optional[bool] = None,
        on_step: Optional[StepHook] = None,
        faults: Optional["FaultRegistry"] = None,
        events=None,
    ):
        self.catalog = catalog
        self.validate = env_validate_default() if validate is None else validate
        self._user_hook = on_step
        #: Deterministic fault-injection registry (site "rewrite.strategy").
        self.faults = faults
        #: Optional :class:`repro.obs.events.EventLog`: every step down the
        #: fallback chain emits a ``query.degraded`` event. ``None`` adds
        #: no overhead.
        self.events = events
        #: Step descriptions recorded during the most recent rewrite.
        self.steps: list[str] = []
        #: Active span collector (set for the duration of a traced rewrite).
        self._tracer: Optional["Tracer"] = None
        self._trace_mark = 0.0
        self._trace_boxes: frozenset[int] = frozenset()

    # -- invariant checking ----------------------------------------------------

    def check(self, graph: QueryGraph, context: str) -> None:
        """Run the validator plus all lint rules; raise on any error-level
        finding, naming the rewrite step that produced the bad graph."""
        from ..analyze.diagnostics import Severity
        from ..analyze.lint import lint_graph

        errors = [
            d for d in lint_graph(graph, self.catalog)
            if d.severity is Severity.ERROR
        ]
        if errors:
            details = "; ".join(d.message for d in errors)
            raise QGMConsistencyError(
                f"rewrite invariant violated after {context}: {details}"
            )

    def _hook(self, description: str, graph: QueryGraph) -> None:
        self.steps.append(description)
        tracer = self._tracer
        if tracer is not None:
            # The hook fires *after* the step ran, so the span is recorded
            # pre-measured: elapsed is the time since the previous step's
            # hook (or rewrite start), the attrs the box-id delta.
            now = tracer.now()
            box_ids = _box_ids(graph)
            attrs: dict = {}
            created = sorted(box_ids - self._trace_boxes)
            removed = sorted(self._trace_boxes - box_ids)
            if created:
                attrs["boxes_created"] = created
            if removed:
                attrs["boxes_removed"] = removed
            tracer.record(
                ("rewrite-step", len(self.steps) - 1), description,
                "rewrite-step", elapsed=now - self._trace_mark, attrs=attrs,
            )
            self._trace_boxes = box_ids
        if self.validate:
            self.check(graph, f"step {description!r}")
        if self._user_hook is not None:
            self._user_hook(description, graph)
        if tracer is not None:
            # Reset the mark after validation/user hooks so their cost is
            # not attributed to the next rewrite step.
            self._trace_mark = tracer.now()

    # -- dispatch ---------------------------------------------------------------

    def rewrite(
        self,
        graph: QueryGraph,
        strategy,
        decorrelate_existential: bool = True,
        tracer: Optional["Tracer"] = None,
    ) -> QueryGraph:
        """Apply ``strategy`` (a ``Strategy`` enum member or its string
        value) to ``graph``, validating per the engine's configuration.

        ``tracer`` (a :class:`repro.trace.Tracer`) collects one span per
        rewrite plus one child span per FEED/ABSORB step, each carrying
        its elapsed time and the box ids it created or removed --
        replayable as a timeline and exportable as JSON. ``None`` (the
        default) adds no overhead."""
        key = getattr(strategy, "value", strategy)
        if tracer is None:
            return self._rewrite_inner(graph, key, decorrelate_existential)
        frame = tracer.begin(("rewrite", key), f"rewrite {key}", "rewrite")
        self._tracer = tracer
        self._trace_mark = tracer.now()
        self._trace_boxes = _box_ids(graph)
        try:
            result = self._rewrite_inner(graph, key, decorrelate_existential)
            frame.span.attrs["steps"] = len(self.steps)
            return result
        finally:
            self._tracer = None
            tracer.end(frame)

    def _rewrite_inner(
        self, graph: QueryGraph, key: str, decorrelate_existential: bool
    ) -> QueryGraph:
        from . import decorrelate

        self.steps = []
        if self.validate:
            self.check(graph, "bind")
        else:
            validate_graph(graph, self.catalog)
        if self.faults is not None:
            self.faults.trigger("rewrite.strategy", detail=key)

        if key == "ni":
            result = graph
        elif key == "kim":
            result = decorrelate.apply_kim(
                graph, self.catalog, on_step=self._hook
            )
        elif key == "dayal":
            result = decorrelate.apply_dayal(
                graph, self.catalog, on_step=self._hook
            )
        elif key == "ganski_wong":
            result = decorrelate.apply_ganski_wong(
                graph, self.catalog, on_step=self._hook
            )
        elif key in ("magic", "magic_opt"):
            result = decorrelate.apply_magic(
                graph, self.catalog,
                optimize_keys=(key == "magic_opt"),
                decorrelate_existential=decorrelate_existential,
                on_step=self._hook,
            )
        else:
            raise RewriteError(f"unknown strategy {key!r}")

        if self.validate:
            self.check(result, "final rewrite")
        else:
            validate_graph(result, self.catalog)
        return result

    # -- graceful degradation ---------------------------------------------------

    def _record_degradation(
        self, events: list[DegradationEvent], event: DegradationEvent
    ) -> None:
        events.append(event)
        if self.events is not None:
            self.events.emit(
                "query.degraded",
                requested=event.requested,
                attempted=event.attempted,
                fallback=event.fallback,
                error_type=event.error_type,
                message=event.message,
            )

    def rewrite_with_fallback(
        self,
        build: Callable[[], QueryGraph],
        strategy,
        decorrelate_existential: bool = True,
        disabled: Optional[Callable[[str], Optional[str]]] = None,
        tracer: Optional["Tracer"] = None,
    ) -> tuple[QueryGraph, list[DegradationEvent]]:
        """Apply ``strategy``, degrading along :data:`FALLBACK_CHAIN` on
        failure.

        ``build`` constructs a *fresh* bound graph -- rewrites mutate their
        input, so every attempt needs its own graph. Strategy-specific
        failures (:class:`~repro.errors.RewriteError` including
        ``NotApplicableError``, rewrite invariant violations, and injected
        rewrite faults) each append a :class:`DegradationEvent`; the chain
        ends at nested iteration, which is always applicable, so an answer
        is guaranteed whenever NI itself can produce one. If even the last
        strategy fails, the final error propagates (with the full event log
        available on ``self.degradations``).

        ``disabled`` lets a caller veto chain entries without paying for
        the rewrite attempt at all: it receives each strategy key before
        ``build()`` runs and returns a human-readable reason to skip it
        (or ``None`` to proceed). A skip is recorded as a
        :class:`DegradationEvent` with ``error_type="CircuitBreakerOpen"``
        -- this is how the query service's per-strategy circuit breakers
        degrade straight down the chain while a strategy is quarantined.
        If every chain entry is vetoed, a :class:`~repro.errors.RewriteError`
        summarising the reasons is raised.
        """
        requested = getattr(strategy, "value", strategy)
        chain = [requested]
        chain.extend(k for k in FALLBACK_CHAIN if k not in chain)
        events: list[DegradationEvent] = []
        #: The most recent fallback log (also returned), kept on the engine
        #: so failures that propagate can still be diagnosed.
        self.degradations = events
        for position, key in enumerate(chain):
            if disabled is not None:
                reason = disabled(key)
                if reason:
                    fallback = (
                        chain[position + 1] if position + 1 < len(chain) else ""
                    )
                    self._record_degradation(
                        events,
                        DegradationEvent(
                            requested=requested,
                            attempted=key,
                            fallback=fallback,
                            error_type="CircuitBreakerOpen",
                            message=reason,
                        ),
                    )
                    if not fallback:
                        raise RewriteError(
                            "no strategy available: "
                            + "; ".join(
                                f"{e.attempted}: {e.message}" for e in events
                            )
                        )
                    continue
            try:
                graph = self.rewrite(
                    build(), key,
                    decorrelate_existential=decorrelate_existential,
                    tracer=tracer,
                )
                return graph, events
            except (RewriteError, QGMConsistencyError, FaultInjectedError) as exc:
                fallback = (
                    chain[position + 1] if position + 1 < len(chain) else ""
                )
                self._record_degradation(
                    events,
                    DegradationEvent(
                        requested=requested,
                        attempted=key,
                        fallback=fallback,
                        error_type=type(exc).__name__,
                        message=str(exc),
                    ),
                )
                if not fallback:
                    raise
        raise RewriteError("empty fallback chain")  # pragma: no cover
