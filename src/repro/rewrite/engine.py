"""The rewrite engine: strategy dispatch with invariant checking.

The paper's section-3 contract is that "each rule application should leave
the QGM in a consistent state, because the query rewrite phase may be
terminated at any point". :class:`RewriteEngine` enforces it: with
validation enabled (``RewriteEngine(validate=True)`` or the
``REPRO_VALIDATE`` environment variable) the full consistency validator
*and* every registered lint rule run after the initial bind and after every
individual rewrite step, via the strategies' ``on_step`` hooks. An
error-level finding aborts the rewrite with a
:class:`~repro.errors.QGMConsistencyError` naming the offending step.

Without validation only the (cheap) whole-graph consistency check runs
before and after the rewrite -- the engine's historical behaviour.

Strategies are dispatched by their string value (``"kim"``, ``"magic"``,
...) so this module does not import the ``Strategy`` enum from
``repro.api`` (which itself imports the rewrite package).
"""

from __future__ import annotations

import os
from typing import Callable, Optional

from ..errors import QGMConsistencyError, RewriteError
from ..qgm.model import QueryGraph
from ..qgm.validate import validate_graph
from ..storage.catalog import Catalog

StepHook = Callable[[str, QueryGraph], None]


def env_validate_default() -> bool:
    """The process-wide default: ``REPRO_VALIDATE`` set to anything but
    ``0``/empty turns per-step validation on."""
    return os.environ.get("REPRO_VALIDATE", "") not in ("", "0")


class RewriteEngine:
    """Applies a decorrelation strategy to a bound graph, with checking."""

    def __init__(
        self,
        catalog: Catalog,
        validate: Optional[bool] = None,
        on_step: Optional[StepHook] = None,
    ):
        self.catalog = catalog
        self.validate = env_validate_default() if validate is None else validate
        self._user_hook = on_step
        #: Step descriptions recorded during the most recent rewrite.
        self.steps: list[str] = []

    # -- invariant checking ----------------------------------------------------

    def check(self, graph: QueryGraph, context: str) -> None:
        """Run the validator plus all lint rules; raise on any error-level
        finding, naming the rewrite step that produced the bad graph."""
        from ..analyze.diagnostics import Severity
        from ..analyze.lint import lint_graph

        errors = [
            d for d in lint_graph(graph, self.catalog)
            if d.severity is Severity.ERROR
        ]
        if errors:
            details = "; ".join(d.message for d in errors)
            raise QGMConsistencyError(
                f"rewrite invariant violated after {context}: {details}"
            )

    def _hook(self, description: str, graph: QueryGraph) -> None:
        self.steps.append(description)
        if self.validate:
            self.check(graph, f"step {description!r}")
        if self._user_hook is not None:
            self._user_hook(description, graph)

    # -- dispatch ---------------------------------------------------------------

    def rewrite(
        self,
        graph: QueryGraph,
        strategy,
        decorrelate_existential: bool = True,
    ) -> QueryGraph:
        """Apply ``strategy`` (a ``Strategy`` enum member or its string
        value) to ``graph``, validating per the engine's configuration."""
        from . import decorrelate

        key = getattr(strategy, "value", strategy)
        self.steps = []
        if self.validate:
            self.check(graph, "bind")
        else:
            validate_graph(graph, self.catalog)

        if key == "ni":
            result = graph
        elif key == "kim":
            result = decorrelate.apply_kim(
                graph, self.catalog, on_step=self._hook
            )
        elif key == "dayal":
            result = decorrelate.apply_dayal(
                graph, self.catalog, on_step=self._hook
            )
        elif key == "ganski_wong":
            result = decorrelate.apply_ganski_wong(
                graph, self.catalog, on_step=self._hook
            )
        elif key in ("magic", "magic_opt"):
            result = decorrelate.apply_magic(
                graph, self.catalog,
                optimize_keys=(key == "magic_opt"),
                decorrelate_existential=decorrelate_existential,
                on_step=self._hook,
            )
        else:
            raise RewriteError(f"unknown strategy {key!r}")

        if self.validate:
            self.check(result, "final rewrite")
        else:
            validate_graph(result, self.catalog)
        return result
