"""Query rewrite: Starburst-style cleanup rules plus the decorrelation
strategies compared in the paper (Kim, Dayal, Ganski/Wong, magic)."""

from . import decorrelate
from .cleanup import merge_spj_boxes, remove_trivial_selects, run_cleanup
from .engine import RewriteEngine, env_validate_default
from .pushdown import push_down_predicates

__all__ = [
    "decorrelate",
    "merge_spj_boxes",
    "remove_trivial_selects",
    "push_down_predicates",
    "run_cleanup",
    "RewriteEngine",
    "env_validate_default",
]
