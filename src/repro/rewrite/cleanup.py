"""Starburst-style cleanup rewrite rules.

The paper repeatedly leans on "existing rewrite rules that merge query
blocks" to simplify the graphs its decorrelation steps produce (merging the
CI box into the CurBox, removing redundant DCO boxes -- Figures 3[d], 4[d]).
These are those rules:

* :func:`merge_spj_boxes` -- merge a single-parent, non-DISTINCT SPJ child
  into an SPJ parent (predicates concatenated, output expressions inlined);
* :func:`remove_trivial_selects` -- bypass pure-projection SPJ boxes under
  any parent kind.

Both preserve QGM consistency at every application, as section 3 requires.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..qgm.analysis import (
    external_column_refs,
    iter_boxes,
    parent_edges,
    rewrite_subtree_refs,
)
from ..qgm.expr import (
    BOX_SUBQUERY_TYPES,
    ColumnRef,
    walk_expr,
)
from ..qgm.model import Box, QueryGraph, SelectBox


def _single_parent(root: Box, child: Box) -> bool:
    parents = parent_edges(root)
    return len(parents.get(child.id, [])) == 1


def _has_subquery_outputs(box: SelectBox) -> bool:
    return any(
        isinstance(node, BOX_SUBQUERY_TYPES)
        for output in box.outputs
        for node in walk_expr(output.expr)
    )


def merge_spj_boxes(graph: QueryGraph) -> bool:
    """One pass of SPJ-into-SPJ merging; returns True when anything merged."""
    changed = False
    for parent in list(iter_boxes(graph.root)):
        if not isinstance(parent, SelectBox):
            continue
        for q in list(parent.quantifiers):
            child = q.box
            if not isinstance(child, SelectBox):
                continue
            if child.distinct or _has_subquery_outputs(child):
                continue
            if not _single_parent(graph.root, child):
                continue
            # Never merge an uncorrelated child into a correlated parent:
            # the child is a materialise-once boundary (the decorrelated
            # subquery probed by a CI box) and merging would re-correlate it.
            if not external_column_refs(child) and external_column_refs(parent):
                continue
            _merge_child(graph, parent, q, child)
            changed = True
    return changed


def _merge_child(graph: QueryGraph, parent: SelectBox, q, child: SelectBox) -> None:
    output_exprs = {output.name: output.expr for output in child.outputs}

    def substitute(ref: ColumnRef):
        if ref.quantifier is q:
            return output_exprs[ref.column]
        return None

    rewrite_subtree_refs(parent, substitute)
    position = parent.quantifiers.index(q)
    parent.quantifiers[position : position + 1] = child.quantifiers
    parent.predicates.extend(child.predicates)


def remove_trivial_selects(graph: QueryGraph) -> bool:
    """Bypass SPJ boxes that only rename/project a single input."""
    changed = False
    for owner in list(iter_boxes(graph.root)):
        for q in owner.child_quantifiers():
            child = q.box
            if not isinstance(child, SelectBox):
                continue
            if child.distinct or child.predicates or len(child.quantifiers) != 1:
                continue
            if not all(
                isinstance(output.expr, ColumnRef)
                and output.expr.quantifier is child.quantifiers[0]
                for output in child.outputs
            ):
                continue
            if not _single_parent(graph.root, child):
                continue
            column_map = {
                output.name: output.expr.column for output in child.outputs
            }
            grandchild = child.quantifiers[0].box

            def substitute(ref: ColumnRef):
                if ref.quantifier is q:
                    return ColumnRef(q, column_map[ref.column])
                return None

            rewrite_subtree_refs(owner, substitute)
            q.box = grandchild
            changed = True
    return changed


def run_cleanup(
    graph: QueryGraph,
    on_step: Optional[Callable[[str, QueryGraph], None]] = None,
    max_rounds: int = 32,
) -> QueryGraph:
    """Run cleanup rules to fixpoint (bounded); returns the same graph."""
    from .pushdown import push_down_predicates

    for _ in range(max_rounds):
        changed = merge_spj_boxes(graph)
        if on_step is not None and changed:
            on_step("merge_spj", graph)
        removed = remove_trivial_selects(graph)
        if on_step is not None and removed:
            on_step("remove_trivial", graph)
        pushed = push_down_predicates(graph)
        if on_step is not None and pushed:
            on_step("push_down_predicates", graph)
        if not (changed or removed or pushed):
            break
    return graph
