"""Exception hierarchy for the repro engine.

All engine errors derive from :class:`ReproError` so applications can catch
one base class. The hierarchy mirrors the pipeline stages: lexing/parsing,
semantic analysis (QGM construction), rewriting, planning and execution.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle avoidance
    from .sql.ast import Span


class ReproError(Exception):
    """Base class for all errors raised by the repro engine."""


class SQLError(ReproError):
    """Base class for errors in the SQL front-end."""


class LexError(SQLError):
    """Raised when the lexer encounters an invalid character sequence."""

    def __init__(self, message: str, position: int, line: int, column: int):
        super().__init__(f"{message} (line {line}, column {column})")
        self.position = position
        self.line = line
        self.column = column


class ParseError(SQLError):
    """Raised when the parser cannot derive a statement from the token stream.

    ``span`` carries the offending token's source range when the parser
    constructed the error (it always does); errors raised from other places
    may leave it ``None``. The formatted message already contains the
    location either way.
    """

    def __init__(self, message: str, span: Optional["Span"] = None):
        super().__init__(message)
        self.span = span


class CatalogError(ReproError):
    """Raised for catalog problems: unknown/duplicate tables, columns, indexes."""


class SchemaError(ReproError):
    """Raised for schema violations: arity mismatch, bad types, key violations."""


class BindError(ReproError):
    """Raised during AST -> QGM building when a name cannot be resolved or is
    ambiguous, or when a construct is used in an invalid context.

    When the offending AST node carries a source span (stamped by the
    parser), the binder threads it through so binder errors point at the
    same location the diagnostics framework reports.
    """

    def __init__(self, message: str, span: Optional["Span"] = None):
        if span is not None:
            message = f"{message} ({span.location()})"
        super().__init__(message)
        self.span = span


class QGMConsistencyError(ReproError):
    """Raised by the QGM validator when a graph invariant is broken.

    The paper (section 3) requires every rewrite rule application to leave the
    QGM consistent; the validator enforces that contract in tests.
    """


class RewriteError(ReproError):
    """Raised when a rewrite rule fails in an unexpected way."""


class NotApplicableError(RewriteError):
    """Raised when a decorrelation method cannot be applied to a query.

    Kim's and Dayal's methods only handle restricted query shapes (section 2);
    this error carries the human-readable reason used in benchmark reports.
    """

    def __init__(self, method: str, reason: str):
        super().__init__(f"{method} is not applicable: {reason}")
        self.method = method
        self.reason = reason


class PlanError(ReproError):
    """Raised when the planner cannot produce a physical plan."""


class ExecutionError(ReproError):
    """Raised at runtime, e.g. a scalar subquery returning more than one row."""


class TraceError(ReproError):
    """Raised for malformed trace payloads (:mod:`repro.trace` schema)."""


class EventLogError(ReproError):
    """Raised for malformed event streams (:mod:`repro.obs.events` schema)
    and misconfigured event-log components (bad sink, bad capacity)."""


class HistoryError(ReproError):
    """Raised for malformed benchmark-history records
    (:mod:`repro.bench.history` schema) and bench-compare configuration
    problems (missing baseline, unknown metric)."""


class GuardrailError(ExecutionError):
    """Base class for execution-governance trips (budgets, cancellation).

    ``metrics`` carries a snapshot of the work counters at trip time so
    callers can see exactly how much work the query had done when the
    guardrail fired.
    """

    def __init__(self, message: str, metrics=None):
        super().__init__(message)
        self.metrics = metrics


class BudgetExceeded(GuardrailError):
    """Raised when a query exceeds a configured resource budget.

    ``budget`` names the limit that tripped (``"timeout"``,
    ``"max_rows_scanned"``, ``"max_rows_materialized"``,
    ``"max_subquery_invocations"``); ``limit`` and ``observed`` are the
    configured bound and the value that exceeded it.
    """

    def __init__(self, budget: str, limit, observed, metrics=None):
        super().__init__(
            f"budget {budget!r} exceeded: observed {observed} > limit {limit}",
            metrics,
        )
        self.budget = budget
        self.limit = limit
        self.observed = observed


class QueryCancelled(GuardrailError):
    """Raised when a query observes a cooperative cancellation request."""

    def __init__(self, reason: str = "query cancelled", metrics=None):
        super().__init__(reason, metrics)
        self.reason = reason


class QueryShed(ReproError):
    """Raised on a ticket that was admitted but then *shed* from the wait
    queue to make room for a strictly higher-priority arrival.

    Shedding is the overload-control counterpart of admission rejection:
    the ticket held a queue slot, never ran, and resolves with this typed
    error instead of burning a worker. ``priority`` is the shed ticket's
    class; ``retry_after_hint`` (when available) estimates how long the
    client should back off before resubmitting.
    """

    def __init__(
        self,
        priority: str,
        queue_depth: int,
        retry_after_hint: Optional[float] = None,
    ):
        hint = (
            f", retry after ~{retry_after_hint * 1000:.1f}ms"
            if retry_after_hint is not None
            else ""
        )
        super().__init__(
            f"query shed from queue (priority {priority!r}, depth "
            f"{queue_depth}) for higher-priority work{hint}"
        )
        self.priority = priority
        self.queue_depth = queue_depth
        self.retry_after_hint = retry_after_hint


class AdmissionRejected(ReproError):
    """Raised by the query service when a submission cannot be admitted.

    Admission control bounds the service's wait queue: rather than letting
    submissions pile up without bound, overflow fails fast with this typed
    error. ``queue_depth``/``max_queue`` describe the wait queue at
    rejection time, ``in_flight`` the number of queries then executing;
    ``reason`` is ``"queue full"`` or ``"service closed"`` -- or, with
    adaptive overload control on, ``"deadline unmeetable"`` (the learned
    service time for the query's shape cannot fit inside its deadline
    given the current queue), ``"class quota"`` (the priority class's
    queue share is exhausted), or ``"retry storm"`` (a non-compliant
    resubmission arrived with the retry token bucket dry).

    ``retry_after_hint`` is the service's estimate, in seconds, of how
    long the client should back off before resubmitting (``None`` when
    retrying cannot help, e.g. the service is closed). Clients honouring
    the hint avoid the hot-loop resubmission storm a blind
    reject-and-retry produces.
    """

    def __init__(
        self,
        reason: str,
        queue_depth: int,
        max_queue: int,
        in_flight: int = 0,
        retry_after_hint: Optional[float] = None,
    ):
        hint = (
            f", retry after ~{retry_after_hint * 1000:.1f}ms"
            if retry_after_hint is not None
            else ""
        )
        super().__init__(
            f"admission rejected ({reason}): queue depth {queue_depth}"
            f"/{max_queue}, {in_flight} in flight{hint}"
        )
        self.reason = reason
        self.queue_depth = queue_depth
        self.max_queue = max_queue
        self.in_flight = in_flight
        self.retry_after_hint = retry_after_hint


class WorkerError(ExecutionError):
    """Base class for errors of the real shared-nothing executor
    (:mod:`repro.parallel.workers`)."""


class WorkerTaskError(WorkerError):
    """A single task failed terminally on a worker: its retry budget is
    exhausted (``attempts`` made) or the worker reported a non-retryable
    error. ``task_id`` names the plan fragment."""

    def __init__(self, task_id: str, attempts: int, message: str):
        super().__init__(
            f"worker task {task_id!r} failed after {attempts} attempt(s): "
            f"{message}"
        )
        self.task_id = task_id
        self.attempts = attempts


class WorkerPoolError(WorkerError):
    """The worker pool itself is unhealthy: too few live workers remain to
    host every partition, or the pool was asked to run after :meth:`close`.
    ``live``/``requested`` describe pool membership at failure time."""

    def __init__(self, message: str, live: int = 0, requested: int = 0):
        super().__init__(message)
        self.live = live
        self.requested = requested


class FaultInjectedError(ReproError):
    """Raised by a deterministic fault-injection point (``REPRO_FAULTS``).

    ``site`` is the injection-point name, ``sequence`` the per-site trigger
    ordinal at which the fault fired -- together with the registry seed they
    identify the fault exactly, making every injected failure reproducible.
    """

    def __init__(self, site: str, sequence: int, detail: str = ""):
        suffix = f" ({detail})" if detail else ""
        super().__init__(
            f"injected fault at {site!r} (trigger #{sequence}){suffix}"
        )
        self.site = site
        self.sequence = sequence
        self.detail = detail
