"""Execution guardrails: resource budgets and cooperative cancellation.

Section 6 of the paper shows how nested iteration can silently turn into
O(n^2) work; a production-shaped engine must be able to *bound* that work
rather than discover it after the fact. :class:`Limits` declares budgets
(wall-clock, rows scanned, rows materialized, subquery invocations);
:class:`ExecutionGuard` enforces them cooperatively -- the executor calls
:meth:`ExecutionGuard.check` at step granularity, so a trip is observed
within one executor step of the limit being crossed.

Budgets trip as typed errors (:class:`~repro.errors.BudgetExceeded`,
:class:`~repro.errors.QueryCancelled`) carrying a snapshot of the
:class:`~repro.exec.metrics.Metrics` at trip time.

The default (``limits=None``) is zero-overhead: no guard object exists and
the executor's fast path performs a single ``is None`` test per step.
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass
from typing import Callable, Optional

from .errors import BudgetExceeded, QueryCancelled
from .exec.metrics import Metrics


@dataclass(frozen=True)
class Limits:
    """Resource budgets for one query execution. ``None`` = unlimited.

    ``timeout`` is wall-clock seconds; the row budgets bound the engine's
    own work counters (see :class:`~repro.exec.metrics.Metrics`).
    """

    timeout: Optional[float] = None
    max_rows_scanned: Optional[int] = None
    max_rows_materialized: Optional[int] = None
    max_subquery_invocations: Optional[int] = None

    def any_set(self) -> bool:
        """Is at least one budget configured?"""
        return any(
            value is not None for value in dataclasses.asdict(self).values()
        )


class ExecutionGuard:
    """Cooperative budget checker threaded through the executor.

    The guard holds the :class:`Limits` plus a reference to the live
    ``Metrics`` being accumulated (attached by the execution context).
    ``check()`` raises :class:`~repro.errors.BudgetExceeded` when any
    counter passed its budget, or :class:`~repro.errors.QueryCancelled`
    after :meth:`cancel` was called (e.g. from another thread).

    ``clock`` is injectable for deterministic timeout tests.

    Concurrency contract: :meth:`cancel` is safe to call from any thread
    and is the *only* cross-thread entry point -- it flips a single boolean
    flag (an atomic store under the GIL), which the executing thread
    observes at its next :meth:`check`, i.e. within one executor step.
    The deadline is fixed at construction time (``clock() + timeout``), so
    a guard built when a query is *submitted* to a service charges queue
    wait time against the deadline too; everything else on the guard is
    owned by the executing thread.
    """

    def __init__(
        self,
        limits: Limits,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.limits = limits
        self.metrics = None
        self._clock = clock
        self._deadline: Optional[float] = (
            None if limits.timeout is None else clock() + limits.timeout
        )
        self._cancelled = False
        #: The error this guard tripped with, if any (set by ``check``).
        self.tripped = None
        #: Optional :class:`repro.obs.events.EventLog`: a budget trip emits
        #: a ``guard.budget_exceeded`` event (attributed to the executing
        #: thread's query scope). ``None`` adds no overhead.
        self.events = None

    # -- wiring ------------------------------------------------------------

    def attach(self, metrics) -> None:
        """Bind the live metrics object counters are read from."""
        self.metrics = metrics

    def absorb(self, delta: Optional[Metrics]) -> None:
        """Fold a remote worker's :class:`Metrics` delta into the attached
        metrics and re-check every budget.

        The real shared-nothing executor accumulates work on *worker
        processes*; the coordinator's guard only learns about it when a
        result message arrives. ``absorb`` merges the delta with
        ``Metrics.__add__`` (sums for counters, max for peaks) while
        keeping the attached object's identity -- anything else holding a
        reference to it (an execution context, a stats exporter) sees the
        merged totals -- then runs :meth:`check` so a budget crossed by
        remote work trips within one exchange round.
        """
        if delta is None:
            return
        if self.metrics is None:
            self.attach(Metrics())
        merged = self.metrics + delta
        for field in dataclasses.fields(merged):
            setattr(self.metrics, field.name, getattr(merged, field.name))
        self.check()

    def cancel(self) -> None:
        """Request cooperative cancellation; the running query observes it
        at its next ``check()`` (one executor step at most)."""
        self._cancelled = True

    @property
    def cancelled(self) -> bool:
        """Has cancellation been requested?"""
        return self._cancelled

    def remaining(self) -> Optional[float]:
        """Seconds until the deadline (``None`` when no timeout is set;
        never negative). Service schedulers use this for queue triage."""
        if self._deadline is None:
            return None
        return max(0.0, self._deadline - self._clock())

    @property
    def deadline(self) -> Optional[float]:
        """The absolute deadline on this guard's clock (``None`` when no
        timeout is set). Fixed at construction -- see the class doc."""
        return self._deadline

    def expired(self) -> bool:
        """Has the deadline passed (without raising)?

        The same comparison :meth:`check` trips on, exposed as a
        predicate so the query service can *eagerly* evict tickets that
        expired while queued -- freeing the slot without a worker dequeue
        and without consuming the guard's trip state.
        """
        return self._deadline is not None and self._clock() > self._deadline

    # -- enforcement -------------------------------------------------------

    def _snapshot(self):
        if self.metrics is None:
            # Tripped before execution began (cancelled or expired while
            # queued): an all-zero snapshot, meaning "no work was done".
            return Metrics()
        return dataclasses.replace(self.metrics)

    def _trip(self, error) -> None:
        self.tripped = error
        if self.events is not None and isinstance(error, BudgetExceeded):
            self.events.emit(
                "guard.budget_exceeded",
                budget=error.budget,
                limit=error.limit,
                observed=error.observed,
            )
        raise error

    def check(self) -> None:
        """Raise the appropriate typed error if any budget is exhausted.

        Called by the executor at step granularity; cheap when nothing
        tripped (a handful of compares).
        """
        if self._cancelled:
            self._trip(QueryCancelled(metrics=self._snapshot()))
        if self._deadline is not None and self._clock() > self._deadline:
            self._trip(
                BudgetExceeded(
                    "timeout",
                    self.limits.timeout,
                    round(
                        self._clock() - (self._deadline - self.limits.timeout), 6
                    ),
                    metrics=self._snapshot(),
                )
            )
        metrics = self.metrics
        if metrics is None:
            return
        limits = self.limits
        if (
            limits.max_rows_scanned is not None
            and metrics.rows_scanned > limits.max_rows_scanned
        ):
            self._trip(
                BudgetExceeded(
                    "max_rows_scanned",
                    limits.max_rows_scanned,
                    metrics.rows_scanned,
                    metrics=self._snapshot(),
                )
            )
        if (
            limits.max_rows_materialized is not None
            and metrics.peak_rows_materialized > limits.max_rows_materialized
        ):
            # The budget bounds *memory*: the high-water mark of live
            # materialised rows, not the cumulative write count (a query
            # that builds and frees ten small hash tables should not trip
            # a budget sized for its largest one).
            self._trip(
                BudgetExceeded(
                    "max_rows_materialized",
                    limits.max_rows_materialized,
                    metrics.peak_rows_materialized,
                    metrics=self._snapshot(),
                )
            )
        if (
            limits.max_subquery_invocations is not None
            and metrics.subquery_invocations > limits.max_subquery_invocations
        ):
            self._trip(
                BudgetExceeded(
                    "max_subquery_invocations",
                    limits.max_subquery_invocations,
                    metrics.subquery_invocations,
                    metrics=self._snapshot(),
                )
            )


def guard_for(
    limits: Optional[Limits],
    clock: Callable[[], float] = time.monotonic,
) -> Optional[ExecutionGuard]:
    """An :class:`ExecutionGuard` for ``limits``, or ``None`` when no limits
    were given (the zero-overhead default)."""
    if limits is None:
        return None
    return ExecutionGuard(limits, clock=clock)
