"""The span collector (see the package docstring for the model).

Spans are *aggregated*, not appended: a correlated subquery box executed
3954 times contributes one node (``calls=3954``), not 3954 nodes, so a
trace is bounded by the plan's shape, never by the data size. Identity is
the pair (parent chain, ``key``): the same plan node reached through two
different parents gets two aggregate nodes, which is exactly the tree
``EXPLAIN ANALYZE`` renders.

Metric deltas are *exclusive* ("self" time in profiler terms): a parent's
delta excludes the work its children accounted, so the per-span deltas of
a complete trace sum exactly to the whole-query ``Metrics`` totals.
``elapsed`` stays *inclusive* (wall time between begin and end), the
convention of ``EXPLAIN ANALYZE`` actual-time output.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Optional

from ..errors import TraceError
from ..exec.metrics import SUM_FIELD_NAMES, Metrics

#: Trace JSON schema version (bump on incompatible layout changes).
#: Version 2 only *adds* the cross-process span kinds (``worker``,
#: ``dispatch``), so v1 payloads still validate.
TRACE_VERSION = 2

#: Schema versions :func:`validate_trace` accepts.
ACCEPTED_TRACE_VERSIONS = frozenset((1, 2))

_N_COUNTERS = len(SUM_FIELD_NAMES)
_ZEROS = (0,) * _N_COUNTERS

#: Span kinds admitted by the schema. ``worker`` (one per worker process
#: that contributed results) and ``dispatch`` (one per (task, attempt)
#: shipped to a worker -- retries appear as sibling dispatches) are the
#: v2 cross-process kinds grafted by :class:`repro.parallel.workers.
#: WorkerPool`.
SPAN_KINDS = (
    "query", "operator", "step", "rewrite", "rewrite-step",
    "worker", "dispatch",
)

#: Installed by :func:`repro.obs.profiler.activate`: called with each new
#: Tracer so the sampling profiler can attribute the creating thread's
#: samples to the tracer's active spans. ``None`` (the default) keeps
#: tracer creation free of any profiler cost.
_PROFILER_HOOK = None


class Span:
    """One aggregate node of the span tree."""

    __slots__ = (
        "key", "name", "kind", "calls", "rows_in", "rows_out", "elapsed",
        "cache_hits", "counters", "attrs", "children", "_index",
    )

    def __init__(self, key: tuple, name: str, kind: str):
        self.key = key
        self.name = name
        self.kind = kind
        self.calls = 0
        self.rows_in = 0
        self.rows_out = 0
        self.elapsed = 0.0
        self.cache_hits = 0
        #: Exclusive deltas, aligned with ``SUM_FIELD_NAMES``.
        self.counters: tuple[int, ...] = _ZEROS
        self.attrs: dict[str, Any] = {}
        self.children: list[Span] = []
        self._index: dict[tuple, Span] = {}

    def child(self, key: tuple, name: str, kind: str) -> "Span":
        """The aggregate child span for ``key`` (created on first use)."""
        span = self._index.get(key)
        if span is None:
            span = Span(key, name, kind)
            self._index[key] = span
            self.children.append(span)
        return span

    @property
    def metrics(self) -> dict[str, int]:
        """The exclusive counter deltas as a name -> value dict."""
        return dict(zip(SUM_FIELD_NAMES, self.counters))

    def add_counters(self, delta: tuple[int, ...]) -> None:
        self.counters = tuple(a + b for a, b in zip(self.counters, delta))

    def as_dict(self) -> dict[str, Any]:
        """JSON-ready representation (see ``validate_trace`` for schema)."""
        return {
            "key": list(self.key),
            "name": self.name,
            "kind": self.kind,
            "calls": self.calls,
            "rows_in": self.rows_in,
            "rows_out": self.rows_out,
            "elapsed_s": self.elapsed,
            "cache_hits": self.cache_hits,
            "metrics": self.metrics,
            "attrs": self.attrs,
            "children": [c.as_dict() for c in self.children],
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, calls={self.calls}, "
            f"rows_out={self.rows_out}, children={len(self.children)})"
        )


class _Frame:
    """One open span on the tracer stack."""

    __slots__ = ("span", "start", "snapshot", "rows_in", "child_counters")

    def __init__(self, span: Span, start: float, snapshot, rows_in: int):
        self.span = span
        self.start = start
        self.snapshot = snapshot  # sum_values() at begin, or None
        self.rows_in = rows_in
        self.child_counters = _ZEROS  # inclusive deltas claimed by children


class OperatorStats:
    """Flattened per-key aggregate over a whole trace (all tree positions
    of one plan node merged) -- what the plan annotations display."""

    __slots__ = ("key", "name", "kind", "calls", "rows_in", "rows_out",
                 "elapsed", "cache_hits", "counters")

    def __init__(self, key: tuple, name: str, kind: str):
        self.key = key
        self.name = name
        self.kind = kind
        self.calls = 0
        self.rows_in = 0
        self.rows_out = 0
        self.elapsed = 0.0
        self.cache_hits = 0
        self.counters: tuple[int, ...] = _ZEROS

    @property
    def metrics(self) -> dict[str, int]:
        return dict(zip(SUM_FIELD_NAMES, self.counters))

    def merge(self, span: Span) -> None:
        self.calls += span.calls
        self.rows_in += span.rows_in
        self.rows_out += span.rows_out
        self.elapsed += span.elapsed
        self.cache_hits += span.cache_hits
        self.counters = tuple(
            a + b for a, b in zip(self.counters, span.counters)
        )


class Tracer:
    """Collects the span tree for one traced query (or rewrite+execution).

    Not thread-safe: one tracer belongs to one executing query, exactly
    like the ``Metrics`` object it observes. ``clock`` is injectable for
    deterministic tests and defaults to the monotonic high-resolution
    counter.
    """

    def __init__(self, clock: Callable[[], float] = time.perf_counter):
        self._clock = clock
        self._metrics: Optional[Metrics] = None
        self._stack: list[_Frame] = []
        self.roots: list[Span] = []
        self._root_index: dict[tuple, Span] = {}
        hook = _PROFILER_HOOK
        if hook is not None:
            hook(self)

    # -- wiring -------------------------------------------------------------

    def attach(self, metrics: Metrics) -> None:
        """Bind the live metrics object deltas are computed from."""
        self._metrics = metrics

    def now(self) -> float:
        """The tracer's clock -- for callers that pre-measure spans
        (:meth:`record`) and must stay on the injectable timebase."""
        return self._clock()

    def _snapshot(self):
        metrics = self._metrics
        return None if metrics is None else metrics.sum_values()

    def _node(self, key: tuple, name: str, kind: str) -> Span:
        if self._stack:
            return self._stack[-1].span.child(key, name, kind)
        span = self._root_index.get(key)
        if span is None:
            span = Span(key, name, kind)
            self._root_index[key] = span
            self.roots.append(span)
        return span

    # -- span collection ----------------------------------------------------

    def begin(
        self, key: tuple, name: str, kind: str, rows_in: int = 0
    ) -> _Frame:
        """Open a span under the current stack top; returns the frame to
        pass to :meth:`end` (always in a ``finally``)."""
        frame = _Frame(
            self._node(key, name, kind), self._clock(), self._snapshot(),
            rows_in,
        )
        self._stack.append(frame)
        return frame

    def end(self, frame: _Frame, rows_out: int = 0) -> None:
        """Close ``frame``, accumulating calls, rows, elapsed and the
        exclusive metric delta onto its aggregate span."""
        top = self._stack.pop()
        while top is not frame and self._stack:  # pragma: no cover
            # A child failed to close (exception between begin and the
            # finally); fold the orphan away rather than corrupt the tree.
            top = self._stack.pop()
        now = self._clock()
        span = frame.span
        span.calls += 1
        span.rows_in += frame.rows_in
        span.rows_out += rows_out
        span.elapsed += now - frame.start
        snapshot = self._snapshot()
        if frame.snapshot is not None and snapshot is not None:
            total = tuple(
                b - a for a, b in zip(frame.snapshot, snapshot)
            )
            span.add_counters(
                tuple(t - c for t, c in zip(total, frame.child_counters))
            )
            if self._stack:
                parent = self._stack[-1]
                parent.child_counters = tuple(
                    a + b for a, b in zip(parent.child_counters, total)
                )

    def cache_hit(self, key: tuple, name: str, kind: str) -> None:
        """Record a materialisation-cache hit on ``key`` (no timing: a
        cache read does no operator work)."""
        self._node(key, name, kind).cache_hits += 1

    def record(
        self,
        key: tuple,
        name: str,
        kind: str,
        elapsed: float = 0.0,
        attrs: Optional[dict] = None,
    ) -> Span:
        """Append a pre-measured span under the current stack top -- used
        by the rewrite engine, whose step hook fires *after* each step ran."""
        span = self._node(key, name, kind)
        span.calls += 1
        span.elapsed += elapsed
        if attrs:
            span.attrs.update(attrs)
        return span

    def active_operator_stack(self) -> list[str]:
        """The names of the currently-open operator/step spans, outermost
        first -- the sampling profiler's attribution context.

        Read racily from the sampling thread while the owning thread keeps
        executing; a torn read is at worst one mis-attributed sample (see
        :mod:`repro.obs.profiler`), so no lock is taken here.
        """
        return [
            frame.span.name
            for frame in list(self._stack)
            if frame.span.kind in ("operator", "step")
        ]

    # -- aggregation ---------------------------------------------------------

    def metric_totals(self) -> dict[str, int]:
        """Sum of the exclusive per-span deltas over the whole trace.

        For a complete trace this reproduces the query's ``Metrics``
        sum-counters exactly (the attribution invariant)."""
        totals = _ZEROS
        stack = list(self.roots)
        while stack:
            span = stack.pop()
            totals = tuple(a + b for a, b in zip(totals, span.counters))
            stack.extend(span.children)
        return dict(zip(SUM_FIELD_NAMES, totals))

    def operator_stats(self) -> dict[tuple, OperatorStats]:
        """Per-key aggregates over every tree position (insertion order)."""
        stats: dict[tuple, OperatorStats] = {}
        def visit(span: Span) -> None:
            agg = stats.get(span.key)
            if agg is None:
                agg = OperatorStats(span.key, span.name, span.kind)
                stats[span.key] = agg
            agg.merge(span)
            for child in span.children:
                visit(child)
        for root in self.roots:
            visit(root)
        return stats

    def operator_summaries(self, top: Optional[int] = None) -> list[dict]:
        """Flat per-operator dicts (largest elapsed first) for service
        trace summaries and benchmark breakdowns."""
        stats = [
            s for s in self.operator_stats().values()
            if s.kind in ("operator", "step")
        ]
        stats.sort(key=lambda s: s.elapsed, reverse=True)
        if top is not None:
            stats = stats[:top]
        return [
            {
                "key": list(s.key),
                "name": s.name,
                "kind": s.kind,
                "calls": s.calls,
                "rows_in": s.rows_in,
                "rows_out": s.rows_out,
                "elapsed_ms": round(s.elapsed * 1000, 3),
                "cache_hits": s.cache_hits,
                "metrics": {k: v for k, v in s.metrics.items() if v},
            }
            for s in stats
        ]

    # -- export --------------------------------------------------------------

    def export(
        self, sql: str = "", strategy: str = "", **attrs: Any
    ) -> dict[str, Any]:
        """The whole trace as a versioned, JSON-ready dict."""
        payload: dict[str, Any] = {
            "version": TRACE_VERSION,
            "sql": sql,
            "strategy": strategy,
            "spans": [span.as_dict() for span in self.roots],
        }
        payload.update(attrs)
        return payload


def _generic_operator_name(name: str) -> str:
    """Strip per-query identifiers (box ids, generated-quantifier counters)
    so the same logical operator merges across queries: ``"groupby [719]"``
    -> ``"groupby"``, ``"scan h1168"`` -> ``"scan h"``."""
    import re

    name = re.sub(r"\s*\[\d+\]$", "", name)
    name = re.sub(r"\(box \d+\)", "(box)", name)
    return re.sub(r"(?<=\w)\d+(?=\s|$)", "", name)


def merge_operator_summaries(
    traces: list, top: Optional[int] = None
) -> list[dict]:
    """Merge the ``operators`` lists of many per-query trace summaries
    (the layout of :meth:`Tracer.operator_summaries`) into one breakdown,
    keyed by the id-stripped operator name, largest total elapsed first --
    the aggregate view the soak harness and benchmarks report."""
    merged: dict[str, dict] = {}
    for trace in traces:
        for op in trace.get("operators", []):
            name = _generic_operator_name(op["name"])
            entry = merged.get(name)
            if entry is None:
                entry = {
                    "name": name, "kind": op["kind"], "calls": 0,
                    "rows_in": 0, "rows_out": 0, "elapsed_ms": 0.0,
                    "cache_hits": 0, "metrics": {},
                }
                merged[name] = entry
            entry["calls"] += op["calls"]
            entry["rows_in"] += op["rows_in"]
            entry["rows_out"] += op["rows_out"]
            entry["elapsed_ms"] = round(
                entry["elapsed_ms"] + op["elapsed_ms"], 3
            )
            entry["cache_hits"] += op["cache_hits"]
            for counter, value in op["metrics"].items():
                entry["metrics"][counter] = (
                    entry["metrics"].get(counter, 0) + value
                )
    totals = sorted(
        merged.values(), key=lambda e: e["elapsed_ms"], reverse=True
    )
    return totals[:top] if top is not None else totals


# -- schema -------------------------------------------------------------------

_SPAN_INT_FIELDS = ("calls", "rows_in", "rows_out", "cache_hits")


def _validate_span(span: Any, path: str, problems: list[str]) -> None:
    if not isinstance(span, dict):
        problems.append(f"{path}: span must be an object")
        return
    for name in ("key", "name", "kind", "elapsed_s", "metrics", "attrs",
                 "children", *_SPAN_INT_FIELDS):
        if name not in span:
            problems.append(f"{path}: missing field {name!r}")
            return
    if not (isinstance(span["key"], list) and span["key"]):
        problems.append(f"{path}: key must be a non-empty array")
    if span["kind"] not in SPAN_KINDS:
        problems.append(f"{path}: unknown kind {span['kind']!r}")
    for name in _SPAN_INT_FIELDS:
        if not isinstance(span[name], int) or span[name] < 0:
            problems.append(f"{path}: {name} must be a non-negative int")
    if not isinstance(span["elapsed_s"], (int, float)) or span["elapsed_s"] < 0:
        problems.append(f"{path}: elapsed_s must be a non-negative number")
    metrics = span["metrics"]
    if not isinstance(metrics, dict):
        problems.append(f"{path}: metrics must be an object")
    else:
        unknown = set(metrics) - set(SUM_FIELD_NAMES)
        if unknown:
            problems.append(
                f"{path}: unknown metric counters {sorted(unknown)}"
            )
        for name, value in metrics.items():
            if not isinstance(value, int):
                problems.append(f"{path}: metric {name} must be an int")
    if not isinstance(span["attrs"], dict):
        problems.append(f"{path}: attrs must be an object")
    if not isinstance(span["children"], list):
        problems.append(f"{path}: children must be an array")
        return
    for i, child in enumerate(span["children"]):
        _validate_span(child, f"{path}.children[{i}]", problems)


def validate_trace(payload: Any) -> None:
    """Validate an exported trace against the schema; raises
    :class:`~repro.errors.TraceError` naming every problem found."""
    problems: list[str] = []
    if not isinstance(payload, dict):
        raise TraceError("trace must be a JSON object")
    if payload.get("version") not in ACCEPTED_TRACE_VERSIONS:
        problems.append(
            f"version must be one of {sorted(ACCEPTED_TRACE_VERSIONS)}, "
            f"got {payload.get('version')!r}"
        )
    for name in ("sql", "strategy"):
        if not isinstance(payload.get(name), str):
            problems.append(f"{name} must be a string")
    spans = payload.get("spans")
    if not isinstance(spans, list):
        problems.append("spans must be an array")
    else:
        for i, span in enumerate(spans):
            _validate_span(span, f"spans[{i}]", problems)
    if problems:
        raise TraceError(
            "invalid trace: " + "; ".join(problems[:10])
            + (f" (+{len(problems) - 10} more)" if len(problems) > 10 else "")
        )


def _span_from_dict(data: dict) -> Span:
    span = Span(tuple(data["key"]), data["name"], data["kind"])
    span.calls = data["calls"]
    span.rows_in = data["rows_in"]
    span.rows_out = data["rows_out"]
    span.elapsed = data["elapsed_s"]
    span.cache_hits = data["cache_hits"]
    span.counters = tuple(
        data["metrics"].get(name, 0) for name in SUM_FIELD_NAMES
    )
    span.attrs = dict(data["attrs"])
    for child_data in data["children"]:
        child = _span_from_dict(child_data)
        span._index[child.key] = child
        span.children.append(child)
    return span


def spans_from_dict(payload: dict) -> list[Span]:
    """Rebuild :class:`Span` trees from a validated export payload."""
    validate_trace(payload)
    return [_span_from_dict(s) for s in payload["spans"]]


def trace_round_trips(payload: dict) -> bool:
    """Does ``payload`` survive parse -> re-export byte-identically?

    The CI schema check: any field the parser drops or mangles shows up
    as a mismatch here."""
    import json

    spans = spans_from_dict(payload)
    rebuilt = dict(payload)
    rebuilt["spans"] = [span.as_dict() for span in spans]
    canonical = json.dumps(payload, sort_keys=True)
    return canonical == json.dumps(rebuilt, sort_keys=True)


# -- rendering ----------------------------------------------------------------

def _fmt_ms(seconds: float) -> str:
    return f"{seconds * 1000:.3f}ms"


def render_operator_table(
    tracer: Tracer, top: Optional[int] = None, indent: str = ""
) -> str:
    """A per-operator breakdown table (largest elapsed first)."""
    rows = tracer.operator_summaries(top=top)
    if not rows:
        return f"{indent}(no operator spans recorded)"
    name_width = max(24, max(len(r["name"]) for r in rows) + 2)
    lines = [
        f"{indent}{'operator':<{name_width}} {'calls':>7} {'rows_in':>9} "
        f"{'rows_out':>9} {'hits':>5} {'elapsed':>12}  work"
    ]
    for r in rows:
        work = " ".join(f"{k}={v}" for k, v in r["metrics"].items())
        lines.append(
            f"{indent}{r['name']:<{name_width}} {r['calls']:>7} "
            f"{r['rows_in']:>9} {r['rows_out']:>9} {r['cache_hits']:>5} "
            f"{r['elapsed_ms']:>10.3f}ms  {work}"
        )
    return "\n".join(lines)


def render_rewrite_timeline(tracer: Tracer, indent: str = "") -> str:
    """The rewrite spans as an ordered timeline (one line per step)."""
    lines: list[str] = []
    for root in tracer.roots:
        if root.kind != "rewrite":
            continue
        lines.append(
            f"{indent}{root.name} ({len(root.children)} steps, "
            f"{_fmt_ms(root.elapsed)})"
        )
        for step in root.children:
            created = step.attrs.get("boxes_created", [])
            removed = step.attrs.get("boxes_removed", [])
            detail = []
            if created:
                detail.append(f"+boxes {created}")
            if removed:
                detail.append(f"-boxes {removed}")
            suffix = ("  " + ", ".join(detail)) if detail else ""
            lines.append(
                f"{indent}  {step.key[-1]:>3}. {step.name} "
                f"[{_fmt_ms(step.elapsed)}]{suffix}"
            )
    if not lines:
        return f"{indent}(no rewrite spans recorded)"
    return "\n".join(lines)
