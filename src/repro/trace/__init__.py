"""Structured observability: span trees for execution and rewrite.

The paper's whole evaluation argument is *work accounting* -- subquery
invocation counts, rows flowing through FEED/ABSORB boxes, Mag-vs-OptMag
recomputation -- and :mod:`repro.trace` makes that accounting visible
per operator and per rewrite step instead of only as whole-query totals:

* :class:`Tracer` collects a span tree during execution (one aggregated
  node per plan node: calls, rows in/out, elapsed, exclusive ``Metrics``
  deltas) and during rewrite (one span per FEED/ABSORB step with the box
  ids it created);
* ``tracer=None`` everywhere is the zero-overhead fast path, mirroring the
  ``limits=None`` pattern of :mod:`repro.guard`;
* traces export as versioned JSON (:meth:`Tracer.export`,
  :func:`validate_trace`, :func:`trace_round_trips`) and render as
  ``EXPLAIN ANALYZE``-style plan annotations (:mod:`repro.plan.pretty`)
  and per-operator tables (:func:`render_operator_table`).

The attribution invariant: summing the (exclusive) per-span metric deltas
over a complete trace reproduces the whole-query ``Metrics`` totals
exactly -- see :meth:`Tracer.metric_totals`.
"""

from .tracer import (
    ACCEPTED_TRACE_VERSIONS,
    SPAN_KINDS,
    TRACE_VERSION,
    OperatorStats,
    Span,
    Tracer,
    merge_operator_summaries,
    render_operator_table,
    render_rewrite_timeline,
    spans_from_dict,
    trace_round_trips,
    validate_trace,
)

__all__ = [
    "ACCEPTED_TRACE_VERSIONS",
    "SPAN_KINDS",
    "TRACE_VERSION",
    "OperatorStats",
    "Span",
    "Tracer",
    "merge_operator_summaries",
    "render_operator_table",
    "render_rewrite_timeline",
    "spans_from_dict",
    "trace_round_trips",
    "validate_trace",
]
