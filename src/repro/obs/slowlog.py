"""The slow-query log: threshold-based capture into a bounded ring.

Any query whose latency crosses ``threshold_ms`` is captured with
everything needed to diagnose it after the fact: the SQL, the requested
strategy, the degradation chain actually taken, the top-N operator
summaries from its tracer (when it ran traced), and the ``Metrics``
snapshot. The ring is bounded (``capacity``), so a pathological workload
cannot grow the log without bound; ``total`` still counts every capture.

Wired into :class:`~repro.api.database.Database` (``slow_query_ms=...``,
covering rewrite + execution) and
:class:`~repro.serve.service.QueryService` (``slow_query_ms=...``,
covering queue wait too, surfaced on ``ServiceStats``). Disabled
(``slow_query_ms=None``) means no log object exists and the execute path
pays one ``is None`` test -- the usual zero-overhead contract.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Any, Optional

from ..errors import EventLogError


class SlowQueryLog:
    """Bounded, thread-safe capture of queries slower than a threshold.

    ``events`` (an :class:`~repro.obs.events.EventLog`) receives one
    ``query.slow`` event per capture when provided.
    """

    def __init__(
        self,
        threshold_ms: float,
        capacity: int = 128,
        top_operators: int = 5,
        events=None,
        clock=time.time,
    ):
        if threshold_ms < 0:
            raise EventLogError("slow-query threshold must be >= 0 ms")
        if capacity < 1:
            raise EventLogError("slow-query log capacity must be >= 1")
        self.threshold_ms = threshold_ms
        self.capacity = capacity
        self.top_operators = top_operators
        self.events = events
        self._clock = clock
        self._lock = threading.Lock()
        self._ring: deque[dict] = deque(maxlen=capacity)
        #: Every capture ever, including entries the ring has dropped.
        self.total = 0

    def observe(
        self,
        latency_ms: float,
        sql: str = "",
        strategy: str = "",
        query_id: Optional[int] = None,
        outcome: str = "completed",
        degradations: Any = (),
        metrics=None,
        tracer=None,
        phases: Optional[dict] = None,
        brownout_level: Optional[int] = None,
    ) -> Optional[dict]:
        """Record the query if it was slow; returns the captured record
        (or ``None`` below the threshold).

        ``phases`` (phase name -> milliseconds, see
        :mod:`repro.obs.phases`) and ``brownout_level`` (the rung
        snapshotted at dequeue) let the record answer "slow because
        queued or slow because executing" without a separate trace."""
        if latency_ms < self.threshold_ms:
            return None
        record = {
            "ts": self._clock(),
            "query_id": query_id,
            "sql": sql,
            "strategy": strategy,
            "outcome": outcome,
            "latency_ms": round(latency_ms, 3),
            "threshold_ms": self.threshold_ms,
            "degradations": [str(event) for event in degradations],
            "metrics": metrics.as_dict() if metrics is not None else None,
            "operators": (
                tracer.operator_summaries(top=self.top_operators)
                if tracer is not None else []
            ),
            "phases": dict(phases) if phases is not None else None,
            "brownout_level": brownout_level,
        }
        with self._lock:
            self._ring.append(record)
            self.total += 1
        if self.events is not None:
            self.events.emit(
                "query.slow",
                query_id=query_id,
                latency_ms=record["latency_ms"],
                threshold_ms=self.threshold_ms,
                strategy=strategy,
                outcome=outcome,
            )
        return record

    def records(self) -> list[dict]:
        """The retained captures, oldest first."""
        with self._lock:
            return list(self._ring)

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)


def render_slow_log(records: list[dict], indent: str = "") -> str:
    """The slow-query log as text, slowest first (``repro slow``)."""
    if not records:
        return f"{indent}(no slow queries captured)"
    ordered = sorted(
        records, key=lambda r: r.get("latency_ms", 0.0), reverse=True
    )
    lines: list[str] = []
    for record in ordered:
        qid = record.get("query_id")
        scope = f"q{qid}" if qid is not None else "-"
        sql = " ".join(str(record.get("sql", "")).split())
        if len(sql) > 100:
            sql = sql[:97] + "..."
        lines.append(
            f"{indent}{record.get('latency_ms', 0.0):>10.3f}ms {scope:>7} "
            f"[{record.get('strategy', '?')}/{record.get('outcome', '?')}] "
            f"{sql}"
        )
        phases = record.get("phases")
        if phases:
            budget = " ".join(
                f"{name}={value:.3f}ms" for name, value in phases.items()
            )
            rung = record.get("brownout_level")
            suffix = f" (brownout rung {rung})" if rung else ""
            lines.append(f"{indent}    phases: {budget}{suffix}")
        for degradation in record.get("degradations", []):
            lines.append(f"{indent}    degraded: {degradation}")
        for op in record.get("operators", []):
            lines.append(
                f"{indent}    {op['name']:<32} calls={op['calls']:>6} "
                f"rows_out={op['rows_out']:>8} "
                f"elapsed={op['elapsed_ms']:>10.3f}ms"
            )
    return "\n".join(lines)
