"""Continuous observability: event log, sampling profiler, slow-query log.

PR 4's tracer (:mod:`repro.trace`) answers "where does the time go?" for a
*single* query; this package answers it *continuously* -- for a soak run, a
service under load, or a sequence of benchmark commits:

* :mod:`repro.obs.events` -- a schema-versioned (v1) structured event
  stream of query-lifecycle events (submitted/admitted/rejected/started/
  degraded/cancelled/finished, breaker transitions, budget trips, fired
  faults) with pluggable sinks (bounded in-memory ring, append-to-file
  JSONL) and a ``validate_events`` checker;
* :mod:`repro.obs.profiler` -- a background-thread wall-clock sampling
  profiler over ``sys._current_frames()`` that attributes samples to plan
  operators via the tracer's active-span context and exports
  collapsed-stack text (flamegraph.pl format) and speedscope JSON;
* :mod:`repro.obs.slowlog` -- threshold-based slow-query capture (SQL,
  strategy, degradations, top operators, ``Metrics`` snapshot) in a
  bounded ring;
* :mod:`repro.obs.phases` -- phase-budget accounting: a per-query
  :class:`~repro.obs.phases.PhaseTimeline` splitting latency into
  admit/queue/plan_cache/rewrite/optimize/execute/drain with the
  sum-to-latency invariant (``check_phase_sum``);
* :mod:`repro.obs.why` -- the ``repro why <query_id>`` timeline
  reconstructor joining the event log, trace ring and slow-query log
  into one annotated waterfall.

All three follow the ``limits=None`` / ``tracer=None`` zero-overhead
pattern: an unconfigured component costs one ``is None`` test.
"""

from .events import (
    EVENT_KINDS,
    EVENTS_VERSION,
    EventLog,
    FileSink,
    RingSink,
    TeeSink,
    count_by_kind,
    events_round_trip,
    load_events,
    render_event,
    validate_events,
)
from .phases import (
    PHASES,
    PhaseTimeline,
    check_phase_sum,
    render_phases,
)
from .profiler import SamplingProfiler, profiling
from .slowlog import SlowQueryLog, render_slow_log
from .why import build_timeline, render_timeline, worker_spans

__all__ = [
    "PHASES",
    "PhaseTimeline",
    "check_phase_sum",
    "render_phases",
    "EVENT_KINDS",
    "EVENTS_VERSION",
    "EventLog",
    "FileSink",
    "RingSink",
    "TeeSink",
    "count_by_kind",
    "events_round_trip",
    "load_events",
    "render_event",
    "validate_events",
    "SamplingProfiler",
    "profiling",
    "SlowQueryLog",
    "render_slow_log",
    "build_timeline",
    "render_timeline",
    "worker_spans",
]
