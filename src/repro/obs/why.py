"""``repro why <query_id>``: one query's lifecycle, explained.

The event log records what happened to every query; the phase timeline
records where each query's latency went; the tracer records what the
operators (and, since schema v2, the worker processes) did. This module
joins the three for *one* query id and renders an annotated waterfall --
the "why was query 17 slow?" answer:

* the lifecycle steps, offset from submission (admitted, started,
  degraded, budget trips, fired faults, cancelled, finished/rejected);
* the phase budget (``query.phases``), as a proportional bar chart with
  the brownout rung the ticket was dequeued under;
* service-level context that overlapped the query's lifetime (breaker
  transitions, brownout ladder movement);
* budget consumption -- the terminal ``Metrics`` snapshot next to any
  ``guard.budget_exceeded`` trips;
* grafted worker spans from a v2 trace export (``--trace``): one block
  per worker process with its dispatches, retries and failure reasons.

:func:`build_timeline` produces the JSON-ready join (the ``--json``
payload); :func:`render_timeline` renders it for humans. Both work from
a plain event list, so they read a soak's ``--events-out`` JSONL just as
well as a live service ring.
"""

from __future__ import annotations

import json
from typing import Any, Iterable, Optional

from ..errors import EventLogError
from .events import ENVELOPE_KEYS
from .phases import render_phases

#: Service-level (``query_id: null``) kinds reported as context when
#: they fire inside the query's lifetime window.
CONTEXT_KINDS = ("breaker.transition", "overload.brownout")

#: Terminal kinds -> the outcome label the summary reports.
_TERMINAL_OUTCOMES = {
    "query.rejected": "rejected",
    "overload.shed": "shed",
    "overload.expired": "expired",
}


def _detail(event: dict) -> dict:
    """An event's kind-specific fields (envelope stripped)."""
    return {k: v for k, v in event.items() if k not in ENVELOPE_KEYS}


def _span_iter(span: dict) -> Iterable[dict]:
    yield span
    for child in span.get("children", ()):
        yield from _span_iter(child)


def worker_spans(trace: dict) -> list[dict]:
    """The ``worker``-kind spans of an exported v2 trace payload, each
    with its ``dispatch`` children (and their grafted sub-trees) intact."""
    found: list[dict] = []
    for root in trace.get("spans", ()):
        for span in _span_iter(root):
            if span.get("kind") == "worker":
                found.append(span)
    return found


def build_timeline(
    query_id: int,
    events: list[dict],
    trace: Optional[dict] = None,
) -> dict:
    """Join the event log (and optionally a trace export) for one query.

    Returns a JSON-ready dict: ``summary`` (outcome, strategy, latency,
    phase budget, brownout rung, plan-cache disposition), ``steps`` (the
    query's own events, offset in ms from its first event), ``context``
    (service-level events inside its lifetime), ``degradations`` /
    ``budget_trips`` / ``faults``, and ``workers`` (the trace's grafted
    worker spans). Raises :class:`~repro.errors.EventLogError` when the
    log holds no events for ``query_id``.
    """
    mine = [e for e in events if e.get("query_id") == query_id]
    if not mine:
        raise EventLogError(
            f"no events recorded for query {query_id} "
            f"({len(events)} events scanned)"
        )
    mine.sort(key=lambda e: e.get("seq", 0))
    t0 = mine[0].get("ts", 0.0)
    t_end = mine[-1].get("ts", t0)

    summary: dict[str, Any] = {
        "query_id": query_id,
        "outcome": None,
        "strategy": None,
        "priority": None,
        "latency_ms": None,
        "error_type": None,
        "phases": None,
        "brownout_level": None,
        "rejected_reason": None,
        "plan_cache": None,
        "slow_threshold_ms": None,
        "metrics": None,
    }
    steps: list[dict] = []
    degradations: list[dict] = []
    budget_trips: list[dict] = []
    faults: list[dict] = []
    for event in mine:
        kind = event["kind"]
        detail = _detail(event)
        steps.append(
            {
                "seq": event.get("seq"),
                "offset_ms": round((event.get("ts", t0) - t0) * 1000, 3),
                "kind": kind,
                **detail,
            }
        )
        if kind == "query.submitted":
            summary["strategy"] = detail.get("strategy")
            summary["priority"] = detail.get("priority")
        elif kind in _TERMINAL_OUTCOMES:
            summary["outcome"] = _TERMINAL_OUTCOMES[kind]
            summary["rejected_reason"] = detail.get("reason")
            if summary["latency_ms"] is None:
                summary["latency_ms"] = detail.get("queued_ms")
        elif kind == "query.finished":
            summary["outcome"] = detail.get("outcome")
            summary["latency_ms"] = detail.get("latency_ms")
            summary["error_type"] = detail.get("error_type")
            summary["metrics"] = detail.get("metrics")
            if detail.get("strategy"):
                summary["strategy"] = detail["strategy"]
        elif kind == "query.phases":
            summary["phases"] = detail.get("phases")
            summary["brownout_level"] = detail.get("brownout_level")
            if summary["outcome"] is None:
                summary["outcome"] = detail.get("outcome")
            if summary["latency_ms"] is None:
                summary["latency_ms"] = detail.get("latency_ms")
        elif kind == "query.degraded":
            degradations.append(detail)
        elif kind == "guard.budget_exceeded":
            budget_trips.append(detail)
        elif kind == "fault.fired":
            faults.append(detail)
        elif kind == "plan.cache_hit":
            summary["plan_cache"] = "hit"
        elif kind == "plan.cache_miss":
            summary["plan_cache"] = "miss"
        elif kind == "query.slow":
            summary["slow_threshold_ms"] = detail.get("threshold_ms")

    context = [
        {
            "seq": event.get("seq"),
            "offset_ms": round((event.get("ts", t0) - t0) * 1000, 3),
            "kind": event["kind"],
            **_detail(event),
        }
        for event in events
        if event.get("query_id") is None
        and event.get("kind") in CONTEXT_KINDS
        and t0 <= event.get("ts", t0 - 1) <= t_end
    ]
    return {
        "query_id": query_id,
        "summary": summary,
        "steps": steps,
        "context": context,
        "degradations": degradations,
        "budget_trips": budget_trips,
        "faults": faults,
        "workers": worker_spans(trace) if trace is not None else [],
    }


def _fields_line(detail: dict, skip: tuple = ()) -> str:
    return " ".join(
        f"{key}={detail[key]!r}" if isinstance(detail[key], str)
        else f"{key}={json.dumps(detail[key])}"
        for key in sorted(detail)
        if key not in skip and detail[key] is not None
    )


def _render_worker(span: dict, indent: str) -> list[str]:
    attrs = span.get("attrs", {})
    dispatches = span.get("children", [])
    lines = [
        f"{indent}{span.get('name', 'worker ?')} "
        f"(pid {attrs.get('pid', '?')}): {len(dispatches)} dispatches"
    ]
    for dispatch in dispatches:
        da = dispatch.get("attrs", {})
        outcome = da.get("outcome", "?")
        reason = f" [{da['reason']}]" if da.get("reason") else ""
        ops = [
            child
            for grafted in dispatch.get("children", ())
            for child in _span_iter(grafted)
            if child.get("kind") in ("operator", "step")
        ]
        ops.sort(key=lambda s: s.get("elapsed_s", 0.0), reverse=True)
        top = ", ".join(o.get("name", "?") for o in ops[:3])
        suffix = f" -- {top}" if top else ""
        lines.append(
            f"{indent}  {dispatch.get('name', 'dispatch ?')} "
            f"{dispatch.get('elapsed_s', 0.0) * 1000:>9.3f}ms "
            f"{outcome}{reason}{suffix}"
        )
    return lines


def render_timeline(timeline: dict, width: int = 40, indent: str = "") -> str:
    """The :func:`build_timeline` join as an annotated text waterfall."""
    summary = timeline["summary"]
    lines: list[str] = []
    head = (
        f"{indent}query {timeline['query_id']}: "
        f"{summary.get('outcome') or '?'}"
    )
    if summary.get("strategy"):
        head += f" via {summary['strategy']}"
    if summary.get("latency_ms") is not None:
        head += f" in {summary['latency_ms']:.3f}ms"
    qualifiers = []
    if summary.get("priority"):
        qualifiers.append(f"priority {summary['priority']}")
    if summary.get("plan_cache"):
        qualifiers.append(f"plan cache {summary['plan_cache']}")
    if summary.get("brownout_level"):
        qualifiers.append(f"brownout rung {summary['brownout_level']}")
    if summary.get("rejected_reason"):
        qualifiers.append(f"reason: {summary['rejected_reason']}")
    if summary.get("error_type"):
        qualifiers.append(f"error: {summary['error_type']}")
    if summary.get("slow_threshold_ms") is not None:
        qualifiers.append(
            f"slow-logged over {summary['slow_threshold_ms']}ms"
        )
    if qualifiers:
        head += f" ({', '.join(qualifiers)})"
    lines.append(head)

    phases = summary.get("phases")
    if phases:
        lines.append(f"{indent}phase budget:")
        lines.extend(
            render_phases(
                {name: ms / 1000.0 for name, ms in phases.items()},
                width=width,
                indent=indent + "  ",
            )
        )
    lines.append(f"{indent}timeline:")
    for step in timeline["steps"]:
        detail = _fields_line(
            step, skip=("seq", "offset_ms", "kind", "phases", "metrics")
        )
        lines.append(
            f"{indent}  +{step['offset_ms']:>10.3f}ms {step['kind']:<22} "
            f"{detail}".rstrip()
        )
    for label, entries in (
        ("degradations", timeline["degradations"]),
        ("budget trips", timeline["budget_trips"]),
        ("faults fired", timeline["faults"]),
    ):
        if entries:
            lines.append(f"{indent}{label}:")
            for entry in entries:
                lines.append(f"{indent}  {_fields_line(entry)}")
    metrics = summary.get("metrics")
    if metrics:
        consumed = " ".join(
            f"{name}={value}" for name, value in sorted(metrics.items())
            if value
        )
        if consumed:
            lines.append(f"{indent}budget consumption: {consumed}")
    if timeline["context"]:
        lines.append(f"{indent}concurrent service context:")
        for entry in timeline["context"]:
            detail = _fields_line(entry, skip=("seq", "offset_ms", "kind"))
            lines.append(
                f"{indent}  +{entry['offset_ms']:>10.3f}ms "
                f"{entry['kind']:<22} {detail}".rstrip()
            )
    if timeline["workers"]:
        lines.append(f"{indent}worker processes (grafted spans):")
        for span in timeline["workers"]:
            lines.extend(_render_worker(span, indent + "  "))
    return "\n".join(lines)
