"""A wall-clock sampling profiler with plan-operator attribution.

A background thread wakes every ``interval`` seconds, snapshots every
thread's Python stack via ``sys._current_frames()``, and folds each into
an aggregated sample count. Threads currently executing a *traced* query
additionally carry their plan-operator context: the profiler consults the
thread's :class:`~repro.trace.Tracer` active-span stack and prefixes the
sample with one synthetic frame per open operator span, so a flamegraph's
width under ``op:groupby`` is literally "wall-clock time spent under
group-by" -- the paper's where-does-time-go question, answered by
sampling instead of instrumentation.

Attribution contract: the tracer's span stack is read *racily* (no lock;
the sampled thread keeps mutating it). A torn read can only mis-attribute
a single sample to a neighbouring operator -- it can never corrupt the
trace or the sample store, and at sampling frequencies the error is in
the noise. Samples on threads with no adopted tracer (or an empty span
stack) fold into the plain Python stack with no operator frames.

Exports:

* :meth:`SamplingProfiler.collapsed` -- collapsed-stack text, one
  ``frame;frame;frame count`` line per unique stack (flamegraph.pl /
  inferno format);
* :meth:`SamplingProfiler.speedscope` -- a speedscope JSON document
  (``"type": "sampled"``) openable at https://www.speedscope.app.

Tracer adoption is automatic while a profiler is *active*
(:func:`profiling` / :func:`activate`): creating a
:class:`~repro.trace.Tracer` registers it for the creating thread via a
single module-level hook, so the query service and soak harness need no
profiler plumbing. When no profiler is active the hook is ``None`` and
tracer creation pays one global read -- the zero-overhead disabled path.
"""

from __future__ import annotations

import os
import sys
import threading
import time
from contextlib import contextmanager
from typing import Callable, Optional

from ..errors import EventLogError

#: Synthetic frame prefix marking plan-operator context in sample stacks.
OP_PREFIX = "op:"


def _frame_name(frame) -> str:
    """``module.function`` for one Python frame (file stem, not path)."""
    code = frame.f_code
    stem = os.path.basename(code.co_filename)
    if stem.endswith(".py"):
        stem = stem[:-3]
    return f"{stem}.{code.co_name}"


class SamplingProfiler:
    """Aggregating wall-clock sampler over every thread in the process.

    ``interval`` is the target seconds between samples (default 5 ms);
    ``max_depth`` bounds the recorded Python stack. Use as a context
    manager or call :meth:`start` / :meth:`stop`. The profiler's own
    sampling thread is excluded from its samples.
    """

    def __init__(
        self,
        interval: float = 0.005,
        max_depth: int = 64,
        clock: Callable[[], float] = time.perf_counter,
    ):
        if interval <= 0:
            raise EventLogError("profiler interval must be > 0")
        if max_depth < 1:
            raise EventLogError("profiler max_depth must be >= 1")
        self.interval = interval
        self.max_depth = max_depth
        self._clock = clock
        self._lock = threading.Lock()
        #: Aggregated samples: stack tuple (root -> leaf) -> count.
        self._samples: dict[tuple[str, ...], int] = {}
        #: Per-operator sample counts (id-stripped leaf operator name).
        self._operator_samples: dict[str, int] = {}
        self._tracers: dict[int, object] = {}  # thread ident -> Tracer
        self._thread: Optional[threading.Thread] = None
        self._stop = threading.Event()
        self.sample_count = 0
        self.started_at: Optional[float] = None
        self.stopped_at: Optional[float] = None

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> "SamplingProfiler":
        if self._thread is not None:
            raise EventLogError("profiler already started")
        self._stop.clear()
        self.started_at = self._clock()
        self._thread = threading.Thread(
            target=self._run, name="repro-profiler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> "SamplingProfiler":
        thread = self._thread
        if thread is None:
            return self
        self._stop.set()
        thread.join(timeout=5.0)
        self._thread = None
        self.stopped_at = self._clock()
        return self

    def __enter__(self) -> "SamplingProfiler":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    # -- attribution --------------------------------------------------------

    def adopt(self, tracer, thread_ident: Optional[int] = None) -> None:
        """Associate ``tracer`` with a thread (default: the calling one);
        subsequent samples of that thread carry its active-span operator
        context. The newest tracer per thread wins -- exactly the query
        currently executing there."""
        ident = threading.get_ident() if thread_ident is None else thread_ident
        with self._lock:
            self._tracers[ident] = tracer

    def _operator_stack(self, ident: int) -> list[str]:
        tracer = self._tracers.get(ident)
        if tracer is None:
            return []
        try:
            return tracer.active_operator_stack()
        except Exception:  # pragma: no cover - racy read lost
            return []

    # -- sampling -----------------------------------------------------------

    def _run(self) -> None:
        own_ident = threading.get_ident()
        while not self._stop.wait(self.interval):
            self._sample_once(own_ident)

    def _sample_once(self, own_ident: int) -> None:
        """Take one sample of every thread (public for deterministic
        tests, which call it directly instead of racing the clock)."""
        frames = sys._current_frames()
        for ident, frame in frames.items():
            if ident == own_ident:
                continue
            stack: list[str] = []
            depth = 0
            while frame is not None and depth < self.max_depth:
                stack.append(_frame_name(frame))
                frame = frame.f_back
                depth += 1
            stack.reverse()  # root -> leaf
            operators = self._operator_stack(ident)
            if operators:
                from ..trace.tracer import _generic_operator_name

                op_frames = [
                    OP_PREFIX + _generic_operator_name(name)
                    for name in operators
                ]
                key = tuple(op_frames + stack)
                leaf = op_frames[-1][len(OP_PREFIX):]
            else:
                key = tuple(stack)
                leaf = None
            with self._lock:
                self._samples[key] = self._samples.get(key, 0) + 1
                self.sample_count += 1
                if leaf is not None:
                    self._operator_samples[leaf] = (
                        self._operator_samples.get(leaf, 0) + 1
                    )

    # -- observation --------------------------------------------------------

    def samples(self) -> dict[tuple[str, ...], int]:
        """Aggregated samples: stack tuple (root -> leaf) -> count."""
        with self._lock:
            return dict(self._samples)

    def operator_samples(self) -> dict[str, int]:
        """Sample counts per (id-stripped) plan operator, largest first --
        comparable with :meth:`repro.trace.Tracer.operator_summaries`."""
        with self._lock:
            counts = dict(self._operator_samples)
        return dict(
            sorted(counts.items(), key=lambda item: item[1], reverse=True)
        )

    # -- export -------------------------------------------------------------

    def collapsed(self) -> str:
        """Collapsed-stack text (flamegraph.pl format): one
        ``frame;frame;frame count`` line per unique stack, sorted for
        deterministic output."""
        lines = [
            ";".join(stack) + f" {count}"
            for stack, count in self.samples().items()
        ]
        return "\n".join(sorted(lines)) + ("\n" if lines else "")

    def speedscope(self, name: str = "repro profile") -> dict:
        """The samples as a speedscope JSON document (sampled profile,
        unit "none": weights are sample counts)."""
        samples = self.samples()
        frame_index: dict[str, int] = {}
        frames: list[dict] = []
        sample_lists: list[list[int]] = []
        weights: list[int] = []
        for stack, count in sorted(samples.items()):
            indexed = []
            for frame_name in stack:
                position = frame_index.get(frame_name)
                if position is None:
                    position = len(frames)
                    frame_index[frame_name] = position
                    frames.append({"name": frame_name})
                indexed.append(position)
            sample_lists.append(indexed)
            weights.append(count)
        total = sum(weights)
        return {
            "$schema": "https://www.speedscope.app/file-format-schema.json",
            "name": name,
            "exporter": "repro.obs.profiler",
            "activeProfileIndex": 0,
            "shared": {"frames": frames},
            "profiles": [
                {
                    "type": "sampled",
                    "name": name,
                    "unit": "none",
                    "startValue": 0,
                    "endValue": total,
                    "samples": sample_lists,
                    "weights": weights,
                }
            ],
        }


# -- activation ---------------------------------------------------------------

_active: Optional[SamplingProfiler] = None


def active() -> Optional[SamplingProfiler]:
    """The currently-activated profiler, if any."""
    return _active


def activate(profiler: SamplingProfiler) -> None:
    """Install ``profiler`` as the process-wide active profiler: tracers
    created while it is active register themselves for operator
    attribution (see module docstring)."""
    global _active
    from ..trace import tracer as tracer_module

    _active = profiler
    tracer_module._PROFILER_HOOK = profiler.adopt


def deactivate() -> None:
    """Remove the active profiler and its tracer-creation hook."""
    global _active
    from ..trace import tracer as tracer_module

    _active = None
    tracer_module._PROFILER_HOOK = None


@contextmanager
def profiling(
    profiler: Optional[SamplingProfiler] = None, **kwargs
):
    """Run a block under an active, started profiler::

        with profiling(interval=0.002) as prof:
            run_soak(...)
        print(prof.collapsed())
    """
    prof = profiler if profiler is not None else SamplingProfiler(**kwargs)
    activate(prof)
    prof.start()
    try:
        yield prof
    finally:
        prof.stop()
        deactivate()
