"""Phase-budget accounting: where did a query's latency actually go?

A :class:`PhaseTimeline` splits one query's wall-clock lifetime into a
fixed taxonomy of contiguous phases::

    admit      admission control: parse-free checks, quota, capacity
    queue      waiting in the run queue for a worker thread
    plan_cache plan-cache lookup (and fill bookkeeping on a miss)
    rewrite    parsing + QGM construction + decorrelation rewrite
    optimize   static plan verification (the PR-4 contract checker)
    execute    operator-graph execution
    drain      everything after execution until the ticket resolves
               (result hand-off, counter updates; failures land their
               residual tail here too)

The timeline is *mark-based*: each ``mark(phase)`` attributes the time
since the previous mark to ``phase``, on the same injectable clock the
:class:`~repro.serve.service.QueryService` measures ``ticket.latency``
with. Because marks are contiguous -- every interval between the first
clock read and the final one is attributed to exactly one phase -- the
phase durations sum to the measured latency exactly (up to float
associativity), which is the invariant ``check_phase_sum`` enforces and
the soak/CI gate asserts for every completed query.

Phases the query never visits (plan_cache with no cache configured, say)
simply do not appear; the sum law holds regardless.
"""

from __future__ import annotations

import time
from typing import Callable, Optional

#: The phase taxonomy, in canonical (lifecycle) order. Rendering and the
#: per-phase histograms follow this order, not insertion order.
PHASES: tuple[str, ...] = (
    "admit",
    "queue",
    "plan_cache",
    "rewrite",
    "optimize",
    "execute",
    "drain",
)

_PHASE_SET = frozenset(PHASES)

#: Tolerance (seconds) for the sum-to-latency law: "within one clock
#: tick" of a monotonic float clock, generously rounded up to cover
#: float associativity across seven additions.
PHASE_SUM_TOLERANCE = 1e-6


class PhaseTimeline:
    """Accumulates per-phase durations for one query via contiguous marks.

    ``start`` is the query's birth (``ticket.submitted_at``); ``clock``
    the same injectable clock the service measures latency with. Each
    :meth:`mark` attributes ``now - last_mark`` to the named phase; a
    phase may be marked more than once (retries, cache-miss-then-build)
    and accumulates.
    """

    __slots__ = ("_clock", "_last", "durations")

    def __init__(
        self,
        start: Optional[float] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self._clock = clock
        self._last = clock() if start is None else start
        #: phase name -> cumulative seconds (only phases actually marked).
        self.durations: dict[str, float] = {}

    def mark(self, phase: str, now: Optional[float] = None) -> float:
        """Attribute the interval since the previous mark to ``phase``.

        Returns the clock reading used, so callers that already hold a
        fresh reading (the service's ``_finish``) can reuse it and keep
        the sum law exact.
        """
        if phase not in _PHASE_SET:
            raise ValueError(f"unknown phase {phase!r} (not in {PHASES})")
        if now is None:
            now = self._clock()
        self.durations[phase] = (
            self.durations.get(phase, 0.0) + (now - self._last)
        )
        self._last = now
        return now

    def total(self) -> float:
        """Sum of all recorded phase durations (== latency when the final
        mark used the same clock reading that measured latency)."""
        return sum(self.durations.values())

    def as_dict(self) -> dict[str, float]:
        """Durations in seconds, canonical phase order, marked phases only."""
        return {p: self.durations[p] for p in PHASES if p in self.durations}

    def as_ms_dict(self, ndigits: int = 3) -> dict[str, float]:
        """Durations in milliseconds (rounded), canonical phase order --
        the shape the ``query.phases`` event and slow-log records carry."""
        return {
            p: round(self.durations[p] * 1000.0, ndigits)
            for p in PHASES
            if p in self.durations
        }


def check_phase_sum(
    phases: dict[str, float],
    latency: float,
    tolerance: float = PHASE_SUM_TOLERANCE,
) -> Optional[str]:
    """The sum-to-latency law: ``sum(phases) == latency`` within
    ``tolerance`` seconds. Returns a human-readable problem string, or
    ``None`` when the law holds. ``phases`` is in *seconds* (use
    ``ms=True`` semantics by converting before calling)."""
    total = sum(phases.values())
    if abs(total - latency) > tolerance:
        return (
            f"phase durations sum to {total:.9f}s but measured latency is "
            f"{latency:.9f}s (|delta| {abs(total - latency):.3e}s > "
            f"tolerance {tolerance:.0e}s)"
        )
    return None


def render_phases(
    phases: dict[str, float],
    width: int = 40,
    indent: str = "",
) -> list[str]:
    """A proportional waterfall of one query's phase budget.

    ``phases`` maps phase name -> seconds. Each line shows the phase, its
    duration in ms, its share, and a bar scaled to the longest phase.
    """
    lines: list[str] = []
    total = sum(phases.values()) or 1.0
    longest = max(phases.values(), default=0.0) or 1.0
    for name in PHASES:
        if name not in phases:
            continue
        seconds = phases[name]
        bar = "#" * max(1, round(width * seconds / longest)) if seconds > 0 else ""
        lines.append(
            f"{indent}{name:<10} {seconds * 1000.0:>10.3f} ms "
            f"{100.0 * seconds / total:>5.1f}%  {bar}"
        )
    return lines
