"""The structured event log: a schema-versioned JSONL lifecycle stream.

The span tracer answers "where did *this* query's time go"; the event log
answers "what happened to *every* query" -- a durable, append-only record
of the service's lifecycle that a soak run, a CI job or an operator can
replay after the fact.

Schema (version 2; version-1 streams still validate): one flat JSON
object per event::

    {"v": 2, "seq": 17, "ts": 1754222000.123, "kind": "query.finished",
     "query_id": 9, "outcome": "completed", "latency_ms": 4.2, ...}

Version 2 adds exactly one kind over version 1 -- ``query.phases``, the
per-query phase budget (see :mod:`repro.obs.phases`) -- so a v1 stream
is a valid v2 stream and :func:`validate_events` accepts both versions
side by side (a tee of old and new producers stays valid).

``v``/``seq``/``ts``/``kind``/``query_id`` are the envelope (``seq`` is
strictly increasing per log, ``query_id`` may be ``None`` for
service-level events such as breaker transitions); every other key is a
kind-specific field. :func:`validate_events` checks a stream against this
schema the way :func:`repro.trace.validate_trace` checks a trace export.

Sinks are pluggable: :class:`RingSink` keeps the last N events in memory
(the service default), :class:`FileSink` appends JSONL to a path (the soak
``--events-out`` path), :class:`TeeSink` fans out to several. The log is
thread-safe -- one lock around sequence assignment and the sink write, so
a stream produced by concurrent workers is still strictly ordered.

Zero overhead when disabled: every emission site in the engine is guarded
by ``if events is not None`` and an :class:`EventLog` is never constructed
on the plain path, mirroring ``limits=None`` and ``tracer=None``.

Attribution without plumbing: :meth:`EventLog.scope` binds a query id to
the *current thread*, so components deep in the stack (the rewrite
engine's fallback chain, the guard, the fault registry) emit events that
carry the right ``query_id`` without threading it through every call.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from typing import Any, Callable, Iterable, Optional

from ..errors import EventLogError

#: Event-stream schema version (bump on incompatible layout changes).
EVENTS_VERSION = 2

#: Schema versions :func:`validate_events` accepts: v2 only *adds* the
#: ``query.phases`` kind, so v1 streams remain valid.
ACCEPTED_VERSIONS = frozenset((1, 2))

#: The envelope keys every event carries (in this order, first).
ENVELOPE_KEYS = ("v", "seq", "ts", "kind", "query_id")

#: Every event kind admitted by the schema.
EVENT_KINDS: tuple[str, ...] = (
    "query.submitted",        # a submission reached the service/database
    "query.admitted",         # admission control let it in
    "query.rejected",         # admission control turned it away
    "query.started",          # a worker began executing it
    "query.degraded",         # one step down the strategy fallback chain
    "query.cancelled",        # it observed cooperative cancellation
    "query.finished",         # terminal: outcome + Metrics snapshot
    "query.phases",           # terminal: the per-phase latency budget (v2)
    "query.slow",             # the slow-query log captured it
    "guard.budget_exceeded",  # a resource budget tripped
    "breaker.transition",     # a circuit breaker changed state
    "fault.fired",            # a deterministic fault injection fired
    "plan.verified",          # the static plan verifier passed (contract summary)
    "plan.cache_hit",         # a cached prepared plan served this submission
    "plan.cache_miss",        # no reusable plan; the full pipeline ran
    "plan.cache_invalidated", # a cached plan was dropped (catalog generation moved)
    "worker.spawned",         # a real worker process joined the pool
    "worker.lost",            # a worker died or missed its heartbeats
    "worker.retry",           # a lost task was re-dispatched (with backoff)
    "worker.degraded",        # the pool fell back to single-process execution
    "overload.shed",          # a queued ticket was shed for higher priority
    "overload.expired",       # a queued ticket's deadline passed; evicted
    "overload.brownout",      # the degradation ladder stepped up or down
    "overload.retry_storm",   # a non-compliant resubmission was rejected
    "overload.futile",        # admission rejected a provably-late deadline
)

_KIND_SET = frozenset(EVENT_KINDS)


class RingSink:
    """A bounded in-memory sink: keeps the newest ``capacity`` events."""

    def __init__(self, capacity: int = 4096):
        if capacity < 1:
            raise EventLogError("RingSink capacity must be >= 1")
        self.capacity = capacity
        self._ring: deque[dict] = deque(maxlen=capacity)
        #: Every write ever, including those the ring has since dropped.
        self.total = 0

    def write(self, event: dict) -> None:
        self._ring.append(event)
        self.total += 1

    def events(self) -> list[dict]:
        """The retained events, oldest first."""
        return list(self._ring)

    def __len__(self) -> int:
        return len(self._ring)

    def close(self) -> None:
        pass


class FileSink:
    """A file JSONL sink (one compact JSON object per line).

    Appends by default (a long-running service keeps one growing log);
    pass ``mode="w"`` to truncate first -- the CLI does, so a re-run
    with the same ``--events-out`` path yields one loadable stream
    instead of two concatenated ones with colliding ``seq`` numbers.
    """

    def __init__(self, path: str, mode: str = "a"):
        self.path = path
        self._handle = open(path, mode)
        self.total = 0

    def write(self, event: dict) -> None:
        self._handle.write(json.dumps(event, sort_keys=True) + "\n")
        self.total += 1

    def flush(self) -> None:
        self._handle.flush()

    def close(self) -> None:
        self._handle.close()


class TeeSink:
    """Fans each event out to several sinks (e.g. ring + file)."""

    def __init__(self, *sinks):
        if not sinks:
            raise EventLogError("TeeSink needs at least one sink")
        self.sinks = sinks

    def write(self, event: dict) -> None:
        for sink in self.sinks:
            sink.write(event)

    def close(self) -> None:
        for sink in self.sinks:
            sink.close()


_UNSET = object()


class EventLog:
    """A thread-safe, schema-versioned event stream over one sink.

    ``clock`` is injectable (defaults to ``time.time`` -- event timestamps
    are *wall-clock*, unlike the tracer's monotonic spans, because the log
    is correlated with the world outside the process). ``sink=None`` is
    legal and makes every :meth:`emit` a no-op -- the disabled fast path
    for code handed a log unconditionally.
    """

    def __init__(self, sink=None, clock: Callable[[], float] = time.time):
        self._sink = sink
        self._clock = clock
        self._lock = threading.Lock()
        self._seq = 0
        self._tls = threading.local()

    # -- attribution --------------------------------------------------------

    def scope(self, query_id: Optional[int]) -> "_Scope":
        """Bind ``query_id`` to the current thread for the duration of a
        ``with`` block; nested emissions pick it up automatically."""
        return _Scope(self._tls, query_id)

    def current_query_id(self) -> Optional[int]:
        """The query id bound to this thread (None outside any scope)."""
        return getattr(self._tls, "query_id", None)

    # -- emission -----------------------------------------------------------

    def emit(self, kind: str, query_id: Any = _UNSET, **fields: Any) -> None:
        """Append one event (no-op without a sink).

        ``query_id`` defaults to the thread's :meth:`scope` binding;
        ``fields`` become the event's kind-specific keys and must not
        collide with the envelope.
        """
        sink = self._sink
        if sink is None:
            return
        if query_id is _UNSET:
            query_id = self.current_query_id()
        event: dict[str, Any] = {
            "v": EVENTS_VERSION,
            "kind": kind,
            "query_id": query_id,
        }
        event.update(fields)
        with self._lock:
            self._seq += 1
            event["seq"] = self._seq
            event["ts"] = self._clock()
            sink.write(event)

    # -- observation --------------------------------------------------------

    @property
    def sink(self):
        return self._sink

    def events(self) -> list[dict]:
        """The retained events when the sink keeps them in memory (a
        :class:`RingSink`, directly or inside a :class:`TeeSink`); raises
        :class:`~repro.errors.EventLogError` otherwise."""
        sinks = [self._sink]
        if isinstance(self._sink, TeeSink):
            sinks = list(self._sink.sinks)
        for sink in sinks:
            if isinstance(sink, RingSink):
                with self._lock:
                    return sink.events()
        raise EventLogError(
            "this event log's sink does not retain events in memory"
        )

    def flush(self) -> None:
        sink = self._sink
        if sink is not None and hasattr(sink, "flush"):
            with self._lock:
                sink.flush()

    def close(self) -> None:
        sink = self._sink
        if sink is not None:
            with self._lock:
                sink.close()


class _Scope:
    """Context manager restoring the previous thread-local query id."""

    __slots__ = ("_tls", "_query_id", "_previous")

    def __init__(self, tls: threading.local, query_id: Optional[int]):
        self._tls = tls
        self._query_id = query_id

    def __enter__(self) -> "_Scope":
        self._previous = getattr(self._tls, "query_id", None)
        self._tls.query_id = self._query_id
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._tls.query_id = self._previous


# -- schema -------------------------------------------------------------------

def _validate_event(
    event: Any, index: int, last_seq: Optional[int], problems: list[str]
) -> Optional[int]:
    """Check one event; returns its ``seq`` (for ordering) when readable."""
    path = f"events[{index}]"
    if not isinstance(event, dict):
        problems.append(f"{path}: event must be an object")
        return last_seq
    for name in ENVELOPE_KEYS:
        if name not in event:
            problems.append(f"{path}: missing envelope field {name!r}")
            return last_seq
    if event["v"] not in ACCEPTED_VERSIONS:
        problems.append(
            f"{path}: v must be one of "
            f"{sorted(ACCEPTED_VERSIONS)}, got {event['v']!r}"
        )
    seq = event["seq"]
    if not isinstance(seq, int) or seq < 1:
        problems.append(f"{path}: seq must be a positive int")
        seq = last_seq
    elif last_seq is not None and seq <= last_seq:
        problems.append(
            f"{path}: seq {seq} not strictly increasing (previous {last_seq})"
        )
    if not isinstance(event["ts"], (int, float)) or isinstance(
        event["ts"], bool
    ) or event["ts"] < 0:
        problems.append(f"{path}: ts must be a non-negative number")
    if event["kind"] not in _KIND_SET:
        problems.append(f"{path}: unknown kind {event['kind']!r}")
    query_id = event["query_id"]
    if query_id is not None and (
        not isinstance(query_id, int) or isinstance(query_id, bool)
    ):
        problems.append(f"{path}: query_id must be an int or null")
    for key, value in event.items():
        if not isinstance(key, str):  # pragma: no cover - json keys are str
            problems.append(f"{path}: non-string field name {key!r}")
            continue
        try:
            json.dumps(value)
        except (TypeError, ValueError):
            problems.append(
                f"{path}: field {key!r} is not JSON-serialisable"
            )
    return seq if isinstance(seq, int) else last_seq


def validate_events(events: Iterable[Any]) -> int:
    """Validate an event stream against the schema (v1 or v2 envelopes).

    Checks the envelope of every event (version, strictly-increasing
    ``seq``, timestamp, known ``kind``, well-typed ``query_id``) and that
    every field is JSON-serialisable. Returns the number of events checked;
    raises :class:`~repro.errors.EventLogError` naming every problem found
    (capped at 10, like ``validate_trace``)."""
    problems: list[str] = []
    last_seq: Optional[int] = None
    count = 0
    for index, event in enumerate(events):
        last_seq = _validate_event(event, index, last_seq, problems)
        count += 1
    if problems:
        raise EventLogError(
            "invalid event stream: " + "; ".join(problems[:10])
            + (f" (+{len(problems) - 10} more)" if len(problems) > 10 else "")
        )
    return count


def load_events(path: str) -> list[dict]:
    """Parse (and validate) a JSONL event file written by a
    :class:`FileSink`; raises :class:`~repro.errors.EventLogError` on
    malformed JSON or schema violations."""
    events: list[dict] = []
    with open(path) as handle:
        for lineno, line in enumerate(handle, 1):
            line = line.strip()
            if not line:
                continue
            try:
                events.append(json.loads(line))
            except json.JSONDecodeError as exc:
                raise EventLogError(
                    f"{path}:{lineno}: malformed JSON: {exc}"
                ) from None
    validate_events(events)
    return events


def events_round_trip(events: list[dict]) -> bool:
    """Does the stream survive serialise -> parse -> re-serialise
    byte-identically? The CI schema check, mirroring
    :func:`repro.trace.trace_round_trips`."""
    validate_events(events)
    lines = [json.dumps(e, sort_keys=True) for e in events]
    reparsed = [json.loads(line) for line in lines]
    return lines == [json.dumps(e, sort_keys=True) for e in reparsed]


# -- aggregation --------------------------------------------------------------

def count_by_kind(events: Iterable[dict]) -> dict[str, int]:
    """Per-kind event counts -- what the reconciliation property compares
    against the :class:`~repro.serve.service.ServiceStats` counters."""
    counts: dict[str, int] = {}
    for event in events:
        kind = event.get("kind", "?")
        counts[kind] = counts.get(kind, 0) + 1
    return counts


def render_event(event: dict) -> str:
    """One human-readable line per event (the ``repro events`` renderer)."""
    qid = event.get("query_id")
    scope = f"q{qid}" if qid is not None else "-"
    detail = " ".join(
        f"{key}={event[key]!r}" if isinstance(event[key], str)
        else f"{key}={json.dumps(event[key])}"
        for key in sorted(event)
        if key not in ENVELOPE_KEYS
    )
    return (
        f"#{event.get('seq', '?'):>6} {event.get('ts', 0):>17.6f} "
        f"{scope:>8} {event.get('kind', '?'):<22} {detail}"
    )
