"""Deterministic, seed-driven fault injection.

The engine carries named injection points (``FAULT_SITES``) in storage
scans, index lookups, executor join/group/subquery steps, planning, rewrite
strategy application, and the parallel cluster's message delivery and node
processing. A :class:`FaultRegistry` -- usually configured through the
``REPRO_FAULTS`` environment variable -- decides, fully deterministically,
which triggers fire.

Spec syntax (``REPRO_FAULTS="seed:site=rate,site=rate,..."``)::

    REPRO_FAULTS="42:exec.join=0.01,rewrite.strategy=1"
    REPRO_FAULTS="7:storage.*=0.002"

``seed`` is a non-negative integer; each ``site`` is an exact injection
point name or a prefix glob ending in ``*``; each ``rate`` is a firing
probability in ``[0, 1]`` (``site`` alone means ``site=1``).

Determinism: whether the *n*-th trigger of a site fires depends only on
``(seed, site, n)`` -- the draw is ``crc32(f"{seed}:{site}:{n}")`` scaled
to ``[0, 1)``, compared against the rate. No wall-clock, no ``random``
module, no ``PYTHONHASHSEED`` sensitivity: the same seed and the same
execution path produce the same fault sites, the same errors and the same
degradation log on every run. Every fired fault is recorded on
``registry.injected`` for exactly that comparison.

Concurrency: the per-site trigger counters are **global to the registry**,
not per query. A registry shared by concurrent queries hands out ordinals
in arrival order (the counter mutation is guarded by a lock, so no ordinal
is ever lost or duplicated), which means the *set* of fired ordinals per
site is still exactly the crc32 schedule -- but *which query* observes a
given ordinal depends on thread interleaving. For per-query (or
per-worker) deterministic fault sequences, give each execution stream its
own :meth:`FaultRegistry.replica`; that is what
``repro.serve.QueryService(fault_scope="worker")`` does.
"""

from __future__ import annotations

import os
import threading
import zlib
from dataclasses import dataclass
from typing import Iterable, Mapping, Optional

from .errors import FaultInjectedError

#: Every named injection point in the engine. Naming scheme:
#: ``<subsystem>.<operation>``; rules may match a prefix with ``*``.
FAULT_SITES: tuple[str, ...] = (
    "storage.scan",          # base-table sequential scan
    "storage.index_lookup",  # index probe
    "plan.select",           # physical planning of an SPJ box
    "exec.join",             # scan/hash-join executor steps
    "exec.group",            # GROUP BY evaluation
    "exec.subquery",         # correlated subquery invocation
    "rewrite.strategy",      # decorrelation strategy application
    "cluster.deliver",       # parallel-simulator message delivery
    "cluster.node",          # parallel-simulator node processing step
    "worker.crash",          # real worker process dies mid-task (os._exit)
    "worker.stall",          # real worker stops heartbeating for a while
    "exchange.drop",         # real worker drops a result message send
)


@dataclass(frozen=True)
class FaultRule:
    """One ``site=rate`` entry of a fault spec."""

    site: str
    rate: float

    def matches(self, site: str) -> bool:
        """Does this rule cover ``site`` (exact or prefix-glob match)?"""
        if self.site.endswith("*"):
            return site.startswith(self.site[:-1])
        return site == self.site


@dataclass(frozen=True)
class InjectedFault:
    """One fired fault: where, at which per-site trigger ordinal, and on
    what (the optional human-readable detail, e.g. a table name)."""

    site: str
    sequence: int
    detail: str = ""


class FaultRegistry:
    """Seed-driven decisions for every fault trigger in one engine run.

    The registry is stateful (it counts triggers per site), so one
    registry should cover exactly one unit of comparison -- typically one
    ``Database`` or one simulated cluster. Two registries built from the
    same spec replay identically over the same execution path.

    Thread safety: :meth:`should_fire` / :meth:`trigger` take an internal
    lock around the counter increment, the fire decision and the
    ``injected`` append, so concurrent queries sharing one registry never
    lose or duplicate a trigger ordinal. The ordinal *assignment* across
    queries follows arrival order (see the module docstring); use
    :meth:`replica` per execution stream when per-stream determinism is
    required.
    """

    def __init__(self, seed: int, rules: Iterable[FaultRule]):
        if seed < 0:
            raise ValueError("fault seed must be non-negative")
        self.seed = seed
        self.rules = tuple(rules)
        for rule in self.rules:
            if not 0.0 <= rule.rate <= 1.0:
                raise ValueError(
                    f"fault rate for {rule.site!r} must be in [0, 1], "
                    f"got {rule.rate}"
                )
        self._counts: dict[str, int] = {}
        self._lock = threading.Lock()
        #: Every fault fired so far, in firing order.
        self.injected: list[InjectedFault] = []
        #: Optional :class:`repro.obs.events.EventLog`: every fired fault
        #: emits a ``fault.fired`` event. ``None`` adds no overhead.
        self.events = None

    # -- construction ------------------------------------------------------

    @classmethod
    def parse(cls, spec: str) -> "FaultRegistry":
        """Build a registry from a ``seed:site=rate,...`` spec string."""
        head, sep, body = spec.partition(":")
        if not sep:
            raise ValueError(
                f"bad fault spec {spec!r}: expected 'seed:site=rate,...'"
            )
        try:
            seed = int(head.strip())
        except ValueError:
            raise ValueError(
                f"bad fault seed {head!r}: expected an integer"
            ) from None
        rules = []
        for entry in body.split(","):
            entry = entry.strip()
            if not entry:
                continue
            site, eq, rate_text = entry.partition("=")
            site = site.strip()
            if not site:
                raise ValueError(f"bad fault rule {entry!r}: empty site")
            if not site.endswith("*") and site not in FAULT_SITES:
                raise ValueError(
                    f"unknown fault site {site!r}; known sites: "
                    + ", ".join(FAULT_SITES)
                )
            try:
                rate = float(rate_text) if eq else 1.0
            except ValueError:
                raise ValueError(
                    f"bad fault rate {rate_text!r} for site {site!r}"
                ) from None
            rules.append(FaultRule(site, rate))
        return cls(seed, rules)

    @classmethod
    def from_env(
        cls, environ: Optional[Mapping[str, str]] = None
    ) -> Optional["FaultRegistry"]:
        """The registry described by ``REPRO_FAULTS``, or ``None`` when the
        variable is unset/empty (the zero-overhead default)."""
        env = os.environ if environ is None else environ
        spec = env.get("REPRO_FAULTS", "").strip()
        if not spec:
            return None
        return cls.parse(spec)

    def replica(self) -> "FaultRegistry":
        """A fresh registry with the same seed and rules (zeroed counters):
        replaying the same execution path reproduces the same faults."""
        copy = FaultRegistry(self.seed, self.rules)
        copy.events = self.events
        return copy

    # -- decisions ---------------------------------------------------------

    def _rate(self, site: str) -> float:
        for rule in self.rules:
            if rule.matches(site):
                return rule.rate
        return 0.0

    def should_fire(self, site: str, detail: str = "") -> bool:
        """Deterministically decide (and record) whether this trigger of
        ``site`` fires. Used directly for *soft* faults the caller handles
        itself (e.g. cluster retries)."""
        return self._fire(site, detail) is not None

    def _fire(self, site: str, detail: str) -> Optional[InjectedFault]:
        """The locked decision: claim the next ordinal for ``site``, decide,
        record. Returns the fired fault (atomically, so concurrent callers
        never read another query's entry off ``injected[-1]``) or None."""
        with self._lock:
            sequence = self._counts.get(site, 0)
            self._counts[site] = sequence + 1
            rate = self._rate(site)
            if rate <= 0.0:
                return None
            draw = zlib.crc32(f"{self.seed}:{site}:{sequence}".encode()) / 2**32
            if draw >= rate:
                return None
            fault = InjectedFault(site, sequence, detail)
            self.injected.append(fault)
        # Emitted outside the registry lock: the event log has its own
        # lock and nothing about the decision depends on emission order.
        if self.events is not None:
            self.events.emit(
                "fault.fired",
                site=fault.site,
                sequence=fault.sequence,
                detail=fault.detail,
            )
        return fault

    def trigger(self, site: str, detail: str = "") -> None:
        """A *hard* fault point: raise
        :class:`~repro.errors.FaultInjectedError` when this trigger fires."""
        fault = self._fire(site, detail)
        if fault is not None:
            raise FaultInjectedError(fault.site, fault.sequence, fault.detail)

    # -- observation -------------------------------------------------------

    def log(self) -> list[tuple[str, int, str]]:
        """The fired faults as plain tuples (for determinism comparisons).
        Locked, so the snapshot is consistent under concurrent queries."""
        with self._lock:
            return [(f.site, f.sequence, f.detail) for f in self.injected]
