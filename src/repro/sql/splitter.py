"""Splitting SQL scripts into statement texts without parsing them.

The lint CLI must be able to report diagnostics for *every* statement of a
script even when some of them do not parse, so it cannot use
``parse_statements`` (which raises on the first error). This splitter uses
the lexer to find top-level ``;`` separators -- respecting string literals
and comments -- and falls back to a naive textual split when the script
does not even tokenize.
"""

from __future__ import annotations

from ..errors import LexError
from .lexer import tokenize


def split_statements(text: str) -> list[str]:
    """Split a script into statement source texts (separators dropped)."""
    try:
        tokens = tokenize(text)
    except LexError:
        return [part.strip() for part in text.split(";") if part.strip()]
    pieces: list[str] = []
    start = 0
    for token in tokens:
        if token.kind.name == "SYMBOL" and token.text == ";":
            piece = text[start:token.position].strip()
            if piece:
                pieces.append(piece)
            start = token.position + 1
    tail = text[start:].strip()
    if tail:
        pieces.append(tail)
    return pieces
