"""Hand-written SQL lexer.

Produces a flat list of :class:`Token`. Keywords are not distinguished from
identifiers here; the parser matches identifier tokens case-insensitively
against expected keywords, which keeps the lexer reusable for the Starburst
``DT(cols) AS (...)`` derived-table syntax where e.g. ``DT`` is a name.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..errors import LexError


class TokenKind(enum.Enum):
    IDENT = "IDENT"
    NUMBER = "NUMBER"
    STRING = "STRING"
    SYMBOL = "SYMBOL"
    EOF = "EOF"


@dataclass(frozen=True)
class Token:
    kind: TokenKind
    text: str
    value: object  # parsed value for NUMBER/STRING, text otherwise
    position: int
    line: int
    column: int

    def matches_keyword(self, word: str) -> bool:
        """Case-insensitive identifier/keyword match."""
        return self.kind is TokenKind.IDENT and self.text.upper() == word.upper()

    @property
    def end(self) -> int:
        """One past the token's last source character.

        Quoted strings/identifiers re-derive their width from the raw text,
        which for them equals the unquoted form -- fall back to at least one
        character so zero-width spans never occur.
        """
        return self.position + max(len(self.text), 1)


#: Multi-character operators, longest first so the scanner is greedy.
_SYMBOLS = ("<>", "<=", ">=", "!=", "||", "(", ")", ",", ".", "+", "-", "*", "/", "<", ">", "=", ";", "?")

_IDENT_START = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_")
_IDENT_CONT = _IDENT_START | set("0123456789#$")
_DIGITS = set("0123456789")


def tokenize(text: str) -> list[Token]:
    """Tokenize ``text``; raises :class:`LexError` on invalid input."""
    tokens: list[Token] = []
    i = 0
    line = 1
    line_start = 0
    n = len(text)

    def here(pos: int) -> tuple[int, int]:
        return line, pos - line_start + 1

    while i < n:
        ch = text[i]
        if ch == "\n":
            line += 1
            i += 1
            line_start = i
            continue
        if ch in " \t\r":
            i += 1
            continue
        if ch == "-" and i + 1 < n and text[i + 1] == "-":
            # Line comment.
            while i < n and text[i] != "\n":
                i += 1
            continue
        start = i
        ln, col = here(i)
        if ch in _IDENT_START:
            while i < n and text[i] in _IDENT_CONT:
                i += 1
            word = text[start:i]
            tokens.append(Token(TokenKind.IDENT, word, word, start, ln, col))
            continue
        if ch in _DIGITS or (ch == "." and i + 1 < n and text[i + 1] in _DIGITS):
            i, token = _scan_number(text, start, ln, col)
            tokens.append(token)
            continue
        if ch == "'":
            i, token = _scan_string(text, start, ln, col)
            tokens.append(token)
            continue
        if ch == '"':
            i, token = _scan_quoted_ident(text, start, ln, col)
            tokens.append(token)
            continue
        for sym in _SYMBOLS:
            if text.startswith(sym, i):
                i += len(sym)
                tokens.append(Token(TokenKind.SYMBOL, sym, sym, start, ln, col))
                break
        else:
            raise LexError(f"unexpected character {ch!r}", start, ln, col)
    tokens.append(Token(TokenKind.EOF, "", None, n, *here(n)))
    return tokens


def _scan_number(text: str, start: int, ln: int, col: int) -> tuple[int, Token]:
    i = start
    n = len(text)
    is_float = False
    while i < n and text[i] in _DIGITS:
        i += 1
    if i < n and text[i] == ".":
        is_float = True
        i += 1
        while i < n and text[i] in _DIGITS:
            i += 1
    if i < n and text[i] in "eE":
        j = i + 1
        if j < n and text[j] in "+-":
            j += 1
        if j < n and text[j] in _DIGITS:
            is_float = True
            i = j
            while i < n and text[i] in _DIGITS:
                i += 1
    word = text[start:i]
    value: object = float(word) if is_float else int(word)
    return i, Token(TokenKind.NUMBER, word, value, start, ln, col)


def _scan_string(text: str, start: int, ln: int, col: int) -> tuple[int, Token]:
    # Single-quoted SQL string; '' escapes a quote.
    i = start + 1
    n = len(text)
    parts: list[str] = []
    while i < n:
        ch = text[i]
        if ch == "'":
            if i + 1 < n and text[i + 1] == "'":
                parts.append("'")
                i += 2
                continue
            i += 1
            word = text[start:i]
            return i, Token(TokenKind.STRING, word, "".join(parts), start, ln, col)
        parts.append(ch)
        i += 1
    raise LexError("unterminated string literal", start, ln, col)


def _scan_quoted_ident(text: str, start: int, ln: int, col: int) -> tuple[int, Token]:
    # Double-quoted identifier (case-preserving not supported: folded lower
    # like plain identifiers, but allows reserved words / odd characters).
    i = start + 1
    n = len(text)
    while i < n and text[i] != '"':
        i += 1
    if i >= n:
        raise LexError("unterminated quoted identifier", start, ln, col)
    word = text[start + 1 : i]
    i += 1
    return i, Token(TokenKind.IDENT, word, word, start, ln, col)
