"""Abstract syntax tree for the supported SQL subset.

Expression nodes are shared with the QGM layer: after binding, ``Name`` nodes
are replaced by ``repro.qgm.expr.ColumnRef`` nodes and subquery expression
nodes carry a reference to a QGM box instead of a ``Select`` AST. Keeping one
expression vocabulary avoids a parallel IR and lossy translations.

All nodes are plain dataclasses; ``children()`` exposes sub-expressions so
generic walkers (used heavily by the decorrelation rules) need no
per-node-type knowledge.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator, Optional, TypeVar, Union


@dataclass(frozen=True)
class Span:
    """A half-open ``[start, end)`` character range in the source SQL text.

    ``line``/``column`` are 1-based and point at the first character (they
    come straight from the lexer's tokens). Spans are attached to AST nodes
    out-of-band (see :func:`set_span`) so the frozen dataclass nodes keep
    their value semantics: two structurally equal nodes parsed from
    different places still compare equal.
    """

    start: int
    end: int
    line: int
    column: int

    def location(self) -> str:
        return f"line {self.line}, column {self.column}"


_NodeT = TypeVar("_NodeT")


def set_span(node: _NodeT, span: Span) -> _NodeT:
    """Attach a source span to an AST node (bypassing dataclass freezing).

    The span is deliberately not a dataclass field: it does not participate
    in equality or hashing, and nodes synthesised by rewrites simply have no
    span (:func:`span_of` then returns ``None``).
    """
    object.__setattr__(node, "_source_span", span)
    return node


def span_of(node: object) -> Optional[Span]:
    """The source span attached to ``node``, or ``None`` for synthetic nodes."""
    return getattr(node, "_source_span", None)


class Expr:
    """Base class for expression nodes."""

    def children(self) -> tuple["Expr", ...]:
        """Direct sub-expressions (not including subquery bodies)."""
        return ()

    def walk(self) -> Iterator["Expr"]:
        """Pre-order traversal of this expression tree."""
        yield self
        for child in self.children():
            yield from child.walk()


@dataclass(frozen=True)
class Literal(Expr):
    """A constant: number, string, boolean or NULL."""

    value: Any


@dataclass(frozen=True)
class Parameter(Expr):
    """A prepared-statement placeholder (``?``), bound at execution time.

    ``index`` is the 0-based occurrence of the marker in the statement
    text; the plan cache (:mod:`repro.plan.cache`) extracts literals in
    source order and binds them back by this index, so a cached query
    graph can be re-executed with fresh constants without re-parsing."""

    index: int


@dataclass(frozen=True)
class Name(Expr):
    """An unresolved (possibly qualified) column reference, e.g. ``d.building``."""

    parts: tuple[str, ...]

    def __str__(self) -> str:
        return ".".join(self.parts)


@dataclass(frozen=True)
class Star(Expr):
    """``*`` or ``alias.*`` in a select list."""

    qualifier: Optional[str] = None


@dataclass(frozen=True)
class BinaryOp(Expr):
    """Arithmetic: ``+ - * /`` and string concatenation ``||``."""

    op: str
    left: Expr
    right: Expr

    def children(self):
        return (self.left, self.right)


@dataclass(frozen=True)
class UnaryMinus(Expr):
    operand: Expr

    def children(self):
        return (self.operand,)


@dataclass(frozen=True)
class Comparison(Expr):
    """``= <> < <= > >=`` between two scalars."""

    op: str
    left: Expr
    right: Expr

    def children(self):
        return (self.left, self.right)


@dataclass(frozen=True)
class And(Expr):
    items: tuple[Expr, ...]

    def children(self):
        return self.items


@dataclass(frozen=True)
class Or(Expr):
    items: tuple[Expr, ...]

    def children(self):
        return self.items


@dataclass(frozen=True)
class Not(Expr):
    operand: Expr

    def children(self):
        return (self.operand,)


@dataclass(frozen=True)
class IsNull(Expr):
    operand: Expr
    negated: bool = False

    def children(self):
        return (self.operand,)


@dataclass(frozen=True)
class Like(Expr):
    operand: Expr
    pattern: Expr
    negated: bool = False

    def children(self):
        return (self.operand, self.pattern)


@dataclass(frozen=True)
class Between(Expr):
    operand: Expr
    low: Expr
    high: Expr
    negated: bool = False

    def children(self):
        return (self.operand, self.low, self.high)


@dataclass(frozen=True)
class InList(Expr):
    """``x IN (v1, v2, ...)`` with literal/expression alternatives."""

    operand: Expr
    items: tuple[Expr, ...]
    negated: bool = False

    def children(self):
        return (self.operand, *self.items)


@dataclass(frozen=True)
class FunctionCall(Expr):
    """Scalar function call (COALESCE, ABS, ...)."""

    name: str
    args: tuple[Expr, ...]

    def children(self):
        return self.args


@dataclass(frozen=True)
class Case(Expr):
    """Searched CASE: ``CASE WHEN cond THEN value ... [ELSE value] END``.

    A missing ELSE yields NULL (SQL default).
    """

    whens: tuple[tuple[Expr, Expr], ...]
    otherwise: Optional[Expr] = None

    def children(self):
        parts: list[Expr] = []
        for condition, value in self.whens:
            parts.append(condition)
            parts.append(value)
        if self.otherwise is not None:
            parts.append(self.otherwise)
        return tuple(parts)


#: Aggregate function names accepted by the parser.
AGGREGATE_FUNCTIONS = frozenset({"count", "sum", "avg", "min", "max"})


@dataclass(frozen=True)
class AggregateCall(Expr):
    """Aggregate function: ``COUNT(*)`` has ``argument=None``."""

    func: str  # one of AGGREGATE_FUNCTIONS
    argument: Optional[Expr]
    distinct: bool = False

    def children(self):
        return () if self.argument is None else (self.argument,)

    @property
    def is_count(self) -> bool:
        return self.func == "count"


# -- subquery expressions ----------------------------------------------------
# ``query`` holds a Select/SetOp AST before binding; the QGM builder replaces
# these nodes with BoxSubquery variants (see repro.qgm.expr).


@dataclass(frozen=True)
class ScalarSubquery(Expr):
    """``(SELECT ...)`` used as a scalar value."""

    query: "QueryBody"


@dataclass(frozen=True)
class Exists(Expr):
    """``[NOT] EXISTS (SELECT ...)``."""

    query: "QueryBody"
    negated: bool = False


@dataclass(frozen=True)
class InSubquery(Expr):
    """``x [NOT] IN (SELECT ...)``."""

    operand: Expr
    query: "QueryBody"
    negated: bool = False

    def children(self):
        return (self.operand,)


@dataclass(frozen=True)
class QuantifiedComparison(Expr):
    """``x <op> ANY/ALL (SELECT ...)`` (SOME is parsed as ANY)."""

    op: str
    operand: Expr
    quantifier: str  # "any" | "all"
    query: "QueryBody"

    def children(self):
        return (self.operand,)


SUBQUERY_EXPR_TYPES = (ScalarSubquery, Exists, InSubquery, QuantifiedComparison)


# -- query structure -----------------------------------------------------------


@dataclass(frozen=True)
class SelectItem:
    """One select-list entry: expression plus optional alias."""

    expr: Expr
    alias: Optional[str] = None


@dataclass(frozen=True)
class TableRef:
    """A base table or view reference in FROM, with optional alias."""

    name: str
    alias: Optional[str] = None

    @property
    def binding_name(self) -> str:
        return (self.alias or self.name).lower()


@dataclass(frozen=True)
class DerivedTable:
    """A table expression in FROM.

    Covers both standard ``(SELECT ...) AS alias(cols)`` and the Starburst
    syntax used in the paper's Query 3, ``DT(sumbal) AS (SELECT ...)``.
    """

    query: "QueryBody"
    alias: str
    column_aliases: tuple[str, ...] = ()

    @property
    def binding_name(self) -> str:
        return self.alias.lower()


@dataclass(frozen=True)
class Join:
    """Explicit binary join in FROM: ``a JOIN b ON ...`` or LEFT OUTER JOIN."""

    kind: str  # "inner" | "left"
    left: "FromItem"
    right: "FromItem"
    condition: Optional[Expr]


FromItem = Union[TableRef, DerivedTable, Join]


@dataclass(frozen=True)
class OrderItem:
    expr: Expr
    descending: bool = False


@dataclass(frozen=True)
class Select:
    """A single SELECT block."""

    items: tuple[SelectItem, ...]
    from_items: tuple[FromItem, ...] = ()
    where: Optional[Expr] = None
    group_by: tuple[Expr, ...] = ()
    having: Optional[Expr] = None
    distinct: bool = False
    order_by: tuple[OrderItem, ...] = ()
    limit: Optional[int] = None


@dataclass(frozen=True)
class SetOp:
    """UNION / UNION ALL / INTERSECT / EXCEPT of two query bodies."""

    op: str  # "union" | "intersect" | "except"
    all: bool
    left: "QueryBody"
    right: "QueryBody"
    order_by: tuple[OrderItem, ...] = ()
    limit: Optional[int] = None


QueryBody = Union[Select, SetOp]


# -- DDL / DML -----------------------------------------------------------------


@dataclass(frozen=True)
class ColumnDef:
    name: str
    type_name: str
    not_null: bool = False


@dataclass(frozen=True)
class CreateTable:
    name: str
    columns: tuple[ColumnDef, ...]
    primary_key: tuple[str, ...] = ()


@dataclass(frozen=True)
class CreateIndex:
    name: str
    table: str
    columns: tuple[str, ...]
    unique: bool = False
    kind: str = "hash"  # "hash" | "sorted" (USING SORTED)


@dataclass(frozen=True)
class DropIndex:
    name: str
    table: str


@dataclass(frozen=True)
class CreateView:
    name: str
    query: QueryBody


@dataclass(frozen=True)
class Insert:
    """``INSERT INTO t [(cols)] VALUES ...`` or ``INSERT INTO t [(cols)]
    SELECT ...`` (exactly one of ``rows``/``query`` is set)."""

    table: str
    columns: tuple[str, ...]
    rows: tuple[tuple[Expr, ...], ...] = ()
    query: Optional["QueryBody"] = None


Statement = Union[QueryBody, CreateTable, CreateIndex, DropIndex, CreateView, Insert]


def subquery_bodies(expr: Expr) -> Iterator[QueryBody]:
    """Yield the query bodies of all subquery expressions directly inside
    ``expr`` (not recursing into the subqueries themselves)."""
    for node in expr.walk():
        if isinstance(node, SUBQUERY_EXPR_TYPES):
            yield node.query
