"""Render AST nodes back to SQL text.

The printer is exact enough to round-trip through the parser (used as a
property test) and is also used to display rewritten queries in examples.
"""

from __future__ import annotations

from typing import Any

from . import ast


def _literal(value: Any) -> str:
    if value is None:
        return "NULL"
    if value is True:
        return "TRUE"
    if value is False:
        return "FALSE"
    if isinstance(value, str):
        escaped = value.replace("'", "''")
        return f"'{escaped}'"
    return repr(value)


def expr_to_sql(expr: ast.Expr) -> str:
    """Render an expression; parenthesises conservatively."""
    if isinstance(expr, ast.Literal):
        return _literal(expr.value)
    if isinstance(expr, ast.Name):
        return ".".join(expr.parts)
    if isinstance(expr, ast.Star):
        return f"{expr.qualifier}.*" if expr.qualifier else "*"
    if isinstance(expr, ast.BinaryOp):
        return f"({expr_to_sql(expr.left)} {expr.op} {expr_to_sql(expr.right)})"
    if isinstance(expr, ast.UnaryMinus):
        return f"(- {expr_to_sql(expr.operand)})"
    if isinstance(expr, ast.Comparison):
        return f"({expr_to_sql(expr.left)} {expr.op} {expr_to_sql(expr.right)})"
    if isinstance(expr, ast.And):
        return "(" + " AND ".join(expr_to_sql(e) for e in expr.items) + ")"
    if isinstance(expr, ast.Or):
        return "(" + " OR ".join(expr_to_sql(e) for e in expr.items) + ")"
    if isinstance(expr, ast.Not):
        return f"(NOT {expr_to_sql(expr.operand)})"
    if isinstance(expr, ast.IsNull):
        keyword = "IS NOT NULL" if expr.negated else "IS NULL"
        return f"({expr_to_sql(expr.operand)} {keyword})"
    if isinstance(expr, ast.Like):
        keyword = "NOT LIKE" if expr.negated else "LIKE"
        return f"({expr_to_sql(expr.operand)} {keyword} {expr_to_sql(expr.pattern)})"
    if isinstance(expr, ast.Between):
        keyword = "NOT BETWEEN" if expr.negated else "BETWEEN"
        return (
            f"({expr_to_sql(expr.operand)} {keyword} "
            f"{expr_to_sql(expr.low)} AND {expr_to_sql(expr.high)})"
        )
    if isinstance(expr, ast.InList):
        keyword = "NOT IN" if expr.negated else "IN"
        inner = ", ".join(expr_to_sql(e) for e in expr.items)
        return f"({expr_to_sql(expr.operand)} {keyword} ({inner}))"
    if isinstance(expr, ast.Case):
        parts = ["CASE"]
        for condition, value in expr.whens:
            parts.append(f"WHEN {expr_to_sql(condition)} THEN {expr_to_sql(value)}")
        if expr.otherwise is not None:
            parts.append(f"ELSE {expr_to_sql(expr.otherwise)}")
        parts.append("END")
        return "(" + " ".join(parts) + ")"
    if isinstance(expr, ast.FunctionCall):
        args = ", ".join(expr_to_sql(a) for a in expr.args)
        return f"{expr.name}({args})"
    if isinstance(expr, ast.AggregateCall):
        if expr.argument is None:
            return "count(*)"
        prefix = "DISTINCT " if expr.distinct else ""
        return f"{expr.func}({prefix}{expr_to_sql(expr.argument)})"
    if isinstance(expr, ast.ScalarSubquery):
        return f"({to_sql(expr.query)})"
    if isinstance(expr, ast.Exists):
        keyword = "NOT EXISTS" if expr.negated else "EXISTS"
        return f"{keyword} ({to_sql(expr.query)})"
    if isinstance(expr, ast.InSubquery):
        keyword = "NOT IN" if expr.negated else "IN"
        return f"({expr_to_sql(expr.operand)} {keyword} ({to_sql(expr.query)}))"
    if isinstance(expr, ast.QuantifiedComparison):
        return (
            f"({expr_to_sql(expr.operand)} {expr.op} {expr.quantifier.upper()} "
            f"({to_sql(expr.query)}))"
        )
    raise TypeError(f"cannot print expression {expr!r}")


def _from_item(item: ast.FromItem) -> str:
    if isinstance(item, ast.TableRef):
        if item.alias:
            return f"{item.name} AS {item.alias}"
        return item.name
    if isinstance(item, ast.DerivedTable):
        cols = f"({', '.join(item.column_aliases)})" if item.column_aliases else ""
        return f"({to_sql(item.query)}) AS {item.alias}{cols}"
    if isinstance(item, ast.Join):
        keyword = "LEFT OUTER JOIN" if item.kind == "left" else "JOIN"
        on = f" ON {expr_to_sql(item.condition)}" if item.condition is not None else ""
        if item.condition is None:
            keyword = "CROSS JOIN"
        return f"({_from_item(item.left)} {keyword} {_from_item(item.right)}{on})"
    raise TypeError(f"cannot print FROM item {item!r}")


def to_sql(body: ast.Statement) -> str:
    """Render a statement back to SQL."""
    if isinstance(body, ast.Select):
        return _select_to_sql(body)
    if isinstance(body, ast.SetOp):
        op = body.op.upper() + (" ALL" if body.all else "")
        text = f"({to_sql(body.left)}) {op} ({to_sql(body.right)})"
        text += _order_limit(body.order_by, body.limit)
        return text
    if isinstance(body, ast.CreateTable):
        defs = []
        for col in body.columns:
            suffix = " NOT NULL" if col.not_null else ""
            defs.append(f"{col.name} {col.type_name}{suffix}")
        if body.primary_key:
            defs.append(f"PRIMARY KEY ({', '.join(body.primary_key)})")
        return f"CREATE TABLE {body.name} ({', '.join(defs)})"
    if isinstance(body, ast.CreateIndex):
        unique = "UNIQUE " if body.unique else ""
        using = f" USING {body.kind.upper()}" if body.kind != "hash" else ""
        return (
            f"CREATE {unique}INDEX {body.name} ON {body.table} "
            f"({', '.join(body.columns)}){using}"
        )
    if isinstance(body, ast.DropIndex):
        return f"DROP INDEX {body.name} ON {body.table}"
    if isinstance(body, ast.CreateView):
        return f"CREATE VIEW {body.name} AS {to_sql(body.query)}"
    if isinstance(body, ast.Insert):
        cols = f" ({', '.join(body.columns)})" if body.columns else ""
        if body.query is not None:
            return f"INSERT INTO {body.table}{cols} {to_sql(body.query)}"
        rows = ", ".join(
            "(" + ", ".join(expr_to_sql(v) for v in row) + ")" for row in body.rows
        )
        return f"INSERT INTO {body.table}{cols} VALUES {rows}"
    raise TypeError(f"cannot print statement {body!r}")


def _order_limit(order_by, limit) -> str:
    text = ""
    if order_by:
        parts = [
            expr_to_sql(o.expr) + (" DESC" if o.descending else "")
            for o in order_by
        ]
        text += " ORDER BY " + ", ".join(parts)
    if limit is not None:
        text += f" LIMIT {limit}"
    return text


def _select_to_sql(select: ast.Select) -> str:
    items = []
    for item in select.items:
        text = expr_to_sql(item.expr)
        if item.alias:
            text += f" AS {item.alias}"
        items.append(text)
    parts = ["SELECT "]
    if select.distinct:
        parts.append("DISTINCT ")
    parts.append(", ".join(items))
    if select.from_items:
        parts.append(" FROM " + ", ".join(_from_item(f) for f in select.from_items))
    if select.where is not None:
        parts.append(" WHERE " + expr_to_sql(select.where))
    if select.group_by:
        parts.append(" GROUP BY " + ", ".join(expr_to_sql(e) for e in select.group_by))
    if select.having is not None:
        parts.append(" HAVING " + expr_to_sql(select.having))
    parts.append(_order_limit(select.order_by, select.limit))
    return "".join(parts)
