"""Recursive-descent parser for the supported SQL subset.

The subset covers everything the paper's queries and examples need:
SELECT blocks with correlated scalar/EXISTS/IN/ANY/ALL subqueries at any
nesting depth, derived tables (including the Starburst ``DT(cols) AS (...)``
form used in the paper's Query 3), UNION [ALL] / INTERSECT / EXCEPT,
GROUP BY / HAVING / ORDER BY / LIMIT, explicit [LEFT OUTER] JOIN ... ON,
and the DDL/DML needed to drive experiments (CREATE TABLE / INDEX / VIEW,
DROP INDEX, INSERT ... VALUES).
"""

from __future__ import annotations

from typing import Optional

from ..errors import ParseError
from . import ast
from .lexer import Token, TokenKind, tokenize

#: Words that terminate clause parsing and therefore cannot be bare aliases.
_RESERVED = {
    "SELECT", "FROM", "WHERE", "GROUP", "HAVING", "ORDER", "LIMIT", "ON",
    "UNION", "INTERSECT", "EXCEPT", "JOIN", "LEFT", "RIGHT", "INNER", "OUTER",
    "CROSS", "AS", "AND", "OR", "NOT", "IN", "IS", "LIKE", "BETWEEN",
    "EXISTS", "ANY", "SOME", "ALL", "DISTINCT", "NULL", "VALUES", "SET",
    "BY", "ASC", "DESC", "CASE", "WHEN", "THEN", "ELSE", "END",
}

_TYPE_NAMES = {
    "INT": "INT", "INTEGER": "INT", "SMALLINT": "INT", "BIGINT": "INT",
    "FLOAT": "FLOAT", "DOUBLE": "FLOAT", "REAL": "FLOAT", "DECIMAL": "FLOAT",
    "NUMERIC": "FLOAT",
    "VARCHAR": "STR", "CHAR": "STR", "TEXT": "STR", "STRING": "STR",
    "BOOL": "BOOL", "BOOLEAN": "BOOL",
    "DATE": "DATE",
}

_COMPARISON_OPS = {"=", "<>", "!=", "<", "<=", ">", ">="}


class _Parser:
    """Token-stream cursor with the grammar productions as methods."""

    def __init__(self, text: str):
        self.tokens = tokenize(text)
        self.pos = 0
        #: ``?`` placeholders seen so far; markers are numbered in source
        #: order, matching the plan cache's literal-extraction order.
        self._param_count = 0

    # -- cursor helpers ----------------------------------------------------

    def peek(self, offset: int = 0) -> Token:
        index = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def advance(self) -> Token:
        token = self.tokens[self.pos]
        if token.kind is not TokenKind.EOF:
            self.pos += 1
        return token

    def error(self, message: str) -> ParseError:
        token = self.peek()
        where = f"line {token.line}, column {token.column}"
        got = token.text or "<end of input>"
        span = ast.Span(token.position, token.end, token.line, token.column)
        return ParseError(f"{message} at {where} (got {got!r})", span=span)

    def _spanned(self, node, start_token: Token):
        """Stamp ``node`` with the source range from ``start_token`` to the
        most recently consumed token (see :func:`repro.sql.ast.set_span`)."""
        last = self.tokens[max(self.pos - 1, 0)]
        end = max(last.end, start_token.position + 1)
        return ast.set_span(
            node,
            ast.Span(start_token.position, end, start_token.line, start_token.column),
        )

    def at_keyword(self, *words: str) -> bool:
        return any(self.peek().matches_keyword(w) for w in words)

    def accept_keyword(self, word: str) -> bool:
        if self.peek().matches_keyword(word):
            self.advance()
            return True
        return False

    def expect_keyword(self, word: str) -> Token:
        if not self.peek().matches_keyword(word):
            raise self.error(f"expected {word}")
        return self.advance()

    def at_symbol(self, symbol: str) -> bool:
        token = self.peek()
        return token.kind is TokenKind.SYMBOL and token.text == symbol

    def accept_symbol(self, symbol: str) -> bool:
        if self.at_symbol(symbol):
            self.advance()
            return True
        return False

    def expect_symbol(self, symbol: str) -> Token:
        if not self.at_symbol(symbol):
            raise self.error(f"expected {symbol!r}")
        return self.advance()

    def expect_ident(self, what: str = "identifier") -> str:
        token = self.peek()
        if token.kind is not TokenKind.IDENT:
            raise self.error(f"expected {what}")
        self.advance()
        return token.text.lower()

    def expect_alias(self) -> str:
        """An alias: an identifier that is not a reserved word (so that
        ``SELECT a AS FROM t`` fails at the AS, not three tokens later)."""
        token = self.peek()
        if token.kind is not TokenKind.IDENT or token.text.upper() in _RESERVED:
            raise self.error("expected alias")
        self.advance()
        return token.text.lower()

    # -- statements ----------------------------------------------------------

    def parse_statement(self) -> ast.Statement:
        if self.at_keyword("CREATE"):
            return self._create()
        if self.at_keyword("DROP"):
            return self._drop()
        if self.at_keyword("INSERT"):
            return self._insert()
        return self.parse_query()

    def _create(self) -> ast.Statement:
        self.expect_keyword("CREATE")
        if self.accept_keyword("TABLE"):
            return self._create_table()
        if self.at_keyword("UNIQUE", "INDEX"):
            return self._create_index()
        if self.accept_keyword("VIEW"):
            return self._create_view()
        raise self.error("expected TABLE, INDEX or VIEW after CREATE")

    def _create_table(self) -> ast.CreateTable:
        name = self.expect_ident("table name")
        self.expect_symbol("(")
        columns: list[ast.ColumnDef] = []
        primary_key: tuple[str, ...] = ()
        while True:
            if self.at_keyword("PRIMARY"):
                self.advance()
                self.expect_keyword("KEY")
                self.expect_symbol("(")
                primary_key = tuple(self._ident_list())
                self.expect_symbol(")")
            else:
                col_name = self.expect_ident("column name")
                type_token = self.expect_ident("type name").upper()
                if type_token not in _TYPE_NAMES:
                    raise self.error(f"unknown type {type_token}")
                if self.accept_symbol("("):  # VARCHAR(n) - length is ignored
                    self.advance()
                    self.expect_symbol(")")
                not_null = False
                if self.accept_keyword("NOT"):
                    self.expect_keyword("NULL")
                    not_null = True
                if self.accept_keyword("PRIMARY"):
                    self.expect_keyword("KEY")
                    primary_key = (col_name,)
                    not_null = True
                columns.append(ast.ColumnDef(col_name, _TYPE_NAMES[type_token], not_null))
            if not self.accept_symbol(","):
                break
        self.expect_symbol(")")
        return ast.CreateTable(name, tuple(columns), primary_key)

    def _create_index(self) -> ast.CreateIndex:
        unique = self.accept_keyword("UNIQUE")
        self.expect_keyword("INDEX")
        name = self.expect_ident("index name")
        self.expect_keyword("ON")
        table = self.expect_ident("table name")
        self.expect_symbol("(")
        columns = tuple(self._ident_list())
        self.expect_symbol(")")
        kind = "hash"
        if self.accept_keyword("USING"):
            kind_word = self.expect_ident("index kind")
            if kind_word not in ("hash", "sorted"):
                raise self.error("index kind must be HASH or SORTED")
            kind = kind_word
        return ast.CreateIndex(name, table, columns, unique=unique, kind=kind)

    def _drop(self) -> ast.DropIndex:
        self.expect_keyword("DROP")
        self.expect_keyword("INDEX")
        name = self.expect_ident("index name")
        self.expect_keyword("ON")
        table = self.expect_ident("table name")
        return ast.DropIndex(name, table)

    def _create_view(self) -> ast.CreateView:
        name = self.expect_ident("view name")
        self.expect_keyword("AS")
        query = self.parse_query()
        return ast.CreateView(name, query)

    def _insert(self) -> ast.Insert:
        self.expect_keyword("INSERT")
        self.expect_keyword("INTO")
        table = self.expect_ident("table name")
        columns: tuple[str, ...] = ()
        if self.accept_symbol("("):
            columns = tuple(self._ident_list())
            self.expect_symbol(")")
        if self.at_keyword("SELECT") or self._starts_query_here():
            return ast.Insert(table, columns, (), self.parse_query())
        self.expect_keyword("VALUES")
        rows: list[tuple[ast.Expr, ...]] = []
        while True:
            self.expect_symbol("(")
            row = [self.parse_expr()]
            while self.accept_symbol(","):
                row.append(self.parse_expr())
            self.expect_symbol(")")
            rows.append(tuple(row))
            if not self.accept_symbol(","):
                break
        return ast.Insert(table, columns, tuple(rows))

    def _ident_list(self) -> list[str]:
        names = [self.expect_ident()]
        while self.accept_symbol(","):
            names.append(self.expect_ident())
        return names

    # -- queries ---------------------------------------------------------------

    def parse_query(self) -> ast.QueryBody:
        body = self._query_term()
        while self.at_keyword("UNION", "INTERSECT", "EXCEPT"):
            op = self.advance().text.lower()
            all_flag = self.accept_keyword("ALL")
            right = self._query_term()
            body = ast.SetOp(op, all_flag, body, right)
        order_by, limit = self._order_limit()
        if order_by or limit is not None:
            if isinstance(body, ast.Select):
                body = ast.Select(
                    items=body.items, from_items=body.from_items,
                    where=body.where, group_by=body.group_by,
                    having=body.having, distinct=body.distinct,
                    order_by=order_by, limit=limit,
                )
            else:
                body = ast.SetOp(body.op, body.all, body.left, body.right,
                                 order_by=order_by, limit=limit)
        return body

    def _query_term(self) -> ast.QueryBody:
        if self.accept_symbol("("):
            body = self.parse_query()
            self.expect_symbol(")")
            return body
        return self._select_core()

    def _order_limit(self) -> tuple[tuple[ast.OrderItem, ...], Optional[int]]:
        order_by: list[ast.OrderItem] = []
        limit: Optional[int] = None
        if self.accept_keyword("ORDER"):
            self.expect_keyword("BY")
            while True:
                expr = self.parse_expr()
                descending = False
                if self.accept_keyword("DESC"):
                    descending = True
                else:
                    self.accept_keyword("ASC")
                order_by.append(ast.OrderItem(expr, descending))
                if not self.accept_symbol(","):
                    break
        if self.accept_keyword("LIMIT"):
            token = self.peek()
            if token.kind is not TokenKind.NUMBER or not isinstance(token.value, int):
                raise self.error("LIMIT expects an integer")
            self.advance()
            limit = token.value
        return tuple(order_by), limit

    def _select_core(self) -> ast.Select:
        self.expect_keyword("SELECT")
        distinct = self.accept_keyword("DISTINCT")
        self.accept_keyword("ALL")
        items = [self._select_item()]
        while self.accept_symbol(","):
            items.append(self._select_item())
        from_items: tuple[ast.FromItem, ...] = ()
        where = None
        group_by: tuple[ast.Expr, ...] = ()
        having = None
        if self.accept_keyword("FROM"):
            from_list = [self._from_item()]
            while self.accept_symbol(","):
                from_list.append(self._from_item())
            from_items = tuple(from_list)
        if self.accept_keyword("WHERE"):
            where = self.parse_expr()
        if self.accept_keyword("GROUP"):
            self.expect_keyword("BY")
            exprs = [self.parse_expr()]
            while self.accept_symbol(","):
                exprs.append(self.parse_expr())
            group_by = tuple(exprs)
        if self.accept_keyword("HAVING"):
            having = self.parse_expr()
        return ast.Select(
            items=tuple(items), from_items=from_items, where=where,
            group_by=group_by, having=having, distinct=distinct,
        )

    def _select_item(self) -> ast.SelectItem:
        if self.at_symbol("*"):
            star_token = self.advance()
            return ast.SelectItem(self._spanned(ast.Star(), star_token))
        expr = self.parse_expr()
        alias = None
        if self.accept_keyword("AS"):
            alias = self.expect_alias()
        elif self._at_bare_alias():
            alias = self.expect_alias()
        return ast.SelectItem(expr, alias)

    def _at_bare_alias(self) -> bool:
        token = self.peek()
        return (
            token.kind is TokenKind.IDENT
            and token.text.upper() not in _RESERVED
        )

    # -- FROM items --------------------------------------------------------------

    def _from_item(self) -> ast.FromItem:
        item = self._from_primary()
        while True:
            if self.at_keyword("JOIN") or self.at_keyword("INNER"):
                self.accept_keyword("INNER")
                self.expect_keyword("JOIN")
                right = self._from_primary()
                self.expect_keyword("ON")
                condition = self.parse_expr()
                item = ast.Join("inner", item, right, condition)
            elif self.at_keyword("LEFT") or self.at_keyword("LOJ"):
                if not self.accept_keyword("LOJ"):
                    self.expect_keyword("LEFT")
                    self.accept_keyword("OUTER")
                    self.expect_keyword("JOIN")
                right = self._from_primary()
                self.expect_keyword("ON")
                condition = self.parse_expr()
                item = ast.Join("left", item, right, condition)
            elif self.accept_keyword("CROSS"):
                self.expect_keyword("JOIN")
                right = self._from_primary()
                item = ast.Join("inner", item, right, None)
            else:
                return item

    def _from_primary(self) -> ast.FromItem:
        start = self.peek()
        return self._spanned(self._from_primary_inner(), start)

    def _from_primary_inner(self) -> ast.FromItem:
        if self.at_symbol("("):
            # Either a parenthesised join/table or a derived table body.
            if self._paren_starts_query():
                self.expect_symbol("(")
                query = self.parse_query()
                self.expect_symbol(")")
                alias, column_aliases = self._derived_alias(required=True)
                return ast.DerivedTable(query, alias, column_aliases)
            self.expect_symbol("(")
            item = self._from_item()
            self.expect_symbol(")")
            return item
        name = self.expect_ident("table name")
        # Starburst derived-table syntax: name(cols) AS (query)
        if self.at_symbol("(") and self._starburst_derived_follows():
            self.expect_symbol("(")
            column_aliases = tuple(self._ident_list())
            self.expect_symbol(")")
            self.expect_keyword("AS")
            self.expect_symbol("(")
            query = self.parse_query()
            self.expect_symbol(")")
            return ast.DerivedTable(query, name, column_aliases)
        alias = None
        if self.accept_keyword("AS"):
            alias = self.expect_alias()
        elif self._at_bare_alias():
            alias = self.expect_alias()
        return ast.TableRef(name, alias)

    def _paren_starts_query(self) -> bool:
        """Does the upcoming parenthesised group contain a query body?"""
        offset = 0
        while self.peek(offset).kind is TokenKind.SYMBOL and self.peek(offset).text == "(":
            offset += 1
        return self.peek(offset).matches_keyword("SELECT")

    def _starburst_derived_follows(self) -> bool:
        """After ``name`` and at ``(``: is this ``name(cols) AS (query)``?

        Scans forward past a balanced identifier list to look for ``AS (``.
        """
        offset = 1  # past '('
        # Identifier list: IDENT (, IDENT)*
        while True:
            if self.peek(offset).kind is not TokenKind.IDENT:
                return False
            offset += 1
            if self.peek(offset).kind is TokenKind.SYMBOL and self.peek(offset).text == ",":
                offset += 1
                continue
            break
        if not (self.peek(offset).kind is TokenKind.SYMBOL and self.peek(offset).text == ")"):
            return False
        offset += 1
        if not self.peek(offset).matches_keyword("AS"):
            return False
        offset += 1
        return self.peek(offset).kind is TokenKind.SYMBOL and self.peek(offset).text == "("

    def _derived_alias(self, required: bool) -> tuple[str, tuple[str, ...]]:
        self.accept_keyword("AS")
        if not self._at_bare_alias():
            if required:
                raise self.error("derived table requires an alias")
            return "", ()
        alias = self.expect_alias()
        column_aliases: tuple[str, ...] = ()
        if self.accept_symbol("("):
            column_aliases = tuple(self._ident_list())
            self.expect_symbol(")")
        return alias, column_aliases

    # -- expressions ---------------------------------------------------------

    def parse_expr(self) -> ast.Expr:
        return self._or_expr()

    def _or_expr(self) -> ast.Expr:
        items = [self._and_expr()]
        while self.accept_keyword("OR"):
            items.append(self._and_expr())
        if len(items) == 1:
            return items[0]
        return ast.Or(tuple(items))

    def _and_expr(self) -> ast.Expr:
        items = [self._not_expr()]
        while self.accept_keyword("AND"):
            items.append(self._not_expr())
        if len(items) == 1:
            return items[0]
        return ast.And(tuple(items))

    def _not_expr(self) -> ast.Expr:
        if self.accept_keyword("NOT"):
            return ast.Not(self._not_expr())
        return self._predicate()

    def _predicate(self) -> ast.Expr:
        start = self.peek()
        return self._spanned(self._predicate_inner(), start)

    def _predicate_inner(self) -> ast.Expr:
        left = self._additive()
        token = self.peek()
        if token.kind is TokenKind.SYMBOL and token.text in _COMPARISON_OPS:
            op = self.advance().text
            if op == "!=":
                op = "<>"
            if self.at_keyword("ANY", "SOME", "ALL"):
                quantifier = "all" if self.advance().text.lower() == "all" else "any"
                self.expect_symbol("(")
                query = self.parse_query()
                self.expect_symbol(")")
                return ast.QuantifiedComparison(op, left, quantifier, query)
            right = self._additive()
            return ast.Comparison(op, left, right)
        negated = False
        if self.at_keyword("NOT") and self.peek(1).kind is TokenKind.IDENT and \
                self.peek(1).text.upper() in ("IN", "LIKE", "BETWEEN"):
            self.advance()
            negated = True
        if self.accept_keyword("IS"):
            is_negated = self.accept_keyword("NOT")
            self.expect_keyword("NULL")
            return ast.IsNull(left, negated=is_negated)
        if self.accept_keyword("BETWEEN"):
            low = self._additive()
            self.expect_keyword("AND")
            high = self._additive()
            return ast.Between(left, low, high, negated=negated)
        if self.accept_keyword("LIKE"):
            pattern = self._additive()
            return ast.Like(left, pattern, negated=negated)
        if self.accept_keyword("IN"):
            self.expect_symbol("(")
            if self._starts_query_here():
                query = self.parse_query()
                self.expect_symbol(")")
                return ast.InSubquery(left, query, negated=negated)
            items = [self.parse_expr()]
            while self.accept_symbol(","):
                items.append(self.parse_expr())
            self.expect_symbol(")")
            return ast.InList(left, tuple(items), negated=negated)
        if negated:
            raise self.error("expected IN, LIKE or BETWEEN after NOT")
        return left

    def _starts_query_here(self) -> bool:
        offset = 0
        while self.peek(offset).kind is TokenKind.SYMBOL and self.peek(offset).text == "(":
            offset += 1
        return self.peek(offset).matches_keyword("SELECT")

    def _additive(self) -> ast.Expr:
        left = self._multiplicative()
        while True:
            token = self.peek()
            if token.kind is TokenKind.SYMBOL and token.text in ("+", "-", "||"):
                op = self.advance().text
                right = self._multiplicative()
                left = ast.BinaryOp(op, left, right)
            else:
                return left

    def _multiplicative(self) -> ast.Expr:
        left = self._unary()
        while True:
            token = self.peek()
            if token.kind is TokenKind.SYMBOL and token.text in ("*", "/"):
                op = self.advance().text
                right = self._unary()
                left = ast.BinaryOp(op, left, right)
            else:
                return left

    def _unary(self) -> ast.Expr:
        if self.accept_symbol("-"):
            operand = self._unary()
            if isinstance(operand, ast.Literal) and isinstance(operand.value, (int, float)):
                return ast.Literal(-operand.value)
            return ast.UnaryMinus(operand)
        self.accept_symbol("+")
        return self._primary()

    def _primary(self) -> ast.Expr:
        start = self.peek()
        return self._spanned(self._primary_inner(), start)

    def _primary_inner(self) -> ast.Expr:
        token = self.peek()
        if token.kind is TokenKind.NUMBER or token.kind is TokenKind.STRING:
            self.advance()
            return ast.Literal(token.value)
        if token.kind is TokenKind.SYMBOL and token.text == "?":
            self.advance()
            index = self._param_count
            self._param_count += 1
            return ast.Parameter(index)
        if token.matches_keyword("NULL"):
            self.advance()
            return ast.Literal(None)
        if token.matches_keyword("TRUE"):
            self.advance()
            return ast.Literal(True)
        if token.matches_keyword("FALSE"):
            self.advance()
            return ast.Literal(False)
        if token.matches_keyword("EXISTS"):
            self.advance()
            self.expect_symbol("(")
            query = self.parse_query()
            self.expect_symbol(")")
            return ast.Exists(query)
        if token.matches_keyword("CASE"):
            return self._case()
        if self.at_symbol("("):
            if self._starts_query_after_paren():
                self.expect_symbol("(")
                query = self.parse_query()
                self.expect_symbol(")")
                return ast.ScalarSubquery(query)
            self.expect_symbol("(")
            expr = self.parse_expr()
            self.expect_symbol(")")
            return expr
        if token.kind is TokenKind.IDENT:
            if token.text.upper() in _RESERVED:
                raise self.error("expected an expression")
            return self._name_or_call()
        raise self.error("expected an expression")

    def _starts_query_after_paren(self) -> bool:
        offset = 0
        while self.peek(offset).kind is TokenKind.SYMBOL and self.peek(offset).text == "(":
            offset += 1
        return self.peek(offset).matches_keyword("SELECT")

    def _case(self) -> ast.Expr:
        """Searched CASE: ``CASE WHEN cond THEN value [...] [ELSE value] END``."""
        self.expect_keyword("CASE")
        if not self.at_keyword("WHEN"):
            raise self.error(
                "only searched CASE (CASE WHEN ...) is supported"
            )
        whens: list[tuple[ast.Expr, ast.Expr]] = []
        while self.accept_keyword("WHEN"):
            condition = self.parse_expr()
            self.expect_keyword("THEN")
            whens.append((condition, self.parse_expr()))
        otherwise = None
        if self.accept_keyword("ELSE"):
            otherwise = self.parse_expr()
        self.expect_keyword("END")
        return ast.Case(tuple(whens), otherwise)

    def _name_or_call(self) -> ast.Expr:
        first = self.expect_ident()
        if self.at_symbol("("):
            return self._call(first)
        parts = [first]
        while self.at_symbol("."):
            if self.peek(1).kind is TokenKind.SYMBOL and self.peek(1).text == "*":
                self.advance()  # '.'
                self.advance()  # '*'
                return ast.Star(qualifier=parts[0] if len(parts) == 1 else ".".join(parts))
            self.advance()
            parts.append(self.expect_ident("column name"))
        return ast.Name(tuple(parts))

    def _call(self, name: str) -> ast.Expr:
        self.expect_symbol("(")
        if name in ast.AGGREGATE_FUNCTIONS:
            if name == "count" and self.at_symbol("*"):
                self.advance()
                self.expect_symbol(")")
                return ast.AggregateCall("count", None)
            distinct = self.accept_keyword("DISTINCT")
            argument = self.parse_expr()
            self.expect_symbol(")")
            return ast.AggregateCall(name, argument, distinct=distinct)
        args: list[ast.Expr] = []
        if not self.at_symbol(")"):
            args.append(self.parse_expr())
            while self.accept_symbol(","):
                args.append(self.parse_expr())
        self.expect_symbol(")")
        return ast.FunctionCall(name, tuple(args))


def parse_statement(text: str) -> ast.Statement:
    """Parse a single SQL statement; trailing ``;`` is allowed."""
    parser = _Parser(text)
    statement = parser.parse_statement()
    parser.accept_symbol(";")
    if parser.peek().kind is not TokenKind.EOF:
        raise parser.error("unexpected trailing input")
    return statement


def parse_statements(text: str) -> list[ast.Statement]:
    """Parse a ``;``-separated script."""
    parser = _Parser(text)
    statements: list[ast.Statement] = []
    while parser.peek().kind is not TokenKind.EOF:
        statements.append(parser.parse_statement())
        while parser.accept_symbol(";"):
            pass
    return statements


def parse_expression(text: str) -> ast.Expr:
    """Parse a standalone expression (used by tests and the REPL example)."""
    parser = _Parser(text)
    expr = parser.parse_expr()
    if parser.peek().kind is not TokenKind.EOF:
        raise parser.error("unexpected trailing input")
    return expr
