"""SQL front-end: lexer, AST, recursive-descent parser and SQL printer."""

from .lexer import Token, TokenKind, tokenize
from .parser import parse_expression, parse_statement, parse_statements
from .printer import to_sql

__all__ = [
    "Token",
    "TokenKind",
    "tokenize",
    "parse_statement",
    "parse_statements",
    "parse_expression",
    "to_sql",
]
