"""One-shot Markdown report of the full evaluation.

``python -m repro report --scale 0.01 --out report.md`` regenerates every
table and figure of the paper at the chosen scale and writes a
self-contained Markdown document: Table 1, one section per figure with the
measured sweep table and the qualitative claim checklist, the section 6
parallel sweep, and the CSE ablation. EXPERIMENTS.md in this repository
was assembled from exactly these runs.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..api import Database, Strategy
from ..tpcd import QUERY_1, load_empdept, load_tpcd
from .figures import ALL_FIGURES, FigureReport, table1
from .harness import BenchResult


def _markdown_table(results: Sequence[BenchResult]) -> list[str]:
    lines = [
        "| strategy | time [s] | invocations | work | materialized | rows |",
        "|---|---:|---:|---:|---:|---:|",
    ]
    for result in results:
        if not result.applicable:
            lines.append(
                f"| {result.label} | n/a — {result.reason} | | | | |"
            )
            continue
        lines.append(
            f"| {result.label} | {result.seconds:.4f} "
            f"| {result.metrics.subquery_invocations} "
            f"| {result.work()} | {result.metrics.rows_materialized} "
            f"| {result.n_rows} |"
        )
    return lines


def _figure_section(report: FigureReport) -> list[str]:
    lines = [f"## {report.name} — {report.description}", ""]
    lines.extend(_markdown_table(report.results))
    lines.append("")
    for claim, ok in report.shape:
        lines.append(f"- {'✅' if ok else '❌'} {claim}")
    lines.append("")
    return lines


def _parallel_section() -> list[str]:
    from ..parallel import simulate_decorrelated, simulate_nested_iteration

    catalog = load_empdept(n_depts=400, n_emps=8000, n_buildings=40)
    dept = list(catalog.table("dept").rows)
    emp = list(catalog.table("emp").rows)
    lines = [
        "## Section 6 — shared-nothing parallel simulation",
        "",
        "| nodes | NI fragments | NI messages | NI makespan "
        "| Mag fragments | Mag messages | Mag makespan | speedup |",
        "|---:|---:|---:|---:|---:|---:|---:|---:|",
    ]
    for n in (1, 2, 4, 8, 16):
        ni = simulate_nested_iteration(dept, emp, n)
        mag = simulate_decorrelated(dept, emp, n)
        lines.append(
            f"| {n} | {ni.fragments} | {ni.messages} | {ni.makespan:.0f} "
            f"| {mag.fragments} | {mag.messages} | {mag.makespan:.0f} "
            f"| {ni.makespan / mag.makespan:.1f}x |"
        )
    lines.append("")
    return lines


def _ablation_section(scale_factor: float) -> list[str]:
    db = Database(load_tpcd(scale_factor=scale_factor))
    recompute = db.execute(QUERY_1, strategy=Strategy.MAGIC,
                           cse_mode="recompute")
    materialize = db.execute(QUERY_1, strategy=Strategy.MAGIC,
                             cse_mode="materialize")
    return [
        "## Ablation — supplementary CSE: recompute vs materialise",
        "",
        "| cse_mode | work | boxes recomputed |",
        "|---|---:|---:|",
        f"| recompute (paper's Starburst) | {recompute.metrics.total_work()} "
        f"| {recompute.metrics.boxes_recomputed} |",
        f"| materialize | {materialize.metrics.total_work()} "
        f"| {materialize.metrics.boxes_recomputed} |",
        "",
    ]


def generate_report(
    scale_factor: float = 0.01,
    repeat: int = 1,
    figures: Optional[list[str]] = None,
    include_parallel: bool = True,
    include_ablation: bool = True,
) -> str:
    """The full evaluation as a Markdown document (returned as a string)."""
    lines = [
        "# Complex Query Decorrelation — regenerated evaluation",
        "",
        f"Scale factor {scale_factor} (the paper's database is 0.1).",
        "",
        "## Table 1 — TPC-D database",
        "",
        "| table | expected | generated |",
        "|---|---:|---:|",
    ]
    for name, (expected, actual) in table1(scale_factor).items():
        lines.append(f"| {name} | {expected} | {actual} |")
    lines.append("")
    for name, fn in ALL_FIGURES.items():
        if figures and name not in figures:
            continue
        report = fn(scale_factor=scale_factor, repeat=repeat)
        lines.extend(_figure_section(report))
    if include_parallel:
        lines.extend(_parallel_section())
    if include_ablation:
        lines.extend(_ablation_section(scale_factor))
    return "\n".join(lines)
