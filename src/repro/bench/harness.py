"""Strategy sweep harness.

Runs one query under every strategy of section 5.1 (NI, Kim, Dayal, Mag,
OptMag -- and optionally Ganski/Wong), records wall time and the engine's
hardware-independent work counters, and prints a table shaped like the
paper's figures. Inapplicable strategies (Kim/Dayal on Query 3) are
reported as such rather than skipped silently, mirroring the paper's
"Neither Kim's nor Dayal's methods can be applied".
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..api import Database, Strategy
from ..errors import NotApplicableError
from ..exec import Metrics

#: The strategy lineup of the paper's figures, in presentation order.
PAPER_STRATEGIES: tuple[Strategy, ...] = (
    Strategy.NESTED_ITERATION,
    Strategy.KIM,
    Strategy.DAYAL,
    Strategy.MAGIC,
    Strategy.MAGIC_OPT,
)


@dataclass
class BenchResult:
    """One (query, strategy) measurement."""

    strategy: Strategy
    applicable: bool
    seconds: float = 0.0
    metrics: Metrics = field(default_factory=Metrics)
    n_rows: int = 0
    reason: str = ""
    #: Per-operator breakdown (:meth:`repro.trace.Tracer.operator_summaries`
    #: layout) from a traced run; empty unless the sweep ran with
    #: ``trace=True``.
    operators: list = field(default_factory=list)

    @property
    def label(self) -> str:
        """The strategy's figure label."""
        return self.strategy.label

    def work(self) -> int:
        """The hardware-independent work counter for this run."""
        return self.metrics.total_work()


def warm(db: Database) -> None:
    """Precompute table statistics so planning cost is not measured."""
    for table in db.catalog.tables():
        db.catalog.stats(table.name)


def run_strategies(
    db: Database,
    sql: str,
    strategies: Sequence[Strategy] = PAPER_STRATEGIES,
    repeat: int = 1,
    cse_mode: str = "recompute",
    expect_rows: Optional[int] = None,
    trace: bool = False,
) -> list[BenchResult]:
    """Measure ``sql`` under each strategy (best of ``repeat`` runs).

    Each reported measurement in the paper "is the average of several
    consecutive runs"; we take the minimum, the standard choice for
    in-process microbenchmarks.

    ``trace=True`` adds one *extra* traced run per strategy (outside the
    timing loop, so the timed figures stay untraced) and attaches its
    per-operator breakdown to ``BenchResult.operators``.
    """
    warm(db)
    results: list[BenchResult] = []
    for strategy in strategies:
        try:
            best_seconds = float("inf")
            outcome = None
            for _ in range(max(1, repeat)):
                start = time.perf_counter()
                outcome = db.execute(sql, strategy=strategy, cse_mode=cse_mode)
                elapsed = time.perf_counter() - start
                best_seconds = min(best_seconds, elapsed)
            assert outcome is not None
            operators: list = []
            if trace:
                from ..trace import Tracer

                tracer = Tracer()
                db.execute(
                    sql, strategy=strategy, cse_mode=cse_mode, tracer=tracer
                )
                operators = tracer.operator_summaries()
            result = BenchResult(
                strategy=strategy,
                applicable=True,
                seconds=best_seconds,
                metrics=outcome.metrics,
                n_rows=len(outcome.rows),
                operators=operators,
            )
            if expect_rows is not None and len(outcome.rows) != expect_rows:
                result.reason = (
                    f"unexpected row count {len(outcome.rows)} != {expect_rows}"
                )
            results.append(result)
        except NotApplicableError as exc:
            results.append(
                BenchResult(strategy=strategy, applicable=False, reason=exc.reason)
            )
    return results


def render_bars(results: Sequence[BenchResult], width: int = 48) -> str:
    """ASCII bar chart of relative execution times (the figures' visual
    form). Inapplicable strategies render as a label, matching the paper's
    missing bars for Kim/Dayal on Query 3."""
    applicable = [r for r in results if r.applicable]
    if not applicable:
        return ""
    longest = max(r.seconds for r in applicable) or 1.0
    lines = []
    for result in results:
        if not result.applicable:
            lines.append(f"{result.label:<8}| (not applicable)")
            continue
        n = max(1, round(width * result.seconds / longest))
        lines.append(f"{result.label:<8}|{'#' * n} {result.seconds:.4f}s")
    return "\n".join(lines)


def print_results(title: str, results: Sequence[BenchResult]) -> str:
    """Render the sweep as a table (also returned as a string)."""
    lines = [title, "-" * len(title)]
    header = (
        f"{'strategy':<10} {'time[s]':>9} {'rel':>7} {'invocs':>8} "
        f"{'work':>10} {'scanned':>9} {'joined':>9} {'matzd':>7} {'rows':>6}"
    )
    lines.append(header)
    baseline = next(
        (r.seconds for r in results
         if r.strategy is Strategy.NESTED_ITERATION and r.applicable),
        None,
    )
    for result in results:
        if not result.applicable:
            lines.append(
                f"{result.label:<10} {'n/a':>9} {'':>7} -- not applicable: "
                f"{result.reason}"
            )
            continue
        rel = (
            f"{result.seconds / baseline:6.2f}x"
            if baseline
            else f"{'':>7}"
        )
        lines.append(
            f"{result.label:<10} {result.seconds:9.4f} {rel} "
            f"{result.metrics.subquery_invocations:>8} {result.work():>10} "
            f"{result.metrics.rows_scanned:>9} {result.metrics.rows_joined:>9} "
            f"{result.metrics.rows_materialized:>7} {result.n_rows:>6}"
        )
    text = "\n".join(lines)
    print(text)
    return text


def render_operator_breakdown(
    results: Sequence[BenchResult], top: int = 6
) -> str:
    """Per-strategy operator breakdowns (traced sweeps only): the top
    ``top`` operators of each strategy by elapsed time."""
    lines: list[str] = []
    for result in results:
        if not result.operators:
            continue
        lines.append(f"{result.label}:")
        for op in result.operators[:top]:
            work = " ".join(f"{k}={v}" for k, v in op["metrics"].items())
            lines.append(
                f"  {op['name']:<36} calls={op['calls']:>5} "
                f"rows_out={op['rows_out']:>8} "
                f"elapsed={op['elapsed_ms']:>9.3f}ms  {work}"
            )
    if not lines:
        return "(no traced runs: pass trace=True to run_strategies)"
    return "\n".join(lines)
