"""Perf-regression history: append-only benchmark records + comparison.

Every benchmark or soak run can append one schema-versioned JSON line to
``BENCH_history.jsonl`` (git SHA, seed, scale, workers, throughput,
latency percentiles, per-operator totals), building a queryable
performance timeline across commits. ``repro bench-compare`` reads the
newest matching record and flags regressions beyond a tolerance against
a named baseline (``BENCH_service.json`` by default), exiting non-zero
so CI can alert -- the observability answer to "did this commit make the
engine slower?".

Resolution order for the history path: an explicit ``path`` argument,
then the ``REPRO_BENCH_HISTORY`` environment variable (set to an empty
string to disable appends entirely), then ``BENCH_history.jsonl`` in the
current directory.
"""

from __future__ import annotations

import json
import os
import subprocess
import time
from typing import Optional

from ..errors import HistoryError

#: Record schema version (bump on breaking layout changes).
HISTORY_VERSION = 1

#: Default history file (one JSON object per line, append-only).
DEFAULT_HISTORY_PATH = "BENCH_history.jsonl"

#: Environment variable overriding the history path ("" disables).
HISTORY_ENV = "REPRO_BENCH_HISTORY"

#: Keys every record must carry; everything else is free-form.
REQUIRED_KEYS = ("version", "ts", "benchmark")

#: Baseline metrics compared by :func:`compare`: (key, direction) where
#: direction +1 means higher-is-better (throughput) and -1 means
#: lower-is-better (latency).
COMPARE_METRICS: tuple[tuple[str, int], ...] = (
    ("throughput_qps", +1),
    ("latency_p50_ms", -1),
    ("latency_p95_ms", -1),
    # Per-phase mean milliseconds (see repro.obs.phases) -- present only
    # on records from phase-accounted soaks; compare() skips a phase
    # absent from either side, so pre-phase baselines stay comparable.
    ("phase_admit_ms_avg", -1),
    ("phase_queue_ms_avg", -1),
    ("phase_plan_cache_ms_avg", -1),
    ("phase_rewrite_ms_avg", -1),
    ("phase_optimize_ms_avg", -1),
    ("phase_execute_ms_avg", -1),
    ("phase_drain_ms_avg", -1),
)


def git_sha() -> str:
    """The current short commit SHA, or ``""`` outside a git checkout
    (history must never fail a benchmark run)."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return ""
    return out.stdout.strip() if out.returncode == 0 else ""


def make_record(benchmark: str, **fields) -> dict:
    """A schema-versioned history record for one benchmark run.

    ``benchmark`` names the run (e.g. ``"service_soak"``); ``fields``
    carries the measurements (seed, scale, workers, throughput_qps,
    latency_p50_ms, latency_p95_ms, operator_totals, ...). ``ts`` and
    ``git_sha`` may be supplied explicitly (deterministic tests) and
    default to now / the current checkout.
    """
    record = {
        "version": HISTORY_VERSION,
        "ts": fields.pop("ts", None),
        "git_sha": fields.pop("git_sha", None),
        "benchmark": benchmark,
    }
    if record["ts"] is None:
        record["ts"] = round(time.time(), 3)
    if record["git_sha"] is None:
        record["git_sha"] = git_sha()
    record.update(fields)
    validate_record(record)
    return record


def validate_record(record) -> None:
    """Raise :class:`~repro.errors.HistoryError` unless ``record`` is a
    well-formed history record (envelope keys present and typed; every
    value JSON-serialisable)."""
    if not isinstance(record, dict):
        raise HistoryError(f"history record must be an object, got "
                           f"{type(record).__name__}")
    for key in REQUIRED_KEYS:
        if key not in record:
            raise HistoryError(f"history record missing {key!r}")
    version = record["version"]
    if not isinstance(version, int) or isinstance(version, bool):
        raise HistoryError(f"history record version must be an int, "
                           f"got {version!r}")
    if version != HISTORY_VERSION:
        raise HistoryError(
            f"unsupported history record version {version!r} "
            f"(this build reads version {HISTORY_VERSION})"
        )
    ts = record["ts"]
    if isinstance(ts, bool) or not isinstance(ts, (int, float)) or ts < 0:
        raise HistoryError(f"history record ts must be a non-negative "
                           f"number, got {ts!r}")
    name = record["benchmark"]
    if not isinstance(name, str) or not name:
        raise HistoryError(f"history record benchmark must be a non-empty "
                           f"string, got {name!r}")
    try:
        json.dumps(record)
    except (TypeError, ValueError) as exc:
        raise HistoryError(
            f"history record is not JSON-serialisable: {exc}"
        ) from None


def resolve_path(path: Optional[str] = None) -> Optional[str]:
    """The history file to use: explicit ``path``, else
    ``REPRO_BENCH_HISTORY`` (empty string disables -> ``None``), else
    :data:`DEFAULT_HISTORY_PATH`."""
    if path is not None:
        return path
    env = os.environ.get(HISTORY_ENV)
    if env is not None:
        return env.strip() or None
    return DEFAULT_HISTORY_PATH


def append_record(record: dict, path: Optional[str] = None) -> Optional[str]:
    """Validate and append one record (one JSON line) to the history
    file; returns the path written, or ``None`` when history is disabled
    via ``REPRO_BENCH_HISTORY=""``."""
    validate_record(record)
    target = resolve_path(path)
    if target is None:
        return None
    with open(target, "a", encoding="utf-8") as handle:
        handle.write(json.dumps(record, sort_keys=True) + "\n")
    return target


def load_history(path: str) -> list[dict]:
    """Every record in a history file, validated; raises
    :class:`~repro.errors.HistoryError` naming the first bad line."""
    records: list[dict] = []
    try:
        with open(path, "r", encoding="utf-8") as handle:
            lines = handle.readlines()
    except OSError as exc:
        raise HistoryError(f"cannot read history {path!r}: {exc}") from None
    for number, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except ValueError as exc:
            raise HistoryError(
                f"{path}:{number}: not valid JSON: {exc}"
            ) from None
        try:
            validate_record(record)
        except HistoryError as exc:
            raise HistoryError(f"{path}:{number}: {exc}") from None
        records.append(record)
    return records


def latest(records: list[dict], benchmark: Optional[str] = None) -> dict:
    """The newest record (optionally restricted to one benchmark name);
    raises :class:`~repro.errors.HistoryError` when there is none."""
    candidates = [
        r for r in records
        if benchmark is None or r["benchmark"] == benchmark
    ]
    if not candidates:
        scope = f" for benchmark {benchmark!r}" if benchmark else ""
        raise HistoryError(f"no history records{scope}")
    return candidates[-1]


def compare(
    current: dict, baseline: dict, tolerance: float = 0.2
) -> list[str]:
    """Regressions of ``current`` against ``baseline``, as human-readable
    strings (empty = within tolerance).

    Checks every metric in :data:`COMPARE_METRICS` present in *both*
    records: throughput may drop at most ``tolerance`` (fractional)
    below baseline, latencies may rise at most ``tolerance`` above.
    Metrics absent from either side are skipped -- a baseline without
    operator data cannot fail on it.
    """
    if not 0 <= tolerance:
        raise HistoryError(f"tolerance must be >= 0, got {tolerance}")
    problems: list[str] = []
    for key, direction in COMPARE_METRICS:
        base = baseline.get(key)
        value = current.get(key)
        if base is None or value is None:
            continue
        if isinstance(base, bool) or not isinstance(base, (int, float)):
            raise HistoryError(f"baseline {key} must be a number, "
                               f"got {base!r}")
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise HistoryError(f"current {key} must be a number, "
                               f"got {value!r}")
        if direction > 0:
            floor = base * (1 - tolerance)
            if value < floor:
                problems.append(
                    f"{key} regressed: {value} < {round(floor, 3)} "
                    f"(baseline {base}, tolerance {tolerance:.0%})"
                )
        else:
            ceiling = base * (1 + tolerance)
            if value > ceiling:
                problems.append(
                    f"{key} regressed: {value} > {round(ceiling, 3)} "
                    f"(baseline {base}, tolerance {tolerance:.0%})"
                )
    return problems


def phase_totals_from_stats(stats) -> dict:
    """Per-phase mean milliseconds (``phase_<name>_ms_avg``) from a
    :class:`~repro.serve.soak.ServiceStats` phase-histogram export --
    the keys ``repro bench-compare`` gates per-phase regressions on.
    Empty when the run was not phase-accounted."""
    fields: dict = {}
    for name, data in (getattr(stats, "phase_histograms", None) or {}).items():
        count = data.get("count", 0)
        if count:
            fields[f"phase_{name}_ms_avg"] = round(
                data["sum"] / count * 1000.0, 3
            )
    return fields


def record_from_soak(report, benchmark: str = "service_soak",
                     **fields) -> dict:
    """A history record distilled from a
    :class:`~repro.serve.soak.SoakReport` (throughput, percentiles,
    outcome counters, per-operator totals, per-phase means)."""
    stats = report.stats
    operator_totals = {
        op["name"]: op.get("elapsed_ms", 0.0)
        for op in (report.operator_totals or [])
    }
    return make_record(
        benchmark,
        **phase_totals_from_stats(stats),
        seconds=round(report.seconds, 3),
        throughput_qps=round(report.throughput(), 2),
        latency_p50_ms=stats.latency_p50_ms,
        latency_p95_ms=stats.latency_p95_ms,
        submitted=stats.submitted,
        completed=stats.completed,
        failed=stats.failed,
        cancelled=stats.cancelled,
        rejected=stats.rejected,
        ok=report.ok,
        operator_totals=operator_totals,
        **fields,
    )
