"""Measured-vs-simulated calibration of the section-6 parallel claim.

The simulator (:mod:`repro.parallel.simulate`) prices the paper's
shared-nothing execution strategies in abstract cost units; the real
executor (:mod:`repro.parallel.workers`) measures them in seconds on
worker processes. This module runs both over the same data and the same
cluster size and reports how well the simulation predicts reality.

Two comparisons, deliberately different in strength:

* **Messages** are directly comparable: both sides count point-to-point
  messages under the same batching and the same crc32 placement, so in a
  fault-free run the measured count must *equal* the simulated count --
  a closed-loop check that the executor implements exactly the exchange
  plan the simulator priced (``messages_exact``).
* **Makespans** live in different units (cost units vs. seconds), so the
  comparison is unit-free: the *advantage ratio* ``NI makespan /
  decorrelated makespan`` from each side, scored with the q-error
  ``max(a/b, b/a)`` familiar from cardinality-estimation work -- a
  q-error of 1.0 means the simulator predicts the measured speedup
  perfectly; 2.0 means it is off by at most 2x in either direction.

:func:`run_calibration` produces the report and (optionally) appends one
``parallel_section6`` record per strategy plus one ``parallel_calibration``
record to ``BENCH_history.jsonl`` -- the measured rows the acceptance
criterion asks for.
"""

from __future__ import annotations

from typing import Optional

from ..parallel import (
    run_real_decorrelated,
    run_real_nested_iteration,
    simulate_decorrelated,
    simulate_nested_iteration,
)
from .history import append_record, make_record


def qerror(a: float, b: float) -> float:
    """The symmetric ratio error ``max(a/b, b/a)`` (1.0 = perfect); inf
    when exactly one side is zero, 1.0 when both are."""
    if a == b:
        return 1.0
    if a <= 0 or b <= 0:
        return float("inf")
    return max(a / b, b / a)


def run_calibration(
    dept_rows: list,
    emp_rows: list,
    n_workers: int = 4,
    budget_limit: float = 10000.0,
    faults=None,
    events=None,
    history_path: Optional[str] = None,
    record_history: bool = True,
    **pool_kwargs,
) -> dict:
    """Run NI and the decorrelated plan both simulated and measured.

    Returns the calibration report (see module docstring); with
    ``record_history=True`` also appends the per-strategy measured rows
    and the calibration summary to the benchmark history. ``faults`` (a
    :class:`~repro.faults.FaultRegistry`) applies to the *measured* runs
    only -- the simulated side stays fault-free as the prediction being
    tested; with faults injected, ``messages_exact`` is expected to be
    False (recovery traffic is real) and is reported, not asserted.
    """
    sim_ni = simulate_nested_iteration(
        dept_rows, emp_rows, n_workers, budget_limit=budget_limit
    )
    sim_mag = simulate_decorrelated(
        dept_rows, emp_rows, n_workers, budget_limit=budget_limit
    )
    real_ni = run_real_nested_iteration(
        dept_rows, emp_rows, n_workers, budget_limit=budget_limit,
        faults=faults.replica() if faults is not None else None,
        events=events, **pool_kwargs,
    )
    real_mag = run_real_decorrelated(
        dept_rows, emp_rows, n_workers, budget_limit=budget_limit,
        faults=faults.replica() if faults is not None else None,
        events=events, **pool_kwargs,
    )

    answers_agree = (
        sorted(sim_ni.answer) == sorted(sim_mag.answer)
        == real_ni.answer == real_mag.answer
    )
    sim_advantage = (
        sim_ni.makespan / sim_mag.makespan if sim_mag.makespan > 0 else 0.0
    )
    measured_advantage = (
        real_ni.makespan / real_mag.makespan
        if real_mag.makespan > 0 else 0.0
    )
    report = {
        "n_workers": n_workers,
        "dept_rows": len(dept_rows),
        "emp_rows": len(emp_rows),
        "faulty": faults is not None,
        "answers_agree": answers_agree,
        "simulated": {
            "ni": {"makespan": sim_ni.makespan,
                   "messages": sim_ni.messages,
                   "fragments": sim_ni.fragments},
            "decorrelated": {"makespan": sim_mag.makespan,
                             "messages": sim_mag.messages,
                             "fragments": sim_mag.fragments},
            "advantage": round(sim_advantage, 4),
        },
        "measured": {
            "ni": _measured_dict(real_ni),
            "decorrelated": _measured_dict(real_mag),
            "advantage": round(measured_advantage, 4),
        },
        "calibration": {
            # Message counts must match exactly in a fault-free run.
            "messages_exact": (
                real_ni.messages == sim_ni.messages
                and real_mag.messages == sim_mag.messages
            ),
            "ni_message_qerror": qerror(real_ni.messages, sim_ni.messages),
            "decorrelated_message_qerror": qerror(
                real_mag.messages, sim_mag.messages
            ),
            # Unit-free: does the simulator predict the measured speedup?
            "advantage_qerror": round(
                qerror(measured_advantage, sim_advantage), 4
            ),
        },
    }
    if record_history:
        for run in (real_ni, real_mag):
            append_record(
                make_record(
                    "parallel_section6",
                    strategy=run.strategy,
                    n_workers=run.n_workers,
                    makespan_s=round(run.makespan, 6),
                    messages=run.messages,
                    fragments=run.fragments,
                    rows_processed=run.rows_processed,
                    retries=run.retries,
                    workers_lost=run.workers_lost,
                    recovery_time_s=round(run.recovery_time, 6),
                    degraded=run.degraded,
                    faulty=faults is not None,
                ),
                path=history_path,
            )
        append_record(
            make_record(
                "parallel_calibration",
                n_workers=n_workers,
                answers_agree=answers_agree,
                simulated_advantage=round(sim_advantage, 4),
                measured_advantage=round(measured_advantage, 4),
                advantage_qerror=report["calibration"]["advantage_qerror"],
                messages_exact=report["calibration"]["messages_exact"],
                faulty=faults is not None,
            ),
            path=history_path,
        )
    return report


def _measured_dict(run) -> dict:
    return {
        "makespan": round(run.makespan, 6),
        "messages": run.messages,
        "fragments": run.fragments,
        "retries": run.retries,
        "workers_lost": run.workers_lost,
        "recovery_time": round(run.recovery_time, 6),
        "degraded": run.degraded,
    }


def render_calibration(report: dict) -> str:
    """The calibration report as a small human-readable table."""
    sim, real, cal = (
        report["simulated"], report["measured"], report["calibration"]
    )
    lines = [
        f"section-6 calibration @ {report['n_workers']} workers "
        f"({report['dept_rows']} dept x {report['emp_rows']} emp"
        f"{', faults injected' if report['faulty'] else ''})",
        f"{'':>22} {'simulated':>14} {'measured':>14}",
    ]
    for strategy in ("ni", "decorrelated"):
        lines.append(
            f"{strategy + ' makespan':>22} "
            f"{sim[strategy]['makespan']:>14.3f} "
            f"{real[strategy]['makespan']:>14.6f}"
        )
        lines.append(
            f"{strategy + ' messages':>22} "
            f"{sim[strategy]['messages']:>14} "
            f"{real[strategy]['messages']:>14}"
        )
    lines.append(
        f"{'NI/decorr ratio':>22} {sim['advantage']:>14.3f} "
        f"{real['advantage']:>14.3f}"
    )
    lines.append(
        f"messages exact: {cal['messages_exact']}   "
        f"advantage q-error: {cal['advantage_qerror']:.3f}   "
        f"answers agree: {report['answers_agree']}"
    )
    return "\n".join(lines)
