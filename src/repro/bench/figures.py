"""Regeneration of every table and figure in the paper's evaluation.

Each ``figureN`` function builds the TPC-D database at the requested scale
factor (the paper's Table 1 corresponds to ``scale_factor=0.1``), applies
the figure's specific setup (e.g. Figure 7 drops the index the correlated
invocations depend on), runs the strategy sweep, and returns a
:class:`FigureReport` whose ``check_shape()`` verifies the qualitative
claims of section 5.3.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from ..api import Database, Strategy
from ..tpcd import (
    QUERY_1,
    QUERY_1_VARIANT,
    QUERY_2,
    QUERY_3,
    load_tpcd,
)
from .harness import (
    PAPER_STRATEGIES,
    BenchResult,
    print_results,
    render_bars,
    render_operator_breakdown,
    run_strategies,
)

#: Default bench scale: 1/10 of the paper's database (which was SF = 0.1).
DEFAULT_SCALE = 0.01


@dataclass
class FigureReport:
    """Results of one figure plus its qualitative shape checks."""

    name: str
    description: str
    scale_factor: float
    results: list[BenchResult]
    #: shape claims: (claim text, holds?)
    shape: list[tuple[str, bool]] = field(default_factory=list)

    def result(self, strategy: Strategy) -> BenchResult:
        """The measurement for one strategy."""
        for result in self.results:
            if result.strategy is strategy:
                return result
        raise KeyError(strategy)

    def check(self, claim: str, holds: bool) -> None:
        """Record one of the paper's qualitative claims and whether it held."""
        self.shape.append((claim, holds))

    def shape_holds(self) -> bool:
        """Did every recorded claim hold?"""
        return all(ok for _, ok in self.shape)

    def print(self) -> str:
        """Print the sweep table, bar chart, and claim checklist."""
        text = print_results(
            f"{self.name} (scale factor {self.scale_factor}): {self.description}",
            self.results,
        )
        bars = render_bars(self.results)
        if bars:
            print(bars)
            text += "\n" + bars
        if any(r.operators for r in self.results):
            breakdown = (
                "per-operator breakdown (traced run):\n"
                + render_operator_breakdown(self.results)
            )
            print(breakdown)
            text += "\n" + breakdown
        for claim, ok in self.shape:
            line = f"  [{'ok' if ok else 'MISMATCH'}] {claim}"
            print(line)
            text += "\n" + line
        return text


def _build(scale_factor: float, seed: int = 19960226) -> Database:
    return Database(load_tpcd(scale_factor=scale_factor, seed=seed))


def table1(scale_factor: float = 0.1) -> dict[str, tuple[int, int]]:
    """Table 1: TPC-D table cardinalities -- (paper count, generated count).

    Generates the database at ``scale_factor`` (default: the paper's 0.1)
    and compares against the paper's reported row counts scaled accordingly.
    """
    paper = {
        "customers": 15_000,
        "parts": 20_000,
        "suppliers": 1_000,
        "partsupp": 80_000,
        "lineitem": 600_000,
    }
    ratio = scale_factor / 0.1
    db = _build(scale_factor)
    report: dict[str, tuple[int, int]] = {}
    for name, paper_count in paper.items():
        expected = round(paper_count * ratio)
        actual = len(db.catalog.table(name))
        report[name] = (expected, actual)
    return report


def figure5(
    scale_factor: float = DEFAULT_SCALE,
    repeat: int = 1,
    strategies: Sequence[Strategy] = PAPER_STRATEGIES,
    trace: bool = False,
) -> FigureReport:
    """Figure 5: Query 1 with all indexes present."""
    db = _build(scale_factor)
    results = run_strategies(db, QUERY_1, strategies, repeat=repeat, trace=trace)
    report = FigureReport(
        "Figure 5", "Query 1, all indexes", scale_factor, results
    )
    ni = report.result(Strategy.NESTED_ITERATION)
    mag = report.result(Strategy.MAGIC)
    opt = report.result(Strategy.MAGIC_OPT)
    kim = report.result(Strategy.KIM)
    dayal = report.result(Strategy.DAYAL)
    report.check(
        "few invocations, no duplicates",
        ni.metrics.subquery_invocations <= max(4, round(60 * scale_factor)),
    )
    report.check(
        "Kim performs unnecessary subquery computation (aggregates far more "
        "bindings than the outer block needs)",
        kim.metrics.rows_grouped > 10 * max(1, mag.metrics.rows_grouped),
    )
    if ni.metrics.subquery_invocations >= 3:
        # The paper's "slightly better" is a near-tie; in this substrate the
        # two land within ~25% of each other (work parity; see
        # EXPERIMENTS.md for the SF=0.1 numbers).
        report.check(
            "magic comparable to nested iteration (paper: slightly better)",
            mag.work() <= ni.work() * 1.25,
        )
    else:
        report.check(
            "magic vs NI crossover not evaluable below SF~0.05 (the paper's "
            "6 invocations shrink below 1); run with REPRO_BENCH_SF=0.1",
            True,
        )
    report.check(
        "Dayal performs better than magic (supplementary recomputation)",
        dayal.seconds <= mag.seconds * 1.2,
    )
    report.check(
        "the supplementary CSE cannot be eliminated here (correlation "
        "attribute is not a key of the supplementary table): OptMag == Mag",
        opt.work() == mag.work(),
    )
    return report


def figure6(
    scale_factor: float = DEFAULT_SCALE,
    repeat: int = 1,
    strategies: Sequence[Strategy] = PAPER_STRATEGIES,
    trace: bool = False,
) -> FigureReport:
    """Figure 6: Query 1 variant -- thousands of invocations, many dupes."""
    db = _build(scale_factor)
    results = run_strategies(db, QUERY_1_VARIANT, strategies, repeat=repeat, trace=trace)
    report = FigureReport(
        "Figure 6", "Query 1 variant (no p_size, two regions)", scale_factor,
        results,
    )
    ni = report.result(Strategy.NESTED_ITERATION)
    mag = report.result(Strategy.MAGIC)
    dayal = report.result(Strategy.DAYAL)
    expected_invocations = 39_540 * scale_factor
    report.check(
        "invocation count tracks the paper's 3954 (at SF 0.1)",
        0.5 * expected_invocations
        <= ni.metrics.subquery_invocations
        <= 1.6 * expected_invocations,
    )
    report.check(
        "many duplicate bindings (distinct/invocations around 2138/3954)",
        mag.metrics.subquery_invocations == 0,
    )
    report.check(
        "Dayal performs redundant aggregations (groups per outer row rather "
        "than per distinct binding)",
        dayal.metrics.rows_grouped > mag.metrics.rows_grouped,
    )
    report.check("magic decorrelation continues to perform well",
                 mag.seconds <= ni.seconds * 1.5)
    return report


def figure7(
    scale_factor: float = DEFAULT_SCALE,
    repeat: int = 1,
    strategies: Sequence[Strategy] = PAPER_STRATEGIES,
    trace: bool = False,
) -> FigureReport:
    """Figure 7: Query 1 variant with the invocation-supporting index
    dropped, "thereby increasing the work performed in each correlated
    invocation".

    As in the paper, the dropped index is PartSupp's ps_suppkey index --
    the access path each correlated invocation uses.
    """
    db = _build(scale_factor)
    db.catalog.table("partsupp").drop_index("ps_suppkey_idx")
    results = run_strategies(db, QUERY_1_VARIANT, strategies, repeat=repeat, trace=trace)
    report = FigureReport(
        "Figure 7", "Query 1 variant, invocation index dropped", scale_factor,
        results,
    )
    ni = report.result(Strategy.NESTED_ITERATION)
    mag = report.result(Strategy.MAGIC)
    kim = report.result(Strategy.KIM)
    dayal = report.result(Strategy.DAYAL)
    report.check("magic now clearly beats nested iteration",
                 mag.seconds < ni.seconds)
    report.check("Kim performs comparably with magic decorrelation",
                 0.2 <= (kim.seconds / mag.seconds) <= 5.0)
    report.check("Dayal is worse than magic (large join before aggregation)",
                 dayal.seconds >= mag.seconds)
    return report


def figure8(
    scale_factor: float = DEFAULT_SCALE,
    repeat: int = 1,
    strategies: Sequence[Strategy] = PAPER_STRATEGIES,
    trace: bool = False,
) -> FigureReport:
    """Figure 8: Query 2 -- keyed bindings, cheap subquery: decorrelation
    expected to have little impact; Kim and Dayal orders of magnitude worse."""
    db = _build(scale_factor)
    results = run_strategies(db, QUERY_2, strategies, repeat=repeat, trace=trace)
    report = FigureReport("Figure 8", "Query 2", scale_factor, results)
    ni = report.result(Strategy.NESTED_ITERATION)
    mag = report.result(Strategy.MAGIC)
    opt = report.result(Strategy.MAGIC_OPT)
    kim = report.result(Strategy.KIM)
    dayal = report.result(Strategy.DAYAL)
    expected_invocations = 2_090 * scale_factor
    report.check(
        "invocation count tracks the paper's 209 (at SF 0.1)",
        0.4 * expected_invocations
        <= ni.metrics.subquery_invocations
        <= 2.0 * expected_invocations,
    )
    report.check("OptMag performs comparably with nested iteration",
                 opt.seconds <= ni.seconds * 2.0)
    report.check("Mag without the optimisation is somewhat worse than OptMag",
                 mag.work() >= opt.work())
    report.check("Kim is orders of magnitude worse",
                 kim.work() >= 10 * opt.work())
    report.check("Dayal is orders of magnitude worse",
                 dayal.work() >= 10 * opt.work())
    return report


def figure9(
    scale_factor: float = DEFAULT_SCALE,
    repeat: int = 1,
    strategies: Sequence[Strategy] = PAPER_STRATEGIES,
    trace: bool = False,
) -> FigureReport:
    """Figure 9: Query 3 -- non-linear, 5 distinct bindings among ~209
    invocations: tremendous improvement from magic; Kim/Dayal inapplicable."""
    db = _build(scale_factor)
    results = run_strategies(db, QUERY_3, strategies, repeat=repeat, trace=trace)
    report = FigureReport("Figure 9", "Query 3 (UNION, duplicates)", scale_factor, results)
    ni = report.result(Strategy.NESTED_ITERATION)
    mag = report.result(Strategy.MAGIC)
    report.check("Kim not applicable (non-linear query)",
                 not report.result(Strategy.KIM).applicable)
    report.check("Dayal not applicable (non-linear query)",
                 not report.result(Strategy.DAYAL).applicable)
    expected_invocations = 2_090 * scale_factor
    report.check(
        "invocation count tracks the paper's ~209 European suppliers",
        0.4 * expected_invocations
        <= ni.metrics.subquery_invocations
        <= 2.0 * expected_invocations,
    )
    report.check(
        "magic greatly improves execution (duplicate elimination: the "
        "subquery runs once per distinct nation instead of per supplier)",
        mag.work() < ni.work() and mag.metrics.subquery_invocations == 0,
    )
    return report


ALL_FIGURES: dict[str, Callable[..., FigureReport]] = {
    "figure5": figure5,
    "figure6": figure6,
    "figure7": figure7,
    "figure8": figure8,
    "figure9": figure9,
}
