"""Benchmark harness: strategy sweeps and figure regeneration."""

from .harness import (
    BenchResult,
    print_results,
    render_bars,
    run_strategies,
    warm,
)
from .figures import (
    FigureReport,
    figure5,
    figure6,
    figure7,
    figure8,
    figure9,
    table1,
)
from .calibration import (
    qerror,
    render_calibration,
    run_calibration,
)

__all__ = [
    "BenchResult",
    "render_bars",
    "run_strategies",
    "print_results",
    "warm",
    "FigureReport",
    "table1",
    "figure5",
    "figure6",
    "figure7",
    "figure8",
    "figure9",
    "qerror",
    "render_calibration",
    "run_calibration",
]
