"""Table schemas: ordered, typed, optionally keyed column lists."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Sequence

from ..errors import SchemaError
from ..types import SQLType


@dataclass(frozen=True)
class Column:
    """A single column: name, declared type, nullability."""

    name: str
    type: SQLType
    nullable: bool = True

    def validate(self, value: Any) -> Any:
        """Validate ``value`` against type and nullability."""
        if value is None:
            if not self.nullable:
                raise SchemaError(f"column {self.name!r} is NOT NULL")
            return None
        return self.type.validate(value)


class Schema:
    """An ordered collection of :class:`Column` with an optional primary key.

    Column names are case-insensitive (stored lower-cased), matching the SQL
    front-end's identifier folding.
    """

    def __init__(
        self,
        columns: Sequence[Column],
        primary_key: Sequence[str] = (),
    ):
        self.columns: tuple[Column, ...] = tuple(
            Column(c.name.lower(), c.type, c.nullable) for c in columns
        )
        names = [c.name for c in self.columns]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate column names in schema: {names}")
        self._index = {c.name: i for i, c in enumerate(self.columns)}
        self.primary_key: tuple[str, ...] = tuple(k.lower() for k in primary_key)
        for key_col in self.primary_key:
            if key_col not in self._index:
                raise SchemaError(f"primary key column {key_col!r} not in schema")

    # -- lookups ---------------------------------------------------------

    def __len__(self) -> int:
        return len(self.columns)

    def __iter__(self):
        return iter(self.columns)

    def names(self) -> list[str]:
        """Column names in schema order."""
        return [c.name for c in self.columns]

    def has_column(self, name: str) -> bool:
        """True when ``name`` (case-insensitive) is a column of this schema."""
        return name.lower() in self._index

    def position(self, name: str) -> int:
        """Ordinal position of column ``name``; raises on unknown name."""
        try:
            return self._index[name.lower()]
        except KeyError:
            raise SchemaError(f"unknown column {name!r}") from None

    def column(self, name: str) -> Column:
        """The :class:`Column` named ``name``."""
        return self.columns[self.position(name)]

    # -- validation ------------------------------------------------------

    def validate_row(self, row: Sequence[Any]) -> tuple:
        """Validate one row (arity, types, nullability); returns a tuple."""
        if len(row) != len(self.columns):
            raise SchemaError(
                f"row arity {len(row)} does not match schema arity {len(self.columns)}"
            )
        return tuple(col.validate(val) for col, val in zip(self.columns, row))

    def key_positions(self) -> tuple[int, ...]:
        """Ordinal positions of the primary key columns (empty if keyless)."""
        return tuple(self._index[k] for k in self.primary_key)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        cols = ", ".join(f"{c.name} {c.type.value}" for c in self.columns)
        pk = f" PRIMARY KEY ({', '.join(self.primary_key)})" if self.primary_key else ""
        return f"Schema({cols}{pk})"


def schema_from_pairs(pairs: Iterable[tuple[str, SQLType]], primary_key: Sequence[str] = ()) -> Schema:
    """Convenience constructor from ``(name, type)`` pairs."""
    return Schema([Column(n, t) for n, t in pairs], primary_key=primary_key)
