"""In-memory storage engine: schemas, tables, indexes, catalog, statistics."""

from .schema import Column, Schema
from .table import Table
from .index import HashIndex, SortedIndex
from .catalog import Catalog
from .stats import ColumnStats, TableStats, compute_table_stats

__all__ = [
    "Column",
    "Schema",
    "Table",
    "HashIndex",
    "SortedIndex",
    "Catalog",
    "ColumnStats",
    "TableStats",
    "compute_table_stats",
]
