"""The catalog: named tables, views, and their statistics."""

from __future__ import annotations

from typing import Iterable, Sequence

from ..errors import CatalogError
from .schema import Schema
from .stats import StatsCache, TableStats
from .table import Table


class Catalog:
    """Registry of base tables and view definitions.

    Views are stored as SQL text and expanded by the QGM builder; the engine
    uses them both for user views and for the rewritten-query examples in the
    README.
    """

    def __init__(self) -> None:
        self._tables: dict[str, Table] = {}
        self._views: dict[str, str] = {}
        self._stats = StatsCache()

    # -- tables ------------------------------------------------------------

    def create_table(self, name: str, schema: Schema) -> Table:
        """Create an empty table; fails on duplicate names (tables or views)."""
        key = name.lower()
        if key in self._tables or key in self._views:
            raise CatalogError(f"relation {name!r} already exists")
        table = Table(key, schema)
        self._tables[key] = table
        return table

    def drop_table(self, name: str) -> None:
        """Drop a table and its cached statistics."""
        key = name.lower()
        if key not in self._tables:
            raise CatalogError(f"no table named {name!r}")
        del self._tables[key]
        self._stats.invalidate(key)

    def has_table(self, name: str) -> bool:
        return name.lower() in self._tables

    def table(self, name: str) -> Table:
        """Look up a base table by name."""
        try:
            return self._tables[name.lower()]
        except KeyError:
            raise CatalogError(f"no table named {name!r}") from None

    def tables(self) -> Iterable[Table]:
        return self._tables.values()

    # -- views -------------------------------------------------------------

    def create_view(self, name: str, sql_text: str) -> None:
        """Register a view as SQL text (expanded at bind time)."""
        key = name.lower()
        if key in self._tables or key in self._views:
            raise CatalogError(f"relation {name!r} already exists")
        self._views[key] = sql_text

    def drop_view(self, name: str) -> None:
        key = name.lower()
        if key not in self._views:
            raise CatalogError(f"no view named {name!r}")
        del self._views[key]

    def has_view(self, name: str) -> bool:
        return name.lower() in self._views

    def view_sql(self, name: str) -> str:
        try:
            return self._views[name.lower()]
        except KeyError:
            raise CatalogError(f"no view named {name!r}") from None

    # -- statistics ----------------------------------------------------------

    def stats(self, name: str) -> TableStats:
        """(Cached) statistics for a base table."""
        return self._stats.get(self.table(name))

    def invalidate_stats(self, name: str) -> None:
        self._stats.invalidate(name)

    # -- keys ---------------------------------------------------------------

    def is_key(self, table_name: str, columns: Sequence[str]) -> bool:
        """True when ``columns`` is a superset of a declared key of the table,
        or a unique index exists on a subset of ``columns``.

        Used by the OptMag check (section 5.1: "when the correlation
        attributes form a key of the supplementary table") and by Dayal's
        rewrite, which must group on a key of the outer relation.
        """
        table = self.table(table_name)
        cols = {c.lower() for c in columns}
        pk = set(table.schema.primary_key)
        if pk and pk <= cols:
            return True
        for index in table.indexes.values():
            if not index.unique:
                continue
            index_cols = {
                table.schema.columns[p].name for p in index.column_positions
            }
            if index_cols <= cols:
                return True
        return False
