"""The catalog: named tables, views, and their statistics."""

from __future__ import annotations

import threading
from typing import Iterable, Sequence

from ..errors import CatalogError
from .schema import Schema
from .stats import StatsCache, TableStats
from .table import Table


class Catalog:
    """Registry of base tables and view definitions.

    Views are stored as SQL text and expanded by the QGM builder; the engine
    uses them both for user views and for the rewritten-query examples in the
    README.

    Concurrency contract: one coarse reentrant lock guards every catalog
    mutation (table/view creation and drops, stats invalidation) *and* every
    lookup, so concurrent DDL can never tear the registry -- in particular
    the duplicate-name check-then-create in :meth:`create_table` /
    :meth:`create_view` is atomic, and a reader never observes a
    half-registered relation. Statistics reads (:meth:`stats`) compute under
    the same lock, which serialises them against invalidation; the cache
    itself is additionally validity-keyed by row count, so a stats entry
    that raced with an append self-heals on the next read (see
    :class:`~repro.storage.stats.StatsCache`). Row-level operations on a
    :class:`~repro.storage.table.Table` are guarded by the table's own lock,
    not this one -- the catalog lock is about the *namespace*, the table
    lock about the *data*.
    """

    def __init__(self) -> None:
        self._tables: dict[str, Table] = {}
        self._views: dict[str, str] = {}
        self._stats = StatsCache()
        self._lock = threading.RLock()
        self._generation = 0

    def generation(self) -> int:
        """The catalog's monotonic change epoch.

        Bumped (under the lock) by every namespace mutation and stats
        invalidation -- DDL, view changes, and the post-INSERT
        :meth:`invalidate_stats`. The plan cache stamps each entry with the
        generation observed *before* building it and treats any mismatch as
        stale, so a plan can never outlive the catalog state it was
        optimized against (even when DDL races the build itself)."""
        with self._lock:
            return self._generation

    # -- tables ------------------------------------------------------------

    def create_table(self, name: str, schema: Schema) -> Table:
        """Create an empty table; fails on duplicate names (tables or views).
        Atomic: two threads racing on the same name cannot both succeed."""
        key = name.lower()
        with self._lock:
            if key in self._tables or key in self._views:
                raise CatalogError(f"relation {name!r} already exists")
            table = Table(key, schema)
            self._tables[key] = table
            self._generation += 1
            return table

    def drop_table(self, name: str) -> None:
        """Drop a table and its cached statistics."""
        key = name.lower()
        with self._lock:
            if key not in self._tables:
                raise CatalogError(f"no table named {name!r}")
            del self._tables[key]
            self._stats.invalidate(key)
            self._generation += 1

    def has_table(self, name: str) -> bool:
        with self._lock:
            return name.lower() in self._tables

    def table(self, name: str) -> Table:
        """Look up a base table by name."""
        with self._lock:
            try:
                return self._tables[name.lower()]
            except KeyError:
                raise CatalogError(f"no table named {name!r}") from None

    def tables(self) -> Iterable[Table]:
        with self._lock:
            return list(self._tables.values())

    # -- views -------------------------------------------------------------

    def create_view(self, name: str, sql_text: str) -> None:
        """Register a view as SQL text (expanded at bind time)."""
        key = name.lower()
        with self._lock:
            if key in self._tables or key in self._views:
                raise CatalogError(f"relation {name!r} already exists")
            self._views[key] = sql_text
            self._generation += 1

    def drop_view(self, name: str) -> None:
        key = name.lower()
        with self._lock:
            if key not in self._views:
                raise CatalogError(f"no view named {name!r}")
            del self._views[key]
            self._generation += 1

    def has_view(self, name: str) -> bool:
        with self._lock:
            return name.lower() in self._views

    def view_sql(self, name: str) -> str:
        with self._lock:
            try:
                return self._views[name.lower()]
            except KeyError:
                raise CatalogError(f"no view named {name!r}") from None

    # -- statistics ----------------------------------------------------------

    def stats(self, name: str) -> TableStats:
        """(Cached) statistics for a base table.

        Computed and cached under the catalog lock: a concurrent
        ``invalidate_stats`` cannot interleave with the cache update, so an
        invalidation is never lost behind a stale store."""
        with self._lock:
            return self._stats.get(self.table(name))

    def invalidate_stats(self, name: str) -> None:
        """Drop the cached statistics for ``name`` (atomic with respect to
        in-flight :meth:`stats` readers)."""
        with self._lock:
            self._stats.invalidate(name)
            self._generation += 1

    # -- keys ---------------------------------------------------------------

    def is_key(self, table_name: str, columns: Sequence[str]) -> bool:
        """True when ``columns`` is a superset of a declared key of the table,
        or a unique index exists on a subset of ``columns``.

        Used by the OptMag check (section 5.1: "when the correlation
        attributes form a key of the supplementary table") and by Dayal's
        rewrite, which must group on a key of the outer relation.
        """
        table = self.table(table_name)
        cols = {c.lower() for c in columns}
        pk = set(table.schema.primary_key)
        if pk and pk <= cols:
            return True
        # table.indexes is replaced wholesale on DDL (copy-on-write), so
        # iterating this snapshot is safe against concurrent CREATE INDEX.
        for index in table.indexes.values():
            if not index.unique:
                continue
            index_cols = {
                table.schema.columns[p].name for p in index.column_positions
            }
            if index_cols <= cols:
                return True
        return False
