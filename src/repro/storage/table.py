"""In-memory tables: validated rows plus attached secondary indexes."""

from __future__ import annotations

import threading
from typing import Any, Iterable, Iterator, Sequence, Union

from ..errors import CatalogError, SchemaError
from .index import HashIndex, SortedIndex
from .schema import Schema

Index = Union[HashIndex, SortedIndex]


class Table:
    """A named, schema-validated, append-only row store.

    Rows are tuples in schema order. A primary key declared on the schema is
    enforced through an implicit unique :class:`HashIndex`. Additional
    indexes can be attached (and dropped -- the paper's Figure 7 experiment
    drops an index) by name.

    Concurrency contract: every *mutation* (row insert, index create/drop)
    takes the table's own lock, so concurrent writers and DDL serialise and
    an index is never torn with respect to the rows it covers. *Readers*
    are lock-free by design: ``rows`` is append-only (a CPython list can be
    iterated while another thread appends), and ``indexes`` is replaced
    wholesale on DDL (copy-on-write), so a scan or planner holding a
    snapshot of either keeps seeing a consistent -- if slightly stale --
    view. A query that raced a ``CREATE INDEX`` may plan without the new
    index; it never observes a half-backfilled one.
    """

    def __init__(self, name: str, schema: Schema):
        self.name = name.lower()
        self.schema = schema
        self.rows: list[tuple] = []
        self.indexes: dict[str, Index] = {}
        self._pk_index: HashIndex | None = None
        self._lock = threading.Lock()
        if schema.primary_key:
            self._pk_index = HashIndex(
                f"{self.name}_pkey", schema.key_positions(), unique=True
            )
            self.indexes[self._pk_index.name] = self._pk_index

    # -- data loading ----------------------------------------------------

    def insert(self, row: Sequence[Any]) -> None:
        """Validate and append one row, maintaining all indexes.

        Atomic with respect to concurrent inserts and index DDL (the table
        lock); the row-id assignment and every index update happen under
        one critical section."""
        validated = self.schema.validate_row(row)
        if self._pk_index is not None:
            for pos in self.schema.key_positions():
                if validated[pos] is None:
                    raise SchemaError(
                        f"primary key column of table {self.name!r} cannot be NULL"
                    )
        with self._lock:
            row_id = len(self.rows)
            # Validate unique indexes before mutating so a failed insert
            # leaves the table unchanged.
            for index in self.indexes.values():
                index.insert(row_id, validated)
            self.rows.append(validated)

    def insert_many(self, rows: Iterable[Sequence[Any]]) -> int:
        """Insert many rows; returns the number inserted."""
        count = 0
        for row in rows:
            self.insert(row)
            count += 1
        return count

    # -- access ----------------------------------------------------------

    def __len__(self) -> int:
        return len(self.rows)

    def scan(self) -> Iterator[tuple]:
        """Full scan in insertion order."""
        return iter(self.rows)

    def fetch(self, row_id: int) -> tuple:
        """Row at ``row_id`` (as assigned at insert time)."""
        return self.rows[row_id]

    # -- index management --------------------------------------------------

    def create_index(
        self, index_name: str, columns: Sequence[str], unique: bool = False,
        kind: str = "hash",
    ) -> Index:
        """Create and backfill a secondary index.

        ``kind`` is ``"hash"`` (any number of columns, equality only) or
        ``"sorted"`` (single column, supports ranges).

        Atomic: the duplicate check, the backfill over existing rows and
        the registration run under the table lock, serialised against
        concurrent inserts -- the new index covers exactly the rows present
        when it becomes visible. ``indexes`` is replaced copy-on-write so
        concurrent readers iterating the old dict are unaffected.
        """
        index_name = index_name.lower()
        with self._lock:
            if index_name in self.indexes:
                raise CatalogError(
                    f"index {index_name!r} already exists on {self.name!r}"
                )
            positions = [self.schema.position(c) for c in columns]
            index: Index
            if kind == "hash":
                index = HashIndex(index_name, positions, unique=unique)
                for row_id, row in enumerate(self.rows):
                    index.insert(row_id, row)
            elif kind == "sorted":
                if len(positions) != 1:
                    raise CatalogError("sorted indexes take exactly one column")
                index = SortedIndex(index_name, positions[0], unique=unique)
                index.bulk_load(
                    (rid, row[positions[0]])
                    for rid, row in enumerate(self.rows)
                )
            else:
                raise CatalogError(f"unknown index kind {kind!r}")
            updated = dict(self.indexes)
            updated[index_name] = index
            self.indexes = updated
            return index

    def drop_index(self, index_name: str) -> None:
        """Drop a secondary index (the primary key index cannot be dropped).

        Copy-on-write like :meth:`create_index`: in-flight readers holding
        the old ``indexes`` dict (or the index object itself) keep a usable
        snapshot."""
        index_name = index_name.lower()
        with self._lock:
            if index_name not in self.indexes:
                raise CatalogError(
                    f"no index {index_name!r} on table {self.name!r}"
                )
            if self.indexes[index_name] is self._pk_index:
                raise CatalogError("cannot drop the primary key index")
            updated = dict(self.indexes)
            del updated[index_name]
            self.indexes = updated

    def find_index(self, columns: Sequence[str]) -> Index | None:
        """An index whose key is exactly ``columns`` (order-insensitive for
        hash indexes), or ``None``. Used by the planner for access selection."""
        wanted = tuple(sorted(self.schema.position(c) for c in columns))
        for index in self.indexes.values():
            if tuple(sorted(index.column_positions)) == wanted:
                return index
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Table({self.name}, {len(self.rows)} rows, {len(self.indexes)} indexes)"
