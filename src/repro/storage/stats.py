"""Table and column statistics used by the cost-based planner.

The optimizer in the paper (section 7) "optimizes the query once without
decorrelation, and using the chosen join orders repeats the optimization with
decorrelation"; both passes need cardinality and distinct-value estimates.
Statistics are computed on demand and cached per table snapshot.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..types import sort_key
from .table import Table


@dataclass(frozen=True)
class ColumnStats:
    """Statistics for a single column."""

    n_distinct: int
    n_null: int
    min_value: Any
    max_value: Any

    def selectivity_eq(self, row_count: int) -> float:
        """Estimated selectivity of an equality predicate on this column."""
        if row_count == 0 or self.n_distinct == 0:
            return 0.0
        return (row_count - self.n_null) / row_count / self.n_distinct


@dataclass(frozen=True)
class TableStats:
    """Statistics for a whole table."""

    row_count: int
    columns: dict[str, ColumnStats]

    def column(self, name: str) -> ColumnStats:
        return self.columns[name.lower()]


def compute_column_stats(table: Table, column: str) -> ColumnStats:
    """Exact statistics for one column (exact is affordable in-memory)."""
    pos = table.schema.position(column)
    values = set()
    n_null = 0
    min_value = None
    max_value = None
    for row in table.rows:
        v = row[pos]
        if v is None:
            n_null += 1
            continue
        values.add(v)
        if min_value is None or sort_key(v) < sort_key(min_value):
            min_value = v
        if max_value is None or sort_key(v) > sort_key(max_value):
            max_value = v
    return ColumnStats(
        n_distinct=len(values), n_null=n_null,
        min_value=min_value, max_value=max_value,
    )


def compute_table_stats(table: Table) -> TableStats:
    """Exact statistics for every column of ``table``."""
    return TableStats(
        row_count=len(table),
        columns={
            col.name: compute_column_stats(table, col.name)
            for col in table.schema
        },
    )


class StatsCache:
    """Per-catalog cache of :class:`TableStats`, invalidated by row count.

    Tables are append-mostly; recomputing when the row count changed is a
    simple and correct invalidation rule for this engine.
    """

    def __init__(self) -> None:
        self._cache: dict[str, tuple[int, TableStats]] = {}

    def get(self, table: Table) -> TableStats:
        cached = self._cache.get(table.name)
        if cached is not None and cached[0] == len(table):
            return cached[1]
        stats = compute_table_stats(table)
        self._cache[table.name] = (len(table), stats)
        return stats

    def invalidate(self, table_name: str) -> None:
        self._cache.pop(table_name.lower(), None)
