"""Secondary indexes over in-memory tables.

Two access methods are provided:

* :class:`HashIndex` -- equality lookups on a (possibly composite) key.
* :class:`SortedIndex` -- single-column sorted index supporting equality and
  range lookups via binary search (a stand-in for a B-tree).

Both map key values to *row ids* (positions in the owning table's row list),
which keeps them valid under appends. Tables in this engine are append-only
once loaded, mirroring the read-mostly decision-support setting of the paper.
"""

from __future__ import annotations

import bisect
from typing import Any, Iterable, Iterator, Sequence

from ..errors import SchemaError
from ..types import sort_key


class HashIndex:
    """Equality index on one or more columns.

    NULL keys are indexed (under the key ``None``/tuple containing ``None``)
    but equality probes with NULL never match, matching SQL semantics --
    callers must therefore pre-filter NULL probe values, which
    :meth:`lookup` does for them.
    """

    def __init__(self, name: str, column_positions: Sequence[int], unique: bool = False):
        if not column_positions:
            raise SchemaError("index needs at least one column")
        self.name = name
        self.column_positions = tuple(column_positions)
        self.unique = unique
        self._map: dict[Any, list[int]] = {}

    def _key_of(self, row: Sequence[Any]) -> Any:
        if len(self.column_positions) == 1:
            return row[self.column_positions[0]]
        return tuple(row[p] for p in self.column_positions)

    def insert(self, row_id: int, row: Sequence[Any]) -> None:
        """Index ``row`` stored at ``row_id``."""
        key = self._key_of(row)
        bucket = self._map.setdefault(key, [])
        if self.unique and bucket and not self._key_has_null(key):
            raise SchemaError(
                f"unique index {self.name!r} violated for key {key!r}"
            )
        bucket.append(row_id)

    @staticmethod
    def _key_has_null(key: Any) -> bool:
        if key is None:
            return True
        return isinstance(key, tuple) and any(part is None for part in key)

    def lookup(self, key: Any) -> list[int]:
        """Row ids with column values equal to ``key``.

        A NULL anywhere in the probe key yields no matches (SQL ``=``).
        """
        if self._key_has_null(key):
            return []
        return self._map.get(key, [])

    def __len__(self) -> int:
        return sum(len(b) for b in self._map.values())


class SortedIndex:
    """Single-column sorted index supporting equality and range scans.

    Entries are ``(value, row_id)`` pairs kept sorted by a NULLs-first total
    order; NULL entries are stored but excluded from every probe.
    """

    def __init__(self, name: str, column_position: int, unique: bool = False):
        self.name = name
        self.column_positions = (column_position,)
        self.unique = unique
        self._keys: list[tuple] = []  # sort_key(value)
        self._entries: list[tuple[Any, int]] = []  # (value, row_id)
        self._frozen = False

    def insert(self, row_id: int, row: Sequence[Any]) -> None:
        """Index ``row`` stored at ``row_id`` (maintains sorted order)."""
        value = row[self.column_positions[0]]
        key = sort_key(value)
        pos = bisect.bisect_right(self._keys, key)
        if self.unique and value is not None:
            if (pos > 0 and self._keys[pos - 1] == key) or (
                pos < len(self._keys) and self._keys[pos] == key
            ):
                raise SchemaError(
                    f"unique index {self.name!r} violated for key {value!r}"
                )
        self._keys.insert(pos, key)
        self._entries.insert(pos, (value, row_id))

    def bulk_load(self, rows: Iterable[tuple[int, Any]]) -> None:
        """Load ``(row_id, value)`` pairs at once; faster than repeated insert."""
        pairs = sorted(((sort_key(v), v, rid) for rid, v in rows), key=lambda t: t[0])
        self._keys = [p[0] for p in pairs]
        self._entries = [(p[1], p[2]) for p in pairs]

    def lookup(self, key: Any) -> list[int]:
        """Row ids with value equal to ``key`` (empty for NULL probes)."""
        if key is None:
            return []
        return list(self._scan(low=key, high=key, low_inclusive=True, high_inclusive=True))

    def range(
        self,
        low: Any = None,
        high: Any = None,
        low_inclusive: bool = True,
        high_inclusive: bool = True,
    ) -> list[int]:
        """Row ids with values in the given range; open bounds via ``None``."""
        return list(self._scan(low, high, low_inclusive, high_inclusive))

    def _scan(self, low, high, low_inclusive, high_inclusive) -> Iterator[int]:
        if low is not None:
            lk = sort_key(low)
            start = bisect.bisect_left(self._keys, lk) if low_inclusive else bisect.bisect_right(self._keys, lk)
        else:
            # Skip NULL entries, which sort first.
            start = bisect.bisect_right(self._keys, (0, 0))
        if high is not None:
            hk = sort_key(high)
            stop = bisect.bisect_right(self._keys, hk) if high_inclusive else bisect.bisect_left(self._keys, hk)
        else:
            stop = len(self._keys)
        for i in range(start, stop):
            value, row_id = self._entries[i]
            if value is not None:
                yield row_id

    def __len__(self) -> int:
        return len(self._entries)
