"""Concurrent query service: admission control, deadlines, breakers, soak.

Public surface:

* :class:`~repro.serve.service.QueryService` -- thread-pool service over a
  shared :class:`~repro.api.database.Database` (tickets, admission
  control, cross-thread cancel, per-strategy circuit breakers, stats);
* :class:`~repro.serve.service.Ticket` / ``ServiceStats``;
* :class:`~repro.serve.breaker.CircuitBreaker` / ``BreakerTransition``;
* :func:`~repro.serve.soak.run_soak` -- the chaos soak harness behind
  ``python -m repro soak``.
"""

from .breaker import BreakerTransition, CircuitBreaker
from .service import QueryService, ServiceStats, Ticket
from .soak import SoakReport, run_soak

__all__ = [
    "QueryService",
    "ServiceStats",
    "Ticket",
    "CircuitBreaker",
    "BreakerTransition",
    "SoakReport",
    "run_soak",
]
