"""Concurrent query service: admission control, deadlines, breakers, soak.

Public surface:

* :class:`~repro.serve.service.QueryService` -- thread-pool service over a
  shared :class:`~repro.api.database.Database` (tickets, admission
  control, cross-thread cancel, per-strategy circuit breakers, stats);
* :class:`~repro.serve.service.Ticket` / ``ServiceStats``;
* :class:`~repro.serve.breaker.CircuitBreaker` / ``BreakerTransition``;
* :class:`~repro.serve.overload.OverloadConfig` and friends -- adaptive
  overload control (deadline-aware admission, priority shedding, the
  brownout degradation ladder, retry-storm protection);
* :func:`~repro.serve.soak.run_soak` -- the chaos soak harness behind
  ``python -m repro soak`` (and :func:`~repro.serve.soak.run_overload_soak`
  behind ``python -m repro soak --overload``).
"""

from .breaker import BreakerTransition, CircuitBreaker
from .overload import (
    BROWNOUT_RUNGS,
    PRIORITIES,
    BrownoutController,
    OverloadConfig,
    RetryGovernor,
    ServiceTimeEstimator,
    TokenBucket,
    fingerprint,
    normalize_sql,
)
from .service import QueryService, ServiceStats, Ticket
from .soak import SoakReport, run_soak

__all__ = [
    "QueryService",
    "ServiceStats",
    "Ticket",
    "CircuitBreaker",
    "BreakerTransition",
    "OverloadConfig",
    "BrownoutController",
    "ServiceTimeEstimator",
    "RetryGovernor",
    "TokenBucket",
    "BROWNOUT_RUNGS",
    "PRIORITIES",
    "fingerprint",
    "normalize_sql",
    "SoakReport",
    "run_soak",
]
