"""Per-strategy circuit breakers for the query service.

A breaker quarantines a decorrelation strategy after ``threshold``
*consecutive* failures (rewrite errors, invariant violations, injected
faults, or execution failures attributed to that strategy), so subsequent
queries degrade straight down the fallback chain without re-paying the
failing rewrite. After ``cooldown`` seconds the breaker admits exactly one
half-open *probe*; a successful probe closes the breaker, a failed one
re-opens it for another cooldown.

States and transitions (the classic three-state machine)::

    CLOSED --[threshold consecutive failures]--> OPEN
    OPEN   --[cooldown elapsed, probe claimed]--> HALF_OPEN
    HALF_OPEN --[probe succeeded]--> CLOSED
    HALF_OPEN --[probe failed]-----> OPEN

An *abandoned* probe (the probing query died before the strategy was
attempted, e.g. it was cancelled) stays HALF_OPEN with the probe slot
freed, so the next ``try_pass`` claims a fresh probe.

All methods are thread-safe; ``clock`` is injectable for deterministic
tests. Every transition is reported through ``on_transition`` (the service
aggregates them into ``service.stats().breaker_transitions``).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable, Optional

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


@dataclass(frozen=True)
class BreakerTransition:
    """One state change of one strategy's breaker."""

    strategy: str
    from_state: str
    to_state: str
    reason: str

    def __str__(self) -> str:  # pragma: no cover - display helper
        return (
            f"breaker[{self.strategy}] {self.from_state} -> {self.to_state}"
            f" ({self.reason})"
        )


class CircuitBreaker:
    """The three-state breaker guarding one strategy.

    :meth:`try_pass` is consulted *before* a rewrite attempt (via the
    engine's ``disabled`` hook); :meth:`record_success` /
    :meth:`record_failure` report the attempt's outcome;
    :meth:`release_probe` returns an unresolved half-open probe (e.g. the
    probing query was cancelled before its rewrite finished) so the next
    caller can claim a fresh one.
    """

    def __init__(
        self,
        strategy: str,
        threshold: int = 5,
        cooldown: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
        on_transition: Optional[Callable[[BreakerTransition], None]] = None,
    ):
        if threshold < 1:
            raise ValueError("breaker threshold must be >= 1")
        self.strategy = strategy
        self.threshold = threshold
        self.cooldown = cooldown
        self._clock = clock
        self._on_transition = on_transition
        self._lock = threading.Lock()
        self._state = CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probe_inflight = False

    # -- observation -------------------------------------------------------

    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    def snapshot(self) -> dict:
        """State + counters as a plain dict (for ``service.stats()``)."""
        with self._lock:
            return {
                "state": self._state,
                "consecutive_failures": self._consecutive_failures,
                "probe_inflight": self._probe_inflight,
            }

    # -- transitions -------------------------------------------------------

    def _transition(self, to_state: str, reason: str) -> None:
        """Move to ``to_state`` (caller holds the lock)."""
        event = BreakerTransition(self.strategy, self._state, to_state, reason)
        self._state = to_state
        if self._on_transition is not None:
            self._on_transition(event)

    def try_pass(self) -> tuple[Optional[str], bool]:
        """May a query attempt this strategy right now?

        Returns ``(block_reason, claimed_probe)``: ``block_reason`` is
        ``None`` when the attempt may proceed (closed, or this caller just
        claimed the half-open probe, in which case ``claimed_probe`` is
        True and the caller MUST later resolve it via ``record_success``,
        ``record_failure`` or ``release_probe``), else a human-readable
        reason the strategy is quarantined.
        """
        with self._lock:
            if self._state == CLOSED:
                return None, False
            if self._state == OPEN:
                if self._clock() - self._opened_at < self.cooldown:
                    return (
                        f"circuit open for {self.strategy!r} "
                        f"({self._consecutive_failures} consecutive failures)",
                        False,
                    )
                self._transition(HALF_OPEN, "cooldown elapsed, probing")
                self._probe_inflight = True
                return None, True
            # HALF_OPEN
            if self._probe_inflight:
                return (
                    f"circuit half-open for {self.strategy!r}, probe in flight",
                    False,
                )
            self._probe_inflight = True
            return None, True

    def record_success(self) -> None:
        """An attempt with this strategy succeeded."""
        with self._lock:
            if self._state == HALF_OPEN:
                self._probe_inflight = False
                self._consecutive_failures = 0
                self._transition(CLOSED, "probe succeeded")
            elif self._state == CLOSED:
                self._consecutive_failures = 0
            # OPEN: a straggler that passed before the breaker opened;
            # ignored -- recovery goes through the half-open probe.

    def record_failure(self, reason: str = "") -> None:
        """An attempt with this strategy failed."""
        with self._lock:
            if self._state == HALF_OPEN:
                self._probe_inflight = False
                self._consecutive_failures += 1
                self._opened_at = self._clock()
                self._transition(OPEN, reason or "probe failed")
            elif self._state == CLOSED:
                self._consecutive_failures += 1
                if self._consecutive_failures >= self.threshold:
                    self._opened_at = self._clock()
                    self._transition(
                        OPEN,
                        reason
                        or f"{self._consecutive_failures} consecutive failures",
                    )
            # OPEN: stragglers don't extend the cooldown.

    def release_probe(self) -> None:
        """Return an unresolved half-open probe without an outcome."""
        with self._lock:
            if self._state == HALF_OPEN and self._probe_inflight:
                self._probe_inflight = False
