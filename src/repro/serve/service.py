"""The concurrent query service: admission control, deadlines, breakers.

:class:`QueryService` wraps a shared :class:`~repro.api.database.Database`
behind a fixed thread pool. Every submission gets a :class:`Ticket` (query
id, deadline, :class:`~repro.guard.Limits`, and a pre-built
:class:`~repro.guard.ExecutionGuard` so it can be cancelled from any
thread). Admission control bounds the system: at most ``workers`` queries
execute at once and at most ``max_queue`` wait; overflow raises a typed
:class:`~repro.errors.AdmissionRejected` carrying the queue depth instead
of piling up without bound.

Deadlines are measured from *submission* -- the guard's clock starts when
the ticket is issued, so queue wait counts against the deadline and a
ticket that expires while queued trips (typed ``BudgetExceeded``) the
moment a worker picks it up, without executing anything.

Per-strategy circuit breakers (:mod:`repro.serve.breaker`) quarantine a
strategy after N consecutive rewrite/execution failures; quarantined
strategies are skipped via the rewrite engine's ``disabled`` hook, so
degraded queries go straight down the PR-2 fallback chain without
re-paying the failing rewrite. Nested iteration is exempt -- the strategy
of last resort must always remain available.

Shared-state contract: the *catalog* (tables, views, stats) is shared by
all workers and is internally synchronized (see
:class:`~repro.storage.catalog.Catalog` and
:class:`~repro.storage.table.Table`). Each worker gets its **own**
``Database`` facade over that catalog, because the rewrite engine keeps
per-rewrite diagnostic state (``steps`` / ``degradations``) that must not
be shared across threads. Fault injection follows ``fault_scope``:

* ``"shared"`` (default): all workers share the base database's
  :class:`~repro.faults.FaultRegistry` -- the per-site ordinal schedule is
  global and locked, so the *set* of fired ordinals is deterministic but
  which query observes a given ordinal depends on thread interleaving;
* ``"worker"``: each worker thread gets ``registry.replica()`` -- a
  per-worker deterministic fault sequence.

Adaptive overload control (``overload=OverloadConfig(...)``, see
:mod:`repro.serve.overload` and DESIGN §14) layers four mechanisms on
top of plain admission: deadline-aware admission (reject-with-hint any
submission whose learned service time cannot fit inside its deadline
given the current backlog), priority classes with quotas and selective
shedding (``submit(priority=...)``; the newest lowest-priority queued
ticket is shed -- typed :class:`~repro.errors.QueryShed` -- to admit
strictly more important work), eager eviction of tickets that expire
while queued (a distinct ``expired_in_queue`` outcome that frees the
slot without a worker dequeue), and a brownout degradation ladder with
hysteresis (observability off -> budgets tightened -> cheapest strategy
forced through the rewrite veto hook). ``overload=None`` (default)
preserves plain FIFO behaviour exactly. The §9 conservation law
extends to the new outcomes: ``admitted == completed + failed +
cancelled + shed + expired_in_queue + in_flight + queue_depth``.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from ..api.database import Database, Result
from ..errors import (
    AdmissionRejected,
    BudgetExceeded,
    QueryCancelled,
    QueryShed,
    ReproError,
)
from ..exec.metrics import Metrics
from ..guard import ExecutionGuard, Limits
from ..obs.phases import PHASES, PhaseTimeline
from .breaker import BreakerTransition, CircuitBreaker
from .overload import (
    BROWNOUT_RUNGS,
    PRIORITIES,
    OverloadConfig,
    fingerprint,
    priority_rank,
)

#: Ticket lifecycle states.
QUEUED = "queued"
RUNNING = "running"
COMPLETED = "completed"
FAILED = "failed"
CANCELLED = "cancelled"
#: Overload-control outcomes: evicted from the queue without running.
SHED = "shed"
EXPIRED = "expired"

#: The strategy of last resort; its breaker never blocks (see module doc).
_LAST_RESORT = "ni"


class Ticket:
    """One admitted query: identity, budgets, and the eventual outcome.

    ``result(timeout=None)`` blocks until the query finishes and returns
    the :class:`~repro.api.database.Result`, re-raising the query's typed
    error if it failed. ``done`` / ``state`` observe progress without
    blocking.
    """

    def __init__(
        self,
        query_id: int,
        sql: str,
        strategy: str,
        guard: ExecutionGuard,
        submitted_at: float,
        cse_mode: str = "recompute",
        priority: str = "normal",
        rank: int = 1,
        fingerprint: str = "",
        deadline_s: Optional[float] = None,
    ):
        self.query_id = query_id
        self.sql = sql
        self.strategy = strategy
        self.guard = guard
        self.submitted_at = submitted_at
        self.cse_mode = cse_mode
        self.priority = priority
        self.rank = rank
        self.fingerprint = fingerprint
        self.deadline_s = deadline_s
        self.state = QUEUED
        self.latency: Optional[float] = None  # seconds, set on completion
        #: Dequeue timestamp (service clock); None until a worker picks
        #: the ticket up. Execution time = finish - started_at.
        self.started_at: Optional[float] = None
        #: Brownout level snapshotted at dequeue (drives per-query
        #: observability shedding without re-reading shared state).
        self.brownout_level = 0
        #: Strategy the brownout ladder forces (level >= 3), else None.
        self.forced_strategy: Optional[str] = None
        #: The per-phase latency budget (:class:`repro.obs.phases.
        #: PhaseTimeline`); None unless the service runs with phase
        #: accounting on. Durations sum to :attr:`latency` exactly.
        self.phases: Optional[PhaseTimeline] = None
        self._event = threading.Event()
        self._result: Optional[Result] = None
        self._error: Optional[BaseException] = None

    @property
    def done(self) -> bool:
        return self._event.is_set()

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the query finished; False on wait timeout."""
        return self._event.wait(timeout)

    def result(self, timeout: Optional[float] = None) -> Result:
        """The query's result (blocking); raises its typed error instead
        when the query failed or was cancelled."""
        if not self._event.wait(timeout):
            raise TimeoutError(
                f"query {self.query_id} still {self.state} after {timeout}s"
            )
        if self._error is not None:
            raise self._error
        assert self._result is not None
        return self._result

    def error(self) -> Optional[BaseException]:
        """The stored error (None while unfinished or on success)."""
        return self._error

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Ticket(#{self.query_id}, {self.state}, {self.strategy})"


#: Histogram bucket upper bounds (``le``), Prometheus-style cumulative.
LATENCY_BUCKETS: tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 30.0
)
QUEUE_DEPTH_BUCKETS: tuple[float, ...] = (0, 1, 2, 4, 8, 16, 32, 64)


def _check_buckets(name: str, buckets) -> tuple[float, ...]:
    """Validate user-supplied histogram bounds: non-empty, numeric,
    strictly increasing. Returns them as a tuple."""
    bounds = tuple(buckets)
    if not bounds:
        raise ValueError(f"{name} must be non-empty")
    for value in bounds:
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise ValueError(
                f"{name} entries must be numbers, got {value!r}"
            )
    if any(b <= a for a, b in zip(bounds, bounds[1:])):
        raise ValueError(
            f"{name} must be strictly increasing, got {list(bounds)}"
        )
    return bounds


def _histogram(values, buckets) -> dict:
    """Cumulative-bucket histogram (Prometheus layout): ``buckets`` maps
    each upper bound to the count of observations <= it; ``count``/``sum``
    cover every observation (including those above the last bound)."""
    values = sorted(values)
    cumulative = {}
    position = 0
    for bound in buckets:
        while position < len(values) and values[position] <= bound:
            position += 1
        cumulative[bound] = position
    return {
        "buckets": cumulative,
        "count": len(values),
        "sum": round(sum(values), 9),
    }


@dataclass
class ServiceStats:
    """A consistent snapshot of the service counters.

    Conservation: ``submitted == admitted + rejected`` always, and after a
    drain (``close()``) ``admitted == completed + failed + cancelled +
    shed + expired_in_queue``, so every submission has exactly one
    recorded outcome (``shed``/``expired_in_queue`` stay zero without
    overload control).
    """

    submitted: int = 0
    admitted: int = 0
    rejected: int = 0
    #: Rejections that carried a ``retry_after_hint`` (a backoff estimate
    #: the client can honour instead of hot-looping); always <= rejected.
    rejected_with_hint: int = 0
    #: Rejections by deadline-aware admission ("deadline unmeetable"):
    #: the learned service time could not fit inside the submission's
    #: deadline given the backlog at arrival. Subset of ``rejected``.
    rejected_futile: int = 0
    #: Non-compliant resubmissions rejected with the retry token bucket
    #: dry ("retry storm"). Subset of ``rejected``.
    retry_storm_rejected: int = 0
    #: Non-compliant resubmissions that were admitted but paid a token.
    retry_penalized: int = 0
    completed: int = 0
    failed: int = 0
    cancelled: int = 0
    #: Admitted tickets evicted from the queue for higher-priority work.
    shed: int = 0
    #: Admitted tickets whose deadline expired while queued (evicted
    #: eagerly, without a worker dequeue).
    expired_in_queue: int = 0
    in_flight: int = 0
    queue_depth: int = 0
    max_queue: int = 0
    workers: int = 0
    latency_p50_ms: Optional[float] = None
    latency_p95_ms: Optional[float] = None
    breakers: dict = field(default_factory=dict)
    breaker_transitions: list = field(default_factory=list)
    #: Cumulative histograms (:func:`_histogram` layout): query latency in
    #: seconds, and queue depth sampled at each admission.
    latency_histogram: dict = field(default_factory=dict)
    queue_depth_histogram: dict = field(default_factory=dict)
    #: Bounded ring of per-query trace summaries (newest last); populated
    #: only when the service runs with ``trace=True``.
    recent_traces: list = field(default_factory=list)
    #: Bounded ring of slow-query records (insertion order); populated
    #: only when the service runs with ``slow_query_ms``/``slow_log``.
    slow_queries: list = field(default_factory=list)
    #: Total queries over the slow threshold (may exceed the ring size).
    slow_total: int = 0
    #: Current brownout ladder level (0 = normal; see
    #: :data:`repro.serve.overload.BROWNOUT_RUNGS`).
    brownout_level: int = 0
    #: Brownout ladder transitions, oldest first: dicts with
    #: ``from``/``to`` levels, ``direction`` (``"down"`` = degrading),
    #: ``utilization`` and ``rung`` (the new level's rung name).
    brownout_transitions: list = field(default_factory=list)
    #: Cumulative histogram of queue wait (admission to dequeue for run
    #: tickets; admission to eviction for shed/expired ones, seconds).
    queue_wait_histogram: dict = field(default_factory=dict)
    #: Per-phase cumulative latency histograms (phase name ->
    #: :func:`_histogram` layout, canonical :data:`repro.obs.phases.PHASES`
    #: order); populated only with phase accounting on.
    phase_histograms: dict = field(default_factory=dict)
    #: Overload-control internals (estimator/retry-governor summaries);
    #: empty without ``overload=``.
    overload: dict = field(default_factory=dict)
    #: Plan-cache counters (all zero without ``plan_cache=``); the full
    #: :meth:`repro.plan.cache.PlanCache.snapshot` rides on ``plan_cache``.
    plan_cache_hits: int = 0
    plan_cache_misses: int = 0
    plan_cache_invalidations: int = 0
    #: Plan-cache summary (:meth:`~repro.plan.cache.PlanCache.snapshot`);
    #: empty without ``plan_cache=``.
    plan_cache: dict = field(default_factory=dict)

    def reconciles(self) -> bool:
        """Does every submission have exactly one recorded outcome (only
        meaningful once the service is idle or closed)?

        The §9 conservation law, extended with the overload outcomes
        (both zero without overload control): shed and expired-in-queue
        tickets were *admitted* but never ran.
        """
        return (
            self.submitted == self.admitted + self.rejected
            and self.admitted
            == self.completed + self.failed + self.cancelled
            + self.shed + self.expired_in_queue
            + self.in_flight + self.queue_depth
        )

    def as_dict(self) -> dict:
        return {
            "submitted": self.submitted,
            "admitted": self.admitted,
            "rejected": self.rejected,
            "rejected_with_hint": self.rejected_with_hint,
            "rejected_futile": self.rejected_futile,
            "retry_storm_rejected": self.retry_storm_rejected,
            "retry_penalized": self.retry_penalized,
            "completed": self.completed,
            "failed": self.failed,
            "cancelled": self.cancelled,
            "shed": self.shed,
            "expired_in_queue": self.expired_in_queue,
            "in_flight": self.in_flight,
            "queue_depth": self.queue_depth,
            "max_queue": self.max_queue,
            "workers": self.workers,
            "latency_p50_ms": self.latency_p50_ms,
            "latency_p95_ms": self.latency_p95_ms,
            "breakers": self.breakers,
            "breaker_transitions": [
                (t.strategy, t.from_state, t.to_state, t.reason)
                for t in self.breaker_transitions
            ],
            "latency_histogram": {
                **self.latency_histogram,
                "buckets": {
                    str(k): v
                    for k, v in self.latency_histogram.get(
                        "buckets", {}
                    ).items()
                },
            },
            "queue_depth_histogram": {
                **self.queue_depth_histogram,
                "buckets": {
                    str(k): v
                    for k, v in self.queue_depth_histogram.get(
                        "buckets", {}
                    ).items()
                },
            },
            "recent_traces": self.recent_traces,
            "slow_queries": self.slow_queries,
            "slow_total": self.slow_total,
            "brownout_level": self.brownout_level,
            "brownout_transitions": self.brownout_transitions,
            "queue_wait_histogram": {
                **self.queue_wait_histogram,
                "buckets": {
                    str(k): v
                    for k, v in self.queue_wait_histogram.get(
                        "buckets", {}
                    ).items()
                },
            },
            "phase_histograms": {
                phase: {
                    **hist,
                    "buckets": {
                        str(k): v
                        for k, v in hist.get("buckets", {}).items()
                    },
                }
                for phase, hist in self.phase_histograms.items()
            },
            "overload": self.overload,
            "plan_cache_hits": self.plan_cache_hits,
            "plan_cache_misses": self.plan_cache_misses,
            "plan_cache_invalidations": self.plan_cache_invalidations,
            "plan_cache": self.plan_cache,
        }

    # -- export -------------------------------------------------------------

    def export(self, fmt: str = "json") -> str:
        """The snapshot serialised for scraping: ``"json"`` (one object,
        sorted keys) or ``"prometheus"`` (text exposition format)."""
        if fmt == "json":
            import json

            return json.dumps(self.as_dict(), indent=2, sort_keys=True)
        if fmt == "prometheus":
            return self._prometheus()
        raise ValueError(f"unknown stats export format {fmt!r}")

    _COUNTER_HELP = {
        "submitted": "Queries submitted (admitted + rejected)",
        "admitted": "Queries admitted into the service",
        "rejected": "Submissions rejected by admission control",
        "rejected_with_hint": (
            "Rejections carrying a retry_after_hint backoff estimate"
        ),
        "rejected_futile": (
            "Rejections because the deadline was provably unmeetable"
        ),
        "retry_storm_rejected": (
            "Non-compliant resubmissions rejected with the retry "
            "token bucket dry"
        ),
        "retry_penalized": (
            "Non-compliant resubmissions admitted at the cost of a "
            "retry token"
        ),
        "completed": "Queries that produced a result",
        "failed": "Queries that raised a typed error",
        "cancelled": "Queries cancelled cooperatively",
        "shed": (
            "Queued tickets shed to make room for higher-priority work"
        ),
        "expired_in_queue": (
            "Queued tickets evicted because their deadline expired "
            "before a worker picked them up"
        ),
    }
    _PLAN_CACHE_HELP = {
        "plan_cache_hits": (
            "Plan-cache lookups served from a cached rewritten plan"
        ),
        "plan_cache_misses": (
            "Plan-cache lookups that paid the full rewrite pipeline"
        ),
        "plan_cache_invalidations": (
            "Plan-cache entries dropped for a stale catalog generation"
        ),
    }
    _GAUGE_HELP = {
        "in_flight": "Queries executing right now",
        "queue_depth": "Queries waiting right now",
        "workers": "Worker pool size",
        "max_queue": "Wait-queue capacity",
        "brownout_level": (
            "Current brownout ladder level (0 normal .. 3 cheapest "
            "strategy forced)"
        ),
    }

    def _prometheus(self) -> str:
        lines: list[str] = []
        for name, help_text in self._COUNTER_HELP.items():
            metric = f"repro_queries_{name}_total"
            lines.append(f"# HELP {metric} {help_text}")
            lines.append(f"# TYPE {metric} counter")
            lines.append(f"{metric} {getattr(self, name)}")
        metric = "repro_slow_queries_total"
        lines.append(
            f"# HELP {metric} Queries over the slow-query threshold"
        )
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {self.slow_total}")
        for name, help_text in self._PLAN_CACHE_HELP.items():
            metric = f"repro_{name}_total"
            lines.append(f"# HELP {metric} {help_text}")
            lines.append(f"# TYPE {metric} counter")
            lines.append(f"{metric} {getattr(self, name)}")
        for name, help_text in self._GAUGE_HELP.items():
            metric = f"repro_{name}"
            lines.append(f"# HELP {metric} {help_text}")
            lines.append(f"# TYPE {metric} gauge")
            lines.append(f"{metric} {getattr(self, name)}")
        lines.extend(_prometheus_histogram(
            "repro_query_latency_seconds",
            "Query latency from submission to completion",
            self.latency_histogram,
        ))
        lines.extend(_prometheus_histogram(
            "repro_queue_depth_at_admission",
            "Wait-queue depth sampled at each admission",
            self.queue_depth_histogram,
        ))
        lines.extend(_prometheus_histogram(
            "repro_queue_wait_seconds",
            "Queue wait from admission to worker dequeue "
            "(or to shed/expiry for tickets that never ran)",
            self.queue_wait_histogram,
        ))
        lines.extend(_prometheus_labeled_histograms(
            "repro_phase_seconds",
            "Per-phase share of query latency "
            "(admit/queue/plan_cache/rewrite/optimize/execute/drain)",
            "phase",
            self.phase_histograms,
        ))
        if self.breakers:
            metric = "repro_breaker_open"
            lines.append(
                f"# HELP {metric} Circuit breaker state "
                "(1 open, 0 closed/half-open)"
            )
            lines.append(f"# TYPE {metric} gauge")
            for strategy in sorted(self.breakers):
                state = self.breakers[strategy].get("state", "closed")
                value = 1 if state == "open" else 0
                lines.append(f'{metric}{{strategy="{strategy}"}} {value}')
        return "\n".join(lines) + "\n"


def _prometheus_histogram(metric: str, help_text: str, data: dict) -> list:
    if not data:
        return []
    lines = [
        f"# HELP {metric} {help_text}",
        f"# TYPE {metric} histogram",
    ]
    for bound, count in data["buckets"].items():
        lines.append(f'{metric}_bucket{{le="{bound}"}} {count}')
    lines.append(f'{metric}_bucket{{le="+Inf"}} {data["count"]}')
    lines.append(f"{metric}_sum {data['sum']}")
    lines.append(f"{metric}_count {data['count']}")
    return lines


def _prometheus_labeled_histograms(
    metric: str, help_text: str, label: str, series: dict
) -> list:
    """One histogram *family*: a shared HELP/TYPE header, then one full
    bucket/sum/count series per label value (Prometheus requires all
    series of a family under a single TYPE declaration)."""
    if not series:
        return []
    lines = [
        f"# HELP {metric} {help_text}",
        f"# TYPE {metric} histogram",
    ]
    for value, data in series.items():
        pair = f'{label}="{value}"'
        for bound, count in data["buckets"].items():
            lines.append(
                f'{metric}_bucket{{{pair},le="{bound}"}} {count}'
            )
        lines.append(f'{metric}_bucket{{{pair},le="+Inf"}} {data["count"]}')
        lines.append(f'{metric}_sum{{{pair}}} {data["sum"]}')
        lines.append(f'{metric}_count{{{pair}}} {data["count"]}')
    return lines


def _percentile(sorted_values: list[float], fraction: float) -> float:
    """Nearest-rank percentile of an already-sorted non-empty list."""
    index = min(
        len(sorted_values) - 1, int(round(fraction * (len(sorted_values) - 1)))
    )
    return sorted_values[index]


class QueryService:
    """A thread-pool query service over one shared database.

    Parameters
    ----------
    db:
        The base database. Its *catalog* (and, under
        ``fault_scope="shared"``, its fault registry) is shared by all
        workers; each worker wraps it in its own facade.
    workers:
        Maximum queries executing simultaneously (pool size).
    max_queue:
        Maximum queries *waiting*; submissions beyond ``workers`` running
        plus ``max_queue`` queued raise :class:`AdmissionRejected`.
    default_limits / default_deadline:
        Budgets applied to submissions that don't bring their own
        (``deadline`` is wall-clock seconds measured from submission).
    breaker_threshold / breaker_cooldown:
        Consecutive failures that open a strategy's circuit breaker, and
        the seconds it stays open before admitting a half-open probe.
    fault_scope:
        ``"shared"`` (one global, locked fault-ordinal schedule) or
        ``"worker"`` (a deterministic per-worker replica). See module doc.
    clock:
        Injectable monotonic clock (drives deadlines, breakers and
        ``drain`` timeouts).
    trace / trace_history:
        ``trace=True`` runs every query under its own
        :class:`repro.trace.Tracer` and keeps the last ``trace_history``
        per-query trace summaries (operator breakdown, metrics, latency)
        in a bounded ring buffer, surfaced on
        :attr:`ServiceStats.recent_traces` and :meth:`recent_traces`.
    phases:
        Phase-budget accounting (:mod:`repro.obs.phases`): every ticket
        carries a :class:`~repro.obs.phases.PhaseTimeline` splitting its
        latency into admit/queue/plan_cache/rewrite/optimize/execute/
        drain on the service's injectable clock, with the invariant that
        the durations sum to ``ticket.latency`` exactly. Per-phase
        cumulative histograms surface on
        :attr:`ServiceStats.phase_histograms` (JSON and the
        ``repro_phase_seconds{phase=...}`` Prometheus family) and each
        terminal ticket emits a ``query.phases`` event. ``None``
        (default) follows ``trace``; an explicit bool overrides. Off
        means zero overhead -- no timeline is ever constructed.
    events:
        A :class:`repro.obs.events.EventLog`: the service emits one
        structured event per lifecycle edge (``query.submitted`` /
        ``query.admitted`` / ``query.rejected`` / ``query.started`` /
        ``query.cancelled`` / ``query.finished`` plus
        ``breaker.transition``), each attributed to its query id, and
        worker facades feed engine-level events (degradations, faults,
        budget trips) into the same log under the ticket's id. Per-kind
        event counts reconcile *exactly* with :class:`ServiceStats`
        counters (emissions share the counters' critical section).
        ``None`` (default) adds no overhead.
    slow_query_ms / slow_log:
        Slow-query capture: any query whose submission-to-completion
        latency exceeds ``slow_query_ms`` is recorded (SQL, strategy,
        outcome, degradations, metrics, top operators when traced) in a
        bounded ring surfaced on :attr:`ServiceStats.slow_queries` and
        :meth:`slow_queries`. ``slow_log`` passes a pre-built
        :class:`repro.obs.slowlog.SlowQueryLog` instead (e.g. shared
        with a facade). ``None`` (default) adds no overhead.
    latency_buckets / queue_depth_buckets:
        Histogram bucket upper bounds for the exported latency and
        queue-depth histograms; default to :data:`LATENCY_BUCKETS` /
        :data:`QUEUE_DEPTH_BUCKETS`. Must be non-empty and strictly
        increasing.
    overload:
        An :class:`~repro.serve.overload.OverloadConfig` switches on
        adaptive overload control: deadline-aware admission, priority
        shedding with class quotas, eager expiry of queued tickets, the
        retry-storm governor, and the brownout degradation ladder (see
        module docstring and DESIGN §14). ``None`` (default) preserves
        plain FIFO admission exactly.
    plan_cache:
        A :class:`~repro.plan.cache.PlanCache` shared by every worker
        facade: repeated query *templates* (same shape, different
        literals) skip the parse/rewrite/optimize pipeline and pay only
        executor time. The cache's ``plan.cache_*`` events flow into the
        service's event log, and its counters surface on
        :attr:`ServiceStats.plan_cache_hits` /
        ``plan_cache_misses`` / ``plan_cache_invalidations`` (plus the
        full summary under ``plan_cache``). ``None`` (default) leaves
        every execution path untouched.

    Use as a context manager; ``close()`` drains by default.
    """

    def __init__(
        self,
        db: Database,
        workers: int = 4,
        max_queue: int = 32,
        default_limits: Optional[Limits] = None,
        default_deadline: Optional[float] = None,
        breaker_threshold: int = 5,
        breaker_cooldown: float = 30.0,
        fault_scope: str = "shared",
        clock: Callable[[], float] = time.monotonic,
        trace: bool = False,
        trace_history: int = 64,
        events=None,
        slow_query_ms: Optional[float] = None,
        slow_log=None,
        latency_buckets=None,
        queue_depth_buckets=None,
        overload: Optional[OverloadConfig] = None,
        plan_cache=None,
        phases: Optional[bool] = None,
    ):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if max_queue < 0:
            raise ValueError("max_queue must be >= 0")
        if fault_scope not in ("shared", "worker"):
            raise ValueError(
                f"fault_scope must be 'shared' or 'worker', got {fault_scope!r}"
            )
        self._db = db
        self.workers = workers
        self.max_queue = max_queue
        self.default_limits = default_limits
        self.default_deadline = default_deadline
        self.fault_scope = fault_scope
        self._clock = clock
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._idle = threading.Condition(self._lock)
        self._queue: deque[Ticket] = deque()
        self._tickets: dict[int, Ticket] = {}  # queued or running
        self._ids = itertools.count(1)
        self._closed = False
        # counters (all guarded by self._lock)
        self._submitted = 0
        self._admitted = 0
        self._rejected = 0
        self._completed = 0
        self._failed = 0
        self._cancelled = 0
        self._in_flight = 0
        self._rejected_with_hint = 0
        self._latencies: list[float] = []
        #: Exponentially-weighted mean query latency (seconds); drives the
        #: ``retry_after_hint`` on queue-full rejections. None until the
        #: first completion -- with no data, rejections carry no hint.
        self._latency_ema: Optional[float] = None
        # tracing: bounded ring of per-query summaries + depth samples
        self.trace = trace
        if trace_history < 1:
            raise ValueError("trace_history must be >= 1")
        self._trace_history: deque[dict] = deque(maxlen=trace_history)
        #: Phase accounting defaults to following ``trace`` -- a traced
        #: service wants the budget breakdown; a bare one stays lean.
        self.phases = trace if phases is None else phases
        self._phase_samples: dict[str, list[float]] = {}
        self._queue_depth_samples: list[int] = []
        self._latency_buckets = (
            LATENCY_BUCKETS if latency_buckets is None
            else _check_buckets("latency_buckets", latency_buckets)
        )
        self._queue_depth_buckets = (
            QUEUE_DEPTH_BUCKETS if queue_depth_buckets is None
            else _check_buckets("queue_depth_buckets", queue_depth_buckets)
        )
        # observability: structured events + slow-query capture
        self.events = events
        if slow_log is not None:
            self.slow_log = slow_log
        elif slow_query_ms is not None:
            from ..obs.slowlog import SlowQueryLog

            self.slow_log = SlowQueryLog(slow_query_ms, events=events)
        else:
            self.slow_log = None
        # adaptive overload control (all state guarded by self._lock)
        self._overload = overload
        if overload is not None:
            self._estimator = overload.build_estimator()
            self._governor = overload.build_governor()
            self._brownout = overload.build_brownout()
            self._quotas = [
                overload.quota_for(priority, max_queue)
                for priority in PRIORITIES  # indexed by rank
            ]
        else:
            self._estimator = None
            self._governor = None
            self._brownout = None
            self._quotas = [None, None, None]
        self._queued_by_rank = [0, 0, 0]
        self._shed = 0
        self._expired_in_queue = 0
        self._rejected_futile = 0
        self._retry_storm_rejected = 0
        self._brownout_transitions: list[dict] = []
        self._queue_wait_samples: list[float] = []
        # shared plan cache (thread-safe; its own lock sits between the
        # service and catalog ranks in the section-9 order)
        self._plan_cache = plan_cache
        if (
            plan_cache is not None
            and events is not None
            and plan_cache.events is None
        ):
            plan_cache.events = events
        # breakers
        self._breaker_threshold = breaker_threshold
        self._breaker_cooldown = breaker_cooldown
        self._breakers: dict[str, CircuitBreaker] = {}
        self._transitions: list[BreakerTransition] = []
        self._tls = threading.local()
        # workers
        self._threads = [
            threading.Thread(
                target=self._worker_loop, name=f"repro-serve-{i}", daemon=True
            )
            for i in range(workers)
        ]
        for thread in self._threads:
            thread.start()

    # -- submission ---------------------------------------------------------

    def submit(
        self,
        sql: str,
        strategy: Any = "ni",
        limits: Optional[Limits] = None,
        deadline: Optional[float] = None,
        cse_mode: str = "recompute",
        priority: str = "normal",
    ) -> Ticket:
        """Admit one query (or raise :class:`AdmissionRejected`).

        ``deadline`` (seconds from *now*) is folded into the ticket's
        guard as a wall-clock timeout; queue wait counts against it.
        ``strategy`` may be a :class:`~repro.api.strategies.Strategy`
        member or its string value; the service executes with
        ``fallback=True``, so a failing strategy degrades rather than
        erroring (see the breaker discussion in the module docstring).

        ``priority`` (``"high"``/``"normal"``/``"low"``) matters only
        with overload control on: higher classes dequeue first, may shed
        the newest lowest-priority queued ticket when the queue is full,
        and lower classes are capped by their queue quota. Without
        ``overload=`` the class is recorded but scheduling stays FIFO.
        """
        key = getattr(strategy, "value", strategy)
        rank = priority_rank(priority)
        limits = limits if limits is not None else self.default_limits
        deadline = (
            deadline if deadline is not None else self.default_deadline
        )
        overload = self._overload
        fp = fingerprint(sql) if overload is not None else ""
        events = self.events
        with self._lock:
            # Every submission gets an id -- rejected ones included, so
            # their events carry an identity.
            query_id = next(self._ids)
            self._submitted += 1
            if events is not None:
                events.emit(
                    "query.submitted", query_id=query_id, strategy=key,
                    priority=priority,
                )
            if self._closed:
                self._rejected += 1
                if events is not None:
                    events.emit(
                        "query.rejected", query_id=query_id,
                        reason="service closed",
                    )
                raise AdmissionRejected(
                    "service closed", len(self._queue), self.max_queue,
                    in_flight=self._in_flight,
                )
            now = self._clock()
            # Overload control, in order: evict already-dead tickets (may
            # free slots), gate retry storms, refuse provably-futile
            # work, enforce class quotas -- then the capacity rule, with
            # priority shedding as the last resort before rejection.
            self._expire_queued_locked(now)
            full = (
                self._in_flight + len(self._queue)
                >= self.workers + self.max_queue
            )
            if overload is not None and self._governor is not None:
                if full:
                    allowed, wait_remaining = self._governor.admit(fp, now)
                    if not allowed:
                        hint = (
                            round(wait_remaining, 6)
                            if wait_remaining is not None else None
                        )
                        self._reject_locked(
                            query_id, "retry storm", hint,
                            extra_kind="overload.retry_storm",
                        )
                else:
                    # Early resubmission to a service with capacity is
                    # not a storm -- the hint was only an estimate.
                    self._governor.forgive(fp)
            if (
                overload is not None
                and overload.deadline_admission
                and deadline is not None
                # Futility rejection only pays when the arrival would
                # contend for a worker: with idle capacity, executing a
                # doomed-looking query costs nothing (the estimate may
                # be wrong; an idle worker is wrong for sure).
                and self._in_flight + len(self._queue) >= self.workers
            ):
                wait, estimate = self._predicted_wait_locked(fp, key)
                if (
                    wait is not None
                    and estimate is not None
                    and wait + estimate > deadline * overload.admission_slack
                ):
                    hint = round(wait, 6) if wait > 0 else None
                    if self._governor is not None:
                        self._governor.record_rejection(fp, now, hint)
                    if events is not None:
                        events.emit(
                            "overload.futile", query_id=query_id,
                            predicted_ms=round((wait + estimate) * 1000, 3),
                            deadline_ms=round(deadline * 1000, 3),
                        )
                    self._reject_locked(
                        query_id, "deadline unmeetable", hint,
                    )
            if overload is not None:
                quota = self._quotas[rank]
                would_wait = (
                    self._in_flight + len(self._queue) >= self.workers
                )
                if (
                    quota is not None
                    and would_wait
                    and self._queued_by_rank[rank] >= quota
                ):
                    hint = self._retry_hint_locked()
                    if self._governor is not None:
                        self._governor.record_rejection(fp, now, hint)
                    self._reject_locked(query_id, "class quota", hint)
            # Total-capacity rule: admit while admitted-but-unfinished
            # work fits in ``workers + max_queue``.  (Queue depth alone
            # would make ``max_queue=0`` unusable even with idle workers.)
            if full:
                victim = None
                if (
                    overload is not None
                    and overload.shed_lower_priority
                    and self._queue
                    and self._queue[-1].rank > rank
                ):
                    # The queue is priority-ordered (FIFO within class),
                    # so its tail is the newest lowest-priority ticket.
                    victim = self._queue.pop()
                if victim is None:
                    hint = self._retry_hint_locked()
                    if self._governor is not None and overload is not None:
                        self._governor.record_rejection(fp, now, hint)
                    self._reject_locked(
                        query_id, "queue full", hint,
                        queue_depth=len(self._queue),
                    )
                else:
                    self._resolve_queued_locked(
                        victim, SHED,
                        QueryShed(
                            victim.priority, len(self._queue),
                            retry_after_hint=self._retry_hint_locked(),
                        ),
                        now,
                    )
            merged = self._merge_limits(limits, deadline)
            if (
                self._brownout is not None
                and self._brownout.tightening_budgets
            ):
                merged = self._tighten_limits(merged)
            guard = ExecutionGuard(merged, clock=self._clock)
            if events is not None:
                guard.events = events
            ticket = Ticket(
                query_id, sql, key, guard, now,
                cse_mode=cse_mode, priority=priority, rank=rank,
                fingerprint=fp, deadline_s=deadline,
            )
            self._admitted += 1
            if events is not None:
                events.emit(
                    "query.admitted", query_id=query_id,
                    queue_depth=len(self._queue), priority=priority,
                )
            self._tickets[ticket.query_id] = ticket
            self._queue_depth_samples.append(len(self._queue))
            if self.phases:
                # The timeline starts at the ticket's birth; the second
                # clock read here closes the "admit" phase (everything
                # between submission and enqueue). Subsequent marks
                # attribute each later interval, so durations always sum
                # to ticket.latency exactly.
                ticket.phases = PhaseTimeline(start=now, clock=self._clock)
                ticket.phases.mark("admit")
            self._enqueue_locked(ticket)
            self._not_empty.notify()
            self._observe_overload_locked(now)
            return ticket

    def _reject_locked(
        self,
        query_id: int,
        reason: str,
        hint: Optional[float],
        extra_kind: Optional[str] = None,
        queue_depth: Optional[int] = None,
    ) -> None:
        """Count, emit and raise one admission rejection (lock held).

        Every rejection emits ``query.rejected`` (so per-kind event
        counts keep reconciling with ``rejected``); overload-specific
        reasons add a marker event via ``extra_kind``. Rejections are
        also pressure observations for the brownout ladder -- under a
        storm they may be the *only* clock edges the service sees.
        """
        self._observe_overload_locked(self._clock())
        self._rejected += 1
        if hint is not None:
            self._rejected_with_hint += 1
        if reason == "deadline unmeetable":
            self._rejected_futile += 1
        elif reason == "retry storm":
            self._retry_storm_rejected += 1
        if self.events is not None:
            if extra_kind is not None:
                self.events.emit(
                    extra_kind, query_id=query_id, retry_after_hint=hint,
                )
            payload = {"reason": reason, "retry_after_hint": hint}
            if queue_depth is not None:
                payload["queue_depth"] = queue_depth
            self.events.emit(
                "query.rejected", query_id=query_id, **payload
            )
        raise AdmissionRejected(
            reason, len(self._queue), self.max_queue,
            in_flight=self._in_flight, retry_after_hint=hint,
        )

    def _enqueue_locked(self, ticket: Ticket) -> None:
        """Insert a ticket into the wait queue.

        Plain FIFO without overload control; with it, priority order
        (rank ascending) with FIFO stability inside each class -- the
        insert walks from the tail, so same-rank traffic stays O(1).
        """
        queue = self._queue
        if (
            self._overload is None
            or not queue
            or queue[-1].rank <= ticket.rank
        ):
            queue.append(ticket)
        else:
            index = len(queue)
            while index > 0 and queue[index - 1].rank > ticket.rank:
                index -= 1
            queue.insert(index, ticket)
        self._queued_by_rank[ticket.rank] += 1

    def _retry_hint_locked(self) -> Optional[float]:
        """The backoff estimate attached to a queue-full rejection (called
        with the lock held).

        With overload control and a warm estimator, the hint is the
        predicted time for the current backlog to clear one slot
        (per-shape estimates for queued work, half a mean for each
        in-flight query). Otherwise: a full service clears roughly
        ``workers`` queries per mean latency, so one slot frees after
        about ``ema * (depth + 1) / workers`` seconds. Deliberately
        rough -- the point is to replace a client's blind hot-loop with
        a back-off on the right order of magnitude. ``None`` before the
        first completion (no data, no hint)."""
        if (
            self._estimator is not None
            and self._estimator.global_mean() is not None
        ):
            backlog = self._backlog_seconds_locked()
            mean = self._estimator.global_mean()
            return round((backlog + mean) / self.workers, 6)
        if self._latency_ema is None:
            return None
        return round(
            self._latency_ema * (len(self._queue) + 1) / self.workers, 6
        )

    # -- overload control (all helpers called with the lock held) -----------

    def _backlog_seconds_locked(self) -> float:
        """Estimated seconds of work already admitted: per-shape
        estimates for every queued ticket (global mean for cold shapes)
        plus half a mean per in-flight query (in expectation, running
        work is half done)."""
        mean = self._estimator.global_mean() or 0.0
        queued = 0.0
        for ticket in self._queue:
            estimate = self._estimator.estimate(
                ticket.fingerprint, ticket.strategy
            )
            queued += estimate if estimate is not None else mean
        return queued + 0.5 * mean * self._in_flight

    def _predicted_wait_locked(
        self, fp: str, strategy: str
    ) -> tuple[Optional[float], Optional[float]]:
        """``(predicted queue wait, own service-time estimate)`` for one
        arriving submission -- the futility test's inputs. Both ``None``
        while the estimator is cold (no evidence, no rejection)."""
        estimate = self._estimator.estimate(fp, strategy)
        if estimate is None:
            return None, None
        return self._backlog_seconds_locked() / self.workers, estimate

    def _expire_queued_locked(self, now: Optional[float] = None) -> None:
        """Eagerly evict queued tickets whose deadline already passed
        (``expired_in_queue`` outcome) -- the slot frees without a worker
        dequeue and without burning any execution on a dead query.

        Cancelled tickets are left for the workers: they must resolve as
        ``cancelled`` (the ``close(drain=False)`` contract), not as
        expired, even when their deadline also lapsed. Reads the clock
        only when overload control is on (stepping fake clocks must not
        tick on the seed paths). Caller holds the lock."""
        if (
            self._overload is None
            or not self._overload.eager_expiry
            or not self._queue
        ):
            return
        expired = [
            ticket for ticket in self._queue
            if not ticket.guard.cancelled and ticket.guard.expired()
        ]
        if not expired:
            return
        if now is None:
            now = self._clock()
        dead = set(id(ticket) for ticket in expired)
        self._queue = deque(
            ticket for ticket in self._queue if id(ticket) not in dead
        )
        for ticket in expired:
            self._resolve_queued_locked(
                ticket, EXPIRED,
                BudgetExceeded(
                    "timeout",
                    ticket.guard.limits.timeout,
                    round(now - ticket.submitted_at, 6),
                    metrics=Metrics(),
                ),
                now,
            )
        if not self._queue and not self._in_flight:
            self._idle.notify_all()

    def _resolve_queued_locked(
        self, ticket: Ticket, outcome: str, error: BaseException, now: float
    ) -> None:
        """Resolve a ticket evicted from the queue (shed or expired)
        without a worker ever touching it. Caller holds the lock and
        has already removed the ticket from ``self._queue``; this
        settles counters, events and the ticket's future.

        (Distinct from :meth:`_finish`, which takes the lock itself and
        records run outcomes -- eviction happens *inside* the admission
        critical section.)"""
        ticket.state = outcome
        ticket.latency = now - ticket.submitted_at
        # Shed/expired tickets are the *longest* waiters; the queue-wait
        # histogram must see them too, not just the dequeue-to-run path
        # (sampling only at dequeue biases the exported wait low).
        self._queue_wait_samples.append(max(0.0, ticket.latency))
        if ticket.phases is not None:
            ticket.phases.mark("queue", now)
            self._record_phases_locked(ticket, outcome)
        self._tickets.pop(ticket.query_id, None)
        self._queued_by_rank[ticket.rank] -= 1
        if outcome == SHED:
            self._shed += 1
            kind = "overload.shed"
        else:
            self._expired_in_queue += 1
            kind = "overload.expired"
        if self.events is not None:
            # Inside the counters' critical section, like every
            # lifecycle emission (per-kind counts must reconcile).
            self.events.emit(
                kind,
                query_id=ticket.query_id,
                priority=ticket.priority,
                queued_ms=round(ticket.latency * 1000, 3),
            )
        ticket._result = None
        ticket._error = error
        ticket._event.set()

    def _record_phases_locked(self, ticket: Ticket, outcome: str) -> None:
        """Fold one terminal ticket's phase budget into the per-phase
        histogram samples and emit its ``query.phases`` event (inside
        the counters' critical section, like every lifecycle emission,
        so the event count reconciles with terminal outcomes exactly).
        Caller holds the lock and has set ``ticket.latency``."""
        timeline = ticket.phases
        for name, seconds in timeline.durations.items():
            self._phase_samples.setdefault(name, []).append(seconds)
        if self.events is not None:
            self.events.emit(
                "query.phases",
                query_id=ticket.query_id,
                outcome=outcome,
                latency_ms=round(ticket.latency * 1000, 3),
                brownout_level=ticket.brownout_level,
                phases=timeline.as_ms_dict(),
            )

    def _tighten_limits(self, merged: Limits) -> Limits:
        """The tighten-budgets brownout rung: scale the row/invocation
        budgets by ``brownout_limit_scale``. The timeout is *not*
        scaled -- the deadline is the client's contract, and shrinking it
        here would corrupt the futility test's arithmetic."""
        scale = self._overload.brownout_limit_scale

        def scaled(value: Optional[int]) -> Optional[int]:
            return None if value is None else max(1, int(value * scale))

        return Limits(
            timeout=merged.timeout,
            max_rows_scanned=scaled(merged.max_rows_scanned),
            max_rows_materialized=scaled(merged.max_rows_materialized),
            max_subquery_invocations=scaled(
                merged.max_subquery_invocations
            ),
        )

    def _observe_overload_locked(self, now: float) -> None:
        """Feed current utilization to the brownout ladder; record and
        emit a transition when it steps."""
        if self._brownout is None:
            return
        # Pressure = admitted-but-unfinished work per worker: 1.0 means
        # every worker is spoken for, above 1.0 there is queue backlog
        # on top. Queue fill against max_queue would be blind here --
        # admission control deliberately keeps the queue short, so the
        # overload it is busy managing would never register.
        utilization = (self._in_flight + len(self._queue)) / self.workers
        step = self._brownout.observe(utilization, now)
        if step is None:
            return
        old, new = step
        record = {
            "from": old,
            "to": new,
            "direction": "down" if new > old else "up",
            "utilization": round(utilization, 4),
            "rung": BROWNOUT_RUNGS[new],
        }
        self._brownout_transitions.append(record)
        if self.events is not None:
            self.events.emit("overload.brownout", **record)

    def evaluate_overload(self) -> int:
        """Run one overload-control evaluation outside the submit/finish
        path: evict expired queued tickets and feed utilization to the
        brownout ladder. Returns the (possibly updated) brownout level.

        Submissions and completions already evaluate implicitly; call
        this periodically (the soak harness does, between phases) so the
        ladder can *recover* when traffic stops arriving entirely --
        with no submissions there is otherwise no clock edge to observe
        the now-idle service.
        """
        with self._lock:
            now = self._clock()
            self._expire_queued_locked(now)
            self._observe_overload_locked(now)
            return self._brownout.level if self._brownout is not None else 0

    @staticmethod
    def _merge_limits(
        limits: Optional[Limits], deadline: Optional[float]
    ) -> Limits:
        """Fold a submission deadline into its limits' timeout."""
        base = limits if limits is not None else Limits()
        if deadline is None:
            return base
        timeout = (
            deadline if base.timeout is None else min(base.timeout, deadline)
        )
        return Limits(
            timeout=timeout,
            max_rows_scanned=base.max_rows_scanned,
            max_rows_materialized=base.max_rows_materialized,
            max_subquery_invocations=base.max_subquery_invocations,
        )

    # -- cancellation -------------------------------------------------------

    def cancel(self, query_id: int) -> bool:
        """Request cooperative cancellation of a queued or running query.

        Returns True when the query was still in flight (it will trip with
        :class:`~repro.errors.QueryCancelled` within one executor step, or
        immediately on dequeue if it never started), False when it already
        finished or the id is unknown.
        """
        with self._lock:
            ticket = self._tickets.get(query_id)
        if ticket is None:
            return False
        ticket.guard.cancel()
        return True

    # -- execution ----------------------------------------------------------

    def _worker_db(self) -> Database:
        """This worker thread's database facade (built once per thread).

        Shares the base catalog; own rewrite engine (its per-rewrite
        diagnostic state is not thread-safe); fault registry per
        ``fault_scope``.
        """
        local = self._tls
        db = getattr(local, "db", None)
        if db is None:
            kwargs: dict[str, Any] = {}
            if self._db.faults is not None:
                kwargs["faults"] = (
                    self._db.faults.replica()
                    if self.fault_scope == "worker"
                    else self._db.faults
                )
            if self.events is not None:
                # Engine-level events (degradations, faults, budget trips)
                # flow into the service's log; lifecycle events stay with
                # the service (the worker runs inside the ticket's scope,
                # so the facade never claims the lifecycle itself).
                kwargs["events"] = self.events
            if self._plan_cache is not None:
                # One shared cache across facades: the whole point is
                # that worker B hits on the template worker A filled.
                kwargs["plan_cache"] = self._plan_cache
            db = Database(
                catalog=self._db.catalog,
                validate=self._db.engine.validate,
                **kwargs,
            )
            local.db = db
        return db

    def _breaker(self, strategy: str) -> CircuitBreaker:
        with self._lock:
            breaker = self._breakers.get(strategy)
            if breaker is None:
                breaker = CircuitBreaker(
                    strategy,
                    threshold=self._breaker_threshold,
                    cooldown=self._breaker_cooldown,
                    clock=self._clock,
                    on_transition=self._record_transition,
                )
                self._breakers[strategy] = breaker
            return breaker

    def _record_transition(self, event: BreakerTransition) -> None:
        # Called with the breaker's lock held; appending to a list is
        # atomic, so no extra lock here (and taking self._lock could
        # deadlock against _breaker()). The event log's lock is a leaf
        # (it never takes another lock), so emitting under the breaker
        # lock is safe.
        self._transitions.append(event)
        if self.events is not None:
            self.events.emit(
                "breaker.transition",
                strategy=event.strategy,
                from_state=event.from_state,
                to_state=event.to_state,
                reason=event.reason,
            )

    def _worker_loop(self) -> None:
        while True:
            with self._lock:
                while True:
                    # Sweep expired tickets before (and after) waiting:
                    # a worker must never spend itself dequeuing a
                    # ticket that eager expiry should have evicted.
                    self._expire_queued_locked()
                    if self._queue or self._closed:
                        break
                    self._not_empty.wait()
                if not self._queue:
                    return  # closed and drained
                ticket = self._queue.popleft()
                self._queued_by_rank[ticket.rank] -= 1
                ticket.state = RUNNING
                now = self._clock()
                ticket.started_at = now
                self._queue_wait_samples.append(
                    max(0.0, now - ticket.submitted_at)
                )
                if ticket.phases is not None:
                    # Reuses the dequeue clock read: the "queue" phase
                    # ends exactly where started_at begins.
                    ticket.phases.mark("queue", now)
                if self._brownout is not None:
                    # Snapshot the ladder at dequeue: the whole run uses
                    # one consistent level, however the ladder moves.
                    ticket.brownout_level = self._brownout.level
                    if self._brownout.forcing_cheapest:
                        ticket.forced_strategy = (
                            self._estimator.cheapest(
                                ticket.fingerprint,
                                ("magic", _LAST_RESORT, ticket.strategy),
                            )
                            or "magic"
                        )
                self._in_flight += 1
            try:
                self._run_ticket(ticket)
            finally:
                with self._lock:
                    self._in_flight -= 1
                    self._tickets.pop(ticket.query_id, None)
                    self._idle.notify_all()

    def _run_ticket(self, ticket: Ticket) -> None:
        events = self.events
        if events is None:
            self._run_ticket_inner(ticket)
            return
        # Bind the ticket id to this thread for the whole execution, so
        # engine-level emissions (degradations, faults, budget trips) from
        # the worker facade are attributed to this query without plumbing.
        with events.scope(ticket.query_id):
            events.emit("query.started", strategy=ticket.strategy)
            self._run_ticket_inner(ticket)

    def _run_ticket_inner(self, ticket: Ticket) -> None:
        db = self._worker_db()
        claimed: dict[str, bool] = {}  # strategy -> probe claimed
        resolved: set[str] = set()
        forced = ticket.forced_strategy

        def disabled(key: str) -> Optional[str]:
            if key == _LAST_RESORT:
                return None
            if forced is not None and key != forced:
                # Brownout level 3: veto everything but the cheapest
                # learned strategy. The veto records a degradation with
                # error_type "CircuitBreakerOpen", which the breaker
                # bookkeeping below already exempts -- a brownout must
                # not poison strategy health.
                return f"brownout: forcing cheapest strategy {forced!r}"
            reason, probe = self._breaker(key).try_pass()
            if probe:
                claimed[key] = True
            return reason

        outcome = FAILED
        error: Optional[BaseException] = None
        result: Optional[Result] = None
        tracer = None
        if self.trace and ticket.brownout_level < 1:
            # The first brownout rung sheds per-query tracing: under
            # sustained overload the span tree is pure overhead.
            from ..trace import Tracer

            tracer = Tracer()
        try:
            # Deadline may have expired (or a cancel landed) while queued:
            # trip before doing any work.
            ticket.guard.check()
            result = db.execute(
                ticket.sql,
                strategy=ticket.strategy,
                cse_mode=getattr(ticket, "cse_mode", "recompute"),
                guard=ticket.guard,
                fallback=True,
                disabled=disabled,
                tracer=tracer,
                phases=ticket.phases,
            )
            outcome = COMPLETED
            # Breaker bookkeeping: every strategy that *failed* on the way
            # down the chain takes a failure; the strategy that finally
            # produced the answer takes a success.
            effective = ticket.strategy
            for event in result.degradations:
                if event.error_type != "CircuitBreakerOpen":
                    self._breaker(event.attempted).record_failure(
                        f"{event.error_type}: {event.message}"
                    )
                    resolved.add(event.attempted)
                effective = event.fallback or effective
            self._breaker(effective).record_success()
            resolved.add(effective)
        except QueryCancelled as exc:
            outcome, error = CANCELLED, exc
        except BudgetExceeded as exc:
            # A budget/deadline trip says nothing about the strategy's
            # health; it does not feed the breaker.
            outcome, error = FAILED, exc
        except ReproError as exc:
            outcome, error = FAILED, exc
            # Execution-stage failure: attribute to the strategy whose
            # plan was executing (the last fallback taken, else requested).
            effective = ticket.strategy
            for event in getattr(db.engine, "degradations", []) or []:
                effective = event.fallback or effective
            self._breaker(effective).record_failure(
                f"{type(exc).__name__}: {exc}"
            )
            resolved.add(effective)
        except BaseException as exc:  # pragma: no cover - invariant breach
            outcome, error = FAILED, exc
        finally:
            for key, was_probe in claimed.items():
                if was_probe and key not in resolved:
                    self._breaker(key).release_probe()
            self._finish(ticket, outcome, result, error, tracer=tracer)

    def _finish(
        self,
        ticket: Ticket,
        outcome: str,
        result: Optional[Result],
        error: Optional[BaseException],
        tracer=None,
    ) -> None:
        # One clock read settles both the measured latency and the final
        # "drain" phase mark -- sharing the reading is what makes the
        # phase durations sum to ticket.latency *exactly*.
        end = self._clock()
        latency = end - ticket.submitted_at
        phases = ticket.phases
        if phases is not None:
            phases.mark("drain", end)
        summary = None
        if tracer is not None:
            # Summarise outside the lock (walks the span tree), append
            # inside it (the ring is shared).
            summary = {
                "query_id": ticket.query_id,
                "sql": ticket.sql,
                "strategy": ticket.strategy,
                "outcome": outcome,
                "latency_ms": round(latency * 1000, 3),
                "metrics": (
                    result.metrics.as_dict() if result is not None
                    else tracer.metric_totals()
                ),
                "operators": tracer.operator_summaries(top=8),
            }
        with self._lock:
            ticket.state = outcome
            ticket.latency = latency
            if outcome == COMPLETED:
                self._completed += 1
            elif outcome == CANCELLED:
                self._cancelled += 1
            else:
                self._failed += 1
            self._latencies.append(latency)
            self._latency_ema = (
                latency if self._latency_ema is None
                else 0.2 * latency + 0.8 * self._latency_ema
            )
            if (
                self._estimator is not None
                and outcome == COMPLETED
                and ticket.started_at is not None
            ):
                # Learn *execution* time (dequeue to finish) under the
                # requested strategy; queue wait is what admission
                # predicts from these numbers, so it must not pollute
                # them. Failed runs are truncated by their trip point
                # and would bias the estimate low.
                self._estimator.observe(
                    ticket.fingerprint,
                    ticket.strategy,
                    max(
                        0.0,
                        ticket.submitted_at + latency - ticket.started_at,
                    ),
                )
            if self._brownout is not None:
                # Observed while this query still counts as in flight:
                # sustained saturation must not flicker at completion
                # edges. Recovery is driven by the lighter utilization
                # later submissions (or evaluate_overload) read.
                self._observe_overload_locked(
                    ticket.submitted_at + latency
                )
            if summary is not None:
                self._trace_history.append(summary)
            if self.events is not None:
                # Emitted in the counters' critical section so per-kind
                # event counts reconcile exactly with ServiceStats.
                if outcome == CANCELLED:
                    self.events.emit(
                        "query.cancelled", query_id=ticket.query_id
                    )
                self.events.emit(
                    "query.finished",
                    query_id=ticket.query_id,
                    outcome=outcome,
                    strategy=ticket.strategy,
                    latency_ms=round(latency * 1000, 3),
                    error_type=(
                        type(error).__name__ if error is not None else None
                    ),
                    metrics=(
                        result.metrics.as_dict()
                        if result is not None else None
                    ),
                )
            if phases is not None:
                self._record_phases_locked(ticket, outcome)
        if self.slow_log is not None and ticket.brownout_level < 1:
            # Slow-query capture is shed at the first brownout rung,
            # together with tracing (see BROWNOUT_RUNGS).
            self.slow_log.observe(
                latency * 1000,
                sql=ticket.sql,
                strategy=ticket.strategy,
                query_id=ticket.query_id,
                outcome=outcome,
                degradations=(
                    result.degradations if result is not None else ()
                ),
                metrics=result.metrics if result is not None else None,
                tracer=tracer,
                phases=(
                    phases.as_ms_dict() if phases is not None else None
                ),
                brownout_level=ticket.brownout_level,
            )
        ticket._result = result
        ticket._error = error
        ticket._event.set()

    # -- lifecycle ----------------------------------------------------------

    def close(self, drain: bool = True, timeout: Optional[float] = None) -> None:
        """Stop admitting queries and shut the pool down.

        ``drain=True`` (default) lets queued and running queries finish;
        ``drain=False`` cancels everything still queued (their tickets
        resolve with :class:`~repro.errors.QueryCancelled`) and interrupts
        running queries cooperatively.
        """
        with self._lock:
            self._closed = True
            if not drain:
                for ticket in list(self._queue) + [
                    t for t in self._tickets.values() if t.state == RUNNING
                ]:
                    ticket.guard.cancel()
            self._not_empty.notify_all()
        for thread in self._threads:
            thread.join(timeout)

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close(drain=exc_type is None)

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Block until no query is queued or running (service stays open);
        False if ``timeout`` elapsed first.

        The deadline runs on the service's injectable clock (like every
        other timeout here), not the process monotonic clock directly --
        fake-clock tests drive it deterministically."""
        deadline = None if timeout is None else self._clock() + timeout
        with self._lock:
            while self._queue or self._in_flight:
                remaining = (
                    None if deadline is None else deadline - self._clock()
                )
                if remaining is not None and remaining <= 0:
                    return False
                self._idle.wait(remaining)
        return True

    # -- observation --------------------------------------------------------

    def recent_traces(self) -> list[dict]:
        """The bounded ring of per-query trace summaries (newest last);
        empty unless the service runs with ``trace=True``."""
        with self._lock:
            return list(self._trace_history)

    def slow_queries(self) -> list[dict]:
        """The bounded ring of slow-query records (insertion order);
        empty unless the service runs with ``slow_query_ms``/``slow_log``."""
        if self.slow_log is None:
            return []
        return self.slow_log.records()

    def stats(self) -> ServiceStats:
        """A consistent snapshot of all service counters (see
        :class:`ServiceStats` for the conservation law)."""
        with self._lock:
            latencies = sorted(self._latencies)
            # Service (rank 10) -> plan cache (rank 15): ascending, legal.
            cache_summary = (
                self._plan_cache.snapshot()
                if self._plan_cache is not None else {}
            )
            overload_summary = {}
            if self._overload is not None:
                overload_summary["estimator"] = self._estimator.as_dict()
                if self._governor is not None:
                    overload_summary["retry"] = {
                        "penalized": self._governor.penalized,
                        "rejected": self._governor.rejected,
                    }
            return ServiceStats(
                submitted=self._submitted,
                admitted=self._admitted,
                rejected=self._rejected,
                rejected_with_hint=self._rejected_with_hint,
                rejected_futile=self._rejected_futile,
                retry_storm_rejected=self._retry_storm_rejected,
                retry_penalized=(
                    self._governor.penalized
                    if self._governor is not None else 0
                ),
                completed=self._completed,
                failed=self._failed,
                cancelled=self._cancelled,
                shed=self._shed,
                expired_in_queue=self._expired_in_queue,
                in_flight=self._in_flight,
                queue_depth=len(self._queue),
                max_queue=self.max_queue,
                workers=self.workers,
                latency_p50_ms=(
                    round(_percentile(latencies, 0.50) * 1000, 3)
                    if latencies else None
                ),
                latency_p95_ms=(
                    round(_percentile(latencies, 0.95) * 1000, 3)
                    if latencies else None
                ),
                breakers={
                    key: breaker.snapshot()
                    for key, breaker in self._breakers.items()
                },
                breaker_transitions=list(self._transitions),
                latency_histogram=_histogram(
                    latencies, self._latency_buckets
                ),
                queue_depth_histogram=_histogram(
                    self._queue_depth_samples, self._queue_depth_buckets
                ),
                recent_traces=list(self._trace_history),
                slow_queries=(
                    self.slow_log.records()
                    if self.slow_log is not None else []
                ),
                slow_total=(
                    self.slow_log.total if self.slow_log is not None else 0
                ),
                brownout_level=(
                    self._brownout.level
                    if self._brownout is not None else 0
                ),
                brownout_transitions=list(self._brownout_transitions),
                queue_wait_histogram=_histogram(
                    self._queue_wait_samples, self._latency_buckets
                ),
                phase_histograms={
                    name: _histogram(
                        self._phase_samples[name], self._latency_buckets
                    )
                    for name in PHASES
                    if name in self._phase_samples
                },
                overload=overload_summary,
                plan_cache_hits=cache_summary.get("hits", 0),
                plan_cache_misses=cache_summary.get("misses", 0),
                plan_cache_invalidations=cache_summary.get(
                    "invalidations", 0
                ),
                plan_cache=cache_summary,
            )
