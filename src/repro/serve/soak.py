"""Chaos soak harness: mixed workload, faults, cancels, tight deadlines.

``run_soak`` drives a :class:`~repro.serve.service.QueryService` with a
seeded mixed workload (the section-2 EMP/DEPT COUNT-bug query plus TPC-D
Q1/Q2/Q3 at a small scale factor) across worker threads while injecting
deterministic faults, cancelling random in-flight queries, and giving a
fraction of submissions deadlines too tight to meet. It then checks the
PR-2 metamorphic invariant *per query*:

* a completed query's rows must equal the fault-free reference answer for
  the strategy that actually produced them (per-strategy references,
  because Kim's method loses COUNT-bug rows by design);
* a failed query's error must be a *typed* engine error
  (:class:`~repro.errors.ReproError` subclass) -- never a raw traceback;
* the service's counters must reconcile: every submission is accounted
  for as completed, failed, cancelled or rejected; and
* the service must not hang (the CLI arms ``faulthandler`` so a deadlock
  dumps stacks instead of stalling CI).

Everything that varies is derived from ``seed`` via ``random.Random``, so
a soak run is reproducible up to thread scheduling: the *workload* (query
mix, strategies, deadlines, cancel points) is identical across runs; which
interleaving the OS picks is exactly what the soak is exercising.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass, field
from typing import Optional

from ..api.database import Database
from ..errors import AdmissionRejected, ReproError
from ..faults import FaultRegistry
from ..guard import Limits
from ..obs.phases import check_phase_sum
from ..storage import Catalog
from ..tpcd import QUERY_1, QUERY_2, QUERY_3, load_tpcd
from ..tpcd.queries import EMP_DEPT_QUERY
from ..trace import merge_operator_summaries
from .overload import PRIORITIES, OverloadConfig
from .service import QueryService, ServiceStats

#: The soak workload: name -> (sql, strategies worth requesting for it).
#: Kim and Dayal are requested where they are *not* always applicable too
#: -- exercising the fallback chain and feeding the circuit breakers is
#: the point, not avoiding them.
WORKLOAD: dict[str, tuple[str, tuple[str, ...]]] = {
    "empdept": (
        EMP_DEPT_QUERY,
        ("ni", "kim", "dayal", "magic", "magic_opt"),
    ),
    "q1": (QUERY_1, ("ni", "magic", "magic_opt", "kim")),
    "q2": (QUERY_2, ("ni", "magic", "magic_opt", "dayal")),
    "q3": (QUERY_3, ("ni", "magic", "magic_opt", "kim")),
}


@dataclass
class Violation:
    """One broken invariant observed by the soak run."""

    kind: str       # "wrong_answer" | "untyped_error" | "reconciliation"
    query: str      # workload key (or "" for service-level violations)
    strategy: str   # requested strategy
    detail: str

    def __str__(self) -> str:  # pragma: no cover - display helper
        scope = f" [{self.query}/{self.strategy}]" if self.query else ""
        return f"{self.kind}{scope}: {self.detail}"


@dataclass
class SoakReport:
    """Outcome of one soak run: stats, outcome mix, violations."""

    seconds: float
    stats: ServiceStats
    outcomes: dict = field(default_factory=dict)  # error type name -> count
    violations: list = field(default_factory=list)
    checked_answers: int = 0
    cancels_requested: int = 0
    #: Per-operator totals merged across every traced query (largest
    #: elapsed first); populated only when the soak ran with ``trace=True``.
    operator_totals: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def throughput(self) -> float:
        """Finished queries per second (completed + failed + cancelled)."""
        finished = (
            self.stats.completed + self.stats.failed + self.stats.cancelled
        )
        return finished / self.seconds if self.seconds > 0 else 0.0

    def as_dict(self) -> dict:
        return {
            "ok": self.ok,
            "seconds": round(self.seconds, 3),
            "throughput_qps": round(self.throughput(), 2),
            "checked_answers": self.checked_answers,
            "cancels_requested": self.cancels_requested,
            "outcomes": dict(sorted(self.outcomes.items())),
            "violations": [str(v) for v in self.violations],
            "operator_totals": self.operator_totals,
            "stats": self.stats.as_dict(),
        }


def build_soak_catalog(scale: float = 0.005, seed: int = 7) -> Catalog:
    """The soak database: TPC-D tables at ``scale`` plus the section-2
    EMP/DEPT tables (with a COUNT-bug department), in one catalog."""
    from ..storage import Column, Schema
    from ..types import SQLType

    catalog = load_tpcd(scale_factor=scale, seed=seed)
    dept = catalog.create_table(
        "dept",
        Schema(
            [
                Column("name", SQLType.STR, nullable=False),
                Column("budget", SQLType.FLOAT),
                Column("num_emps", SQLType.INT),
                Column("building", SQLType.STR),
            ],
            primary_key=["name"],
        ),
    )
    emp = catalog.create_table(
        "emp",
        Schema(
            [
                Column("empno", SQLType.INT, nullable=False),
                Column("name", SQLType.STR),
                Column("building", SQLType.STR),
                Column("salary", SQLType.FLOAT),
            ],
            primary_key=["empno"],
        ),
    )
    rng = random.Random(seed)
    buildings = [f"B{i}" for i in range(8)]
    for d in range(24):
        # Building B7 gets departments but no employees: the COUNT bug.
        dept.insert(
            (
                f"dept{d}",
                float(rng.randrange(500, 20000)),
                rng.randrange(0, 6),
                rng.choice(buildings),
            )
        )
    for e in range(160):
        emp.insert(
            (
                e,
                f"emp{e}",
                rng.choice(buildings[:-1]),
                float(rng.randrange(50, 200)),
            )
        )
    # Deterministic sentinels so the reference answer is non-trivial at
    # every seed: ``d_bug`` lives in the employee-free building (nested
    # iteration returns it, Kim's COUNT bug drops it), while ``d_busy``
    # out-counts its building's staff (every strategy returns it).
    dept.insert(("d_bug", 5000.0, 3, "B7"))
    dept.insert(("d_busy", 5000.0, 500, "B0"))
    emp.create_index("emp_building", ["building"])
    return catalog


def compute_references(
    catalog: Catalog,
    workload: Optional[dict] = None,
) -> dict[tuple[str, str], tuple[str, object]]:
    """Fault-free reference outcomes per (query, strategy).

    Values are ``("rows", sorted_rows)`` or ``("error", error_class_name)``
    -- a strategy that is statically inapplicable (Kim on Q3, say) is a
    legitimate *typed* reference outcome, not a soak failure.
    """
    if workload is None:
        workload = WORKLOAD
    reference_db = Database(
        catalog=catalog, validate=False, faults=FaultRegistry(0, ())
    )
    references: dict[tuple[str, str], tuple[str, object]] = {}
    for name, (sql, _) in workload.items():
        for strategy in ("ni", "kim", "dayal", "ganski_wong", "magic",
                         "magic_opt"):
            try:
                result = reference_db.execute(sql, strategy=strategy)
                references[(name, strategy)] = ("rows", sorted(result.rows))
            except ReproError as exc:
                references[(name, strategy)] = ("error", type(exc).__name__)
    return references


def run_soak(
    workers: int = 8,
    seconds: float = 20.0,
    seed: int = 42,
    faults: Optional[str] = None,
    scale: float = 0.005,
    cancel_rate: float = 0.05,
    tight_deadline_rate: float = 0.1,
    max_queue: int = 64,
    breaker_threshold: int = 3,
    breaker_cooldown: float = 1.0,
    fault_scope: str = "shared",
    default_limits: Optional[Limits] = None,
    trace: bool = False,
    trace_history: int = 256,
    events=None,
    slow_query_ms: Optional[float] = None,
) -> SoakReport:
    """Run the chaos soak and verify every invariant (see module doc).

    ``faults`` is a ``seed:site=rate`` spec (:mod:`repro.faults` syntax);
    ``cancel_rate`` is the per-submission probability that a background
    canceller targets the query mid-flight; ``tight_deadline_rate`` is the
    fraction of submissions given a deadline of a few milliseconds.
    ``trace=True`` runs every query under a tracer and reports merged
    per-operator totals (``SoakReport.operator_totals``) from the last
    ``trace_history`` queries. ``events`` (a
    :class:`repro.obs.events.EventLog`) streams the service's structured
    lifecycle events; ``slow_query_ms`` captures queries over the
    threshold on the service's slow-query log (both surface through the
    returned report's ``stats``).
    """
    rng = random.Random(seed)
    catalog = build_soak_catalog(scale=scale, seed=seed)
    references = compute_references(catalog)
    registry = FaultRegistry.parse(faults) if faults else None
    kwargs = {"faults": registry} if registry is not None else {}
    base_db = Database(catalog=catalog, validate=False, **kwargs)
    if default_limits is None:
        # A backstop so no single query can run away with a worker: roomy
        # enough that fault-free queries never trip it.
        default_limits = Limits(timeout=30.0, max_rows_scanned=50_000_000)

    service = QueryService(
        base_db,
        workers=workers,
        max_queue=max_queue,
        default_limits=default_limits,
        breaker_threshold=breaker_threshold,
        breaker_cooldown=breaker_cooldown,
        fault_scope=fault_scope,
        trace=trace,
        trace_history=trace_history,
        events=events,
        slow_query_ms=slow_query_ms,
    )
    submitted: list[tuple] = []  # (ticket, workload key)
    cancels = [0]
    stop = threading.Event()

    def canceller() -> None:
        """Randomly cancel in-flight queries (seeded choice, wall-clock
        paced)."""
        cancel_rng = random.Random(seed ^ 0x5A5A)
        while not stop.wait(0.002):
            with service._lock:
                in_flight = list(service._tickets.keys())
            if in_flight and cancel_rng.random() < cancel_rate:
                if service.cancel(cancel_rng.choice(in_flight)):
                    cancels[0] += 1

    canceller_thread = threading.Thread(target=canceller, daemon=True)
    canceller_thread.start()

    start = time.monotonic()
    try:
        while time.monotonic() - start < seconds:
            name = rng.choice(list(WORKLOAD))
            sql, strategies = WORKLOAD[name]
            strategy = rng.choice(strategies)
            deadline = None
            if rng.random() < tight_deadline_rate:
                deadline = rng.uniform(0.0005, 0.01)
            try:
                ticket = service.submit(sql, strategy=strategy,
                                        deadline=deadline)
                submitted.append((ticket, name))
            except AdmissionRejected as exc:
                # Counted by the service. Honour the service's backoff
                # hint when it offers one (capped -- this thread is also
                # the clock of the soak), else a token pause: the point
                # is to let the queue drain, not hammer admission.
                hint = exc.retry_after_hint
                time.sleep(min(hint, 0.05) if hint else 0.001)
        service.drain(timeout=max(30.0, seconds))
    finally:
        stop.set()
        canceller_thread.join(timeout=5.0)
        service.close(drain=True, timeout=max(30.0, seconds))
    elapsed = time.monotonic() - start

    # -- verification ------------------------------------------------------
    report = SoakReport(
        seconds=elapsed,
        stats=service.stats(),
        cancels_requested=cancels[0],
        operator_totals=merge_operator_summaries(service.recent_traces()),
    )
    for ticket, name in submitted:
        if not ticket.done:
            report.violations.append(
                Violation("hung_query", name, ticket.strategy,
                          f"query {ticket.query_id} never finished")
            )
            continue
        if ticket.phases is not None and ticket.latency is not None:
            # The sum-to-latency invariant, on every completed query
            # (failed and cancelled included -- their residual time lands
            # in ``drain``).
            problem = check_phase_sum(
                ticket.phases.durations, ticket.latency
            )
            if problem is not None:
                report.violations.append(
                    Violation("phase_sum", name, ticket.strategy,
                              f"query {ticket.query_id}: {problem}")
                )
        error = ticket.error()
        if error is not None:
            label = type(error).__name__
            report.outcomes[label] = report.outcomes.get(label, 0) + 1
            if not isinstance(error, ReproError):
                report.violations.append(
                    Violation("untyped_error", name, ticket.strategy,
                              f"{label}: {error}")
                )
            continue
        report.outcomes["ok"] = report.outcomes.get("ok", 0) + 1
        result = ticket.result()
        effective = ticket.strategy
        for event in result.degradations:
            effective = event.fallback or effective
        expected = references.get((name, effective))
        if expected is None or expected[0] != "rows":
            report.violations.append(
                Violation(
                    "wrong_answer", name, ticket.strategy,
                    f"completed via {effective!r} but the fault-free "
                    f"reference for it is {expected!r}",
                )
            )
            continue
        report.checked_answers += 1
        if sorted(result.rows) != expected[1]:
            report.violations.append(
                Violation(
                    "wrong_answer", name, ticket.strategy,
                    f"rows differ from the fault-free {effective!r} answer "
                    f"(got {len(result.rows)}, expected "
                    f"{len(expected[1])})",
                )
            )
    stats = report.stats
    if not stats.reconciles():
        report.violations.append(
            Violation(
                "reconciliation", "", "",
                f"submitted={stats.submitted} != completed={stats.completed}"
                f" + failed={stats.failed} + cancelled={stats.cancelled}"
                f" + rejected={stats.rejected}",
            )
        )
    return report


# -- the real-worker chaos soak ------------------------------------------------

@dataclass
class WorkerSoakReport:
    """Outcome of one real-worker chaos soak (see :func:`run_worker_soak`).

    The metamorphic invariant is the process-level version of the PR-2
    property: with workers being killed mid-query, every epoch must end in
    the fault-free reference answer (directly, or via recorded
    degradation to local execution) or a typed engine error -- never a
    wrong answer, never a hang, never a raw traceback.
    """

    epochs: int
    n_workers: int
    seconds: float
    outcomes: dict = field(default_factory=dict)  # "ok"/"degraded"/error name
    violations: list = field(default_factory=list)
    kills: int = 0
    workers_lost: int = 0
    retries: int = 0
    recovery_time: float = 0.0
    messages: int = 0
    #: Per-kind ``worker.*`` event counts from the run's event log.
    event_counts: dict = field(default_factory=dict)
    #: Epochs whose grafted trace reconciled exactly (traced runs only).
    trace_reconciled: int = 0
    #: One exported v2 trace per traced epoch (JSON-ready).
    traces: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def as_dict(self) -> dict:
        return {
            "ok": self.ok,
            "epochs": self.epochs,
            "n_workers": self.n_workers,
            "seconds": round(self.seconds, 3),
            "outcomes": dict(sorted(self.outcomes.items())),
            "violations": [str(v) for v in self.violations],
            "kills": self.kills,
            "workers_lost": self.workers_lost,
            "retries": self.retries,
            "recovery_time": round(self.recovery_time, 6),
            "messages": self.messages,
            "event_counts": dict(sorted(self.event_counts.items())),
            "trace_reconciled": self.trace_reconciled,
            "traces": self.traces,
        }


def run_worker_soak(
    epochs: int = 4,
    n_workers: int = 3,
    seed: int = 42,
    faults: Optional[str] = None,
    n_depts: int = 24,
    n_emps: int = 120,
    kill_per_epoch: bool = True,
    events=None,
    reconcile: Optional[bool] = None,
    trace: bool = False,
) -> WorkerSoakReport:
    """Chaos-soak the real shared-nothing executor
    (:mod:`repro.parallel.workers`).

    Each epoch runs one full section-6 query (strategies alternate between
    nested iteration and the decorrelated plan) on a fresh pool of
    ``n_workers`` real processes. ``kill_per_epoch`` SIGKILLs one worker
    right after data placement -- the guaranteed crash the acceptance
    criterion demands -- and ``faults`` (a ``seed:site=rate`` spec, e.g.
    ``"7:worker.crash=0.05"``) injects the process-level sites on top,
    re-seeded per epoch (``base_seed + epoch``) so epochs draw independent
    deterministic schedules.

    Every epoch's answer is checked against the fault-free single-process
    reference; violations follow :class:`Violation`. The run's
    ``worker.*`` events are reconciled against the pool counters
    (lost/retry/degraded), the same closed-loop check the service soak
    applies to :class:`ServiceStats`.

    ``trace=True`` runs each epoch under a coordinator
    :class:`~repro.trace.Tracer`: workers ship their span trees back and
    the pool grafts them (kills included -- the failed attempt appears as
    a ``retried`` dispatch span). Each epoch's export is schema-validated,
    round-tripped, and reconciled *exactly* -- grafted
    ``metric_totals()["rows_scanned"]`` must equal the pool's
    ``rows_processed`` -- or a ``trace_reconciliation`` violation is
    recorded.
    """
    from ..obs.events import EventLog, RingSink, count_by_kind
    from ..parallel import local_reference, run_real
    from ..tpcd import load_empdept
    from ..trace import Tracer
    from ..trace.tracer import trace_round_trips, validate_trace

    catalog = load_empdept(
        n_depts=n_depts, n_emps=n_emps, n_buildings=8, seed=seed
    )
    dept_rows = list(catalog.table("dept").rows)
    emp_rows = list(catalog.table("emp").rows)
    reference = local_reference(dept_rows, emp_rows)
    base = FaultRegistry.parse(faults) if faults else None
    log = events if events is not None else EventLog(RingSink(65536))

    report = WorkerSoakReport(epochs=epochs, n_workers=n_workers, seconds=0.0)
    start = time.monotonic()
    for epoch in range(epochs):
        strategy = (
            "magic_decorrelated" if epoch % 2 == 0 else "nested_iteration"
        )
        registry = (
            FaultRegistry(base.seed + epoch, base.rules)
            if base is not None else None
        )

        def kill_one(pool, epoch=epoch):
            if kill_per_epoch:
                pool.kill_worker(epoch % n_workers)
                report.kills += 1

        # Each epoch is one "query" to the event log (query_id = epoch),
        # so ``repro why <epoch>`` can join the timeline with the
        # epoch's grafted trace from the same run.
        epoch_started = time.monotonic()
        log.emit("query.submitted", query_id=epoch, strategy=strategy)
        tracer = Tracer() if trace else None
        try:
            run = run_real(
                strategy,
                dept_rows,
                emp_rows,
                n_workers,
                faults=registry,
                events=log,
                degrade=True,
                on_pool=kill_one,
                tracer=tracer,
                heartbeat_interval=0.02,
                heartbeat_timeout=0.3,
                task_timeout=3.0,
            )
        except ReproError as exc:
            label = type(exc).__name__
            report.outcomes[label] = report.outcomes.get(label, 0) + 1
            log.emit(
                "query.finished", query_id=epoch, outcome="failed",
                strategy=strategy, error_type=label,
                latency_ms=round(
                    (time.monotonic() - epoch_started) * 1000, 3
                ),
            )
            continue
        except Exception as exc:  # noqa: BLE001 - the invariant under test
            report.violations.append(
                Violation(
                    "untyped_error", strategy, "real",
                    f"{type(exc).__name__}: {exc}",
                )
            )
            log.emit(
                "query.finished", query_id=epoch, outcome="failed",
                strategy=strategy, error_type=type(exc).__name__,
                latency_ms=round(
                    (time.monotonic() - epoch_started) * 1000, 3
                ),
            )
            continue
        report.workers_lost += run.workers_lost
        report.retries += run.retries
        report.recovery_time += run.recovery_time
        report.messages += run.messages
        if tracer is not None:
            export = tracer.export(
                sql=EMP_DEPT_QUERY, strategy=strategy, epoch=epoch
            )
            try:
                validate_trace(export)
                round_trips = trace_round_trips(export)
            except ReproError as exc:
                report.violations.append(
                    Violation("trace_schema", strategy, "real",
                              f"epoch {epoch}: {exc}")
                )
            else:
                if not round_trips:
                    report.violations.append(
                        Violation("trace_schema", strategy, "real",
                                  f"epoch {epoch}: export does not "
                                  f"round-trip")
                    )
                scanned = tracer.metric_totals()["rows_scanned"]
                if scanned != run.rows_processed:
                    report.violations.append(
                        Violation(
                            "trace_reconciliation", strategy, "real",
                            f"epoch {epoch}: grafted spans account "
                            f"{scanned} rows_scanned but the pool "
                            f"accepted {run.rows_processed}",
                        )
                    )
                else:
                    report.trace_reconciled += 1
            report.traces.append(export)
        label = "degraded" if run.degraded else "ok"
        report.outcomes[label] = report.outcomes.get(label, 0) + 1
        log.emit(
            "query.finished", query_id=epoch, outcome="completed",
            strategy=strategy, degraded=run.degraded,
            latency_ms=round((time.monotonic() - epoch_started) * 1000, 3),
            workers_lost=run.workers_lost, retries=run.retries,
            messages=run.messages, rows_processed=run.rows_processed,
        )
        if run.answer != reference:
            report.violations.append(
                Violation(
                    "wrong_answer", strategy, "real",
                    f"epoch {epoch}: {len(run.answer)} rows != reference "
                    f"{len(reference)} rows "
                    f"(lost={run.workers_lost}, retries={run.retries})",
                )
            )
    report.seconds = time.monotonic() - start

    # -- event reconciliation: by default only when we own the log's ring
    # (a caller-supplied log may hold unrelated events); ``reconcile=True``
    # forces it for callers that pass a *fresh* log (the CLI's tee to disk).
    if reconcile is None:
        reconcile = events is None
    if reconcile:
        counts = count_by_kind(log.events())
        report.event_counts = {
            kind: n for kind, n in counts.items() if kind.startswith("worker.")
        }
        degraded = report.outcomes.get("degraded", 0)
        expected = {
            "worker.lost": report.workers_lost,
            "worker.retry": report.retries,
            "worker.degraded": degraded,
        }
        for kind, want in expected.items():
            got = counts.get(kind, 0)
            if got != want:
                report.violations.append(
                    Violation(
                        "reconciliation", kind, "real",
                        f"{got} {kind} events but counters say {want}",
                    )
                )
    else:
        report.event_counts = {}
    return report

# -- the phased overload soak --------------------------------------------------

@dataclass(frozen=True)
class OverloadPhase:
    """One phase of the open-loop arrival process: ``rate_qps`` Poisson
    arrivals for ``seconds``."""

    name: str
    seconds: float
    rate_qps: float


#: Warmup (estimator learns service times), sustained overload (offered
#: load well past worker capacity at the default scale), recovery.
OVERLOAD_PHASES: tuple[OverloadPhase, ...] = (
    OverloadPhase("warmup", 2.5, 60.0),
    OverloadPhase("overload", 4.0, 300.0),
    OverloadPhase("recovery", 4.0, 40.0),
)


@dataclass(frozen=True)
class Arrival:
    """One scheduled submission (offsets from soak start, seconds)."""

    offset: float
    phase: str
    query: str
    strategy: str
    deadline: float
    priority: str


def overload_schedule(
    phases=OVERLOAD_PHASES, seed: int = 42, workload: Optional[dict] = None
) -> list[Arrival]:
    """The seeded open-loop arrival schedule: Poisson arrivals per phase,
    each with a workload query, strategy, deadline and priority class.

    The schedule is a pure function of ``(phases, seed, workload)`` -- the
    two sides of an A/B comparison replay the *identical* offered load,
    which is what makes their goodput comparable.
    """
    if workload is None:
        workload = WORKLOAD
    rng = random.Random(seed)
    names = list(workload)
    schedule: list[Arrival] = []
    now = 0.0
    for phase in phases:
        if phase.seconds <= 0 or phase.rate_qps <= 0:
            raise ValueError(
                f"phase {phase.name!r} needs positive seconds and rate"
            )
        end = now + phase.seconds
        while True:
            now += rng.expovariate(phase.rate_qps)
            if now >= end:
                now = end
                break
            query = rng.choice(names)
            _, strategies = workload[query]
            strategy = rng.choice(strategies)
            # Deadlines span "only meetable with a short queue" to
            # "meetable unless the service is drowning": tight ones are
            # what FIFO burns workers on under overload.
            if rng.random() < 0.25:
                deadline = rng.uniform(0.02, 0.06)
            else:
                deadline = rng.uniform(0.08, 0.4)
            priority = rng.choices(PRIORITIES, weights=(2, 6, 2))[0]
            schedule.append(Arrival(
                offset=now, phase=phase.name, query=query,
                strategy=strategy, deadline=deadline, priority=priority,
            ))
    return schedule


@dataclass
class OverloadSideReport:
    """One side of the overload comparison (adaptive or FIFO baseline)."""

    label: str
    elapsed: float
    offered: int
    #: Completed within their own deadline -- the goodput numerator.
    goodput: int
    goodput_qps: float
    #: Tickets a worker *started* that produced no within-deadline
    #: answer: late completions, timeouts tripped at/after dequeue,
    #: other failures. The work the overload layer exists to avoid.
    futile_executions: int
    late_completions: int
    checked_answers: int
    outcomes: dict = field(default_factory=dict)
    violations: list = field(default_factory=list)
    stats: Optional[ServiceStats] = None

    def as_dict(self) -> dict:
        return {
            "label": self.label,
            "elapsed": round(self.elapsed, 3),
            "offered": self.offered,
            "goodput": self.goodput,
            "goodput_qps": round(self.goodput_qps, 2),
            "futile_executions": self.futile_executions,
            "late_completions": self.late_completions,
            "checked_answers": self.checked_answers,
            "outcomes": dict(sorted(self.outcomes.items())),
            "violations": [str(v) for v in self.violations],
            "stats": self.stats.as_dict() if self.stats else None,
        }


@dataclass
class OverloadSoakReport:
    """The phased overload soak: adaptive vs FIFO at identical load."""

    seed: int
    adaptive: OverloadSideReport
    fifo: OverloadSideReport
    #: Comparison-level violations (goodput regression, lost win).
    violations: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not (
            self.violations
            or self.adaptive.violations
            or self.fifo.violations
        )

    def as_dict(self) -> dict:
        return {
            "ok": self.ok,
            "seed": self.seed,
            "adaptive": self.adaptive.as_dict(),
            "fifo": self.fifo.as_dict(),
            "violations": [str(v) for v in self.violations],
        }


def _run_overload_side(
    label: str,
    schedule: list[Arrival],
    catalog: Catalog,
    references: dict,
    workers: int,
    max_queue: int,
    overload: Optional[OverloadConfig],
    events=None,
    plan_cache=None,
    workload: Optional[dict] = None,
) -> OverloadSideReport:
    """Replay one arrival schedule against a fresh service."""
    if workload is None:
        workload = WORKLOAD
    base_db = Database(catalog=catalog, validate=False)
    service = QueryService(
        base_db,
        workers=workers,
        max_queue=max_queue,
        default_limits=Limits(timeout=30.0, max_rows_scanned=50_000_000),
        overload=overload,
        events=events,
        plan_cache=plan_cache,
    )
    submitted: list[tuple] = []
    start = time.monotonic()
    try:
        for arrival in schedule:
            delay = start + arrival.offset - time.monotonic()
            if delay > 0:
                time.sleep(delay)
            sql, _ = workload[arrival.query]
            try:
                ticket = service.submit(
                    sql,
                    strategy=arrival.strategy,
                    deadline=arrival.deadline,
                    priority=arrival.priority,
                )
                submitted.append((ticket, arrival))
            except AdmissionRejected:
                pass  # counted by the service; open loop, no retry
        service.drain(timeout=60.0)
        if overload is not None:
            # Give the brownout ladder its recovery edges now that the
            # queue is empty (bounded: the cooldowns are short).
            wall = time.monotonic() + 5.0
            while (
                service.evaluate_overload() > 0
                and time.monotonic() < wall
            ):
                time.sleep(0.05)
    finally:
        service.close(drain=True, timeout=60.0)
    elapsed = time.monotonic() - start

    report = OverloadSideReport(
        label=label, elapsed=elapsed, offered=len(schedule),
        goodput=0, goodput_qps=0.0, futile_executions=0,
        late_completions=0, checked_answers=0,
    )
    for ticket, arrival in submitted:
        if not ticket.done:
            report.violations.append(Violation(
                "hung_query", arrival.query, arrival.strategy,
                f"query {ticket.query_id} never finished",
            ))
            continue
        error = ticket.error()
        if error is not None:
            name = type(error).__name__
            report.outcomes[name] = report.outcomes.get(name, 0) + 1
            if not isinstance(error, ReproError):
                report.violations.append(Violation(
                    "untyped_error", arrival.query, arrival.strategy,
                    f"{name}: {error}",
                ))
            if ticket.started_at is not None:
                report.futile_executions += 1
            continue
        in_deadline = (
            ticket.latency is not None
            and ticket.latency <= arrival.deadline
        )
        if in_deadline:
            report.goodput += 1
            report.outcomes["ok"] = report.outcomes.get("ok", 0) + 1
        else:
            report.late_completions += 1
            report.futile_executions += 1
            report.outcomes["late"] = report.outcomes.get("late", 0) + 1
        result = ticket.result()
        effective = ticket.strategy
        for event in result.degradations:
            effective = event.fallback or effective
        expected = references.get((arrival.query, effective))
        if expected is None or expected[0] != "rows":
            report.violations.append(Violation(
                "wrong_answer", arrival.query, arrival.strategy,
                f"completed via {effective!r} but the fault-free "
                f"reference for it is {expected!r}",
            ))
            continue
        report.checked_answers += 1
        if sorted(result.rows) != expected[1]:
            report.violations.append(Violation(
                "wrong_answer", arrival.query, arrival.strategy,
                f"rows differ from the fault-free {effective!r} answer "
                f"(got {len(result.rows)}, expected {len(expected[1])})",
            ))
    report.goodput_qps = (
        report.goodput / elapsed if elapsed > 0 else 0.0
    )
    report.stats = service.stats()
    if not report.stats.reconciles():
        stats = report.stats
        report.violations.append(Violation(
            "reconciliation", "", "",
            f"admitted={stats.admitted} != completed={stats.completed}"
            f" + failed={stats.failed} + cancelled={stats.cancelled}"
            f" + shed={stats.shed}"
            f" + expired_in_queue={stats.expired_in_queue}",
        ))
    return report


def run_overload_soak(
    seed: int = 42,
    workers: int = 4,
    max_queue: int = 32,
    scale: float = 0.005,
    phases=OVERLOAD_PHASES,
    overload: Optional[OverloadConfig] = None,
    events=None,
    require_win: bool = True,
) -> OverloadSoakReport:
    """Replay one seeded open-loop arrival schedule twice -- adaptive
    overload control vs the FIFO baseline -- and compare goodput.

    The offered load is *identical* on both sides (same schedule, same
    catalog), so the comparison isolates the overload layer: the
    adaptive side must complete at least as many queries within their
    deadlines while starting fewer futile executions. ``require_win``
    turns those two comparisons into violations (the CI gate);
    exploratory runs can disable it and read the numbers instead.

    ``events`` (when given) receives the *adaptive* side's event stream
    -- brownout transitions, sheds and expiries land there; the FIFO
    baseline by definition has none.
    """
    catalog = build_soak_catalog(scale=scale, seed=seed)
    references = compute_references(catalog)
    schedule = overload_schedule(phases=phases, seed=seed)
    if overload is None:
        # Short dwell/cooldown so a seconds-long soak walks the ladder
        # down *and* back up; production defaults are far more patient.
        overload = OverloadConfig(
            brownout_dwell_s=0.3, brownout_cooldown_s=0.8,
        )
    adaptive = _run_overload_side(
        "adaptive", schedule, catalog, references,
        workers, max_queue, overload, events=events,
    )
    fifo = _run_overload_side(
        "fifo", schedule, catalog, references,
        workers, max_queue, None,
    )
    report = OverloadSoakReport(seed=seed, adaptive=adaptive, fifo=fifo)
    if require_win:
        if adaptive.goodput < fifo.goodput:
            report.violations.append(Violation(
                "goodput_regression", "", "",
                f"adaptive completed {adaptive.goodput} within deadline "
                f"vs FIFO {fifo.goodput} at identical offered load",
            ))
        if adaptive.futile_executions > fifo.futile_executions:
            report.violations.append(Violation(
                "futile_regression", "", "",
                f"adaptive started {adaptive.futile_executions} futile "
                f"executions vs FIFO {fifo.futile_executions}",
            ))
    return report


# -- the plan-cache A/B soak ---------------------------------------------------

#: A parameterized query family: one *template* (same shape, different
#: literals), so the plan cache pays one fill for the whole family. The
#: values are quantized so each variant's reference answer is precomputable.
PARAM_QUERY_TEMPLATE = (
    "select name, building, salary from emp where salary >= {:.1f} "
    "order by name"
)
PARAM_QUERY_VALUES = (55.0, 75.0, 95.0, 115.0, 135.0, 155.0, 175.0, 195.0)

#: Warmup (first submissions of each template pay the fill), then a
#: sustained rate high enough that the rewrite pipeline is the bottleneck
#: for the uncached baseline.
PLAN_CACHE_PHASES: tuple[OverloadPhase, ...] = (
    OverloadPhase("warmup", 2.0, 40.0),
    OverloadPhase("steady", 5.0, 400.0),
)


def plan_cache_workload() -> dict:
    """The template workload: the chaos-soak queries plus the
    parameterized salary family (8 literal variants of one template)."""
    workload = dict(WORKLOAD)
    for index, value in enumerate(PARAM_QUERY_VALUES):
        workload[f"param{index}"] = (
            PARAM_QUERY_TEMPLATE.format(value),
            ("ni", "magic", "magic_opt"),
        )
    return workload


def _cacheable_workload(workload: dict, references: dict) -> dict:
    """Restrict each entry to strategies whose fault-free reference is a
    row set -- i.e. the strategy rewrites the query cleanly. Degrading
    (query, strategy) pairs tombstone in the cache and would dilute the
    hit rate with structural misses; the A/B comparison wants both sides
    executing identical, cleanly-rewritable work."""
    filtered = {}
    for name, (sql, strategies) in workload.items():
        clean = tuple(
            s for s in strategies
            if references.get((name, s), ("",))[0] == "rows"
        )
        filtered[name] = (sql, clean or ("ni",))
    return filtered


@dataclass
class PlanCacheSoakReport:
    """The plan-cache A/B soak: cached vs uncached at identical load.

    ``cache`` is the cache's final :meth:`~repro.plan.cache.PlanCache.
    snapshot`; ``event_counts`` the ``plan.cache_*`` counts from the run's
    event log (empty when the caller supplied the log -- it may hold
    unrelated events)."""

    seed: int
    cached: OverloadSideReport
    baseline: OverloadSideReport
    cache: dict = field(default_factory=dict)
    event_counts: dict = field(default_factory=dict)
    violations: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not (
            self.violations
            or self.cached.violations
            or self.baseline.violations
        )

    @property
    def hit_rate(self) -> float:
        return self.cache.get("hit_rate") or 0.0

    def as_dict(self) -> dict:
        return {
            "ok": self.ok,
            "seed": self.seed,
            "hit_rate": self.hit_rate,
            "cache": self.cache,
            "event_counts": dict(sorted(self.event_counts.items())),
            "cached": self.cached.as_dict(),
            "baseline": self.baseline.as_dict(),
            "violations": [str(v) for v in self.violations],
        }


def run_plan_cache_soak(
    seed: int = 42,
    workers: int = 4,
    max_queue: int = 32,
    scale: float = 0.005,
    phases=PLAN_CACHE_PHASES,
    capacity: int = 256,
    min_hit_rate: float = 0.9,
    events=None,
    require_win: bool = True,
    reconcile: Optional[bool] = None,
) -> PlanCacheSoakReport:
    """Replay one seeded open-loop template workload twice -- plan cache
    on vs off -- on plain FIFO services, and compare goodput.

    The offered load is *identical* on both sides (same schedule, same
    catalog, no DML), so the comparison isolates the cache: with
    ``require_win`` the cached side must complete strictly more queries
    within their deadlines and sustain a hit rate above ``min_hit_rate``.
    The cached side's ``plan.cache_*`` events are reconciled exactly
    against the cache's counters (skipped for a caller-supplied ``events``
    log unless ``reconcile=True``, mirroring :func:`run_worker_soak`).
    """
    from ..obs.events import EventLog, RingSink, count_by_kind
    from ..plan.cache import PlanCache

    catalog = build_soak_catalog(scale=scale, seed=seed)
    workload = plan_cache_workload()
    references = compute_references(catalog, workload=workload)
    workload = _cacheable_workload(workload, references)
    schedule = overload_schedule(phases=phases, seed=seed, workload=workload)
    log = events if events is not None else EventLog(RingSink(262144))
    cache = PlanCache(capacity=capacity)
    cached = _run_overload_side(
        "cached", schedule, catalog, references,
        workers, max_queue, None,
        events=log, plan_cache=cache, workload=workload,
    )
    baseline = _run_overload_side(
        "baseline", schedule, catalog, references,
        workers, max_queue, None, workload=workload,
    )
    report = PlanCacheSoakReport(
        seed=seed, cached=cached, baseline=baseline, cache=cache.snapshot(),
    )
    if reconcile is None:
        reconcile = events is None
    if reconcile:
        counts = count_by_kind(log.events())
        report.event_counts = {
            kind: n for kind, n in counts.items()
            if kind.startswith("plan.cache_")
        }
        expected = {
            "plan.cache_hit": report.cache["hits"],
            "plan.cache_miss": report.cache["misses"],
            "plan.cache_invalidated": report.cache["invalidations"],
        }
        for kind, want in expected.items():
            got = counts.get(kind, 0)
            if got != want:
                report.violations.append(Violation(
                    "reconciliation", kind, "",
                    f"{got} {kind} events but the cache counted {want}",
                ))
    if require_win:
        if cached.goodput <= baseline.goodput:
            report.violations.append(Violation(
                "cache_no_win", "", "",
                f"cached completed {cached.goodput} within deadline vs "
                f"uncached {baseline.goodput} at identical offered load",
            ))
        if report.hit_rate <= min_hit_rate:
            report.violations.append(Violation(
                "hit_rate", "", "",
                f"hit rate {report.hit_rate} <= required {min_hit_rate} "
                f"({report.cache})",
            ))
    return report
