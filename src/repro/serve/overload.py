"""Adaptive overload control: admission estimates, shedding, brownout.

The paper's thesis is that set-oriented rewrites keep *work proportional
to the answer* rather than to the offered load; this module applies the
same discipline to the serving layer. Under overload a FIFO service
wastes workers in three ways: it executes queries whose deadline already
cannot be met (futile work), it lets expired tickets squat in queue
slots, and it treats a retry storm as fresh demand. The primitives here
let :class:`~repro.serve.service.QueryService` spend workers only on
queries that can still finish:

* :func:`fingerprint` -- a stable hash of the *shape* of a query
  (literals stripped, whitespace collapsed), the key under which service
  times are learned;
* :class:`ServiceTimeEstimator` -- per-(fingerprint, strategy) EMAs of
  execution time, the cost model behind deadline-aware admission and the
  brownout ladder's cheapest-strategy rung (the serving-layer echo of
  the paper's cost-guided strategy selection);
* :class:`TokenBucket` / :class:`RetryGovernor` -- retry-storm
  protection that honours clients who respect ``retry_after_hint`` and
  charges the ones who hot-loop;
* :class:`BrownoutController` -- a degradation ladder stepping through
  configured rungs at sustained high utilization, with hysteresis on an
  injectable clock so it never flaps;
* :class:`OverloadConfig` -- the knob bundle wiring all of it into the
  service (``overload=None`` keeps the seed FIFO behaviour exactly).

None of these classes take locks: the service mutates them inside its
own critical section (they are documented as externally synchronized),
keeping the §9 lock order flat.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Optional

from ..plan.cache import fingerprint, normalize_sql  # noqa: F401 -- re-export

#: Priority classes, best first; rank = index (lower is better).
PRIORITIES: tuple[str, ...] = ("high", "normal", "low")

_PRIORITY_RANK = {name: rank for rank, name in enumerate(PRIORITIES)}


def priority_rank(priority: str) -> int:
    """The scheduling rank of a priority class (0 = most important);
    raises ``ValueError`` on an unknown class."""
    try:
        return _PRIORITY_RANK[priority]
    except KeyError:
        raise ValueError(
            f"unknown priority {priority!r}; choose from {PRIORITIES}"
        ) from None


# -- query shape fingerprint --------------------------------------------------
# ``normalize_sql`` / ``fingerprint`` live in :mod:`repro.plan.cache` now
# (the plan cache keys on the same shape); re-exported above so existing
# imports keep working.

# -- service-time estimation --------------------------------------------------

class ServiceTimeEstimator:
    """Exponentially-weighted service-time estimates per query shape.

    Keys are ``(fingerprint, strategy)``; a per-shape aggregate and a
    global aggregate back the lookup chain, so a cold (shape, strategy)
    pair still gets an order-of-magnitude answer from its shape or, at
    worst, from the service-wide mean. Observations are *execution*
    seconds (dequeue to finish), never queue wait -- queue wait is what
    admission predicts *from* these numbers.

    Not thread-safe: the owning service mutates it under its own lock.
    """

    def __init__(self, alpha: float = 0.2, max_shapes: int = 4096):
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        if max_shapes < 1:
            raise ValueError("max_shapes must be >= 1")
        self.alpha = alpha
        self.max_shapes = max_shapes
        #: (fingerprint, strategy) -> EMA seconds (LRU-bounded).
        self._by_key: OrderedDict[tuple[str, str], float] = OrderedDict()
        #: fingerprint -> EMA seconds across strategies.
        self._by_shape: OrderedDict[str, float] = OrderedDict()
        self._global: Optional[float] = None
        self.observations = 0

    def _bump(self, table: OrderedDict, key, seconds: float) -> None:
        previous = table.pop(key, None)
        table[key] = (
            seconds if previous is None
            else self.alpha * seconds + (1.0 - self.alpha) * previous
        )
        while len(table) > self.max_shapes:
            table.popitem(last=False)

    def observe(self, fp: str, strategy: str, seconds: float) -> None:
        """Fold one measured execution time into the EMAs."""
        if seconds < 0:
            return
        self._bump(self._by_key, (fp, strategy), seconds)
        self._bump(self._by_shape, fp, seconds)
        self._global = (
            seconds if self._global is None
            else self.alpha * seconds + (1.0 - self.alpha) * self._global
        )
        self.observations += 1

    def estimate(self, fp: str, strategy: str) -> Optional[float]:
        """Best available estimate for (shape, strategy): exact key,
        then the shape aggregate, then the global mean, else ``None``
        (a cold estimator must offer no number rather than a made-up
        one). Reads refresh LRU recency -- a hot shape that is only ever
        *read* (admission checks) must not be evicted by a flood of
        one-off shapes that are merely observed."""
        value = self._by_key.get((fp, strategy))
        if value is not None:
            self._by_key.move_to_end((fp, strategy))
            return value
        value = self._by_shape.get(fp)
        if value is not None:
            self._by_shape.move_to_end(fp)
            return value
        return self._global

    def global_mean(self) -> Optional[float]:
        """The service-wide execution-time EMA (``None`` until the first
        observation)."""
        return self._global

    def cheapest(self, fp: str, candidates) -> Optional[str]:
        """The candidate strategy with the lowest learned estimate for
        this shape; ``None`` when no candidate has history (forcing a
        strategy without evidence would be a guess, not a measurement)."""
        best: Optional[str] = None
        best_cost: Optional[float] = None
        for key in candidates:
            cost = self._by_key.get((fp, key))
            if cost is None:
                continue
            self._by_key.move_to_end((fp, key))  # reads refresh recency
            if best_cost is None or cost < best_cost:
                best, best_cost = key, cost
        return best

    def as_dict(self) -> dict:
        """A JSON-ready summary (shape count, global mean, observations)."""
        return {
            "shapes": len(self._by_shape),
            "keys": len(self._by_key),
            "observations": self.observations,
            "global_mean_ms": (
                round(self._global * 1000, 3)
                if self._global is not None else None
            ),
        }


# -- retry-storm protection ---------------------------------------------------

class TokenBucket:
    """A clock-driven token bucket (externally synchronized).

    ``take`` succeeds while tokens remain; tokens refill continuously at
    ``refill_per_s`` up to ``capacity``. All time comes from the caller
    (the service passes its injectable clock reading), so fake-clock
    tests drive refills deterministically.
    """

    def __init__(self, capacity: float, refill_per_s: float):
        if capacity <= 0:
            raise ValueError("capacity must be > 0")
        if refill_per_s < 0:
            raise ValueError("refill_per_s must be >= 0")
        self.capacity = float(capacity)
        self.refill_per_s = float(refill_per_s)
        self._tokens = float(capacity)
        self._last: Optional[float] = None

    def _refill(self, now: float) -> None:
        if self._last is not None and now > self._last:
            self._tokens = min(
                self.capacity,
                self._tokens + (now - self._last) * self.refill_per_s,
            )
        self._last = now

    def take(self, now: float, tokens: float = 1.0) -> bool:
        """Consume ``tokens`` at time ``now``; False when the bucket
        cannot cover them (the caller should reject)."""
        self._refill(now)
        if self._tokens >= tokens:
            self._tokens -= tokens
            return True
        return False

    def available(self, now: float) -> float:
        """Tokens available at ``now`` (refilling as a side effect)."""
        self._refill(now)
        return self._tokens


class RetryGovernor:
    """Retry-storm protection keyed by query shape.

    Every rejection that carries a ``retry_after_hint`` records when that
    shape is *welcome back*. A resubmission of the same shape before its
    earliest-retry time is non-compliant and must pay a token from a
    shared :class:`TokenBucket`; once the bucket is dry, non-compliant
    resubmissions are rejected outright (``"retry storm"``) until the
    bucket refills -- so a polite client is never throttled by an
    impolite one hot-looping the same template, and the penalty decays
    at the refill rate rather than lasting forever.

    Externally synchronized (see module doc).
    """

    def __init__(
        self,
        capacity: float = 8.0,
        refill_per_s: float = 2.0,
        max_tracked: int = 1024,
    ):
        if max_tracked < 1:
            raise ValueError("max_tracked must be >= 1")
        self.bucket = TokenBucket(capacity, refill_per_s)
        self.max_tracked = max_tracked
        #: fingerprint -> earliest welcome-back time (LRU-bounded).
        self._earliest: OrderedDict[str, float] = OrderedDict()
        self.penalized = 0
        self.rejected = 0

    def record_rejection(
        self, fp: str, now: float, hint: Optional[float]
    ) -> None:
        """Remember that ``fp`` was told to come back after ``hint``
        seconds (no-op when the rejection carried no hint)."""
        if hint is None or hint <= 0:
            return
        self._earliest.pop(fp, None)
        self._earliest[fp] = now + hint
        while len(self._earliest) > self.max_tracked:
            self._earliest.popitem(last=False)

    def forgive(self, fp: str) -> None:
        """Drop ``fp``'s welcome-back record without charging anything.

        The service calls this when a resubmission arrives *early* but
        the queue has meanwhile drained: the hint was an estimate, and
        arriving early at a service with capacity is not a storm."""
        self._earliest.pop(fp, None)

    def admit(self, fp: str, now: float) -> tuple[bool, Optional[float]]:
        """Gate one submission of shape ``fp`` at time ``now``.

        Returns ``(allowed, wait_remaining)``: compliant submissions (no
        outstanding hint, or the hint was honoured) are always allowed
        and clear their record; early resubmissions pay a token --
        ``(True, remaining)`` while the bucket covers them,
        ``(False, remaining)`` once it is dry.
        """
        earliest = self._earliest.get(fp)
        if earliest is None or now >= earliest:
            self._earliest.pop(fp, None)
            return True, None
        remaining = earliest - now
        if self.bucket.take(now):
            self.penalized += 1
            return True, remaining
        self.rejected += 1
        return False, remaining


# -- the brownout degradation ladder ------------------------------------------

#: What each brownout rung switches off (rung N applies all effects of
#: rungs 1..N). Documented here; enforced by the service.
BROWNOUT_RUNGS: tuple[str, ...] = (
    "normal",                 # level 0: everything on
    "shed observability",     # level 1: tracing + slow-query capture off
    "tighten budgets",        # level 2: Limits budgets scaled down
    "force cheapest strategy",  # level 3: rewrite veto -> cheapest plan
)


class BrownoutController:
    """The degradation ladder: utilization in, brownout level out.

    Steps *down* (level += 1) after utilization has stayed at or above
    ``high_watermark`` for ``dwell_s`` seconds; steps *up* (level -= 1)
    after it has stayed at or below ``low_watermark`` for ``cooldown_s``
    seconds. The gap between the watermarks plus the two dwell times is
    the hysteresis -- a service oscillating around one threshold never
    flaps the ladder. All time comes from the caller's clock readings;
    one level per transition, so recovery is as gradual as degradation.

    Externally synchronized (see module doc).
    """

    def __init__(
        self,
        high_watermark: float = 0.85,
        low_watermark: float = 0.5,
        dwell_s: float = 0.5,
        cooldown_s: float = 2.0,
        max_level: int = len(BROWNOUT_RUNGS) - 1,
    ):
        if not 0.0 < high_watermark <= 1.0:
            raise ValueError("high_watermark must be in (0, 1]")
        if not 0.0 <= low_watermark < high_watermark:
            raise ValueError(
                "low_watermark must be in [0, high_watermark)"
            )
        if dwell_s < 0 or cooldown_s < 0:
            raise ValueError("dwell_s and cooldown_s must be >= 0")
        if not 0 <= max_level <= len(BROWNOUT_RUNGS) - 1:
            raise ValueError(
                f"max_level must be in [0, {len(BROWNOUT_RUNGS) - 1}]"
            )
        self.high_watermark = high_watermark
        self.low_watermark = low_watermark
        self.dwell_s = dwell_s
        self.cooldown_s = cooldown_s
        self.max_level = max_level
        self.level = 0
        #: When utilization first crossed the high/low watermark and
        #: stayed there (None = not currently across it).
        self._high_since: Optional[float] = None
        self._low_since: Optional[float] = None

    def observe(
        self, utilization: float, now: float
    ) -> Optional[tuple[int, int]]:
        """Feed one utilization sample; returns ``(old, new)`` when the
        ladder stepped, else ``None``."""
        if utilization >= self.high_watermark:
            self._low_since = None
            if self._high_since is None:
                self._high_since = now
            if (
                self.level < self.max_level
                and now - self._high_since >= self.dwell_s
            ):
                old = self.level
                self.level += 1
                self._high_since = now  # re-dwell before the next rung
                return old, self.level
            return None
        self._high_since = None
        if utilization <= self.low_watermark:
            if self._low_since is None:
                self._low_since = now
            if (
                self.level > 0
                and now - self._low_since >= self.cooldown_s
            ):
                old = self.level
                self.level -= 1
                self._low_since = now  # re-cool before the next rung
                return old, self.level
            return None
        # Between the watermarks: hold the level, reset both timers.
        self._low_since = None
        return None

    @property
    def shedding_observability(self) -> bool:
        """Level >= 1: tracing and slow-query capture are off."""
        return self.level >= 1

    @property
    def tightening_budgets(self) -> bool:
        """Level >= 2: per-query Limits budgets are scaled down."""
        return self.level >= 2

    @property
    def forcing_cheapest(self) -> bool:
        """Level >= 3: the rewrite veto forces the cheapest strategy."""
        return self.level >= 3


# -- configuration ------------------------------------------------------------

@dataclass(frozen=True)
class OverloadConfig:
    """Knobs for the service's adaptive overload control.

    Passing an instance to ``QueryService(overload=...)`` turns the
    whole layer on; ``overload=None`` (the default) preserves the seed
    FIFO behaviour bit for bit. Individual features can be disabled via
    their flags for ablation (the overload soak's FIFO baseline uses
    ``overload=None`` instead).
    """

    #: Reject submissions whose deadline provably cannot be met given
    #: the current queue and the learned service time for their shape.
    deadline_admission: bool = True
    #: Safety factor on the futility test: reject only when
    #: ``predicted > deadline * admission_slack``. > 1.0 is lenient
    #: (estimates must overshoot the deadline by the factor), < 1.0 is
    #: aggressive.
    admission_slack: float = 1.0
    #: Evict tickets whose deadline expired while queued (distinct
    #: ``expired_in_queue`` outcome; the slot frees immediately).
    eager_expiry: bool = True
    #: Under queue pressure, shed the newest lowest-priority queued
    #: ticket to admit a strictly higher-priority arrival.
    shed_lower_priority: bool = True
    #: Per-class queue quota as a fraction of ``max_queue``; classes
    #: absent from the map are unrestricted. Low-priority work may fill
    #: only half the queue by default, so a low-priority flood can never
    #: starve the classes above it.
    class_quotas: dict = field(
        default_factory=lambda: {"low": 0.5, "normal": 0.9}
    )
    #: Retry-storm token bucket (see :class:`RetryGovernor`); capacity
    #: <= 0 disables the governor.
    retry_tokens: float = 8.0
    retry_refill_per_s: float = 2.0
    retry_tracked: int = 1024
    #: Brownout ladder (see :class:`BrownoutController`); max_level 0
    #: disables stepping entirely.
    brownout_high_watermark: float = 0.85
    brownout_low_watermark: float = 0.5
    brownout_dwell_s: float = 0.5
    brownout_cooldown_s: float = 2.0
    brownout_max_level: int = len(BROWNOUT_RUNGS) - 1
    #: Budget scale applied at the tighten-budgets rung (level >= 2).
    brownout_limit_scale: float = 0.5
    #: Estimator smoothing / capacity.
    ema_alpha: float = 0.2
    estimator_shapes: int = 4096

    def build_estimator(self) -> ServiceTimeEstimator:
        return ServiceTimeEstimator(
            alpha=self.ema_alpha, max_shapes=self.estimator_shapes
        )

    def build_governor(self) -> Optional[RetryGovernor]:
        if self.retry_tokens <= 0:
            return None
        return RetryGovernor(
            capacity=self.retry_tokens,
            refill_per_s=self.retry_refill_per_s,
            max_tracked=self.retry_tracked,
        )

    def build_brownout(self) -> BrownoutController:
        return BrownoutController(
            high_watermark=self.brownout_high_watermark,
            low_watermark=self.brownout_low_watermark,
            dwell_s=self.brownout_dwell_s,
            cooldown_s=self.brownout_cooldown_s,
            max_level=self.brownout_max_level,
        )

    def quota_for(self, priority: str, max_queue: int) -> Optional[int]:
        """The queued-ticket cap for ``priority`` (``None`` =
        unrestricted). A fractional quota rounds *up* so a tiny queue
        still admits at least one ticket of a capped class when the
        fraction is nonzero."""
        fraction = self.class_quotas.get(priority)
        if fraction is None:
            return None
        import math

        return math.ceil(max_queue * fraction)
