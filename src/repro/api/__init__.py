"""Public API: the :class:`Database` facade and decorrelation strategies."""

from .strategies import Strategy
from .database import Database, Result

__all__ = ["Database", "Result", "Strategy"]
