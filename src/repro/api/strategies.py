"""The correlated-query processing strategies compared by the paper."""

from __future__ import annotations

import enum


class Strategy(enum.Enum):
    """How to process a (possibly correlated) query.

    Mirrors section 5.1 of the paper: nested iteration (NI), Kim's method,
    Dayal's method, magic decorrelation without (Mag) and with (OptMag) the
    supplementary-table common-subexpression elimination. GANSKI_WONG is the
    historical special case of magic decorrelation discussed in section 2.
    """

    NESTED_ITERATION = "ni"
    KIM = "kim"
    DAYAL = "dayal"
    GANSKI_WONG = "ganski_wong"
    MAGIC = "magic"
    MAGIC_OPT = "magic_opt"

    @property
    def label(self) -> str:
        """The short name used in the paper's figures (NI, Kim, ...)."""
        return {
            Strategy.NESTED_ITERATION: "NI",
            Strategy.KIM: "Kim",
            Strategy.DAYAL: "Dayal",
            Strategy.GANSKI_WONG: "Ganski/Wong",
            Strategy.MAGIC: "Mag",
            Strategy.MAGIC_OPT: "OptMag",
        }[self]
