"""The ``Database`` facade: DDL/DML plus strategy-parameterised querying.

Typical use::

    from repro import Database, Strategy

    db = Database()
    db.execute_script(open("schema.sql").read())
    result = db.execute(correlated_sql, strategy=Strategy.MAGIC)
    print(result.columns, result.rows, result.metrics.subquery_invocations)
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, field
from typing import Any, Optional, TYPE_CHECKING

from ..errors import BindError, ExecutionError, ReproError
from ..exec import Metrics, execute_graph
from ..faults import FaultRegistry
from ..guard import ExecutionGuard, Limits
from ..qgm import build_qgm, graph_to_text
from ..qgm.model import QueryGraph
from ..sql import ast
from ..sql.parser import parse_statement, parse_statements
from ..sql.printer import to_sql
from ..storage import Catalog, Column, Schema
from ..types import SQLType
from .strategies import Strategy

if TYPE_CHECKING:  # pragma: no cover - import cycle avoidance
    from ..trace import Tracer


@dataclass
class Result:
    """Rows plus schema and work counters for one executed statement.

    ``sql`` is the originating statement's text (used in error messages);
    ``degradations`` records the strategy fallback chain taken when
    ``execute(..., fallback=True)`` had to degrade (empty otherwise);
    ``tracer`` is the span collector when the query ran traced
    (``execute(..., tracer=...)``), ``None`` otherwise.
    """

    columns: list[str]
    rows: list[tuple]
    metrics: Metrics
    sql: str = ""
    degradations: list = field(default_factory=list)
    tracer: Optional["Tracer"] = None

    def __iter__(self):
        return iter(self.rows)

    def __len__(self) -> int:
        return len(self.rows)

    def scalar(self) -> Any:
        """The single value of a 1x1 result.

        Raises a typed :class:`~repro.errors.ExecutionError` -- naming the
        originating query -- on an empty result instead of the ambiguous
        ``IndexError``/``None`` a bare row access would give.
        """
        origin = f" for query: {self.sql.strip()}" if self.sql else ""
        if not self.rows:
            raise ExecutionError(f"scalar() on an empty result{origin}")
        if len(self.rows) != 1 or len(self.columns) != 1:
            raise ExecutionError(
                f"scalar() on a {len(self.rows)}x{len(self.columns)} "
                f"result{origin}"
            )
        return self.rows[0][0]


def _const_value(expr: ast.Expr) -> Any:
    """Evaluate a constant expression (INSERT ... VALUES entries)."""
    if isinstance(expr, ast.Literal):
        return expr.value
    if isinstance(expr, ast.UnaryMinus):
        value = _const_value(expr.operand)
        return None if value is None else -value
    if isinstance(expr, ast.BinaryOp):
        from ..types import ARITHMETIC

        return ARITHMETIC[expr.op](
            _const_value(expr.left), _const_value(expr.right)
        )
    raise BindError("INSERT values must be constant expressions")


class Database:
    """An in-memory database with pluggable correlated-query strategies.

    ``validate`` turns on per-step rewrite invariant checking (the paper's
    section-3 consistency contract plus all lint rules, after every rewrite
    step); ``None`` defers to the ``REPRO_VALIDATE`` environment variable.

    ``faults`` is a deterministic fault-injection registry
    (:class:`repro.faults.FaultRegistry`); ``None`` defers to the
    ``REPRO_FAULTS`` environment variable (unset = no injection).

    ``events`` (a :class:`repro.obs.events.EventLog`) turns on structured
    lifecycle events: each query emits ``query.started`` and
    ``query.finished`` (with its ``Metrics`` snapshot), and the rewrite
    engine, guard and fault registry emit their own events into the same
    log. ``slow_query_ms`` enables the slow-query log: any query (rewrite
    + execution) slower than the threshold is captured in a bounded ring
    on ``self.slow_log`` (pass ``slow_log=`` to share a ring across
    facades instead). Both default to ``None`` -- the zero-overhead path.

    ``plan_cache`` (a :class:`repro.plan.cache.PlanCache`, shareable
    across facades) turns on prepared statements: repeated submissions of
    one template with different literals reuse the parse/bind/rewrite/
    optimize artifacts and pay only executor time, invalidating on any
    catalog change. ``None`` (the default) leaves the seed query path
    untouched.
    """

    def __init__(
        self,
        catalog: Optional[Catalog] = None,
        validate: Optional[bool] = None,
        faults: Optional[FaultRegistry] = None,
        events=None,
        slow_query_ms: Optional[float] = None,
        slow_log=None,
        plan_cache=None,
    ):
        import itertools

        from ..rewrite import RewriteEngine

        self.catalog = catalog if catalog is not None else Catalog()
        self.faults = faults if faults is not None else FaultRegistry.from_env()
        self.events = events
        self.engine = RewriteEngine(
            self.catalog, validate=validate, faults=self.faults, events=events
        )
        if events is not None and self.faults is not None:
            self.faults.events = events
        if slow_log is not None:
            self.slow_log = slow_log
        elif slow_query_ms is not None:
            from ..obs.slowlog import SlowQueryLog

            self.slow_log = SlowQueryLog(slow_query_ms, events=events)
        else:
            self.slow_log = None
        self.plan_cache = plan_cache
        self._query_ids = itertools.count(1)

    # -- DDL / DML -----------------------------------------------------------

    def execute_script(self, sql: str) -> list[Result]:
        """Run a ``;``-separated script; returns one Result per statement.

        Each statement's source text is threaded onto its :class:`Result`
        (``result.sql``) and into any error it raises -- a failing DDL or
        INSERT names the originating statement the same way
        :meth:`Result.scalar` names its query. The whole script is parsed
        before the first statement executes, so a syntax error anywhere
        runs nothing."""
        from ..sql.splitter import split_statements

        sources = split_statements(sql)
        statements = [parse_statement(s) for s in sources]
        if len(statements) != len(sources):  # pragma: no cover - paranoia
            return [self._execute_statement(s) for s in parse_statements(sql)]
        return [
            self._execute_statement(statement, sql=source)
            for statement, source in zip(statements, sources)
        ]

    @staticmethod
    def _name_statement(exc: ReproError, sql: str) -> None:
        """Append the originating statement to ``exc``'s message (once) and
        stash it on ``exc.sql``; long statements are truncated."""
        if not sql or getattr(exc, "sql", ""):
            return
        exc.sql = sql  # type: ignore[attr-defined]
        text = " ".join(sql.split())
        if len(text) > 120:
            text = text[:117] + "..."
        exc.args = (f"{exc.args[0]} [in statement: {text}]",) + exc.args[1:]

    def _execute_statement(
        self, statement: ast.Statement, sql: str = ""
    ) -> Result:
        try:
            return self._execute_statement_inner(statement, sql)
        except ReproError as exc:
            self._name_statement(exc, sql)
            raise

    def _execute_statement_inner(
        self, statement: ast.Statement, sql: str = ""
    ) -> Result:
        if isinstance(statement, ast.CreateTable):
            columns = [
                Column(c.name, SQLType[c.type_name], nullable=not c.not_null)
                for c in statement.columns
            ]
            self.catalog.create_table(
                statement.name, Schema(columns, primary_key=statement.primary_key)
            )
            return Result([], [], Metrics(), sql=sql)
        if isinstance(statement, ast.CreateIndex):
            table = self.catalog.table(statement.table)
            table.create_index(
                statement.name, list(statement.columns),
                unique=statement.unique, kind=statement.kind,
            )
            # Index DDL goes through the table, not the catalog: bump the
            # catalog generation explicitly so cached plans (which may have
            # chosen access paths) are invalidated.
            self.catalog.invalidate_stats(statement.table)
            return Result([], [], Metrics(), sql=sql)
        if isinstance(statement, ast.DropIndex):
            self.catalog.table(statement.table).drop_index(statement.name)
            self.catalog.invalidate_stats(statement.table)
            return Result([], [], Metrics(), sql=sql)
        if isinstance(statement, ast.CreateView):
            # Views are validated eagerly then stored as SQL text.
            build_qgm(statement.query, self.catalog)
            self.catalog.create_view(statement.name, to_sql(statement.query))
            return Result([], [], Metrics(), sql=sql)
        if isinstance(statement, ast.Insert):
            return self._insert(statement, sql=sql)
        if isinstance(statement, (ast.Select, ast.SetOp)):
            return self._run_query(
                statement, Strategy.NESTED_ITERATION, "recompute",
                sql=sql or None,
            )
        raise BindError(f"unsupported statement {type(statement).__name__}")

    def _insert(self, statement: ast.Insert, sql: str = "") -> Result:
        table = self.catalog.table(statement.table)
        names = table.schema.names()
        columns = [c.lower() for c in statement.columns] or names
        positions = {c: names.index(c) for c in columns}
        if statement.query is not None:
            source = self._run_query(
                statement.query, Strategy.NESTED_ITERATION, "recompute"
            )
            value_rows: list[tuple] = source.rows
        else:
            value_rows = [
                tuple(_const_value(e) for e in row_exprs)
                for row_exprs in statement.rows
            ]
        inserted = 0
        for values in value_rows:
            if len(values) != len(columns):
                raise BindError("INSERT arity mismatch")
            row: list[Any] = [None] * len(names)
            for column, value in zip(columns, values):
                row[positions[column]] = value
            table.insert(row)
            inserted += 1
        self.catalog.invalidate_stats(table.name)
        metrics = Metrics()
        metrics.rows_output = inserted
        return Result([], [], metrics, sql=sql)

    # -- queries ---------------------------------------------------------------

    def execute(
        self,
        sql: str,
        strategy: Strategy = Strategy.NESTED_ITERATION,
        cse_mode: str = "recompute",
        decorrelate_existential: bool = True,
        limits: Optional[Limits] = None,
        guard: Optional[ExecutionGuard] = None,
        fallback: bool = False,
        disabled=None,
        tracer: Optional["Tracer"] = None,
        phases=None,
    ) -> Result:
        """Parse, bind, rewrite per ``strategy``, and execute one statement.

        ``cse_mode`` controls whether shared boxes created by decorrelation
        (the supplementary table) are recomputed per reference (the paper's
        Starburst behaviour) or materialised once.
        ``decorrelate_existential`` is the paper's section 4.4 knob: when
        False, magic decorrelation leaves EXISTS/IN/ANY/ALL subqueries
        correlated instead of building CI boxes over materialised results.

        ``limits`` (a :class:`repro.guard.Limits`) bounds the execution:
        exceeding any budget raises a typed
        :class:`~repro.errors.BudgetExceeded` within one executor step,
        carrying the metrics snapshot at trip time. ``guard`` passes a
        pre-built :class:`repro.guard.ExecutionGuard` instead -- useful for
        cooperative cancellation from another thread. ``limits=None`` (the
        default) adds no overhead.

        ``fallback=True`` enables graceful degradation: if the requested
        strategy's rewrite fails, the engine retries along
        ``requested -> magic -> nested iteration`` and records the taken
        chain as :class:`~repro.rewrite.engine.DegradationEvent`s on
        ``Result.degradations``. ``disabled`` (fallback mode only) is a
        per-strategy veto callable forwarded to
        :meth:`~repro.rewrite.engine.RewriteEngine.rewrite_with_fallback`
        -- the query service's circuit breakers use it to skip quarantined
        strategies without re-paying their rewrite.

        ``tracer`` (a :class:`repro.trace.Tracer`) collects the span tree
        -- one aggregate node per rewrite step and per plan node -- and is
        returned on ``Result.tracer``. ``None`` (the default) is the
        zero-overhead untraced path.

        ``phases`` (a :class:`repro.obs.phases.PhaseTimeline`) receives
        phase marks as the pipeline advances -- ``plan_cache`` after the
        cache lookup, ``rewrite`` after parse+rewrite, ``optimize`` after
        static plan verification, ``execute`` after the operator graph
        runs -- so a caller measuring whole-query latency on the same
        clock can attribute every interval. ``None`` (the default) adds
        no overhead.
        """
        if self.plan_cache is not None:
            return self._execute_with_plan_cache(
                sql, strategy, cse_mode,
                decorrelate_existential=decorrelate_existential,
                limits=limits, guard=guard, fallback=fallback,
                disabled=disabled, tracer=tracer, phases=phases,
            )
        statement = parse_statement(sql)
        if not isinstance(statement, (ast.Select, ast.SetOp)):
            return self._execute_statement(statement, sql=sql)
        return self._run_query(
            statement, strategy, cse_mode,
            decorrelate_existential=decorrelate_existential,
            limits=limits, guard=guard, fallback=fallback, sql=sql,
            disabled=disabled, tracer=tracer, phases=phases,
        )

    def _execute_with_plan_cache(
        self,
        sql: str,
        strategy: Strategy,
        cse_mode: str,
        *,
        decorrelate_existential: bool,
        limits: Optional[Limits],
        guard: Optional[ExecutionGuard],
        fallback: bool,
        disabled,
        tracer: Optional["Tracer"],
        phases=None,
    ) -> Result:
        """:meth:`execute` with the plan cache engaged.

        The catalog generation is read *before* the lookup, so an artifact
        filled after this miss carries a stamp from no later than its own
        build inputs -- DDL racing the build leaves the stored stamp
        behind and the entry self-invalidates on the next lookup. A hit
        executes the cached parameterized graph with this submission's
        extracted values; tracing is the one feature that opts out (span
        trees annotate the rewrite pipeline a hit skips)."""
        cache = self.plan_cache
        prepared = (
            cache.prepare(
                sql, strategy=strategy, cse_mode=cse_mode,
                decorrelate_existential=decorrelate_existential,
                generation=self.catalog.generation(),
                disabled=disabled,
            )
            if tracer is None else None
        )
        if phases is not None:
            # Hit or miss, the lookup (and parameter extraction) itself
            # is plan-cache time; a miss's rebuild lands on the later
            # rewrite/optimize/execute marks.
            phases.mark("plan_cache")
        if prepared is not None and prepared.entry is not None:
            return self._run_cached(
                prepared, sql=sql, cse_mode=cse_mode,
                limits=limits, guard=guard, phases=phases,
            )
        statement = parse_statement(sql)
        if not isinstance(statement, (ast.Select, ast.SetOp)):
            return self._execute_statement(statement, sql=sql)
        result = self._run_query(
            statement, strategy, cse_mode,
            decorrelate_existential=decorrelate_existential,
            limits=limits, guard=guard, fallback=fallback, sql=sql,
            disabled=disabled, tracer=tracer, phases=phases,
        )
        if prepared is not None and prepared.fillable:
            cache.fill(prepared, self.catalog)
        return result

    def _run_cached(
        self,
        prepared,
        *,
        sql: str,
        cse_mode: str,
        limits: Optional[Limits],
        guard: Optional[ExecutionGuard],
        phases=None,
    ) -> Result:
        if guard is None and limits is not None:
            from ..guard import guard_for

            guard = guard_for(limits)
        if self.events is None and self.slow_log is None:
            return self._run_cached_inner(
                prepared, sql=sql, cse_mode=cse_mode, guard=guard,
                phases=phases,
            )
        return self._observe_query(
            lambda: self._run_cached_inner(
                prepared, sql=sql, cse_mode=cse_mode, guard=guard,
                phases=phases,
            ),
            sql=sql, key=prepared.strategy_key, guard=guard, tracer=None,
        )

    def _run_cached_inner(
        self,
        prepared,
        *,
        sql: str,
        cse_mode: str,
        guard: Optional[ExecutionGuard],
        phases=None,
    ) -> Result:
        from ..exec import ExecutionContext

        entry = prepared.entry
        ctx = ExecutionContext(
            self.catalog, entry.graph.root, cse_mode,
            guard=guard, faults=self.faults, params=prepared.values,
        )
        ctx.seed_plans(entry.plans)
        rows, metrics = execute_graph(
            entry.graph, self.catalog, cse_mode=cse_mode, ctx=ctx
        )
        if phases is not None:
            phases.mark("execute")
        return Result(entry.graph.output_names(), rows, metrics, sql=sql)

    def _run_query(
        self,
        statement: ast.QueryBody,
        strategy: Strategy,
        cse_mode: str,
        decorrelate_existential: bool = True,
        limits: Optional[Limits] = None,
        guard: Optional[ExecutionGuard] = None,
        fallback: bool = False,
        sql: Optional[str] = None,
        disabled=None,
        tracer: Optional["Tracer"] = None,
        phases=None,
    ) -> Result:
        if self.events is None and self.slow_log is None:
            return self._run_query_inner(
                statement, strategy, cse_mode,
                decorrelate_existential=decorrelate_existential,
                limits=limits, guard=guard, fallback=fallback, sql=sql,
                disabled=disabled, tracer=tracer, phases=phases,
            )
        return self._run_query_observed(
            statement, strategy, cse_mode,
            decorrelate_existential=decorrelate_existential,
            limits=limits, guard=guard, fallback=fallback, sql=sql,
            disabled=disabled, tracer=tracer, phases=phases,
        )

    def _run_query_observed(
        self,
        statement: ast.QueryBody,
        strategy: Strategy,
        cse_mode: str,
        decorrelate_existential: bool = True,
        limits: Optional[Limits] = None,
        guard: Optional[ExecutionGuard] = None,
        fallback: bool = False,
        sql: Optional[str] = None,
        disabled=None,
        tracer: Optional["Tracer"] = None,
        phases=None,
    ) -> Result:
        key = getattr(strategy, "value", strategy)
        if sql is None:
            sql = to_sql(statement)
        if guard is None and limits is not None:
            from ..guard import guard_for

            guard = guard_for(limits)
            limits = None
        run = lambda: self._run_query_inner(  # noqa: E731
            statement, strategy, cse_mode,
            decorrelate_existential=decorrelate_existential,
            limits=limits, guard=guard, fallback=fallback, sql=sql,
            disabled=disabled, tracer=tracer, phases=phases,
        )
        return self._observe_query(
            run, sql=sql, key=key, guard=guard, tracer=tracer
        )

    def _observe_query(
        self,
        run,
        *,
        sql: str,
        key,
        guard: Optional[ExecutionGuard],
        tracer: Optional["Tracer"],
    ) -> Result:
        """The instrumented query path: lifecycle events + slow-query log.

        Lifecycle events (``query.started`` / ``query.finished``) are
        emitted only when no outer scope owns the query already -- the
        query service binds its ticket id around ``execute()`` and emits
        its own lifecycle, so facade databases contribute engine-level
        events (degradations, faults, budget trips) without duplicating
        the service's.
        """
        import time as _time

        from ..errors import QueryCancelled

        events = self.events
        if events is not None and guard is not None:
            guard.events = events
        owns_lifecycle = (
            events is not None and events.current_query_id() is None
        )
        if owns_lifecycle:
            query_id: Optional[int] = next(self._query_ids)
        elif events is not None:
            query_id = events.current_query_id()
        else:
            query_id = None
        outcome = "failed"
        error_type: Optional[str] = None
        result: Optional[Result] = None
        scope = (
            events.scope(query_id) if owns_lifecycle
            else contextlib.nullcontext()
        )
        started = _time.perf_counter()
        with scope:
            if owns_lifecycle:
                events.emit("query.started", strategy=key)
            try:
                result = run()
                outcome = "completed"
                return result
            except QueryCancelled:
                outcome, error_type = "cancelled", "QueryCancelled"
                raise
            except BaseException as exc:
                error_type = type(exc).__name__
                raise
            finally:
                latency_ms = (_time.perf_counter() - started) * 1000
                if owns_lifecycle:
                    if outcome == "cancelled":
                        events.emit("query.cancelled")
                    events.emit(
                        "query.finished",
                        outcome=outcome,
                        strategy=key,
                        latency_ms=round(latency_ms, 3),
                        error_type=error_type,
                        metrics=(
                            result.metrics.as_dict()
                            if result is not None else None
                        ),
                    )
                if self.slow_log is not None:
                    self.slow_log.observe(
                        latency_ms,
                        sql=sql,
                        strategy=key,
                        query_id=query_id,
                        outcome=outcome,
                        degradations=(
                            result.degradations if result is not None else ()
                        ),
                        metrics=result.metrics if result is not None else None,
                        tracer=tracer,
                    )

    def _run_query_inner(
        self,
        statement: ast.QueryBody,
        strategy: Strategy,
        cse_mode: str,
        decorrelate_existential: bool = True,
        limits: Optional[Limits] = None,
        guard: Optional[ExecutionGuard] = None,
        fallback: bool = False,
        sql: Optional[str] = None,
        disabled=None,
        tracer: Optional["Tracer"] = None,
        phases=None,
    ) -> Result:
        if sql is None:
            sql = to_sql(statement)
        degradations: list = []
        if fallback:
            graph, degradations = self.engine.rewrite_with_fallback(
                lambda: build_qgm(statement, self.catalog), strategy,
                decorrelate_existential=decorrelate_existential,
                disabled=disabled, tracer=tracer,
            )
        else:
            graph = self.rewrite(
                statement, strategy,
                decorrelate_existential=decorrelate_existential,
                tracer=tracer,
            )
        if phases is not None:
            # "rewrite" covers QGM construction + the strategy rewrite
            # (and, on the uncached path, the parse that preceded this
            # call -- parsing is part of producing the rewritten plan).
            phases.mark("rewrite")
        if self.engine.validate:
            # REPRO_VALIDATE gates the static plan verifier: every plan the
            # executor is about to run is checked against the inferred box
            # contracts (repro.analyze.plans). Off means not even imported.
            from ..analyze.plans import verify_pre_execution

            contract_summary = verify_pre_execution(self.catalog, graph)
            if self.events is not None:
                self.events.emit("plan.verified", **contract_summary)
            if phases is not None:
                # "optimize" = static plan verification; absent entirely
                # when validation is off (no work, no phase).
                phases.mark("optimize")
        rows, metrics = execute_graph(
            graph, self.catalog, cse_mode=cse_mode,
            limits=limits, guard=guard, faults=self.faults, tracer=tracer,
        )
        if phases is not None:
            phases.mark("execute")
        return Result(
            graph.output_names(), rows, metrics,
            sql=sql, degradations=degradations, tracer=tracer,
        )

    def rewrite(
        self,
        statement: ast.QueryBody,
        strategy: Strategy,
        decorrelate_existential: bool = True,
        tracer: Optional["Tracer"] = None,
    ) -> QueryGraph:
        """Build the QGM and apply the strategy's rewrite (validated).

        With validation enabled on the engine, the validator and lint rules
        also run after every individual rewrite step."""
        graph = build_qgm(statement, self.catalog)
        return self.engine.rewrite(
            graph, strategy,
            decorrelate_existential=decorrelate_existential, tracer=tracer,
        )

    def analyze(self, sql: str):
        """Static analysis of one statement: coded diagnostics, correlation
        patterns, and per-strategy applicability verdicts. Never raises on
        bad SQL -- problems come back as diagnostics in the report."""
        from ..analyze import analyze_sql

        return analyze_sql(sql, self.catalog)

    def explain(
        self,
        sql: str,
        strategy: Strategy = Strategy.NESTED_ITERATION,
        analyze: bool = False,
        cse_mode: str = "recompute",
        tracer: Optional["Tracer"] = None,
    ) -> str:
        """The (rewritten) QGM as text -- the engine's EXPLAIN.

        ``analyze=True`` is the engine's ``EXPLAIN ANALYZE``: the query is
        rewritten and *executed* under a :class:`repro.trace.Tracer`, and
        the rendering becomes the physical plan annotated per operator
        with observed calls, rows, cache hits and elapsed time, followed
        by the rewrite timeline, a per-operator breakdown table, and a
        reconciliation footer checking that the summed per-span metric
        deltas reproduce the whole-query totals exactly. ``tracer`` lets
        callers pass a pre-built collector (e.g. with a fake clock) and
        inspect the span tree afterwards."""
        statement = parse_statement(sql)
        if not isinstance(statement, (ast.Select, ast.SetOp)):
            raise BindError("EXPLAIN is only available for queries")
        if not analyze:
            return graph_to_text(self.rewrite(statement, strategy))

        from ..exec.metrics import SUM_FIELD_NAMES
        from ..plan.pretty import plan_to_text
        from ..trace import (
            Tracer,
            render_operator_table,
            render_rewrite_timeline,
        )

        if tracer is None:
            tracer = Tracer()
        graph = self.rewrite(statement, strategy, tracer=tracer)
        rows, metrics = execute_graph(
            graph, self.catalog, cse_mode=cse_mode,
            faults=self.faults, tracer=tracer,
        )
        span_totals = tracer.metric_totals()
        query_totals = {
            name: getattr(metrics, name) for name in SUM_FIELD_NAMES
        }
        if span_totals == query_totals:
            verdict = "per-span metric deltas reconcile exactly with query totals"
        else:  # pragma: no cover - the attribution invariant failing
            diffs = ", ".join(
                f"{k}: spans={span_totals[k]} query={query_totals[k]}"
                for k in SUM_FIELD_NAMES
                if span_totals[k] != query_totals[k]
            )
            verdict = f"per-span metric deltas DIVERGE from query totals ({diffs})"
        key = getattr(strategy, "value", strategy)
        return "\n".join([
            plan_to_text(self.catalog, graph, tracer=tracer),
            "",
            "Rewrite timeline:",
            render_rewrite_timeline(tracer, indent="  "),
            "",
            "Per-operator breakdown:",
            render_operator_table(tracer, indent="  "),
            "",
            f"Execution: {len(rows)} rows via strategy {key!r}, "
            f"total work {metrics.total_work()}, "
            f"peak live materialisation {metrics.peak_rows_materialized} rows; "
            + verdict,
        ])

    def explain_plan(
        self, sql: str, strategy: Strategy = Strategy.NESTED_ITERATION
    ) -> str:
        """The physical plan after the strategy's rewrite: access paths,
        join order, predicate placement and -- the paper's section 7
        concern -- where correlated subqueries are evaluated."""
        from ..plan.pretty import plan_to_text

        statement = parse_statement(sql)
        if not isinstance(statement, (ast.Select, ast.SetOp)):
            raise BindError("EXPLAIN PLAN is only available for queries")
        graph = self.rewrite(statement, strategy)
        return plan_to_text(self.catalog, graph)

    def rewritten_sql(
        self, sql: str, strategy: Strategy = Strategy.MAGIC
    ) -> str:
        """The rewritten query as CREATE VIEW statements plus a final
        SELECT -- the presentation the paper uses in section 2.1 for the
        magic-decorrelated example."""
        from ..qgm.sqlgen import graph_to_sql

        statement = parse_statement(sql)
        if not isinstance(statement, (ast.Select, ast.SetOp)):
            raise BindError("rewritten_sql is only available for queries")
        return graph_to_sql(self.rewrite(statement, strategy))
