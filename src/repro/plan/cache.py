"""Fingerprint-keyed plan cache: prepared statements for repeated templates.

The paper's economics assume the parse -> QGM -> rewrite -> optimize
pipeline is paid once per query *shape*, not once per submission. This
module makes that true for the serving layer:

* :func:`normalize_sql` / :func:`fingerprint` -- the canonical template of
  a query (literals replaced by ``?``) and its stable hash. Promoted here
  from ``repro.serve.overload`` so the admission estimator and the plan
  cache key on the same shape. Unlike the regex predecessor, the scanner
  is quote-aware: ``--`` line comments are stripped (the lexer already
  accepts them), literals inside quoted identifiers stay identifiers, and
  ``''`` escapes never terminate a string early.
* :func:`extract_parameters` -- the same single pass also captures each
  literal's decoded value and source range, in the exact order the
  template's ``?`` markers appear.
* :class:`PlanCache` -- maps (fingerprint, strategy, cse_mode, flags,
  parameter types) to a *parameterized* rewritten query graph plus its
  precomputed physical plans. A hit binds the extracted values into a
  fresh :class:`~repro.exec.executor.ExecutionContext` and pays only
  executor time.

Filling is done by re-parsing the statement with its literals spliced out
as ``?`` markers (the parser numbers them in source order). That keeps
correctness trivially audit-able: the cached graph is built by the same
parser/binder/rewriter as any other query, and shapes whose literals are
consumed at *build* time -- ``LIMIT n``, ``ORDER BY 2`` ordinals -- fail
the parameterized build with a typed error and are tombstoned as
uncacheable rather than cached wrongly. IN-list arity intentionally stays
part of the shape: ``x IN (?, ?)`` and ``x IN (?, ?, ?)`` are different
templates, so rebinding can never change predicate structure.

Staleness is handled with a generation stamp: entries record the
:meth:`~repro.storage.catalog.Catalog.generation` observed *before* the
build, and any lookup whose current generation differs drops the entry
(counted and emitted as ``plan.cache_invalidated``). DDL racing a fill
therefore self-invalidates -- the stored stamp is already behind.

Locking (DESIGN section 9): the cache owns one non-reentrant lock ranked
between the service lock and the catalog lock. The catalog generation is
read *before* the cache lock is taken (no cache -> catalog edge), and
event emission happens inside the critical section so counters reconcile
exactly against the emitted ``plan.cache_*`` events.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

_DIGITS = frozenset("0123456789")
_IDENT_START = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_"
)
_IDENT_CONT = _IDENT_START | _DIGITS | frozenset("#$")


@dataclass(frozen=True)
class ExtractedParam:
    """One literal lifted out of the statement text."""

    start: int  #: character offset of the literal's first character
    end: int    #: one past its last character
    value: Any  #: decoded value, exactly as the lexer would decode it


@dataclass(frozen=True)
class ExtractedQuery:
    """The result of one normalization pass over a statement."""

    template: str                          #: canonical shape, literals as ``?``
    params: tuple[ExtractedParam, ...]     #: literals in template order
    ok: bool = True                        #: False on malformed input


def _scan(sql: str) -> ExtractedQuery:
    """One quote-aware pass: template, extracted literals, well-formedness.

    Mirrors the lexer's decoding exactly -- ``''`` unescapes to ``'``,
    numbers become ``int`` unless a fraction or exponent makes them
    ``float`` -- so an extracted value always equals the ``ast.Literal``
    the parser would have produced. Unterminated strings or quoted
    identifiers mark the query ``ok=False``: splicing ``?`` into malformed
    text could yield a *valid* statement, and caching that would turn a
    lex error into a successful result.
    """
    out: list[str] = []
    params: list[ExtractedParam] = []
    ok = True
    i = 0
    n = len(sql)
    gap = False  # whitespace/comment pending between emitted chunks

    def emit(chunk: str) -> None:
        nonlocal gap
        if gap and out:
            out.append(" ")
        gap = False
        out.append(chunk)

    while i < n:
        ch = sql[i]
        if ch in " \t\r\n":
            gap = True
            i += 1
            continue
        if ch == "-" and i + 1 < n and sql[i + 1] == "-":
            # Line comment: acts as whitespace, exactly like the lexer.
            while i < n and sql[i] != "\n":
                i += 1
            gap = True
            continue
        if ch == "'":
            start = i
            i += 1
            parts: list[str] = []
            closed = False
            while i < n:
                if sql[i] == "'":
                    if i + 1 < n and sql[i + 1] == "'":
                        parts.append("'")
                        i += 2
                        continue
                    i += 1
                    closed = True
                    break
                parts.append(sql[i])
                i += 1
            if not closed:
                ok = False
                emit(sql[start:])
                break
            emit("?")
            params.append(ExtractedParam(start, i, "".join(parts)))
            continue
        if ch == '"':
            start = i
            i += 1
            while i < n and sql[i] != '"':
                i += 1
            if i >= n:
                ok = False
                emit(sql[start:])
                break
            i += 1
            # The engine folds identifiers to lower case at bind time, so
            # folding here merges genuinely equivalent shapes; digits
            # inside stay identifier content, never parameters.
            emit(sql[start:i].lower())
            continue
        if ch in _IDENT_START:
            start = i
            while i < n and sql[i] in _IDENT_CONT:
                i += 1
            emit(sql[start:i].lower())
            continue
        if ch in _DIGITS or (ch == "." and i + 1 < n and sql[i + 1] in _DIGITS):
            start = i
            is_float = False
            while i < n and sql[i] in _DIGITS:
                i += 1
            if i < n and sql[i] == ".":
                is_float = True
                i += 1
                while i < n and sql[i] in _DIGITS:
                    i += 1
            if i < n and sql[i] in "eE":
                j = i + 1
                if j < n and sql[j] in "+-":
                    j += 1
                if j < n and sql[j] in _DIGITS:
                    is_float = True
                    i = j
                    while i < n and sql[i] in _DIGITS:
                        i += 1
            word = sql[start:i]
            emit("?")
            params.append(
                ExtractedParam(start, i, float(word) if is_float else int(word))
            )
            continue
        emit(ch)
        i += 1

    return ExtractedQuery("".join(out), tuple(params), ok)


def extract_parameters(sql: str) -> ExtractedQuery:
    """Template plus the literals it replaced, in ``?``-marker order."""
    return _scan(sql)


def normalize_sql(sql: str) -> str:
    """The canonical *shape* of a query: string and numeric literals
    replaced by ``?``, comments stripped, whitespace collapsed, case
    folded outside string literals and quoted identifiers' quotes. Two
    submissions of the same template with different constants normalize
    identically."""
    return _scan(sql).template


def fingerprint(sql: str) -> str:
    """A short stable hash of :func:`normalize_sql`'s output -- the key
    service-time history and cached plans are learned under."""
    digest = hashlib.sha256(normalize_sql(sql).encode("utf-8")).hexdigest()
    return digest[:16]


def render_parameterized(sql: str, extracted: ExtractedQuery) -> str:
    """``sql`` with every extracted literal spliced out as a ``?`` marker.

    Everything else is preserved verbatim, so the parser numbers the
    markers in exactly :attr:`ExtractedQuery.params` order."""
    out: list[str] = []
    last = 0
    for param in extracted.params:
        out.append(sql[last:param.start])
        out.append("?")
        last = param.end
    out.append(sql[last:])
    return "".join(out)


@dataclass
class CachedPlan:
    """One reusable artifact: a parameterized graph plus its physical plans.

    ``graph is None`` marks a tombstone -- the shape was proven
    uncacheable (its parameterized form fails to parse, bind or rewrite,
    e.g. ``LIMIT n`` or ordinal ``ORDER BY``) and misses should not keep
    re-attempting the fill. ``generation`` is the catalog epoch observed
    *before* the artifact was built."""

    generation: int
    strategy: str
    param_count: int = 0
    graph: Optional[Any] = None
    plans: dict = field(default_factory=dict)

    @property
    def is_tombstone(self) -> bool:
        return self.graph is None


@dataclass
class PreparedStatement:
    """One submission's view of the cache: the key, the extracted values,
    and -- on a hit -- the entry to execute. ``fillable`` is False when a
    tombstone says the shape is not worth re-attempting."""

    key: tuple
    values: tuple
    types: tuple
    generation: int
    strategy: Any
    strategy_key: str
    cse_mode: str
    decorrelate_existential: bool
    parameterized_sql: str = ""
    entry: Optional[CachedPlan] = None
    fillable: bool = True


class PlanCache:
    """An LRU map from query shape to prepared execution artifacts.

    Thread-safe: one non-reentrant lock (rank "plan_cache" in the DESIGN
    section 9 order) guards the table and the counters; ``plan.cache_*``
    events are emitted inside the critical section so the counters
    reconcile exactly against the event stream. The expensive fill work
    (parse/bind/rewrite/plan) runs *outside* the lock -- concurrent misses
    may both build, and the second store is a harmless overwrite of an
    identical artifact.
    """

    def __init__(self, capacity: int = 256, events: Any = None) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        #: Optional :class:`repro.obs.events.EventLog` (the service wires
        #: its own log in; events carry the submitting query's scope id).
        self.events = events
        self._lock = threading.Lock()
        self._entries: OrderedDict[tuple, CachedPlan] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.invalidations = 0

    # -- lookup ------------------------------------------------------------

    def prepare(
        self,
        sql: str,
        *,
        strategy: Any,
        cse_mode: str,
        decorrelate_existential: bool,
        generation: int,
        disabled: Optional[Callable[[str], Optional[str]]] = None,
    ) -> Optional[PreparedStatement]:
        """Classify one submission: ``None`` when the cache stands aside
        (non-query statements, malformed text, or a circuit-breaker veto
        of the strategy -- a veto means the fallback chain must run, so
        neither a cached plan nor a fresh fill would be honest), else a
        :class:`PreparedStatement` whose ``entry`` is the hit, if any.

        ``generation`` must be read from the catalog *before* this call
        (it stamps any artifact filled later; see :class:`CachedPlan`).
        """
        strategy_key = str(getattr(strategy, "value", strategy))
        extracted = _scan(sql)
        template = extracted.template
        if not extracted.ok:
            return None
        if not (template.startswith("select") or template.startswith("(")):
            return None
        if disabled is not None and disabled(strategy_key) is not None:
            return None
        values = tuple(p.value for p in extracted.params)
        types = tuple(type(v).__name__ for v in values)
        key = (
            hashlib.sha256(template.encode("utf-8")).hexdigest()[:16],
            strategy_key,
            cse_mode,
            bool(decorrelate_existential),
            types,
        )
        prepared = PreparedStatement(
            key=key, values=values, types=types, generation=generation,
            strategy=strategy, strategy_key=strategy_key, cse_mode=cse_mode,
            decorrelate_existential=bool(decorrelate_existential),
        )
        with self._lock:
            cached = self._entries.get(key)
            if cached is not None and cached.generation != generation:
                del self._entries[key]
                self.invalidations += 1
                self._emit(
                    "plan.cache_invalidated", key,
                    stale_generation=cached.generation,
                    generation=generation,
                )
                cached = None
            if cached is None:
                self.misses += 1
                self._emit("plan.cache_miss", key)
            elif cached.is_tombstone:
                self._entries.move_to_end(key)
                self.misses += 1
                prepared.fillable = False
                self._emit("plan.cache_miss", key, uncacheable=True)
            else:
                self._entries.move_to_end(key)
                self.hits += 1
                prepared.entry = cached
                self._emit("plan.cache_hit", key)
        if prepared.entry is None and prepared.fillable:
            prepared.parameterized_sql = render_parameterized(sql, extracted)
        return prepared

    def _emit(self, kind: str, key: tuple, **fields: Any) -> None:
        # Caller holds self._lock: emission inside the critical section is
        # what makes counter <-> event reconciliation exact (lock order
        # plan_cache -> events is ascending, see repro.analyze.conc).
        if self.events is not None:
            self.events.emit(
                kind, fingerprint=key[0], strategy=key[1], **fields
            )

    # -- fill --------------------------------------------------------------

    def fill(
        self, prepared: PreparedStatement, catalog: Any
    ) -> Optional[CachedPlan]:
        """Build and store the reusable artifact for a missed shape.

        Runs the standard pipeline over the parameterized text (literals
        as ``?``): parse, bind, the *requested* strategy's rewrite (no
        fallback -- a degraded plan is one submission's accident, not the
        shape's plan), then precomputed physical plans for every SPJ box.
        Any typed failure tombstones the shape instead; later misses skip
        the re-attempt. The fill deliberately uses a private, quiet
        rewrite engine: no validation hooks, no fault injection, no
        events -- the live query already ran with all of those."""
        from ..errors import ReproError
        from ..qgm import build_qgm, iter_boxes
        from ..qgm.model import SelectBox
        from ..rewrite import RewriteEngine
        from ..sql import ast
        from ..sql.parser import parse_statement
        from .planner import plan_select_box

        try:
            statement = parse_statement(prepared.parameterized_sql)
            if not isinstance(statement, (ast.Select, ast.SetOp)):
                raise ReproError("not a cacheable query")
            graph = build_qgm(statement, catalog)
            engine = RewriteEngine(catalog, validate=False)
            graph = engine.rewrite(
                graph, prepared.strategy,
                decorrelate_existential=prepared.decorrelate_existential,
            )
            plans: dict = {}
            try:
                for box in iter_boxes(graph.root):
                    if isinstance(box, SelectBox):
                        plans[box.id] = plan_select_box(catalog, box)
            except ReproError:
                # Planning hiccups are not fatal: hits re-plan lazily.
                plans = {}
            entry = CachedPlan(
                generation=prepared.generation,
                strategy=prepared.strategy_key,
                param_count=len(prepared.values),
                graph=graph,
                plans=plans,
            )
        except ReproError:
            entry = CachedPlan(
                generation=prepared.generation,
                strategy=prepared.strategy_key,
                param_count=len(prepared.values),
            )
        self._store(prepared.key, entry)
        return None if entry.is_tombstone else entry

    def _store(self, key: tuple, entry: CachedPlan) -> None:
        with self._lock:
            existing = self._entries.get(key)
            if existing is not None and existing.generation > entry.generation:
                # A racing fill built against a newer catalog; keep it.
                return
            self._entries[key] = entry
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)

    # -- maintenance -------------------------------------------------------

    def clear(self) -> int:
        """Drop everything; returns the number of entries removed (not
        counted as invalidations -- nothing was found stale)."""
        with self._lock:
            count = len(self._entries)
            self._entries.clear()
            return count

    def snapshot(self) -> dict:
        """A JSON-ready summary of the cache's state and counters."""
        with self._lock:
            lookups = self.hits + self.misses
            return {
                "entries": len(self._entries),
                "capacity": self.capacity,
                "hits": self.hits,
                "misses": self.misses,
                "invalidations": self.invalidations,
                "hit_rate": (
                    round(self.hits / lookups, 4) if lookups else None
                ),
            }
