"""Cardinality and selectivity estimation.

Deliberately simple: exact base-table statistics (affordable in memory)
combined with textbook selectivity rules. The estimates only need to be
good enough to reproduce the optimizer behaviours the paper depends on --
join ordering, index choice, and placing the correlated subquery before or
after the outer block's joins (Query 1 vs Query 2 in section 5.3).
"""

from __future__ import annotations

from typing import Optional

from ..qgm.expr import BOX_SUBQUERY_TYPES, ColumnRef, walk_expr
from ..qgm.model import (
    BaseTableBox,
    Box,
    GroupByBox,
    OuterJoinBox,
    SelectBox,
    SetOpBox,
)
from ..sql import ast
from ..storage.catalog import Catalog

#: Fallback selectivities when no statistics apply.
DEFAULT_EQ_SELECTIVITY = 0.1
DEFAULT_RANGE_SELECTIVITY = 1.0 / 3.0
DEFAULT_OTHER_SELECTIVITY = 0.5


def column_ndv(catalog: Catalog, ref: ColumnRef) -> Optional[int]:
    """Distinct-value count when the ref bottoms out at a base-table column."""
    box = ref.quantifier.box
    column = ref.column
    # Chase simple projections down to a base table.
    for _ in range(16):
        if isinstance(box, BaseTableBox):
            stats = catalog.stats(box.table_name)
            return max(1, stats.column(column).n_distinct)
        if isinstance(box, (SelectBox, GroupByBox, OuterJoinBox)):
            output = next((o for o in box.outputs if o.name == column), None)
            if output is None or not isinstance(output.expr, ColumnRef):
                return None
            box = output.expr.quantifier.box
            column = output.expr.column
            continue
        return None
    return None


def predicate_selectivity(catalog: Catalog, predicate: ast.Expr) -> float:
    """Estimated fraction of rows satisfying ``predicate``."""
    if any(isinstance(n, BOX_SUBQUERY_TYPES) for n in walk_expr(predicate)):
        return DEFAULT_OTHER_SELECTIVITY
    if isinstance(predicate, ast.Comparison):
        if predicate.op == "=":
            left_ndv = (
                column_ndv(catalog, predicate.left)
                if isinstance(predicate.left, ColumnRef)
                else None
            )
            right_ndv = (
                column_ndv(catalog, predicate.right)
                if isinstance(predicate.right, ColumnRef)
                else None
            )
            candidates = [n for n in (left_ndv, right_ndv) if n]
            if candidates:
                return 1.0 / max(candidates)
            return DEFAULT_EQ_SELECTIVITY
        return DEFAULT_RANGE_SELECTIVITY
    if isinstance(predicate, ast.InList):
        base = predicate_selectivity(
            catalog, ast.Comparison("=", predicate.operand, predicate.items[0])
        )
        return min(1.0, base * len(predicate.items))
    if isinstance(predicate, (ast.Like, ast.Between)):
        return DEFAULT_RANGE_SELECTIVITY
    if isinstance(predicate, ast.And):
        result = 1.0
        for item in predicate.items:
            result *= predicate_selectivity(catalog, item)
        return result
    if isinstance(predicate, ast.Or):
        result = 0.0
        for item in predicate.items:
            result += predicate_selectivity(catalog, item)
        return min(1.0, result)
    return DEFAULT_OTHER_SELECTIVITY


def estimate_box_rows(catalog: Catalog, box: Box, _depth: int = 0) -> float:
    """Estimated output cardinality of a box."""
    if _depth > 32:
        return 1000.0
    if isinstance(box, BaseTableBox):
        return float(max(1, catalog.stats(box.table_name).row_count))
    if isinstance(box, SelectBox):
        rows = 1.0
        for q in box.quantifiers:
            rows *= estimate_box_rows(catalog, q.box, _depth + 1)
        for predicate in box.predicates:
            rows *= predicate_selectivity(catalog, predicate)
        if box.distinct:
            rows = max(1.0, rows * 0.9)
        return max(1.0, rows)
    if isinstance(box, GroupByBox):
        input_rows = estimate_box_rows(catalog, box.quantifier.box, _depth + 1)
        if box.is_scalar:
            return 1.0
        ndv_product = 1.0
        known = False
        for group in box.group_by:
            if isinstance(group, ColumnRef):
                ndv = column_ndv(catalog, group)
                if ndv is not None:
                    ndv_product *= ndv
                    known = True
        if known:
            return max(1.0, min(input_rows, ndv_product))
        return max(1.0, input_rows ** 0.5)
    if isinstance(box, SetOpBox):
        total = sum(
            estimate_box_rows(catalog, q.box, _depth + 1) for q in box.quantifiers
        )
        return max(1.0, total)
    if isinstance(box, OuterJoinBox):
        left = estimate_box_rows(catalog, box.preserved.box, _depth + 1)
        right = estimate_box_rows(catalog, box.null_producing.box, _depth + 1)
        selectivity = (
            predicate_selectivity(catalog, box.condition)
            if box.condition is not None
            else 1.0
        )
        return max(left, left * right * selectivity)
    return 1000.0
