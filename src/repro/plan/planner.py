"""Planning a SelectBox: access paths, join order, subquery placement.

The planner turns one SPJ box into an ordered list of *steps*:

* an access step per quantifier -- index lookup, hash join, or scan;
* predicate steps placed as early as their references allow;
* scalar-subquery evaluation steps, placed *cost-based*: section 7 of the
  paper notes the optimizer decides where the correlated subquery is applied
  (after the outer joins for Query 1, before them for Query 2), and that
  magic decorrelation reuses that choice to form the supplementary table.
  :func:`plan_select_box` therefore records the chosen placement, and the
  decorrelation rewrite asks for it via ``subquery_placement``.

Correlated children (e.g. the correlated derived table of the paper's
Query 3) must be re-executed per outer row; their access steps are marked
``correlated_to_self`` so the executor performs -- and counts -- one
invocation per binding, which is exactly the nested-iteration behaviour the
paper measures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

from ..errors import PlanError
from ..qgm.analysis import external_column_refs
from ..qgm.expr import (
    BOX_SUBQUERY_TYPES,
    BoxScalarSubquery,
    ColumnRef,
    walk_expr,
)
from ..qgm.model import BaseTableBox, Box, Quantifier, SelectBox
from ..sql import ast
from ..storage.catalog import Catalog
from .cost import estimate_box_rows, predicate_selectivity


@dataclass
class ScanStep:
    """Materialise-and-iterate over a child box's rows.

    When ``correlated_to_self`` the child references quantifiers of this box
    and is re-executed (and counted as a subquery invocation) per env row.
    """

    quantifier: Quantifier
    correlated_to_self: bool = False


@dataclass
class IndexLookupStep:
    """Probe a base-table index with key expressions over bound values."""

    quantifier: Quantifier
    index_name: str
    key_columns: tuple[str, ...]
    key_exprs: tuple[ast.Expr, ...]


@dataclass
class HashJoinStep:
    """Build a hash table on the child's rows, probe with bound-side keys.

    ``null_safe[i]`` marks ``<=>`` key pairs: NULL keys participate (NULL
    matches NULL) instead of being dropped as ordinary equality requires.
    """

    quantifier: Quantifier
    build_exprs: tuple[ast.Expr, ...]  # over the new quantifier
    probe_exprs: tuple[ast.Expr, ...]  # over already-bound quantifiers/outer
    null_safe: tuple[bool, ...] = ()


@dataclass
class PredicateStep:
    predicate: ast.Expr


@dataclass
class SubqueryEvalStep:
    """Evaluate a scalar subquery once per env row and cache its value."""

    node: BoxScalarSubquery


Step = Union[ScanStep, IndexLookupStep, HashJoinStep, PredicateStep, SubqueryEvalStep]


def step_label(step: Step) -> str:
    """A short, stable operator name for one step -- the identity traces
    and ``EXPLAIN ANALYZE`` annotations display (the full predicate/key
    text lives in :mod:`repro.plan.pretty`)."""
    if isinstance(step, ScanStep):
        suffix = " (correlated)" if step.correlated_to_self else ""
        return f"scan {step.quantifier.name}{suffix}"
    if isinstance(step, IndexLookupStep):
        return f"index lookup {step.quantifier.name} via {step.index_name}"
    if isinstance(step, HashJoinStep):
        return f"hash join {step.quantifier.name}"
    if isinstance(step, PredicateStep):
        return "filter"
    if isinstance(step, SubqueryEvalStep):
        return f"scalar subquery (box {step.node.box.id})"
    return type(step).__name__  # pragma: no cover - future step kinds


@dataclass
class SelectPlan:
    box: SelectBox
    steps: list[Step]
    #: Estimated env cardinality after the final step (for diagnostics).
    estimated_rows: float
    #: id(scalar node) -> barrier index where it is evaluated; consumed by
    #: the magic decorrelation rewrite to form the supplementary table.
    scalar_placement: dict[int, int] = field(default_factory=dict)
    #: Quantifiers in chosen join order (barrier i binds order[i-1]).
    join_order: list[Quantifier] = field(default_factory=list)


def _own_refs(box: SelectBox, expr: ast.Expr) -> set[int]:
    """ids of this box's quantifiers referenced directly by ``expr``
    (not entering subquery bodies)."""
    own = {id(q) for q in box.quantifiers}
    return {
        id(node.quantifier)
        for node in walk_expr(expr)
        if isinstance(node, ColumnRef) and id(node.quantifier) in own
    }


def _subtree_refs_to_box(box: SelectBox, subquery_box: Box) -> set[int]:
    """ids of ``box``'s quantifiers referenced from anywhere inside a
    subquery's subtree (its correlations into this box)."""
    own = {id(q) for q in box.quantifiers}
    return {
        id(ref.quantifier)
        for _, ref in external_column_refs(subquery_box)
        if id(ref.quantifier) in own
    }


def _predicate_requirements(box: SelectBox, predicate: ast.Expr) -> set[int]:
    """Quantifiers of ``box`` that must be bound before ``predicate`` can be
    evaluated. Scalar subquery *bodies* are excluded (their values arrive
    via SubqueryEvalStep), every other subquery runs inline."""
    required = _own_refs(box, predicate)
    for node in walk_expr(predicate):
        if isinstance(node, BOX_SUBQUERY_TYPES) and not isinstance(
            node, BoxScalarSubquery
        ):
            required |= _subtree_refs_to_box(box, node.box)
    return required


def plan_select_box(catalog: Catalog, box: SelectBox, guard=None) -> SelectPlan:
    """Greedy cost-based ordering of one SPJ box.

    ``guard`` (a :class:`repro.guard.ExecutionGuard`) makes planning itself
    a cooperative cancellation/timeout point: plans are built lazily during
    execution, so a tripped budget must also stop the planner.
    """
    if guard is not None:
        guard.check()
    quantifier_by_id = {id(q): q for q in box.quantifiers}

    simple_preds: list[tuple[ast.Expr, set[int], list[BoxScalarSubquery]]] = []
    for predicate in box.predicates:
        scalars = [
            node
            for node in walk_expr(predicate)
            if isinstance(node, BoxScalarSubquery)
        ]
        simple_preds.append(
            (predicate, _predicate_requirements(box, predicate), scalars)
        )

    # Scalar subquery nodes in predicates and outputs, with the quantifiers
    # their correlations require.
    scalar_nodes: list[tuple[BoxScalarSubquery, set[int]]] = []
    seen_scalar_ids: set[int] = set()

    def note_scalars(expr: ast.Expr) -> None:
        for node in walk_expr(expr):
            if isinstance(node, BoxScalarSubquery) and id(node) not in seen_scalar_ids:
                seen_scalar_ids.add(id(node))
                scalar_nodes.append((node, _subtree_refs_to_box(box, node.box)))

    for predicate in box.predicates:
        note_scalars(predicate)
    for output in box.outputs:
        note_scalars(output.expr)

    # Child-box correlation into this box (correlated derived tables).
    child_requirements: dict[int, set[int]] = {}
    child_rows: dict[int, float] = {}
    for q in box.quantifiers:
        child_requirements[id(q)] = _subtree_refs_to_box(box, q.box)
        child_rows[id(q)] = estimate_box_rows(catalog, q.box)

    # ---- join-order search -------------------------------------------------
    # Selinger-style dynamic programming over quantifier subsets for small
    # FROM lists (exact under the step cost model), greedy beyond that.
    search = _order_dp if len(box.quantifiers) <= _DP_LIMIT else _order_greedy
    barriers, pred_barrier = search(
        catalog, box, simple_preds, child_requirements, child_rows,
        quantifier_by_id,
    )

    # ---- scalar subquery placement (paper section 7) ---------------------
    scalar_barrier: dict[int, int] = {}
    for node, required in scalar_nodes:
        feasible = [
            i for i in range(len(barriers))
            if required <= _bound_at(box, barriers, i)
        ]
        if not feasible:
            raise PlanError(f"scalar subquery of box {box.id} cannot be placed")
        # Cheapest point = fewest invocations = smallest env cardinality.
        best_barrier = min(feasible, key=lambda i: (barriers[i]["rows"], i))
        scalar_barrier[id(node)] = best_barrier

    # Predicates that read scalar values must wait for their evaluation.
    for pi, (predicate, required, scalars) in enumerate(simple_preds):
        if pi in pred_barrier and scalars:
            barrier = max(
                [pred_barrier[pi]] + [scalar_barrier[id(s)] for s in scalars]
            )
            pred_barrier[pi] = barrier

    # ---- assemble -------------------------------------------------------
    steps: list[Step] = []
    for index, barrier in enumerate(barriers):
        steps.extend(barrier["steps"])
        for node, _ in scalar_nodes:
            if scalar_barrier[id(node)] == index:
                steps.append(SubqueryEvalStep(node))
        for pi, (predicate, _, scalars) in enumerate(simple_preds):
            if pred_barrier.get(pi) == index:
                # Scalar-free predicates go before scalar evaluations of the
                # same barrier; handled by ordering below.
                steps.append(PredicateStep(predicate))

    steps = _order_within_barriers(steps)
    join_order = [
        step.quantifier
        for step in steps
        if isinstance(step, (ScanStep, IndexLookupStep, HashJoinStep))
    ]
    return SelectPlan(
        box=box,
        steps=steps,
        estimated_rows=barriers[-1]["rows"],
        scalar_placement=scalar_barrier,
        join_order=join_order,
    )


#: Maximum FROM-list size for exact dynamic-programming join ordering.
_DP_LIMIT = 8


def _apply_path_preds(
    catalog: Catalog,
    simple_preds,
    bound: set[int],
    pending: set[int],
    consumed: set[int],
    rows: float,
    barrier_index: int,
    pred_barrier: dict[int, int],
) -> tuple[float, set[int]]:
    """Apply newly-eligible predicates at a barrier: record their placement
    and multiply in their selectivity (unless an access path consumed it)."""
    still_pending = set(pending)
    for pi in sorted(pending):
        predicate, required, _scalars = simple_preds[pi]
        if required <= bound:
            still_pending.discard(pi)
            pred_barrier[pi] = barrier_index
            if pi not in consumed:
                rows = max(rows * predicate_selectivity(catalog, predicate), 0.001)
    return rows, still_pending


def _order_greedy(
    catalog, box, simple_preds, child_requirements, child_rows, quantifier_by_id
) -> tuple[list[dict], dict[int, int]]:
    """Greedy ordering: cheapest next access at every step."""
    bound: set[int] = set()
    remaining = [id(q) for q in box.quantifiers]
    barriers: list[dict] = [{"steps": [], "rows": 1.0}]
    pending: set[int] = set(range(len(simple_preds)))
    pred_barrier: dict[int, int] = {}
    consumed: set[int] = set()
    est_rows, pending = _apply_path_preds(
        catalog, simple_preds, bound, pending, consumed, 1.0, 0, pred_barrier
    )
    barriers[0]["rows"] = est_rows

    while remaining:
        best = None
        for qid in remaining:
            if not child_requirements[qid] <= bound:
                continue
            q = quantifier_by_id[qid]
            access = _best_access(
                catalog, box, q, bound, simple_preds, sorted(pending),
                est_rows, child_rows[qid],
            )
            if access is None:
                continue
            cost, out_rows, step, used_preds = access
            key = (cost, out_rows, qid)
            if best is None or key < (best[0], best[1], best[2]):
                best = (cost, out_rows, qid, step, used_preds)
        if best is None:
            raise PlanError(
                f"cannot order quantifiers of box {box.id}: "
                "circular correlated derived tables?"
            )
        _, out_rows, qid, step, used_preds = best
        bound.add(qid)
        remaining.remove(qid)
        consumed |= used_preds
        est_rows = max(out_rows, 0.001)
        barriers.append({"steps": [step], "rows": est_rows})
        est_rows, pending = _apply_path_preds(
            catalog, simple_preds, bound, pending, consumed, est_rows,
            len(barriers) - 1, pred_barrier,
        )
        barriers[-1]["rows"] = est_rows
    return barriers, pred_barrier


def _order_dp(
    catalog, box, simple_preds, child_requirements, child_rows, quantifier_by_id
) -> tuple[list[dict], dict[int, int]]:
    """Exact join ordering: dynamic programming over quantifier subsets.

    Each DP state keeps the cheapest way to have bound that subset; the
    value carries accumulated cost, estimated rows, the chosen steps, and
    which predicates were consumed by access paths along the way.
    """
    all_ids = [id(q) for q in box.quantifiers]
    n = len(all_ids)
    # state value: (cost, rows, steps, consumed, order)
    initial_pending = frozenset(range(len(simple_preds)))
    start_rows = 1.0
    throwaway: dict[int, int] = {}
    start_rows, start_pending = _apply_path_preds(
        catalog, simple_preds, set(), set(initial_pending), set(),
        start_rows, 0, throwaway,
    )
    states: dict[frozenset, tuple] = {
        frozenset(): (0.0, start_rows, [], frozenset(), [])
    }
    for _ in range(n):
        next_states: dict[frozenset, tuple] = {}
        for subset, (cost, rows, steps, consumed, order) in states.items():
            if len(subset) != len(order):
                continue
            bound = set(subset)
            pending = {
                pi for pi in initial_pending
                if not simple_preds[pi][1] <= bound
            }
            for qid in all_ids:
                if qid in subset or not child_requirements[qid] <= bound:
                    continue
                q = quantifier_by_id[qid]
                access = _best_access(
                    catalog, box, q, bound, simple_preds, sorted(pending),
                    rows, child_rows[qid],
                )
                if access is None:
                    continue
                step_cost, out_rows, step, used = access
                new_bound = bound | {qid}
                new_consumed = set(consumed) | used
                new_rows, _ = _apply_path_preds(
                    catalog, simple_preds, new_bound,
                    {pi for pi in pending
                     if simple_preds[pi][1] <= new_bound},
                    new_consumed, max(out_rows, 0.001), 0, {},
                )
                key = frozenset(new_bound)
                candidate = (
                    cost + step_cost, new_rows, steps + [step],
                    frozenset(new_consumed), order + [qid],
                )
                existing = next_states.get(key)
                if existing is None or candidate[0] < existing[0]:
                    next_states[key] = candidate
        if not next_states and n:
            raise PlanError(
                f"cannot order quantifiers of box {box.id}: "
                "circular correlated derived tables?"
            )
        states = next_states if next_states else states
        if frozenset(all_ids) in states:
            break
    final = states.get(frozenset(all_ids))
    if final is None and n > 0:
        raise PlanError(f"cannot order quantifiers of box {box.id}")
    if n == 0:
        final = (0.0, start_rows, [], frozenset(), [])

    # Replay the winning order to build barriers and predicate placement.
    _, _, steps, consumed_f, order = final
    consumed = set(consumed_f)
    barriers: list[dict] = [{"steps": [], "rows": 1.0}]
    pending = set(initial_pending)
    pred_barrier: dict[int, int] = {}
    bound: set[int] = set()
    rows, pending = _apply_path_preds(
        catalog, simple_preds, bound, pending, consumed, 1.0, 0, pred_barrier
    )
    barriers[0]["rows"] = rows
    for step, qid in zip(steps, order):
        bound.add(qid)
        # Re-estimate rows from the access step's statistics by replaying
        # _best_access is unnecessary: recompute from scratch keeps the DP
        # and replay consistent enough for placement purposes.
        q = quantifier_by_id[qid]
        access = _best_access(
            catalog, box, q, bound - {qid}, simple_preds, sorted(pending),
            rows, child_rows[qid],
        )
        out_rows = access[1] if access is not None else rows
        rows = max(out_rows, 0.001)
        barriers.append({"steps": [step], "rows": rows})
        rows, pending = _apply_path_preds(
            catalog, simple_preds, bound, pending, consumed, rows,
            len(barriers) - 1, pred_barrier,
        )
        barriers[-1]["rows"] = rows
    return barriers, pred_barrier


def _bound_at(box: SelectBox, barriers: list[dict], index: int) -> set[int]:
    bound: set[int] = set()
    for barrier in barriers[: index + 1]:
        for step in barrier["steps"]:
            if isinstance(step, (ScanStep, IndexLookupStep, HashJoinStep)):
                bound.add(id(step.quantifier))
    return bound


def _order_within_barriers(steps: list[Step]) -> list[Step]:
    """Within one barrier, run scalar-free predicates before scalar
    evaluations (filter first, then invoke subqueries on survivors)."""
    result: list[Step] = []
    block: list[Step] = []

    def flush() -> None:
        plain = [
            s for s in block
            if isinstance(s, PredicateStep)
            and not any(
                isinstance(n, BoxScalarSubquery) for n in walk_expr(s.predicate)
            )
        ]
        evals = [s for s in block if isinstance(s, SubqueryEvalStep)]
        scalar_preds = [
            s for s in block
            if isinstance(s, PredicateStep) and not any(s is p for p in plain)
        ]
        result.extend(plain + evals + scalar_preds)
        block.clear()

    for step in steps:
        if isinstance(step, (ScanStep, IndexLookupStep, HashJoinStep)):
            flush()
            result.append(step)
        else:
            block.append(step)
    flush()
    return result


def _best_access(
    catalog: Catalog,
    box: SelectBox,
    q,
    bound: set[int],
    simple_preds,
    pending_preds,
    env_rows: float,
    q_rows: float,
) -> Optional[tuple[float, float, Step, set[int]]]:
    """Best access path for binding ``q`` next.

    Returns ``(cost, out_rows, step, consumed_pred_indexes)`` -- the last
    element lists predicates whose selectivity the access path already
    accounts for (so the caller does not apply it twice).
    """
    correlated_to_self = bool(_subtree_refs_to_box(box, q.box))
    own_id = id(q)

    # Collect equality predicates usable for index lookup / hash join:
    # one side is a plain column of q, the other is computable from bound
    # quantifiers (plus anything outer, which is always available).
    # (pred_index, col, q_side, other, null_safe)
    eq_pairs: list[tuple[int, str, ast.Expr, ast.Expr, bool]] = []
    for pi in pending_preds:
        predicate, _, scalars = simple_preds[pi]
        if scalars or not isinstance(predicate, ast.Comparison) \
                or predicate.op not in ("=", "<=>"):
            continue
        if any(isinstance(n, BOX_SUBQUERY_TYPES) for n in walk_expr(predicate)):
            continue
        for q_side, other in (
            (predicate.left, predicate.right),
            (predicate.right, predicate.left),
        ):
            if not (isinstance(q_side, ColumnRef) and q_side.quantifier is q):
                continue
            other_own = _own_refs(box, other)
            if other_own <= bound and own_id not in other_own:
                eq_pairs.append(
                    (pi, q_side.column, q_side, other, predicate.op == "<=>")
                )
                break

    candidates: list[tuple[float, float, Step, set[int]]] = []

    # Index lookup on a base table (not for null-safe pairs: hash indexes
    # drop NULL probes by design).
    if isinstance(q.box, BaseTableBox) and eq_pairs:
        table = catalog.table(q.box.table_name)
        stats = catalog.stats(q.box.table_name)
        for pi, column, _, other, null_safe in eq_pairs:
            if null_safe:
                continue
            index = table.find_index([column])
            if index is None:
                continue
            ndv = max(1, stats.column(column).n_distinct)
            matches = max(stats.row_count / ndv, 0.001)
            cost = env_rows * (1.0 + matches)
            out_rows = max(env_rows * matches, 0.001)
            candidates.append(
                (
                    cost,
                    out_rows,
                    IndexLookupStep(q, index.name, (column,), (other,)),
                    {pi},
                )
            )

    # Hash join (child must not depend on this box's other quantifiers).
    if eq_pairs and not correlated_to_self:
        build = tuple(pair[2] for pair in eq_pairs)
        probe = tuple(pair[3] for pair in eq_pairs)
        null_safe = tuple(pair[4] for pair in eq_pairs)
        selectivity = 1.0
        for _, column, q_side, _, _ in eq_pairs:
            ndv = _ndv_of(catalog, q_side)
            selectivity *= 1.0 / max(1, ndv)
        matches = max(q_rows * selectivity, 0.001)
        cost = q_rows + env_rows * (1.0 + matches)
        out_rows = max(env_rows * matches, 0.001)
        candidates.append(
            (
                cost,
                out_rows,
                HashJoinStep(q, build, probe, null_safe),
                {pair[0] for pair in eq_pairs},
            )
        )

    # Plain (nested-loop) scan is always possible.
    scan_cost = env_rows * q_rows + (q_rows if not correlated_to_self else 0.0)
    candidates.append(
        (
            scan_cost,
            max(env_rows * q_rows, 0.001),
            ScanStep(q, correlated_to_self),
            set(),
        )
    )

    return min(candidates, key=lambda c: (c[0], c[1])) if candidates else None


def _ndv_of(catalog: Catalog, ref: ast.Expr) -> int:
    from .cost import column_ndv

    if isinstance(ref, ColumnRef):
        ndv = column_ndv(catalog, ref)
        if ndv:
            return ndv
    return 10
