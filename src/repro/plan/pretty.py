"""Textual rendering of physical plans (the engine's EXPLAIN PLAN).

Walks the query graph and prints, for every SPJ box, the step list the
planner chose: access paths (scan / index lookup / hash join), predicate
placement, and -- the paper's section 7 concern -- where each correlated
scalar subquery is evaluated relative to the joins.
"""

from __future__ import annotations

from ..qgm.analysis import iter_boxes
from ..qgm.model import (
    BaseTableBox,
    Box,
    GroupByBox,
    OuterJoinBox,
    QueryGraph,
    SelectBox,
    SetOpBox,
)
from ..qgm.pretty import expr_to_text
from ..storage.catalog import Catalog
from .planner import (
    HashJoinStep,
    IndexLookupStep,
    PredicateStep,
    ScanStep,
    SubqueryEvalStep,
    plan_select_box,
)


def _step_to_text(step, own: set[int]) -> str:
    if isinstance(step, ScanStep):
        suffix = "  [re-executed per row: correlated]" if step.correlated_to_self else ""
        return f"scan {step.quantifier.name} (box {step.quantifier.box.id}){suffix}"
    if isinstance(step, IndexLookupStep):
        keys = ", ".join(
            f"{col} = {expr_to_text(e, own)}"
            for col, e in zip(step.key_columns, step.key_exprs)
        )
        return (
            f"index lookup {step.quantifier.name} via {step.index_name} "
            f"on {keys}"
        )
    if isinstance(step, HashJoinStep):
        pairs = ", ".join(
            f"{expr_to_text(b, own)} {'<=>' if ns else '='} {expr_to_text(p, own)}"
            for b, p, ns in zip(
                step.build_exprs, step.probe_exprs,
                step.null_safe or (False,) * len(step.build_exprs),
            )
        )
        return f"hash join {step.quantifier.name} on {pairs}"
    if isinstance(step, PredicateStep):
        return f"filter {expr_to_text(step.predicate, own)}"
    if isinstance(step, SubqueryEvalStep):
        return f"evaluate scalar subquery (box {step.node.box.id}) per row"
    return repr(step)


def plan_to_text(catalog: Catalog, graph: QueryGraph | Box) -> str:
    """Render the physical plan of every box in the graph."""
    root = graph.root if isinstance(graph, QueryGraph) else graph
    sections: list[str] = []
    for box in iter_boxes(root):
        if isinstance(box, SelectBox):
            plan = plan_select_box(catalog, box)
            own = {id(q) for q in box.quantifiers}
            lines = [
                f"[{box.id}] SELECT{' DISTINCT' if box.distinct else ''} "
                f"(est. {plan.estimated_rows:.1f} rows)"
            ]
            for step in plan.steps:
                lines.append(f"    {_step_to_text(step, own)}")
            sections.append("\n".join(lines))
        elif isinstance(box, GroupByBox):
            n_keys = len(box.group_by)
            sections.append(
                f"[{box.id}] HASH AGGREGATE ({n_keys} grouping "
                f"column{'s' if n_keys != 1 else ''})"
            )
        elif isinstance(box, SetOpBox):
            sections.append(
                f"[{box.id}] {box.op.upper()}{' ALL' if box.all else ''} "
                f"of {len(box.quantifiers)} inputs"
            )
        elif isinstance(box, OuterJoinBox):
            sections.append(f"[{box.id}] LEFT OUTER HASH/NL JOIN")
        elif isinstance(box, BaseTableBox):
            sections.append(f"[{box.id}] TABLE {box.table_name}")
    return "\n".join(sections)
