"""Textual rendering of physical plans (the engine's EXPLAIN PLAN).

Walks the query graph and prints, for every SPJ box, the step list the
planner chose: access paths (scan / index lookup / hash join), predicate
placement, and -- the paper's section 7 concern -- where each correlated
scalar subquery is evaluated relative to the joins.

With a :class:`repro.trace.Tracer` from an actual execution, every line
additionally carries ``EXPLAIN ANALYZE``-style annotations (calls, rows,
cache hits, elapsed) pulled from the tracer's per-operator aggregates.
"""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

from ..qgm.analysis import iter_boxes
from ..qgm.model import (
    BaseTableBox,
    Box,
    GroupByBox,
    OuterJoinBox,
    QueryGraph,
    SelectBox,
    SetOpBox,
)
from ..qgm.pretty import expr_to_text
from ..storage.catalog import Catalog
from .planner import (
    HashJoinStep,
    IndexLookupStep,
    PredicateStep,
    ScanStep,
    SubqueryEvalStep,
    plan_select_box,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle avoidance
    from ..trace import Tracer


def _annotation(stats) -> str:
    """One ``(actual: ...)`` suffix from a flattened operator aggregate."""
    if stats is None:
        return "  (never executed)"
    parts = [f"calls={stats.calls}"]
    if stats.rows_in:
        parts.append(f"rows_in={stats.rows_in}")
    parts.append(f"rows_out={stats.rows_out}")
    if stats.cache_hits:
        parts.append(f"cache_hits={stats.cache_hits}")
    parts.append(f"time={stats.elapsed * 1000:.3f}ms")
    return "  (actual: " + " ".join(parts) + ")"


def _step_to_text(step, own: set[int]) -> str:
    if isinstance(step, ScanStep):
        suffix = "  [re-executed per row: correlated]" if step.correlated_to_self else ""
        return f"scan {step.quantifier.name} (box {step.quantifier.box.id}){suffix}"
    if isinstance(step, IndexLookupStep):
        keys = ", ".join(
            f"{col} = {expr_to_text(e, own)}"
            for col, e in zip(step.key_columns, step.key_exprs)
        )
        return (
            f"index lookup {step.quantifier.name} via {step.index_name} "
            f"on {keys}"
        )
    if isinstance(step, HashJoinStep):
        pairs = ", ".join(
            f"{expr_to_text(b, own)} {'<=>' if ns else '='} {expr_to_text(p, own)}"
            for b, p, ns in zip(
                step.build_exprs, step.probe_exprs,
                step.null_safe or (False,) * len(step.build_exprs),
            )
        )
        return f"hash join {step.quantifier.name} on {pairs}"
    if isinstance(step, PredicateStep):
        return f"filter {expr_to_text(step.predicate, own)}"
    if isinstance(step, SubqueryEvalStep):
        return f"evaluate scalar subquery (box {step.node.box.id}) per row"
    return repr(step)


def plan_to_text(
    catalog: Catalog,
    graph: QueryGraph | Box,
    tracer: Optional["Tracer"] = None,
) -> str:
    """Render the physical plan of every box in the graph.

    With ``tracer`` (the span collector of an actual execution) every box
    header and step line is annotated ``EXPLAIN ANALYZE``-style with the
    observed calls, rows and elapsed time; plan nodes the execution never
    reached are marked ``(never executed)``."""
    root = graph.root if isinstance(graph, QueryGraph) else graph
    stats = tracer.operator_stats() if tracer is not None else None

    def box_note(box: Box) -> str:
        if stats is None:
            return ""
        return _annotation(stats.get(("box", box.id)))

    def step_note(box: Box, index: int) -> str:
        if stats is None:
            return ""
        return _annotation(stats.get(("step", box.id, index)))

    sections: list[str] = []
    for box in iter_boxes(root):
        if isinstance(box, SelectBox):
            plan = plan_select_box(catalog, box)
            own = {id(q) for q in box.quantifiers}
            lines = [
                f"[{box.id}] SELECT{' DISTINCT' if box.distinct else ''} "
                f"(est. {plan.estimated_rows:.1f} rows)" + box_note(box)
            ]
            for index, step in enumerate(plan.steps):
                lines.append(
                    f"    {_step_to_text(step, own)}" + step_note(box, index)
                )
            sections.append("\n".join(lines))
        elif isinstance(box, GroupByBox):
            n_keys = len(box.group_by)
            sections.append(
                f"[{box.id}] HASH AGGREGATE ({n_keys} grouping "
                f"column{'s' if n_keys != 1 else ''})" + box_note(box)
            )
        elif isinstance(box, SetOpBox):
            sections.append(
                f"[{box.id}] {box.op.upper()}{' ALL' if box.all else ''} "
                f"of {len(box.quantifiers)} inputs" + box_note(box)
            )
        elif isinstance(box, OuterJoinBox):
            sections.append(
                f"[{box.id}] LEFT OUTER HASH/NL JOIN" + box_note(box)
            )
        elif isinstance(box, BaseTableBox):
            sections.append(
                f"[{box.id}] TABLE {box.table_name}" + box_note(box)
            )
    return "\n".join(sections)
