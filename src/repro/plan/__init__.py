"""Cost-based mini-planner: row estimation, access selection, join ordering,
and correlated-subquery placement (paper section 7) -- plus the
fingerprint-keyed plan cache (prepared statements, :mod:`repro.plan.cache`)."""

from .cache import (
    PlanCache,
    PreparedStatement,
    extract_parameters,
    fingerprint,
    normalize_sql,
    render_parameterized,
)
from .cost import estimate_box_rows, predicate_selectivity
from .planner import (
    HashJoinStep,
    IndexLookupStep,
    PredicateStep,
    ScanStep,
    SelectPlan,
    SubqueryEvalStep,
    plan_select_box,
)

__all__ = [
    "PlanCache",
    "PreparedStatement",
    "extract_parameters",
    "fingerprint",
    "normalize_sql",
    "render_parameterized",
    "estimate_box_rows",
    "predicate_selectivity",
    "SelectPlan",
    "ScanStep",
    "IndexLookupStep",
    "HashJoinStep",
    "PredicateStep",
    "SubqueryEvalStep",
    "plan_select_box",
]
