"""Cost-based mini-planner: row estimation, access selection, join ordering,
and correlated-subquery placement (paper section 7)."""

from .cost import estimate_box_rows, predicate_selectivity
from .planner import (
    HashJoinStep,
    IndexLookupStep,
    PredicateStep,
    ScanStep,
    SelectPlan,
    SubqueryEvalStep,
    plan_select_box,
)

__all__ = [
    "estimate_box_rows",
    "predicate_selectivity",
    "SelectPlan",
    "ScanStep",
    "IndexLookupStep",
    "HashJoinStep",
    "PredicateStep",
    "SubqueryEvalStep",
    "plan_select_box",
]
