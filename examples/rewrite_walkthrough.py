"""Watch magic decorrelation transform the QGM, step by step.

The paper presents its algorithm as a sequence of incremental stages
(Figures 2-4), each leaving the graph consistent. This example hooks the
rewriter's step callback and prints the graph after every stage, ending
with the rewritten query in the paper's own CREATE-VIEW presentation.

Run:  python examples/rewrite_walkthrough.py
"""

from repro import Database
from repro.qgm import build_qgm, graph_to_text, validate_graph
from repro.qgm.sqlgen import graph_to_sql
from repro.rewrite.decorrelate import MagicDecorrelator
from repro.sql.parser import parse_statement
from repro.tpcd.empdept import create_empdept_schema

QUERY = """
    SELECT d.name FROM dept d
    WHERE d.budget < 10000 AND d.num_emps >
      (SELECT count(*) FROM emp e WHERE d.building = e.building)
"""


def main() -> None:
    db = Database()
    create_empdept_schema(db.catalog)
    db.execute_script(
        """
        INSERT INTO dept VALUES ('sales', 5000, 4, 'B1'), ('tiny', 500, 1, 'B9');
        INSERT INTO emp VALUES (1, 'alice', 'B1', 100), (2, 'bob', 'B1', 120);
        """
    )

    graph = build_qgm(parse_statement(QUERY), db.catalog)
    print("=" * 72)
    print("INITIAL QGM (Figure 1: correlated COUNT subquery, ^ marks the")
    print("correlated reference)")
    print("=" * 72)
    print(graph_to_text(graph))

    step = [0]

    def on_step(description: str, current) -> None:
        step[0] += 1
        validate_graph(current, db.catalog)  # section 3's contract
        print()
        print("=" * 72)
        print(f"STEP {step[0]}: {description}  [graph validated]")
        print("=" * 72)
        print(graph_to_text(current))

    MagicDecorrelator(graph, db.catalog, on_step=on_step).run()

    print()
    print("=" * 72)
    print("THE REWRITTEN QUERY, AS THE PAPER PRESENTS IT (section 2.1)")
    print("=" * 72)
    print(graph_to_sql(graph))


if __name__ == "__main__":
    main()
