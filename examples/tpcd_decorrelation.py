"""The paper's full evaluation (section 5) on the TPC-D database.

Builds the synthetic TPC-D database and regenerates every figure of the
paper's performance study, printing the strategy sweep tables and the
qualitative shape checks.

Run:  python examples/tpcd_decorrelation.py [scale_factor]

The paper's database corresponds to scale_factor 0.1 (Table 1); the default
here is 0.01 so nested iteration on Figures 6/7 stays in the seconds range.
"""

import sys

from repro.bench.figures import ALL_FIGURES, table1


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.01

    print(f"Table 1: TPC-D database at scale factor {scale}")
    for name, (expected, actual) in table1(scale).items():
        print(f"  {name:<10} expected={expected:>7}  generated={actual:>7}")
    print()

    for fn in ALL_FIGURES.values():
        report = fn(scale_factor=scale, repeat=2)
        report.print()
        print()


if __name__ == "__main__":
    main()
