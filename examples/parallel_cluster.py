"""Decorrelation in a shared-nothing parallel database (paper section 6).

Simulates the section-2 query over EMP/DEPT partitioned across n nodes:

* nested iteration broadcasts every correlation binding to every node --
  O(n^2) computation fragments, one small message per binding per node;
* the magic-decorrelated plan repartitions once on the correlation
  attribute and then runs n fully local pipelines.

Run:  python examples/parallel_cluster.py
"""

from repro.parallel import simulate_decorrelated, simulate_nested_iteration
from repro.tpcd import load_empdept


def main() -> None:
    catalog = load_empdept(n_depts=400, n_emps=8000, n_buildings=40)
    dept = list(catalog.table("dept").rows)
    emp = list(catalog.table("emp").rows)

    print(f"EMP/DEPT: {len(dept)} departments, {len(emp)} employees\n")
    print(
        f"{'nodes':>5} | {'strategy':<18} {'fragments':>9} {'messages':>9} "
        f"{'row work':>9} {'makespan':>9}"
    )
    print("-" * 70)
    for n in (1, 2, 4, 8, 16):
        ni = simulate_nested_iteration(dept, emp, n)
        magic = simulate_decorrelated(dept, emp, n)
        assert ni.answer == magic.answer
        for metrics in (ni, magic):
            print(
                f"{n:>5} | {metrics.strategy:<18} {metrics.fragments:>9} "
                f"{metrics.messages:>9} {metrics.rows_processed:>9} "
                f"{metrics.makespan:>9.0f}"
            )
        print(f"      | decorrelated speedup over NI: "
              f"{ni.makespan / magic.makespan:.1f}x")
        print("-" * 70)

    print(
        "\nNested iteration's fragments grow as n^2 and its total row work "
        "never shrinks\n(every invocation scans every partition); the "
        "decorrelated plan's work is constant\nand divides across nodes."
    )


if __name__ == "__main__":
    main()
