"""The COUNT bug (paper section 2), demonstrated strategy by strategy.

Department 'tiny' sits in a building with no employees: its correlated
COUNT is 0, and 1 > 0, so a correct engine returns it. Kim's method turns
the subquery into a grouped table expression; the empty building produces
no group, the join finds no partner, and the department silently vanishes.
Dayal's left-outer-join method and magic decorrelation (which adds the
"BugRemoval" LOJ + COALESCE) both keep it.

Run:  python examples/count_bug.py
"""

from repro import Database, Strategy
from repro.tpcd.empdept import create_empdept_schema


QUERY = """
    SELECT d.name FROM dept d
    WHERE d.budget < 10000 AND d.num_emps >
      (SELECT count(*) FROM emp e WHERE d.building = e.building)
"""


def build() -> Database:
    db = Database()
    create_empdept_schema(db.catalog)
    db.execute_script(
        """
        INSERT INTO dept VALUES
            ('sales', 5000, 4, 'B1'),
            ('tiny',   500, 1, 'B9');   -- the COUNT-bug department
        INSERT INTO emp VALUES
            (1, 'alice', 'B1', 100), (2, 'bob', 'B1', 120),
            (3, 'carol', 'B1',  90);
        """
    )
    return db


def main() -> None:
    db = build()
    print("Query:", QUERY)
    expected = sorted(db.execute(QUERY).rows)
    print(f"correct answer (nested iteration): {expected}\n")

    for strategy in (Strategy.KIM, Strategy.DAYAL, Strategy.MAGIC):
        rows = sorted(db.execute(QUERY, strategy=strategy).rows)
        verdict = "CORRECT" if rows == expected else "WRONG (COUNT bug!)"
        print(f"{strategy.label:<8} -> {rows}  [{verdict}]")

    print("\nWhy magic gets it right -- the rewritten query in the paper's")
    print("own presentation (section 2.1): note the BugRemoval view's")
    print("LEFT OUTER JOIN and COALESCE(count, 0):\n")
    for line in db.rewritten_sql(QUERY, Strategy.MAGIC).splitlines():
        print(" ", line)


if __name__ == "__main__":
    main()
